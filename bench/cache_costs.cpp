// Cost model for the memoization family: what a ShardedLru operation
// costs, and what a CacheAspect hit saves against recomputing the two
// memoisable units — a sieve segment (PrimeFilter::filter under the
// calibrated work model) and a Mandelbrot tile (MandelWorker::row_checksum,
// real escape-time arithmetic). The acceptance claim quoted in
// EXPERIMENTS.md — hit path >= 10x faster than recompute — comes from the
// Recompute/CachedHit pairs below (tools/run_bench.py pairs them up).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/apps/mandel_worker.hpp"
#include "apar/cache/cache_aspect.hpp"
#include "apar/cache/sharded_lru.hpp"
#include "apar/common/table.hpp"
#include "apar/sieve/prime_filter.hpp"

namespace aop = apar::aop;
namespace cache = apar::cache;
using apar::apps::MandelWorker;
using apar::sieve::PrimeFilter;

namespace {

using Lru = cache::ShardedLru<std::string, std::string>;

/// Simulated ns per trial division for the sieve pair: the same
/// calibrated stand-in for real Xeon compute the rest of the bench suite
/// uses (see DESIGN.md "Substitutions"); a segment recompute pays it, a
/// cache hit does not.
constexpr double kSieveNsPerOp = 5.0;

std::vector<long long> make_pack(std::size_t n) {
  std::vector<long long> pack;
  pack.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pack.push_back(1001 + static_cast<long long>(i));
  return pack;
}

// --- ShardedLru micro-costs -----------------------------------------------

void BM_LruGetHit(benchmark::State& state) {
  Lru::Options o;
  o.shards = static_cast<std::size_t>(state.range(0));
  o.max_entries = 4096;
  Lru lru(o);
  for (int i = 0; i < 1024; ++i)
    lru.put("key" + std::to_string(i), std::string(64, 'v'));
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lru.get("key" + std::to_string(i++ % 1024)));
  }
}
BENCHMARK(BM_LruGetHit)->Arg(1)->Arg(8);

void BM_LruPutOverwrite(benchmark::State& state) {
  Lru::Options o;
  o.shards = static_cast<std::size_t>(state.range(0));
  o.max_entries = 4096;
  Lru lru(o);
  int i = 0;
  for (auto _ : state) {
    lru.put("key" + std::to_string(i++ % 1024), std::string(64, 'v'));
  }
}
BENCHMARK(BM_LruPutOverwrite)->Arg(1)->Arg(8);

void BM_LruGetOrComputeHit(benchmark::State& state) {
  Lru lru({});
  (void)lru.get_or_compute("hot", [] { return std::string(64, 'v'); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lru.get_or_compute("hot", [] { return std::string(64, 'v'); }));
  }
}
BENCHMARK(BM_LruGetOrComputeHit);

// --- the memoisable units: recompute vs cached hit ------------------------

/// Every iteration filters a fresh copy of the same segment; the copy is
/// paid identically by the CachedHit twin, so the pair isolates body
/// execution vs effect replay.
void BM_SieveSegmentRecompute(benchmark::State& state) {
  aop::Context ctx;
  auto filter = ctx.create<PrimeFilter>(2LL, 31LL, kSieveNsPerOp);
  const auto segment = make_pack(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<long long> pack = segment;
    ctx.call<&PrimeFilter::filter>(filter, pack);
    benchmark::DoNotOptimize(pack);
  }
}
BENCHMARK(BM_SieveSegmentRecompute)->Arg(500)->Arg(2000);

void BM_SieveSegmentCachedHit(benchmark::State& state) {
  aop::Context ctx;
  auto memo = std::make_shared<cache::CacheAspect<PrimeFilter>>("Memo");
  memo->cache_method<&PrimeFilter::filter>();
  ctx.attach(memo);
  auto filter = ctx.create<PrimeFilter>(2LL, 31LL, kSieveNsPerOp);
  const auto segment = make_pack(static_cast<std::size_t>(state.range(0)));
  {
    std::vector<long long> warm = segment;  // the one real computation
    ctx.call<&PrimeFilter::filter>(filter, warm);
  }
  for (auto _ : state) {
    std::vector<long long> pack = segment;
    ctx.call<&PrimeFilter::filter>(filter, pack);
    benchmark::DoNotOptimize(pack);
  }
}
BENCHMARK(BM_SieveSegmentCachedHit)->Arg(500)->Arg(2000);

void BM_MandelRowRecompute(benchmark::State& state) {
  aop::Context ctx;
  auto worker = ctx.create<MandelWorker>(state.range(0), 64LL, 500LL, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.call<&MandelWorker::row_checksum>(worker, 31LL));
  }
}
BENCHMARK(BM_MandelRowRecompute)->Arg(64)->Arg(256);

void BM_MandelRowCachedHit(benchmark::State& state) {
  aop::Context ctx;
  auto memo = std::make_shared<cache::CacheAspect<MandelWorker>>("Memo");
  memo->cache_method<&MandelWorker::row_checksum>();
  ctx.attach(memo);
  auto worker = ctx.create<MandelWorker>(state.range(0), 64LL, 500LL, 0.0);
  (void)ctx.call<&MandelWorker::row_checksum>(worker, 31LL);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.call<&MandelWorker::row_checksum>(worker, 31LL));
  }
}
BENCHMARK(BM_MandelRowCachedHit)->Arg(64)->Arg(256);

// --- stand-alone speedup table --------------------------------------------

/// Wall-clock ratio of recompute over cached hit for both memoisable
/// units, printed before the benchmark run so a plain invocation (and
/// EXPERIMENTS.md) gets the headline number without JSON post-processing.
/// Goes to `out` so --benchmark_format=json runs can keep stdout pure
/// (tools/run_bench.py parses it).
void print_hit_speedup_table(std::FILE* out) {
  using clock = std::chrono::steady_clock;
  apar::common::Table table(
      {"Unit", "recompute us/call", "hit us/call", "speedup"});

  const auto time_us = [](int reps, auto&& fn) {
    const auto start = clock::now();
    for (int i = 0; i < reps; ++i) fn();
    return std::chrono::duration<double, std::micro>(clock::now() - start)
               .count() /
           reps;
  };

  {
    constexpr int kReps = 50;
    const auto segment = make_pack(2000);
    aop::Context plain;
    auto filter = plain.create<PrimeFilter>(2LL, 31LL, kSieveNsPerOp);
    const double recompute = time_us(kReps, [&] {
      std::vector<long long> pack = segment;
      plain.call<&PrimeFilter::filter>(filter, pack);
    });

    aop::Context cached;
    auto memo = std::make_shared<cache::CacheAspect<PrimeFilter>>("Memo");
    memo->cache_method<&PrimeFilter::filter>();
    cached.attach(memo);
    auto cfilter = cached.create<PrimeFilter>(2LL, 31LL, kSieveNsPerOp);
    {
      std::vector<long long> warm = segment;
      cached.call<&PrimeFilter::filter>(cfilter, warm);
    }
    const double hit = time_us(kReps, [&] {
      std::vector<long long> pack = segment;
      cached.call<&PrimeFilter::filter>(cfilter, pack);
    });
    char recompute_s[32], hit_s[32];
    std::snprintf(recompute_s, sizeof recompute_s, "%.1f", recompute);
    std::snprintf(hit_s, sizeof hit_s, "%.1f", hit);
    table.add_row({"sieve segment (2000 cand.)", recompute_s, hit_s,
                   apar::common::fmt_ratio(recompute / hit)});
  }

  {
    constexpr int kReps = 50;
    aop::Context plain;
    auto worker = plain.create<MandelWorker>(256LL, 64LL, 500LL, 0.0);
    const double recompute = time_us(kReps, [&] {
      benchmark::DoNotOptimize(
          plain.call<&MandelWorker::row_checksum>(worker, 31LL));
    });

    aop::Context cached;
    auto memo = std::make_shared<cache::CacheAspect<MandelWorker>>("Memo");
    memo->cache_method<&MandelWorker::row_checksum>();
    cached.attach(memo);
    auto cworker = cached.create<MandelWorker>(256LL, 64LL, 500LL, 0.0);
    (void)cached.call<&MandelWorker::row_checksum>(cworker, 31LL);
    const double hit = time_us(kReps, [&] {
      benchmark::DoNotOptimize(
          cached.call<&MandelWorker::row_checksum>(cworker, 31LL));
    });
    char recompute_s[32], hit_s[32];
    std::snprintf(recompute_s, sizeof recompute_s, "%.1f", recompute);
    std::snprintf(hit_s, sizeof hit_s, "%.1f", hit);
    table.add_row({"mandel row (256 px, 500 iter)", recompute_s, hit_s,
                   apar::common::fmt_ratio(recompute / hit)});
  }

  std::fprintf(out, "=== memoized hit vs recompute ===\n%s\n",
               table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool json_stdout = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).find("--benchmark_format=json") == 0)
      json_stdout = true;
  print_hit_speedup_table(json_stdout ? stderr : stdout);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
