// Ablation: where does the aspect abstraction's overhead come from?
//
// Complements Figure 16 (end-to-end < 5% claim) with microbenchmarks of the
// dispatch path itself: direct virtual-free call vs compile-time weaving vs
// runtime weaving (with and without the advice-chain cache, with growing
// advice chains). google-benchmark binary.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "apar/aop/aop.hpp"

namespace aop = apar::aop;

namespace {

class Target {
 public:
  long long bump(long long x) {
    value_ += x;
    return value_;
  }

 private:
  long long value_ = 0;
};

}  // namespace

APAR_CLASS_NAME(Target, "Target");
APAR_METHOD_NAME(&Target::bump, "bump");

namespace {

void BM_DirectCall(benchmark::State& state) {
  Target target;
  long long x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(target.bump(++x));
  }
}
BENCHMARK(BM_DirectCall);

struct PassThrough {
  template <class Next, class T, class... A>
  static decltype(auto) around(Next&& next, T&, A&&... args) {
    return next(std::forward<A>(args)...);
  }
};

void BM_StaticWeave_1Aspect(benchmark::State& state) {
  aop::ct::Woven<Target, PassThrough> woven;
  long long x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(woven.call<&Target::bump>(++x));
  }
}
BENCHMARK(BM_StaticWeave_1Aspect);

void BM_StaticWeave_5Aspects(benchmark::State& state) {
  aop::ct::Woven<Target, PassThrough, PassThrough, PassThrough, PassThrough,
                 PassThrough>
      woven;
  long long x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(woven.call<&Target::bump>(++x));
  }
}
BENCHMARK(BM_StaticWeave_5Aspects);

void BM_RuntimeWeave_NoAspects(benchmark::State& state) {
  aop::Context ctx;
  auto target = ctx.create<Target>();
  long long x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.call<&Target::bump>(target, ++x));
  }
}
BENCHMARK(BM_RuntimeWeave_NoAspects);

void add_passthrough_advice(aop::Aspect& aspect, int count) {
  for (int i = 0; i < count; ++i) {
    aspect.around_method<&Target::bump>(
        aop::order::kDefault + i, aop::Scope::any(),
        [](auto& inv) { return inv.proceed(); });
  }
}

void BM_RuntimeWeave_AdviceChain(benchmark::State& state) {
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("chain");
  add_passthrough_advice(*aspect, static_cast<int>(state.range(0)));
  ctx.attach(aspect);
  auto target = ctx.create<Target>();
  long long x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.call<&Target::bump>(target, ++x));
  }
}
BENCHMARK(BM_RuntimeWeave_AdviceChain)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

void BM_RuntimeWeave_CacheDisabled(benchmark::State& state) {
  aop::Context ctx;
  ctx.set_cache_enabled(false);
  auto aspect = std::make_shared<aop::Aspect>("chain");
  add_passthrough_advice(*aspect, 1);
  ctx.attach(aspect);
  auto target = ctx.create<Target>();
  long long x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.call<&Target::bump>(target, ++x));
  }
}
BENCHMARK(BM_RuntimeWeave_CacheDisabled);

void BM_RuntimeWeave_ScopedAdvice(benchmark::State& state) {
  // Scope checks (core_only) happen per invocation; measure their cost.
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("scoped");
  aspect->around_method<&Target::bump>(
      aop::order::kDefault, aop::Scope::core_only(),
      [](auto& inv) { return inv.proceed(); });
  ctx.attach(aspect);
  auto target = ctx.create<Target>();
  long long x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.call<&Target::bump>(target, ++x));
  }
}
BENCHMARK(BM_RuntimeWeave_ScopedAdvice);

void BM_PatternMatch(benchmark::State& state) {
  const aop::Pattern pattern("Prime*.fil*");
  const aop::Signature sig{"PrimeFilter", "filter",
                           aop::JoinPointKind::kMethodCall};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pattern.matches(sig));
  }
}
BENCHMARK(BM_PatternMatch);

void BM_AttachDetachEpoch(benchmark::State& state) {
  // Cost of (un)plugging an aspect — the paper's "on the fly" operation.
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("toggle");
  add_passthrough_advice(*aspect, 1);
  for (auto _ : state) {
    ctx.attach(aspect);
    auto removed = ctx.detach("toggle");
    benchmark::DoNotOptimize(removed);
  }
}
BENCHMARK(BM_AttachDetachEpoch);

}  // namespace

BENCHMARK_MAIN();
