// Ablations for the paper's §4.4 optimisation aspects: each one is plugged
// onto the SAME woven application and measured against the unoptimised
// run — the methodology's promise that optimisations are modular and
// individually (un)pluggable.
//
//   - communication packing: fewer, bigger messages on the MPP farm;
//   - thread pool: spawn cost vs pooled execution with many small packs;
//   - object cache: repeated creations short-circuited.
#include <cstdio>
#include <memory>

#include "apar/cluster/middleware.hpp"
#include "apar/common/stopwatch.hpp"
#include "apar/common/table.hpp"
#include "apar/sieve/workload.hpp"
#include "apar/strategies/strategies.hpp"
#include "bench_common.hpp"
#include "obs_support.hpp"

namespace ab = apar::bench;
namespace ac = apar::common;
namespace aop = apar::aop;
namespace cl = apar::cluster;
namespace st = apar::strategies;
namespace sv = apar::sieve;
using sv::PrimeFilter;

namespace {

using Farm = st::FarmAspect<PrimeFilter, long long, long long, long long,
                            double>;
using Conc = st::ConcurrencyAspect<PrimeFilter>;
using Dist =
    st::DistributionAspect<PrimeFilter, long long, long long, double>;
using Packing = st::optimisation::PackingAspect<PrimeFilter, long long>;

struct MppFarmStack {
  explicit MppFarmStack(const sv::SieveConfig& cfg) {
    cluster = std::make_unique<cl::Cluster>(
        cl::Cluster::Options{cfg.nodes, cfg.node_executors});
    cluster->registry()
        .bind<PrimeFilter>("PrimeFilter")
        .ctor<long long, long long, double>()
        .method<&PrimeFilter::filter>("filter")
        .method<&PrimeFilter::process>("process")
        .method<&PrimeFilter::collect>("collect")
        .method<&PrimeFilter::take_results>("take_results");
    middleware = std::make_unique<cl::MppMiddleware>(*cluster);
    ctx = std::make_unique<aop::Context>();

    Farm::Options fopts;
    fopts.duplicates = cfg.filters;
    fopts.pack_size = cfg.pack_size;
    farm = std::make_shared<Farm>("Partition", fopts);
    ctx->attach(farm);
    auto conc = std::make_shared<Conc>("Concurrency");
    conc->async_method<&PrimeFilter::process>();
    ctx->attach(conc);
    auto dist =
        std::make_shared<Dist>("Distribution", *cluster, *middleware);
    dist->distribute_method<&PrimeFilter::process>(true)
        .distribute_method<&PrimeFilter::take_results>();
    ctx->attach(dist);
    ab::obs_attach_trace(*ctx);
    config = cfg;
  }

  ~MppFarmStack() { ctx.reset(); }

  sv::SieveResult run() {
    sv::SieveResult result;
    auto candidates = sv::odd_candidates(config.max);
    const auto one_way0 = middleware->stats().one_way_calls.load();
    ac::Stopwatch sw;
    auto p = ctx->create<PrimeFilter>(2LL, sv::isqrt(config.max),
                                      config.ns_per_op);
    ctx->call<&PrimeFilter::process>(p, candidates);
    ctx->quiesce();
    result.seconds = sw.seconds();
    const auto survivors = farm->gather_results(*ctx);
    result.primes = sv::count_primes_up_to(sv::isqrt(config.max)) +
                    static_cast<long long>(survivors.size());
    result.one_way_messages =
        middleware->stats().one_way_calls.load() - one_way0;
    return result;
  }

  std::unique_ptr<cl::Cluster> cluster;
  std::unique_ptr<cl::Middleware> middleware;
  std::unique_ptr<aop::Context> ctx;
  std::shared_ptr<Farm> farm;
  sv::SieveConfig config;
};

void packing_ablation(const ab::FigureConfig& fig, double ns_per_op) {
  const long long expected = sv::count_primes_up_to(fig.max);
  sv::SieveConfig cfg = ab::to_sieve_config(fig, 8, ns_per_op);
  cfg.pack_size = fig.pack_size / 4;  // small packs: packing has room

  ac::Table table(
      {"Configuration", "time (s)", "one-way messages", "result"});
  for (const std::size_t batch : {std::size_t{0}, std::size_t{2},
                                  std::size_t{4}}) {
    MppFarmStack stack(cfg);
    if (batch > 0) {
      Packing::Options popts;
      popts.batch_packs = batch;
      stack.ctx->attach(std::make_shared<Packing>("Packing", popts));
    }
    std::vector<double> times;
    std::uint64_t messages = 0;
    bool ok = true;
    for (int r = 0; r < fig.reps; ++r) {
      const auto result = stack.run();
      times.push_back(result.seconds);
      messages = result.one_way_messages;
      ok = ok && result.primes == expected;
    }
    table.add_row({batch == 0 ? "no packing"
                              : "packing x" + std::to_string(batch),
                   ac::fmt_seconds(ac::median(times)),
                   std::to_string(messages), ok ? "correct" : "WRONG"});
  }
  std::printf("--- communication packing (MPP farm, 8 filters, small "
              "packs) ---\n%s\n",
              table.str().c_str());
}

void thread_pool_ablation(const ab::FigureConfig& fig, double ns_per_op) {
  const long long expected = sv::count_primes_up_to(fig.max);
  sv::SieveConfig cfg = ab::to_sieve_config(fig, 4, ns_per_op);
  cfg.pack_size = fig.pack_size / 10;  // many small packs: spawn cost shows

  ac::Table table({"Executor", "time (s)"});
  for (const bool pooled : {false, true}) {
    std::vector<double> times;
    for (int r = 0; r < fig.reps; ++r) {
      sv::SieveHarness harness(sv::Version::kFarmThreads, cfg);
      ab::obs_attach_trace(harness.context());
      if (pooled) {
        harness.context().attach(
            std::make_shared<st::optimisation::ThreadPoolOptimisation>(
                "Concurrency", cfg.local_cpu_slots * 2));
      }
      const auto result = harness.run();
      if (result.primes != expected) {
        std::fprintf(stderr, "FATAL: wrong result in thread pool ablation\n");
        return;
      }
      times.push_back(result.seconds);
    }
    table.add_row({pooled ? "thread pool (optimisation aspect)"
                          : "thread per call (paper's Figure 12)",
                   ac::fmt_seconds(ac::median(times))});
  }
  std::printf("--- thread-per-call vs pooled executor (farm, tiny packs) "
              "---\n%s\n",
              table.str().c_str());
}

void object_cache_ablation() {
  using Cache =
      st::optimisation::ObjectCacheAspect<PrimeFilter, long long, long long,
                                          double>;
  constexpr int kCreations = 200;
  ac::Table table({"Configuration", "time (ms)", "objects built"});
  for (const bool cached : {false, true}) {
    aop::Context ctx;
    std::shared_ptr<Cache> cache;
    if (cached) {
      cache = std::make_shared<Cache>();
      ctx.attach(cache);
    }
    ac::Stopwatch sw;
    for (int i = 0; i < kCreations; ++i) {
      auto ref = ctx.create<PrimeFilter>(2LL, 2000LL, 0.0);
      (void)ref;
    }
    const double ms = sw.millis();
    const auto built =
        cached ? cache->misses() : static_cast<std::uint64_t>(kCreations);
    table.add_row({cached ? "object cache aspect" : "no cache",
                   ac::fmt_millis(ms), std::to_string(built)});
  }
  std::printf("--- object cache (200 identical creations) ---\n%s\n",
              table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = ab::parse_figure_config(argc, argv);
  const double ns_per_op = sv::calibrate_ns_per_op(cfg.max, cfg.seq_seconds);
  std::printf("=== Optimisation aspects (paper §4.4) ===\n\n");
  packing_ablation(cfg, ns_per_op);
  thread_pool_ablation(cfg, ns_per_op);
  object_cache_ablation();
  ab::obs_finish();
  return 0;
}
