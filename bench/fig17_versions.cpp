// Reproduces Table 1 (tested module combinations) and Figure 17
// ("Performance of AspectJ versions"): execution time of the five woven
// module combinations across filter counts.
//
// Expected shapes (paper §6):
//   - FarmThreads is best while filters <= one machine's hardware contexts
//     (4) and cannot improve beyond them;
//   - the farm strategy beats the pipeline in all cases;
//   - MPP beats RMI (lower communication overhead);
//   - the dynamic farm is only marginally different from the static farm
//     because the sieve workload is balanced.
#include <cstdio>
#include <map>

#include "apar/sieve/workload.hpp"
#include "bench_common.hpp"
#include "obs_support.hpp"

namespace ab = apar::bench;
namespace ac = apar::common;
namespace sv = apar::sieve;

int main(int argc, char** argv) {
  auto cfg = ab::parse_figure_config(argc, argv);
  const double ns_per_op = sv::calibrate_ns_per_op(cfg.max, cfg.seq_seconds);
  const long long expected = sv::count_primes_up_to(cfg.max);

  // ---- Table 1 ----------------------------------------------------------
  std::printf("=== Table 1: tested module combinations ===\n");
  ac::Table t1({"Version", "Partition", "Concurrency", "Distribution"});
  t1.add_row({"FarmThreads", "Farm", "yes", "no"});
  t1.add_row({"PipeRMI", "Pipeline", "yes", "RMI"});
  t1.add_row({"FarmRMI", "Farm", "yes", "RMI"});
  t1.add_row({"FarmDRMI", "Dynamic Farm", "", "RMI"});
  t1.add_row({"FarmMPP", "Farm", "yes", "MPP"});
  std::printf("%s\n", t1.str().c_str());

  // Evidence: the aspects actually plugged by each harness.
  ac::Table plugged({"Version", "Plugged aspects"});
  for (const auto version : sv::table1_versions()) {
    sv::SieveHarness probe(version, ab::to_sieve_config(cfg, 2, 0.0));
    std::string names;
    for (const auto& n : probe.plugged_aspects()) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    plugged.add_row({std::string(sv::version_name(version)), names});
  }
  std::printf("%s\n", plugged.str().c_str());

  // ---- Figure 17 --------------------------------------------------------
  ab::print_header("Figure 17: execution time of the AspectJ versions", cfg,
                   ns_per_op);
  std::vector<std::string> header{"Filters"};
  for (const auto version : sv::table1_versions())
    header.emplace_back(sv::version_name(version));
  ac::Table fig(header);

  std::map<sv::Version, std::vector<double>> series;
  for (const std::size_t filters : cfg.filters) {
    std::vector<std::string> row{std::to_string(filters)};
    for (const auto version : sv::table1_versions()) {
      sv::SieveHarness harness(version,
                               ab::to_sieve_config(cfg, filters, ns_per_op));
      ab::obs_attach_trace(harness.context());
      const double median = ab::median_seconds(cfg.reps, expected,
                                               [&] { return harness.run(); });
      series[version].push_back(median);
      row.push_back(ac::fmt_seconds(median));
      std::fflush(stdout);
    }
    fig.add_row(std::move(row));
  }
  std::printf("%s\n", fig.str().c_str());
  std::printf("series (csv):\n%s\n", fig.csv().c_str());

  // ---- extension beyond Table 1: the §5.3 hybrid middleware --------------
  ac::Table hybrid({"Filters", "FarmHybrid (RMI control + MPP data)"});
  for (const std::size_t filters : cfg.filters) {
    sv::SieveHarness harness(sv::Version::kFarmHybrid,
                             ab::to_sieve_config(cfg, filters, ns_per_op));
    ab::obs_attach_trace(harness.context());
    const double median = ab::median_seconds(cfg.reps, expected,
                                             [&] { return harness.run(); });
    hybrid.add_row({std::to_string(filters), ac::fmt_seconds(median)});
  }
  std::printf(
      "extension (paper §5.3 hybrid — not part of the original Table 1):\n"
      "%s\n",
      hybrid.str().c_str());

  // ---- shape checks (informational) -------------------------------------
  auto last = [&](sv::Version v) { return series[v].back(); };
  auto first = [&](sv::Version v) { return series[v].front(); };
  std::printf("shape checks at %zu filters:\n", cfg.filters.back());
  std::printf("  farm beats pipeline:        FarmRMI %.3fs %s PipeRMI %.3fs\n",
              last(sv::Version::kFarmRmi),
              last(sv::Version::kFarmRmi) < last(sv::Version::kPipeRmi)
                  ? "<"
                  : ">=",
              last(sv::Version::kPipeRmi));
  std::printf("  MPP beats RMI:              FarmMPP %.3fs %s FarmRMI %.3fs\n",
              last(sv::Version::kFarmMpp),
              last(sv::Version::kFarmMpp) < last(sv::Version::kFarmRmi)
                  ? "<"
                  : ">=",
              last(sv::Version::kFarmRmi));
  std::printf(
      "  FarmThreads plateaus:       %.3fs at %zu filters vs %.3fs at %zu\n",
      last(sv::Version::kFarmThreads), cfg.filters.back(),
      first(sv::Version::kFarmThreads), cfg.filters.front());
  ab::obs_finish();
  return 0;
}
