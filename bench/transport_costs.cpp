// Supports the paper's §6 claim "the MPP middleware leads to lower
// execution times since it introduces lower communication overhead, when
// compared to Java RMI": measures per-call cost and wire size of the two
// simulated middlewares across payload sizes, plus the serialization
// format gap that drives the byte difference.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "apar/cluster/middleware.hpp"
#include "apar/common/table.hpp"
#include "apar/net/socket.hpp"
#include "apar/net/tcp_middleware.hpp"
#include "apar/net/tcp_server.hpp"
#include "apar/serial/archive.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;
namespace net = apar::net;

namespace {

class Echo {
 public:
  Echo() = default;
  void swallow(std::vector<long long>& pack) { last_size_ = pack.size(); }
  [[nodiscard]] long long size() const {
    return static_cast<long long>(last_size_);
  }

 private:
  std::size_t last_size_ = 0;
};

struct Fixture {
  explicit Fixture(bool mpp) {
    cluster = std::make_unique<ac::Cluster>(ac::Cluster::Options{2, 2});
    cluster->registry().bind<Echo>("Echo").ctor<>().method<&Echo::swallow>(
        "swallow");
    if (mpp)
      middleware = std::make_unique<ac::MppMiddleware>(*cluster);
    else
      middleware = std::make_unique<ac::RmiMiddleware>(*cluster);
    handle = middleware->create(1, "Echo",
                                as::encode(middleware->wire_format()));
  }
  std::unique_ptr<ac::Cluster> cluster;
  std::unique_ptr<ac::Middleware> middleware;
  ac::RemoteHandle handle;
};

void run_sync_call(benchmark::State& state, bool mpp) {
  Fixture fx(mpp);
  std::vector<long long> pack(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto payload = as::encode(fx.middleware->wire_format(), pack);
    benchmark::DoNotOptimize(
        fx.middleware->invoke(fx.handle, "swallow", std::move(payload)));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(pack.size() * 8));
}

void BM_RmiSyncCall(benchmark::State& state) { run_sync_call(state, false); }
BENCHMARK(BM_RmiSyncCall)->Arg(16)->Arg(1024)->Arg(20000);

void BM_MppSyncCall(benchmark::State& state) { run_sync_call(state, true); }
BENCHMARK(BM_MppSyncCall)->Arg(16)->Arg(1024)->Arg(20000);

void BM_MppOneWayCall(benchmark::State& state) {
  Fixture fx(true);
  std::vector<long long> pack(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto payload = as::encode(fx.middleware->wire_format(), pack);
    fx.middleware->invoke_one_way(fx.handle, "swallow", std::move(payload));
  }
  fx.cluster->drain();
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(pack.size() * 8));
}
BENCHMARK(BM_MppOneWayCall)->Arg(16)->Arg(1024)->Arg(20000);

/// Real-socket counterpart of the Fixture above: a loopback TcpServer
/// hosting Echo, driven through TcpMiddleware. Wire bytes here are
/// actual kernel-crossing bytes, headers included.
struct TcpFixture {
  explicit TcpFixture(as::Format format) {
    registry.bind<Echo>("Echo").ctor<>().method<&Echo::swallow>("swallow");
    server = std::make_unique<net::TcpServer>(registry);
    net::TcpMiddleware::Options opts;
    opts.endpoints = {{"127.0.0.1", server->port()}};
    opts.format = format;
    middleware = std::make_unique<net::TcpMiddleware>(opts);
    handle = middleware->create(0, "Echo", as::encode(format));
  }
  ac::rpc::Registry registry;
  std::unique_ptr<net::TcpServer> server;
  std::unique_ptr<net::TcpMiddleware> middleware;
  ac::RemoteHandle handle;
};

void run_tcp_sync_call(benchmark::State& state, as::Format format) {
  if (!net::loopback_available()) {
    state.SkipWithError("loopback TCP unavailable in this sandbox");
    return;
  }
  TcpFixture fx(format);
  std::vector<long long> pack(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto payload = as::encode(format, pack);
    benchmark::DoNotOptimize(
        fx.middleware->invoke(fx.handle, "swallow", std::move(payload)));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(pack.size() * 8));
  state.counters["wire_bytes/call"] = benchmark::Counter(
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(
                fx.middleware->net_counters().wire_bytes_sent) /
                static_cast<double>(state.iterations()));
}

void BM_TcpCompactSyncCall(benchmark::State& state) {
  run_tcp_sync_call(state, as::Format::kCompact);
}
BENCHMARK(BM_TcpCompactSyncCall)->Arg(16)->Arg(1024)->Arg(20000);

void BM_TcpVerboseSyncCall(benchmark::State& state) {
  run_tcp_sync_call(state, as::Format::kVerbose);
}
BENCHMARK(BM_TcpVerboseSyncCall)->Arg(16)->Arg(1024)->Arg(20000);

void BM_TcpOneWayCall(benchmark::State& state) {
  if (!net::loopback_available()) {
    state.SkipWithError("loopback TCP unavailable in this sandbox");
    return;
  }
  TcpFixture fx(as::Format::kCompact);
  std::vector<long long> pack(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto payload = as::encode(as::Format::kCompact, pack);
    fx.middleware->invoke_one_way(fx.handle, "swallow", std::move(payload));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(pack.size() * 8));
}
BENCHMARK(BM_TcpOneWayCall)->Arg(16)->Arg(1024)->Arg(20000);

void BM_SerializeCompact(benchmark::State& state) {
  std::vector<long long> pack(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(as::encode(as::Format::kCompact, pack));
  }
}
BENCHMARK(BM_SerializeCompact)->Arg(1024)->Arg(20000);

void BM_SerializeVerbose(benchmark::State& state) {
  std::vector<long long> pack(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(as::encode(as::Format::kVerbose, pack));
  }
}
BENCHMARK(BM_SerializeVerbose)->Arg(1024)->Arg(20000);

void print_wire_size_table() {
  apar::common::Table table(
      {"Payload", "compact (MPP) bytes", "verbose (RMI) bytes", "overhead"});
  for (const std::size_t n : {std::size_t{1}, std::size_t{16},
                              std::size_t{1024}, std::size_t{20000}}) {
    std::vector<long long> pack(n, 7);
    const auto compact = as::encode(as::Format::kCompact, pack).size();
    const auto verbose = as::encode(as::Format::kVerbose, pack).size();
    table.add_row({std::to_string(n) + " int64",
                   std::to_string(compact), std::to_string(verbose),
                   apar::common::fmt_ratio(static_cast<double>(verbose) /
                                           static_cast<double>(compact))});
  }
  std::printf("=== wire-format sizes (RMI verbose vs MPP compact) ===\n%s\n",
              table.str().c_str());

  apar::common::Table costs({"Model", "handshake us", "latency us",
                             "per-KiB us", "registry lookup us"});
  const auto rmi = ac::CostModel::rmi();
  const auto mpp = ac::CostModel::mpp();
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return std::string(buf);
  };
  costs.add_row({"RMI", fmt(rmi.handshake_us), fmt(rmi.latency_us),
                 fmt(rmi.per_kb_us), fmt(rmi.lookup_us)});
  costs.add_row({"MPP", fmt(mpp.handshake_us), fmt(mpp.latency_us),
                 fmt(mpp.per_kb_us), fmt(mpp.lookup_us)});
  std::printf("=== calibrated middleware cost models ===\n%s\n",
              costs.str().c_str());
}

/// Measured bytes on the real wire (frame headers + envelope + payload)
/// for one swallow() call per format — the socket-level confirmation that
/// the compact format ships measurably fewer bytes than the verbose one.
void print_tcp_wire_table() {
  if (!net::loopback_available()) {
    std::printf(
        "=== measured TCP bytes/call ===\n(skipped: loopback TCP "
        "unavailable in this sandbox)\n\n");
    return;
  }
  apar::common::Table table({"Payload", "compact bytes/call",
                             "verbose bytes/call", "overhead"});
  for (const std::size_t n : {std::size_t{1}, std::size_t{16},
                              std::size_t{1024}, std::size_t{20000}}) {
    std::uint64_t per_call[2] = {0, 0};
    const as::Format formats[2] = {as::Format::kCompact,
                                   as::Format::kVerbose};
    for (int f = 0; f < 2; ++f) {
      TcpFixture fx(formats[f]);
      std::vector<long long> pack(n, 7);
      const auto before = fx.middleware->net_counters().wire_bytes_sent;
      (void)fx.middleware->invoke(fx.handle, "swallow",
                                  as::encode(formats[f], pack));
      per_call[f] = fx.middleware->net_counters().wire_bytes_sent - before;
    }
    table.add_row({std::to_string(n) + " int64", std::to_string(per_call[0]),
                   std::to_string(per_call[1]),
                   apar::common::fmt_ratio(static_cast<double>(per_call[1]) /
                                           static_cast<double>(per_call[0]))});
  }
  std::printf("=== measured TCP bytes/call (frame+envelope+payload) ===\n%s\n",
              table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  print_wire_size_table();
  print_tcp_wire_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
