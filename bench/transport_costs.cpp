// Supports the paper's §6 claim "the MPP middleware leads to lower
// execution times since it introduces lower communication overhead, when
// compared to Java RMI": measures per-call cost and wire size of the two
// simulated middlewares across payload sizes, plus the serialization
// format gap that drives the byte difference.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "apar/cluster/middleware.hpp"
#include "apar/common/table.hpp"
#include "apar/serial/archive.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;

namespace {

class Echo {
 public:
  Echo() = default;
  void swallow(std::vector<long long>& pack) { last_size_ = pack.size(); }
  [[nodiscard]] long long size() const {
    return static_cast<long long>(last_size_);
  }

 private:
  std::size_t last_size_ = 0;
};

struct Fixture {
  explicit Fixture(bool mpp) {
    cluster = std::make_unique<ac::Cluster>(ac::Cluster::Options{2, 2});
    cluster->registry().bind<Echo>("Echo").ctor<>().method<&Echo::swallow>(
        "swallow");
    if (mpp)
      middleware = std::make_unique<ac::MppMiddleware>(*cluster);
    else
      middleware = std::make_unique<ac::RmiMiddleware>(*cluster);
    handle = middleware->create(1, "Echo",
                                as::encode(middleware->wire_format()));
  }
  std::unique_ptr<ac::Cluster> cluster;
  std::unique_ptr<ac::Middleware> middleware;
  ac::RemoteHandle handle;
};

void run_sync_call(benchmark::State& state, bool mpp) {
  Fixture fx(mpp);
  std::vector<long long> pack(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto payload = as::encode(fx.middleware->wire_format(), pack);
    benchmark::DoNotOptimize(
        fx.middleware->invoke(fx.handle, "swallow", std::move(payload)));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(pack.size() * 8));
}

void BM_RmiSyncCall(benchmark::State& state) { run_sync_call(state, false); }
BENCHMARK(BM_RmiSyncCall)->Arg(16)->Arg(1024)->Arg(20000);

void BM_MppSyncCall(benchmark::State& state) { run_sync_call(state, true); }
BENCHMARK(BM_MppSyncCall)->Arg(16)->Arg(1024)->Arg(20000);

void BM_MppOneWayCall(benchmark::State& state) {
  Fixture fx(true);
  std::vector<long long> pack(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto payload = as::encode(fx.middleware->wire_format(), pack);
    fx.middleware->invoke_one_way(fx.handle, "swallow", std::move(payload));
  }
  fx.cluster->drain();
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(pack.size() * 8));
}
BENCHMARK(BM_MppOneWayCall)->Arg(16)->Arg(1024)->Arg(20000);

void BM_SerializeCompact(benchmark::State& state) {
  std::vector<long long> pack(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(as::encode(as::Format::kCompact, pack));
  }
}
BENCHMARK(BM_SerializeCompact)->Arg(1024)->Arg(20000);

void BM_SerializeVerbose(benchmark::State& state) {
  std::vector<long long> pack(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(as::encode(as::Format::kVerbose, pack));
  }
}
BENCHMARK(BM_SerializeVerbose)->Arg(1024)->Arg(20000);

void print_wire_size_table() {
  apar::common::Table table(
      {"Payload", "compact (MPP) bytes", "verbose (RMI) bytes", "overhead"});
  for (const std::size_t n : {std::size_t{1}, std::size_t{16},
                              std::size_t{1024}, std::size_t{20000}}) {
    std::vector<long long> pack(n, 7);
    const auto compact = as::encode(as::Format::kCompact, pack).size();
    const auto verbose = as::encode(as::Format::kVerbose, pack).size();
    table.add_row({std::to_string(n) + " int64",
                   std::to_string(compact), std::to_string(verbose),
                   apar::common::fmt_ratio(static_cast<double>(verbose) /
                                           static_cast<double>(compact))});
  }
  std::printf("=== wire-format sizes (RMI verbose vs MPP compact) ===\n%s\n",
              table.str().c_str());

  apar::common::Table costs({"Model", "handshake us", "latency us",
                             "per-KiB us", "registry lookup us"});
  const auto rmi = ac::CostModel::rmi();
  const auto mpp = ac::CostModel::mpp();
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return std::string(buf);
  };
  costs.add_row({"RMI", fmt(rmi.handshake_us), fmt(rmi.latency_us),
                 fmt(rmi.per_kb_us), fmt(rmi.lookup_us)});
  costs.add_row({"MPP", fmt(mpp.handshake_us), fmt(mpp.latency_us),
                 fmt(mpp.per_kb_us), fmt(mpp.lookup_us)});
  std::printf("=== calibrated middleware cost models ===\n%s\n",
              costs.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  print_wire_size_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
