#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apar/common/config.hpp"
#include "apar/common/stats.hpp"
#include "apar/common/table.hpp"
#include "apar/sieve/versions.hpp"

namespace apar::bench {

/// Shared knobs for the figure-reproduction binaries. Every value can be
/// overridden on the command line (--max 2000000) or via the environment
/// (APAR_MAX=2000000), so the full paper-scale workload is one env var
/// away while the default keeps `for b in build/bench/*; do $b; done`
/// tractable.
struct FigureConfig {
  long long max = 500'000;       ///< paper: 10,000,000
  std::size_t pack_size = 5'000; ///< paper: 100,000 (always 50 packs)
  int reps = 5;                  ///< paper: median of five executions
  double seq_seconds = 1.0;      ///< calibrated sequential compute target
  std::vector<std::size_t> filters{1, 4, 7, 10, 13, 16};  ///< paper x-axis
  std::size_t nodes = 7;
  std::size_t node_executors = 4;
  std::size_t local_cpu_slots = 4;
};

inline FigureConfig parse_figure_config(int argc, char** argv) {
  const common::Config cli(argc, argv);
  FigureConfig cfg;
  cfg.max = cli.get_int("max", cfg.max);
  cfg.pack_size =
      static_cast<std::size_t>(cli.get_int("pack", static_cast<long long>(cfg.pack_size)));
  cfg.reps = static_cast<int>(cli.get_int("reps", cfg.reps));
  cfg.seq_seconds = cli.get_double("seq-seconds", cfg.seq_seconds);
  cfg.nodes = static_cast<std::size_t>(cli.get_int("nodes", static_cast<long long>(cfg.nodes)));
  if (cli.has("filters")) {
    cfg.filters.clear();
    std::string spec = cli.get("filters");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string tok = spec.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!tok.empty()) cfg.filters.push_back(std::stoul(tok));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return cfg;
}

inline sieve::SieveConfig to_sieve_config(const FigureConfig& cfg,
                                          std::size_t filters,
                                          double ns_per_op) {
  sieve::SieveConfig sc;
  sc.max = cfg.max;
  sc.filters = filters;
  sc.pack_size = cfg.pack_size;
  sc.ns_per_op = ns_per_op;
  sc.nodes = cfg.nodes;
  sc.node_executors = cfg.node_executors;
  sc.local_cpu_slots = cfg.local_cpu_slots;
  return sc;
}

/// Median-of-reps runner with correctness verification on every rep.
template <class RunFn>
double median_seconds(int reps, long long expected_primes, RunFn&& run) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const sieve::SieveResult result = run();
    if (result.primes != expected_primes) {
      std::fprintf(stderr,
                   "FATAL: benchmark run produced %lld primes, expected "
                   "%lld — refusing to report timings for wrong results\n",
                   result.primes, expected_primes);
      std::exit(1);
    }
    times.push_back(result.seconds);
  }
  return common::median(times);
}

inline void print_header(const char* title, const FigureConfig& cfg,
                         double ns_per_op) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "workload: max=%s, 50x%zu-number packs (odd candidates), "
      "median of %d runs\n",
      common::fmt_count(cfg.max).c_str(), cfg.pack_size, cfg.reps);
  std::printf(
      "simulated platform: %zu nodes x %zu executors, work model %.1f "
      "ns/division (sequential compute ~%.2fs)\n\n",
      cfg.nodes, cfg.node_executors, ns_per_op, cfg.seq_seconds);
}

}  // namespace apar::bench
