// Probes the paper's §6 observation on the dynamic farm: "the dynamic farm
// only introduces a small improvement since there are not load imbalances
// in a normal farming strategy" — and demonstrates the flip side the paper
// implies: under a skewed workload (Mandelbrot rows) demand-driven routing
// wins clearly.
#include <cstdio>
#include <memory>
#include <numeric>

#include "apar/apps/mandel_worker.hpp"
#include "apar/common/stats.hpp"
#include "apar/common/stopwatch.hpp"
#include "apar/common/table.hpp"
#include "apar/sieve/workload.hpp"
#include "apar/strategies/strategies.hpp"
#include "bench_common.hpp"
#include "obs_support.hpp"

namespace ab = apar::bench;
namespace ac = apar::common;
namespace aop = apar::aop;
namespace st = apar::strategies;
namespace sv = apar::sieve;
using apar::apps::MandelWorker;

namespace {

/// Balanced workload: the sieve, static farm vs dynamic farm (both local,
/// no distribution — isolates the routing policy).
void balanced_sieve(const ab::FigureConfig& cfg, double ns_per_op) {
  const long long expected = sv::count_primes_up_to(cfg.max);
  ac::Table table({"Filters", "static farm (s)", "dynamic farm (s)",
                   "dynamic/static"});
  for (const std::size_t filters : {std::size_t{4}, std::size_t{8}}) {
    sv::SieveConfig sc = ab::to_sieve_config(cfg, filters, ns_per_op);

    sv::SieveHarness stat_farm(sv::Version::kFarmThreads, sc);
    ab::obs_attach_trace(stat_farm.context());
    const double stat = ab::median_seconds(cfg.reps, expected,
                                           [&] { return stat_farm.run(); });

    // Dynamic farm without distribution: same routing question, no wire.
    aop::Context ctx;
    using DFarm = st::DynamicFarmAspect<sv::PrimeFilter, long long, long long,
                                        long long, double>;
    DFarm::Options opts;
    opts.duplicates = filters;
    opts.pack_size = sc.pack_size;
    auto dfarm = std::make_shared<DFarm>("Partition", opts);
    ctx.attach(dfarm);
    auto cpu = std::make_shared<
        st::optimisation::LocalCpuAspect<sv::PrimeFilter>>(
        "LocalCpu", sc.local_cpu_slots);
    cpu->limit_method<&sv::PrimeFilter::process>();
    ctx.attach(cpu);
    ab::obs_attach_trace(ctx);

    std::vector<double> times;
    for (int r = 0; r < cfg.reps; ++r) {
      auto candidates = sv::odd_candidates(sc.max);
      ac::Stopwatch sw;
      auto p = ctx.create<sv::PrimeFilter>(2LL, sv::isqrt(sc.max),
                                           sc.ns_per_op);
      ctx.call<&sv::PrimeFilter::process>(p, candidates);
      ctx.quiesce();
      times.push_back(sw.seconds());
      const auto survivors = dfarm->gather_results(ctx);
      const long long primes =
          sv::count_primes_up_to(sv::isqrt(sc.max)) +
          static_cast<long long>(survivors.size());
      if (primes != expected) {
        std::fprintf(stderr, "FATAL: dynamic farm wrong result\n");
        return;
      }
    }
    const double dyn = ac::median(times);
    table.add_row({std::to_string(filters), ac::fmt_seconds(stat),
                   ac::fmt_seconds(dyn),
                   ac::fmt_ratio(dyn / stat)});
  }
  std::printf(
      "--- balanced workload (prime sieve): dynamic ~= static, as the "
      "paper reports ---\n%s\n",
      table.str().c_str());
}

/// Skewed scenario: one of the four workers sits on a busy node and runs
/// 8x slower. Blind round-robin still hands it a quarter of the packs and
/// the whole run waits for the straggler; the demand-driven queue simply
/// gives it fewer packs. Mandelbrot rows add intrinsic per-pack variance
/// on top.
void skewed_mandelbrot(const ab::FigureConfig& cfg) {
  constexpr long long kWidth = 160, kHeight = 128, kIter = 3000;
  constexpr std::size_t kPackRows = 4;  // 32 packs
  constexpr double kNsPerIter = 60.0;
  constexpr double kStragglerFactor = 8.0;
  const std::size_t workers = 4;

  const auto heterogeneous_ctor =
      [](std::size_t i, std::size_t,
         const std::tuple<long long, long long, long long, double>& orig) {
        const auto [w, h, iters, ns] = orig;
        return std::make_tuple(w, h, iters,
                               i == 0 ? ns * kStragglerFactor : ns);
      };

  std::vector<long long> all_rows(kHeight);
  std::iota(all_rows.begin(), all_rows.end(), 0);

  auto run = [&](bool dynamic) {
    std::vector<double> times;
    std::vector<std::size_t> loads;
    for (int r = 0; r < cfg.reps; ++r) {
      aop::Context ctx;
      using Farm = st::FarmAspect<MandelWorker, long long, long long,
                                  long long, long long, double>;
      using DFarm = st::DynamicFarmAspect<MandelWorker, long long, long long,
                                          long long, long long, double>;
      std::shared_ptr<DFarm> dfarm;
      std::shared_ptr<Farm> farm;
      if (dynamic) {
        DFarm::Options opts;
        opts.duplicates = workers;
        opts.pack_size = kPackRows;
        opts.ctor_args = heterogeneous_ctor;
        dfarm = std::make_shared<DFarm>("Partition", opts);
        ctx.attach(dfarm);
      } else {
        Farm::Options opts;
        opts.duplicates = workers;
        opts.pack_size = kPackRows;
        opts.ctor_args = heterogeneous_ctor;
        farm = std::make_shared<Farm>("Partition", opts);
        ctx.attach(farm);
        auto conc = std::make_shared<st::ConcurrencyAspect<MandelWorker>>(
            "Concurrency");
        conc->async_method<&MandelWorker::process>();
        ctx.attach(conc);
      }
      ac::Stopwatch sw;
      auto w = ctx.create<MandelWorker>(kWidth, kHeight, kIter, kNsPerIter);
      auto rows = all_rows;
      ctx.call<&MandelWorker::process>(w, rows);
      ctx.quiesce();
      times.push_back(sw.seconds());
      if (dynamic && r == 0) loads = dfarm->packs_per_worker();
    }
    return std::pair(ac::median(times), loads);
  };

  const double stat = run(false).first;
  const auto [dyn, loads] = run(true);
  ac::Table table({"Routing", "time (s)", "speedup vs static"});
  table.add_row({"static round-robin", ac::fmt_seconds(stat), "1.00x"});
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx", stat / dyn);
  table.add_row({"dynamic (demand-driven)", ac::fmt_seconds(dyn), buf});
  std::printf(
      "--- skewed platform (Mandelbrot %lldx%lld, %zu workers, worker 0 "
      "is %.0fx slower) ---\n%s\n",
      kWidth, kHeight, workers, kStragglerFactor, table.str().c_str());
  if (!loads.empty()) {
    std::printf("dynamic farm packs per worker:");
    for (auto l : loads) std::printf(" %zu", l);
    std::printf("  (self-balanced)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = ab::parse_figure_config(argc, argv);
  const double ns_per_op = sv::calibrate_ns_per_op(cfg.max, cfg.seq_seconds);
  std::printf("=== Dynamic vs static farm (paper §6, FarmDRMI remark) ===\n\n");
  balanced_sieve(cfg, ns_per_op);
  skewed_mandelbrot(cfg);
  ab::obs_finish();
  return 0;
}
