// Reproduces Figure 16: "Performance of Java versus AspectJ".
//
// Paper setup: prime sieve to 10,000,000; 50 messages of 100,000 odd
// numbers; RMI pipeline over 7 dual-Xeon machines; filters in {1..16};
// median of five executions. Claim: the AspectJ (woven) version pays < 5%
// over the hand-coded Java version.
//
// Here: the same pipeline topology over the simulated cluster.
//   "Java"    -> sieve::handcoded::run_pipeline_rmi (no AOP in the path)
//   "AspectJ" -> SieveHarness(kPipeRmi)             (runtime-woven aspects)
#include <cstdio>

#include "apar/sieve/handcoded.hpp"
#include "apar/sieve/workload.hpp"
#include "bench_common.hpp"
#include "obs_support.hpp"

namespace ab = apar::bench;
namespace ac = apar::common;
namespace sv = apar::sieve;

int main(int argc, char** argv) {
  auto cfg = ab::parse_figure_config(argc, argv);
  const double ns_per_op = sv::calibrate_ns_per_op(cfg.max, cfg.seq_seconds);
  const long long expected = sv::count_primes_up_to(cfg.max);
  ab::print_header("Figure 16: hand-coded (\"Java\") vs woven (\"AspectJ\") "
                   "RMI pipeline",
                   cfg, ns_per_op);

  ac::Table table({"Filters", "Java (s)", "AspectJ (s)", "overhead"});
  double worst_overhead = 0.0;
  for (const std::size_t filters : cfg.filters) {
    const auto sc = ab::to_sieve_config(cfg, filters, ns_per_op);

    const double hand = ab::median_seconds(cfg.reps, expected, [&] {
      return sv::handcoded::run_pipeline_rmi(sc);
    });

    sv::SieveHarness woven(sv::Version::kPipeRmi, sc);
    ab::obs_attach_trace(woven.context());
    const double aspect = ab::median_seconds(cfg.reps, expected,
                                             [&] { return woven.run(); });

    const double ratio = hand > 0.0 ? aspect / hand : 1.0;
    worst_overhead = std::max(worst_overhead, ratio - 1.0);
    table.add_row({std::to_string(filters), ac::fmt_seconds(hand),
                   ac::fmt_seconds(aspect), ac::fmt_ratio(ratio)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("worst-case weaving overhead: %+.1f%%  (paper claims < 5%%)\n",
              worst_overhead * 100.0);
  std::printf("series (csv):\n%s\n", table.csv().c_str());
  ab::obs_finish();
  return 0;
}
