// Heartbeat strategy bench (paper §7: pipeline, farm and heartbeat are the
// three strategy categories they implemented): 2-D Jacobi heat diffusion
// partitioned into bands by the HeartbeatAspect, swept over band counts.
// Verifies bit-exact agreement with the sequential core on every
// configuration before reporting its time.
#include <cstdio>
#include <memory>
#include <tuple>

#include "apar/apps/heat_band.hpp"
#include "apar/common/config.hpp"
#include "apar/common/stats.hpp"
#include "apar/common/stopwatch.hpp"
#include "apar/common/table.hpp"
#include "apar/strategies/heartbeat_aspect.hpp"

namespace ac = apar::common;
namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::apps::HeatBand;

using Heart = st::HeartbeatAspect<HeatBand, long long, long long, long long,
                                  long long, double>;

namespace {

Heart::Options heart_options(std::size_t bands) {
  Heart::Options opts;
  opts.bands = bands;
  opts.ctor_args =
      [](std::size_t i, std::size_t k,
         const std::tuple<long long, long long, long long, long long,
                          double>& original) {
        const auto [rows, cols, offset, total, ns] = original;
        (void)offset;
        const long long share = rows / static_cast<long long>(k);
        const long long extra = rows % static_cast<long long>(k);
        const long long my_rows =
            share + (static_cast<long long>(i) < extra ? 1 : 0);
        long long my_offset = 0;
        for (std::size_t j = 0; j < i; ++j)
          my_offset += share + (static_cast<long long>(j) < extra ? 1 : 0);
        return std::make_tuple(my_rows, cols, my_offset, total, ns);
      };
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const ac::Config cli(argc, argv);
  const long long rows = cli.get_int("rows", 96);
  const long long cols = cli.get_int("cols", 64);
  const int iters = static_cast<int>(cli.get_int("iters", 40));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const double ns_per_cell = cli.get_double("ns-per-cell", 2000.0);

  std::printf("=== Heartbeat strategy: %lldx%lld Jacobi heat grid, %d "
              "iterations, %.0f ns/cell simulated compute ===\n\n",
              rows, cols, iters, ns_per_cell);

  // Sequential reference (the unwoven core).
  HeatBand reference(rows, cols, 0, rows, 0.0);
  reference.run(iters);
  const auto expected = reference.snapshot();

  std::vector<double> seq_times;
  for (int r = 0; r < reps; ++r) {
    HeatBand band(rows, cols, 0, rows, ns_per_cell);
    ac::Stopwatch sw;
    band.run(iters);
    seq_times.push_back(sw.seconds());
  }
  const double seq = ac::median(seq_times);

  ac::Table table({"Bands", "time (s)", "speedup", "exact"});
  table.add_row({"sequential core", ac::fmt_seconds(seq), "1.00x", "ref"});
  for (const std::size_t bands :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    std::vector<double> times;
    bool exact = true;
    for (int r = 0; r < reps; ++r) {
      aop::Context ctx;
      auto heart = std::make_shared<Heart>(heart_options(bands));
      ctx.attach(heart);
      ac::Stopwatch sw;
      auto first =
          ctx.create<HeatBand>(rows, cols, 0LL, rows, ns_per_cell);
      ctx.call<&HeatBand::run>(first, iters);
      ctx.quiesce();
      times.push_back(sw.seconds());
      std::vector<double> stitched;
      for (auto& band : heart->bands()) {
        auto part = band.local()->snapshot();
        stitched.insert(stitched.end(), part.begin(), part.end());
      }
      exact = exact && stitched == expected;
    }
    const double t = ac::median(times);
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx", seq / t);
    table.add_row({std::to_string(bands), ac::fmt_seconds(t), speedup,
                   exact ? "yes" : "NO"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("note: bands exchange halo rows every iteration (the "
              "heartbeat); exactness is bit-for-bit vs the sequential "
              "core.\n");
  return 0;
}
