// Phase-shifting workload for the autonomic AdaptationAspect: does
// self-tuning recover hand-tuned throughput when no single static
// configuration can?
//
// Three phases alternate, each favouring a different corner of the
// (workers, grain) space:
//
//   sieve_fine    CPU-bound trial division, ~0.2us per item: fine grain
//                 drowns in task-envelope overhead, so coarse grain wins
//                 and surplus workers only add wake/steal traffic.
//   service_wide  latency-bound request handling (1ms blocked per item —
//                 the loadgen net-phase shape: workers wait on I/O, not
//                 the CPU): throughput is proportional to the number of
//                 concurrent servers, so wide pools + fine grain win and
//                 coarse grain caps the parallelism at items/grain chunks.
//   mandel_coarse CPU-bound Mandelbrot rows, ~1ms per item: coarse
//                 natural grain, insensitive to both knobs — the stability
//                 leg where an oscillating controller would lose ground.
//
// Every configuration runs the same schedule: `--reps` rounds of the
// three phases, `--phase-seconds` each. Static configurations pin
// (workers, grain) for the whole run; the `adaptive` configuration plugs
// an AdaptationAspect whose controller moves both knobs from live
// threadpool.* metrics (online ThreadPool::resize + the shared grain
// cell). The JSON written to --out records per-phase throughput for every
// configuration plus the distilled recovery table that
// tools/check_adapt_bench.py gates on: adaptive must reach
// --require-recovery (default 0.8) of the best static throughput in
// EVERY phase, while no static configuration does.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apar/adapt/adaptation_aspect.hpp"
#include "apar/aop/aop.hpp"
#include "apar/common/config.hpp"
#include "apar/common/json.hpp"
#include "apar/concurrency/parallel_for.hpp"
#include "apar/concurrency/thread_pool.hpp"
#include "apar/obs/metrics.hpp"
#include "apar/sieve/prime_filter.hpp"

namespace adapt = apar::adapt;
namespace aop = apar::aop;
namespace common = apar::common;
namespace concurrency = apar::concurrency;

namespace {

using Clock = std::chrono::steady_clock;

// ~0.2us of integer work per item: fixed-trip trial division, so every
// item costs the same regardless of index.
std::uint32_t sieve_item(std::uint32_t i) {
  const std::uint32_t n = (i * 2654435761u) | 1u;
  std::uint32_t divisors = 0;
  for (std::uint32_t d = 3; d <= 63; d += 2)
    if (n % d == 0) ++divisors;
  return divisors;
}

// ~1ms of floating-point work per row: escape-time iteration over a strip
// chosen mostly inside the set, so the full iteration budget is spent.
double mandel_row(std::size_t row, std::size_t width, std::size_t iters) {
  double sum = 0.0;
  const double ci = -0.1 + 0.0004 * static_cast<double>(row % 64);
  for (std::size_t px = 0; px < width; ++px) {
    const double cr = -0.2 + 0.001 * static_cast<double>(px);
    double zr = 0.0, zi = 0.0;
    std::size_t it = 0;
    while (it < iters && zr * zr + zi * zi < 4.0) {
      const double nzr = zr * zr - zi * zi + cr;
      zi = 2.0 * zr * zi + ci;
      zr = nzr;
      ++it;
    }
    sum += static_cast<double>(it);
  }
  return sum;
}

struct Options {
  double phase_seconds = 6.0;
  int reps = 2;
  int interval_ms = 50;
  std::size_t max_workers = 6;
  std::size_t sieve_n = 100'000;
  std::size_t service_items = 252;
  std::size_t mandel_rows = 48;
  std::size_t mandel_width = 128;
  std::size_t mandel_iters = 1'200;
  std::string out = "BENCH_adapt.json";
};

struct ConfigSpec {
  std::string name;
  bool adaptive = false;
  std::size_t workers = 1;  ///< static worker count (adaptive: start)
  std::size_t grain = 1;    ///< static grain (adaptive: start)
};

struct PhaseStats {
  double seconds = 0.0;
  std::uint64_t items = 0;
  [[nodiscard]] double throughput() const {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }
};

struct RunResult {
  std::map<std::string, PhaseStats> phases;
  // Controller diagnostics (adaptive configuration only).
  std::uint64_t decisions = 0;
  std::uint64_t reverts = 0;
  std::int64_t final_workers = 0;
  std::int64_t final_grain = 0;
};

const char* const kPhaseNames[] = {"sieve_fine", "service_wide",
                                   "mandel_coarse"};

void run_phase(const std::string& phase, const Options& opt,
               concurrency::ThreadPool& pool,
               const std::atomic<std::int64_t>& grain, PhaseStats& stats,
               std::atomic<std::uint64_t>& checksum) {
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(opt.phase_seconds));
  std::uint64_t items = 0;
  Clock::time_point end = start;
  while (Clock::now() < deadline) {
    const auto g = static_cast<std::size_t>(
        std::max<std::int64_t>(1, grain.load(std::memory_order_relaxed)));
    if (phase == "sieve_fine") {
      concurrency::parallel_for(pool, 0, opt.sieve_n, g, [&](std::size_t i) {
        if (sieve_item(static_cast<std::uint32_t>(i)) == 0)
          checksum.fetch_add(1, std::memory_order_relaxed);
      });
      items += opt.sieve_n;
    } else if (phase == "service_wide") {
      concurrency::parallel_for(
          pool, 0, opt.service_items, g, [&](std::size_t) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          });
      items += opt.service_items;
    } else {  // mandel_coarse
      concurrency::parallel_for(pool, 0, opt.mandel_rows, g,
                                [&](std::size_t row) {
                                  const double s = mandel_row(
                                      row, opt.mandel_width, opt.mandel_iters);
                                  checksum.fetch_add(
                                      static_cast<std::uint64_t>(s) & 0xff,
                                      std::memory_order_relaxed);
                                });
      items += opt.mandel_rows;
    }
    end = Clock::now();
  }
  stats.seconds += std::chrono::duration<double>(end - start).count();
  stats.items += items;
}

RunResult run_config(const ConfigSpec& cfg, const Options& opt,
                     std::atomic<std::uint64_t>& checksum) {
  RunResult result;
  concurrency::ThreadPool pool(cfg.workers, opt.max_workers);
  std::atomic<std::int64_t> grain{static_cast<std::int64_t>(cfg.grain)};

  aop::Context ctx;
  std::shared_ptr<adapt::AdaptationAspect<apar::sieve::PrimeFilter>> tuner;
  if (cfg.adaptive) {
    adapt::AdaptationController::Config ccfg;
    ccfg.interval = std::chrono::milliseconds(opt.interval_ms);
    ccfg.cooldown_ticks = 1;
    ccfg.shrink_patience = 3;
    ccfg.probe_ticks = 30;
    ccfg.queue_wait_grow_us = 300.0;
    tuner = std::make_shared<
        adapt::AdaptationAspect<apar::sieve::PrimeFilter>>(ccfg);
    tuner->controller().set_workers_knob(adapt::Knob(
        "workers", 1, static_cast<std::int64_t>(opt.max_workers),
        static_cast<std::int64_t>(cfg.workers), [&pool](std::int64_t v) {
          pool.resize(static_cast<std::size_t>(v));
        }));
    tuner->controller().set_grain_knob(adapt::Knob(
        "grain", 1, 64, static_cast<std::int64_t>(cfg.grain),
        [&grain](std::int64_t v) {
          grain.store(v, std::memory_order_relaxed);
        }));
    tuner->adapt_method<&apar::sieve::PrimeFilter::process>(
        {"workers", "grain"});
    ctx.attach(tuner);
  }

  for (int rep = 0; rep < opt.reps; ++rep) {
    for (const char* phase : kPhaseNames) {
      run_phase(phase, opt, pool, grain, result.phases[phase], checksum);
    }
  }

  if (tuner) {
    result.decisions = tuner->controller().decisions();
    result.reverts = tuner->controller().reverts();
    result.final_workers = tuner->controller().workers();
    result.final_grain = tuner->controller().grain();
    ctx.detach(tuner->name());  // stop the loop before the pool dies
  }
  return result;
}

std::string json_phase_block(const RunResult& run) {
  std::string out = "{";
  bool first = true;
  for (const auto& [phase, stats] : run.phases) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + phase + "\": {\"items\": " +
           common::json_number(static_cast<double>(stats.items)) +
           ", \"seconds\": " + common::json_number(stats.seconds) +
           ", \"throughput_items_per_s\": " +
           common::json_number(stats.throughput()) + "}";
  }
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Config cli(argc, argv);
  Options opt;
  opt.phase_seconds = cli.get_double("phase-seconds", opt.phase_seconds);
  opt.reps = static_cast<int>(cli.get_int("reps", opt.reps));
  opt.interval_ms =
      static_cast<int>(cli.get_int("interval-ms", opt.interval_ms));
  opt.max_workers = static_cast<std::size_t>(
      cli.get_int("max-workers", static_cast<long long>(opt.max_workers)));
  opt.sieve_n = static_cast<std::size_t>(
      cli.get_int("sieve-n", static_cast<long long>(opt.sieve_n)));
  opt.service_items = static_cast<std::size_t>(cli.get_int(
      "service-items", static_cast<long long>(opt.service_items)));
  opt.mandel_rows = static_cast<std::size_t>(
      cli.get_int("mandel-rows", static_cast<long long>(opt.mandel_rows)));
  opt.mandel_iters = static_cast<std::size_t>(
      cli.get_int("mandel-iters", static_cast<long long>(opt.mandel_iters)));
  opt.out = cli.get("out", opt.out);

  // The controller reads live threadpool.* series; this bench IS the
  // opt-in, no env var needed.
  apar::obs::set_metrics_enabled(true);

  const std::size_t w_lo = 1;
  const std::size_t w_hi = opt.max_workers;
  const std::size_t g_lo = 1;
  const std::size_t g_hi = 64;
  std::vector<ConfigSpec> configs = {
      {"static_w" + std::to_string(w_lo) + "_g" + std::to_string(g_lo), false,
       w_lo, g_lo},
      {"static_w" + std::to_string(w_lo) + "_g" + std::to_string(g_hi), false,
       w_lo, g_hi},
      {"static_w" + std::to_string(w_hi) + "_g" + std::to_string(g_lo), false,
       w_hi, g_lo},
      {"static_w" + std::to_string(w_hi) + "_g" + std::to_string(g_hi), false,
       w_hi, g_hi},
      {"adaptive", true, 2, 8},
  };

  std::atomic<std::uint64_t> checksum{0};
  std::map<std::string, RunResult> runs;
  for (const ConfigSpec& cfg : configs) {
    std::printf("== %s (%d rep(s) x %zu phases x %.1fs) ==\n",
                cfg.name.c_str(), opt.reps, std::size(kPhaseNames),
                opt.phase_seconds);
    std::fflush(stdout);
    runs[cfg.name] = run_config(cfg, opt, checksum);
    for (const char* phase : kPhaseNames) {
      const PhaseStats& s = runs[cfg.name].phases[phase];
      std::printf("  %-14s %10.0f items/s\n", phase, s.throughput());
    }
    std::fflush(stdout);
  }

  // Distill: best static per phase, then each configuration's worst-phase
  // recovery against it.
  std::map<std::string, std::pair<std::string, double>> best_static;
  for (const char* phase : kPhaseNames) {
    for (const auto& [name, run] : runs) {
      if (name == "adaptive") continue;
      const double t = run.phases.at(phase).throughput();
      if (t > best_static[phase].second) best_static[phase] = {name, t};
    }
  }
  std::map<std::string, double> min_recovery;
  for (const auto& [name, run] : runs) {
    double worst = 1e300;
    for (const char* phase : kPhaseNames) {
      const double best = best_static[phase].second;
      if (best <= 0.0) continue;
      worst = std::min(worst, run.phases.at(phase).throughput() / best);
    }
    min_recovery[name] = worst;
  }
  double best_static_min = 0.0;
  for (const auto& [name, r] : min_recovery)
    if (name != "adaptive") best_static_min = std::max(best_static_min, r);

  std::string json = "{\n  \"schema_version\": 1,\n";
  json += "  \"options\": {\"phase_seconds\": " +
          common::json_number(opt.phase_seconds) +
          ", \"reps\": " + common::json_number(opt.reps) +
          ", \"interval_ms\": " + common::json_number(opt.interval_ms) +
          ", \"max_workers\": " +
          common::json_number(static_cast<double>(opt.max_workers)) + "},\n";
  json += "  \"configs\": {";
  bool first = true;
  for (const auto& [name, run] : runs) {
    if (!first) json += ",";
    first = false;
    json += "\n    \"" + name + "\": {\"phases\": " + json_phase_block(run);
    if (name == "adaptive") {
      json += ", \"controller\": {\"decisions\": " +
              common::json_number(static_cast<double>(run.decisions)) +
              ", \"reverts\": " +
              common::json_number(static_cast<double>(run.reverts)) +
              ", \"final_workers\": " +
              common::json_number(static_cast<double>(run.final_workers)) +
              ", \"final_grain\": " +
              common::json_number(static_cast<double>(run.final_grain)) + "}";
    }
    json += "}";
  }
  json += "\n  },\n  \"recovery\": {\n    \"best_static_per_phase\": {";
  first = true;
  for (const char* phase : kPhaseNames) {
    if (!first) json += ", ";
    first = false;
    json += "\"" + std::string(phase) + "\": {\"config\": \"" +
            best_static[phase].first + "\", \"throughput_items_per_s\": " +
            common::json_number(best_static[phase].second) + "}";
  }
  json += "},\n    \"min_recovery\": {";
  first = true;
  for (const auto& [name, r] : min_recovery) {
    if (!first) json += ", ";
    first = false;
    json += "\"" + name + "\": " + common::json_number(r);
  }
  json += "},\n    \"adaptive_min_recovery\": " +
          common::json_number(min_recovery["adaptive"]) +
          ",\n    \"best_static_min_recovery\": " +
          common::json_number(best_static_min) + "\n  },\n";
  json += "  \"checksum\": " +
          common::json_number(static_cast<double>(checksum.load() & 0xffff)) +
          "\n}\n";

  if (std::FILE* f = std::fopen(opt.out.c_str(), "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "adapt_scaling: cannot write %s\n", opt.out.c_str());
    return 2;
  }
  std::printf(
      "wrote %s\n  adaptive min recovery %.3f, best static min recovery "
      "%.3f\n",
      opt.out.c_str(), min_recovery["adaptive"], best_static_min);
  return 0;
}
