// Scheduler ablation: central mutex-protected queue vs the work-stealing
// scheduler that replaced it (per-worker Chase-Lev deques + injection
// queue + SBO task envelopes).
//
// `CentralQueuePool` below is a faithful local copy of the previous
// ThreadPool internals (single std::deque<std::function<void()>> under one
// mutex, condition_variable wakeups) so the comparison survives the old
// code's deletion. Benchmarks sweep 1/2/4/8 workers over three shapes:
//
//   * ExternalPost  — one producer thread floods N tasks, then drains.
//     Exercises the injection path and wakeups.
//   * RecursiveFan  — a seed task fans out from inside a worker.
//     Exercises owner-local push/pop and stealing; the central queue
//     pays the global lock on every recursive post.
//   * ParallelFor   — bulk partition submission via parallel_for
//     (work-stealing) vs per-chunk posts (central queue).
//
// Counters: "tasks/s" rates the real throughput; work-stealing runs also
// report steals/overflows per iteration. tools/run_bench.py consumes the
// JSON output and writes BENCH_scheduler.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "apar/concurrency/parallel_for.hpp"
#include "apar/concurrency/task.hpp"
#include "apar/concurrency/thread_pool.hpp"

namespace cc = apar::concurrency;

namespace {

/// The pre-work-stealing ThreadPool, reduced to its scheduling skeleton:
/// one central queue, one mutex, one condition variable. Metrics and the
/// failure counter are dropped; the locking structure is unchanged.
class CentralQueuePool {
 public:
  explicit CentralQueuePool(std::size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~CentralQueuePool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void post(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (stopping_) return;
          continue;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

constexpr int kTasksPerIter = 4096;
constexpr int kFanWidth = 64;       // children per seed task
constexpr int kFanSeeds = 64;       // seed tasks per iteration
constexpr std::size_t kForRange = 4096;
constexpr std::size_t kForGrain = 64;

/// Tiny per-task payload so the benchmark measures scheduling, not work,
/// while keeping the task body non-empty enough not to collapse entirely.
inline void touch(std::atomic<std::uint64_t>& sink) {
  sink.fetch_add(1, std::memory_order_relaxed);
}

// --- shape 1: external producer flood -------------------------------------

void BM_CentralQueue_ExternalPost(benchmark::State& state) {
  CentralQueuePool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    for (int i = 0; i < kTasksPerIter; ++i) pool.post([&sink] { touch(sink); });
    pool.drain();
  }
  state.SetItemsProcessed(state.iterations() * kTasksPerIter);
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_CentralQueue_ExternalPost)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_WorkStealing_ExternalPost(benchmark::State& state) {
  cc::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    for (int i = 0; i < kTasksPerIter; ++i) pool.post([&sink] { touch(sink); });
    pool.drain();
  }
  state.SetItemsProcessed(state.iterations() * kTasksPerIter);
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(pool.steals()),
                         benchmark::Counter::kAvgIterations);
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_WorkStealing_ExternalPost)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- shape 2: recursive fan-out from inside workers ------------------------

void BM_CentralQueue_RecursiveFan(benchmark::State& state) {
  CentralQueuePool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    for (int s = 0; s < kFanSeeds; ++s)
      pool.post([&pool, &sink] {
        for (int i = 0; i < kFanWidth; ++i)
          pool.post([&sink] { touch(sink); });
      });
    pool.drain();
  }
  state.SetItemsProcessed(state.iterations() * kFanSeeds * (kFanWidth + 1));
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_CentralQueue_RecursiveFan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_WorkStealing_RecursiveFan(benchmark::State& state) {
  cc::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    for (int s = 0; s < kFanSeeds; ++s)
      pool.post([&pool, &sink] {
        for (int i = 0; i < kFanWidth; ++i)
          pool.post([&sink] { touch(sink); });
      });
    pool.drain();
  }
  state.SetItemsProcessed(state.iterations() * kFanSeeds * (kFanWidth + 1));
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(pool.steals()),
                         benchmark::Counter::kAvgIterations);
  state.counters["overflows"] =
      benchmark::Counter(static_cast<double>(pool.overflows()),
                         benchmark::Counter::kAvgIterations);
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_WorkStealing_RecursiveFan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- shape 3: bulk partition submission ------------------------------------

void BM_CentralQueue_ChunkedFor(benchmark::State& state) {
  // The old Farm advice posted one task per chunk and waited on a latch;
  // model that with per-chunk posts + drain.
  CentralQueuePool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    for (std::size_t begin = 0; begin < kForRange; begin += kForGrain) {
      const std::size_t end = std::min(begin + kForGrain, kForRange);
      pool.post([&sink, begin, end] {
        for (std::size_t i = begin; i < end; ++i) touch(sink);
      });
    }
    pool.drain();
  }
  state.SetItemsProcessed(state.iterations() * kForRange);
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_CentralQueue_ChunkedFor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_WorkStealing_ParallelFor(benchmark::State& state) {
  cc::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    cc::parallel_for(pool, 0, kForRange, kForGrain,
                     [&sink](std::size_t) { touch(sink); });
  }
  state.SetItemsProcessed(state.iterations() * kForRange);
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(pool.steals()),
                         benchmark::Counter::kAvgIterations);
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_WorkStealing_ParallelFor)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- envelope micro: SBO Task vs std::function ------------------------------

void BM_Envelope_StdFunction(benchmark::State& state) {
  std::atomic<std::uint64_t> sink{0};
  std::uint64_t a = 1, b = 2, c = 3, d = 4;  // big enough to defeat most SBOs
  for (auto _ : state) {
    std::function<void()> f([&sink, a, b, c, d] { sink += a + b + c + d; });
    f();
    benchmark::DoNotOptimize(f);
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_Envelope_StdFunction);

void BM_Envelope_SboTask(benchmark::State& state) {
  std::atomic<std::uint64_t> sink{0};
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  for (auto _ : state) {
    cc::Task t([&sink, a, b, c, d] { sink += a + b + c + d; });
    t();
    benchmark::DoNotOptimize(t);
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_Envelope_SboTask);

}  // namespace

BENCHMARK_MAIN();
