#pragma once

// Opt-in observability for the figure benches:
//   APAR_METRICS=1        print the metrics-registry table after the run
//                         (also enables substrate probes via obs);
//   APAR_METRICS_OUT=f    write the registry as JSON to `f`;
//   APAR_TRACE_OUT=f      plug a TraceAspect over the sieve join points and
//                         write a Chrome trace_event JSON file to `f`
//                         (loadable in Perfetto / chrome://tracing).
// With none of these set, nothing here touches the measured path.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string_view>
#include <utility>

#include "apar/aop/trace.hpp"
#include "apar/obs/metrics.hpp"
#include "apar/sieve/prime_filter.hpp"

namespace apar::bench {

inline const char* obs_env(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : nullptr;
}

inline bool obs_metrics_requested() {
  const char* v = obs_env("APAR_METRICS");
  if (v == nullptr) return false;
  const std::string_view s(v);
  return s != "0" && s != "false" && s != "off";
}

/// Tracer shared by every traced harness in this bench process, so all
/// reps land in one timeline.
inline const std::shared_ptr<aop::Tracer>& obs_tracer() {
  static const std::shared_ptr<aop::Tracer> tracer =
      std::make_shared<aop::Tracer>();
  return tracer;
}

/// When APAR_TRACE_OUT is set, plug a TraceAspect over the sieve join
/// points into `ctx`, feeding obs_tracer(). Returns whether it attached.
inline bool obs_attach_trace(aop::Context& ctx) {
  if (obs_env("APAR_TRACE_OUT") == nullptr) return false;
  auto trace = std::make_shared<aop::TraceAspect<sieve::PrimeFilter>>(
      "BenchTrace", obs_tracer());
  trace->trace_method<&sieve::PrimeFilter::process>()
      .trace_method<&sieve::PrimeFilter::filter>()
      .trace_method<&sieve::PrimeFilter::collect>()
      .trace_method<&sieve::PrimeFilter::take_results>()
      .template trace_new<long long, long long, double>();
  ctx.attach(std::move(trace));
  return true;
}

/// Dump whatever observability the environment asked for. Call once at the
/// end of main().
inline void obs_finish() {
  if (obs_metrics_requested()) {
    std::printf("\n=== metrics registry ===\n%s\n",
                obs::MetricsRegistry::global().table().str().c_str());
  }
  if (const char* path = obs_env("APAR_METRICS_OUT")) {
    std::ofstream out(path);
    out << obs::MetricsRegistry::global().to_json() << '\n';
    if (out)
      std::printf("metrics json: %s\n", path);
    else
      std::fprintf(stderr, "failed to write metrics json to %s\n", path);
  }
  if (const char* path = obs_env("APAR_TRACE_OUT")) {
    obs_tracer()->write_chrome_trace(path);
    std::printf(
        "chrome trace: %s (%zu events) — load in Perfetto or "
        "chrome://tracing\n",
        path, obs_tracer()->size());
  }
}

}  // namespace apar::bench
