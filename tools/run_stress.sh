#!/usr/bin/env bash
# Run the stress suite (`ctest -L stress`) plus the cache suite (`-L
# cache`) and the real-TCP transport suite (`-L net` — which includes
# the event-driven reactor tests: pipelining, backpressure, slow-reader
# eviction and mode-parity, all prime tsan material since the reactor
# loop hands frames to pool workers and flushes their completions back)
# and the scheduler suite (`-L scheduler` — online pool resize racing
# posts, steals and parallel_for; a retirement that loses or double-runs
# a task trips tsan and the exactly-once asserts)
# under ThreadSanitizer and AddressSanitizer, and the analysis suite
# (`-L analysis` — the weave-plan verifier, the effects race passes and
# the apar-analyze gates) under AddressSanitizer. Any
# sanitizer report fails the run: halt_on_error turns the first finding
# into a nonzero test exit.
#
# Usage:
#   tools/run_stress.sh              # tsan + asan
#   tools/run_stress.sh tsan         # one sanitizer only
#   APAR_STRESS_SEED=123 tools/run_stress.sh tsan   # replay a seed
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(tsan asan)
fi

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 abort_on_error=1}"

for preset in "${presets[@]}"; do
  case "$preset" in
    tsan|asan) ;;
    *) echo "unknown preset '$preset' (expected tsan or asan)" >&2; exit 2 ;;
  esac
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$(nproc)"
  # The analyzers allocate aggressively (registries, reports, JSON) but
  # are single-threaded: asan is the interesting sanitizer, and skipping
  # them under tsan keeps that (much slower) leg focused on real
  # concurrency.
  labels='stress|cache|net|scheduler'
  if [ "$preset" = "asan" ]; then
    labels='stress|cache|net|scheduler|analysis'
  fi
  echo "=== [$preset] ctest -L '$labels' ==="
  ctest --test-dir "build-$preset" -L "$labels" --output-on-failure -j 2
done

echo "stress + cache + net (+ analysis under asan) suites clean under: ${presets[*]}"
