#!/usr/bin/env python3
"""Refresh the measured-output snapshot at the end of EXPERIMENTS.md.

Usage:  python3 tools/update_experiments.py [bench_output.txt]

Everything after the `<!-- MEASURED-SNAPSHOT -->` marker is replaced with
the key tables extracted from the given bench output (default:
bench_output.txt in the repository root).
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
MARKER = "<!-- MEASURED-SNAPSHOT -->"


def extract_sections(text: str) -> str:
    """Pull the human-readable tables out of the bench output."""
    out = []

    def grab(start: str, end_patterns, title: str):
        i = text.find(start)
        if i < 0:
            return
        end = len(text)
        for pat in end_patterns:
            j = text.find(pat, i + len(start))
            if 0 <= j < end:
                end = j
        out.append(f"### {title}\n\n```\n{text[i:end].rstrip()}\n```\n")

    grab("=== Figure 16", ["=== Table 1"], "Figure 16 (hand-coded vs woven)")
    grab("=== Table 1", ["=== Figure 17"], "Table 1 (module combinations)")
    grab("=== Figure 17", ["=== Heartbeat"], "Figure 17 (version sweep)")
    grab("=== Heartbeat", ["=== Optimisation"], "Heartbeat strategy")
    grab("=== Dynamic vs static farm", ["=== Figure 16"],
         "Dynamic vs static farm")
    grab("=== Optimisation aspects", ["=== wire-format"],
         "Optimisation aspects")
    # google-benchmark output starts with an ISO timestamp line.
    stamp = re.search(r"^\d{4}-\d{2}-\d{2}T", text, re.M)
    grab("=== wire-format sizes",
         [stamp.group(0) if stamp else "Running"],
         "Wire-format sizes and cost models")

    # google-benchmark tables: keep only the result rows.
    micro = re.findall(r"^BM_\S+\s+[\d.]+ ns.*$", text, re.M)
    if micro:
        out.append("### Weaving microbenchmarks (ns/call)\n\n```\n" +
                   "\n".join(micro) + "\n```\n")
    transport = re.findall(r"^BM_(?:Rmi|Mpp)\S+\s+\d+ ns.*$", text, re.M)
    if transport:
        out.append("### Transport microbenchmarks\n\n```\n" +
                   "\n".join(transport) + "\n```\n")
    return "\n".join(out)


def main() -> int:
    bench = ROOT / (sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
    experiments = ROOT / "EXPERIMENTS.md"
    text = bench.read_text()
    doc = experiments.read_text()
    head, _, _ = doc.partition(MARKER)
    experiments.write_text(head + MARKER + "\n\n" + extract_sections(text))
    print(f"updated {experiments} from {bench}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
