// apar-analyze: weave-plan verifier and pluggable concurrency analysis.
//
// Builds each named aspect composition exactly as the benches and the
// Table-1 version matrix do, then runs the static weave-plan analyzer
// (src/analysis) over the plugged aspects: dead pointcuts, order
// collisions, double synchronisation, distribution hazards, cache
// safety. The
// deliberately broken `demo-broken` composition additionally scripts an
// ABBA acquisition sequence under a plugged LockOrderAspect to exercise
// the dynamic lock-order analysis.
//
// Exit status: 0 when no finding at or above --threshold was reported,
// 1 otherwise (2 for usage errors) — CI gates on this.
//
// Usage:
//   apar-analyze [--threshold=info|warning|error] [--json FILE] [--list]
//                [--effects] [composition ...]
//
// With no compositions named, every shipped (clean) composition is
// analyzed: the full sieve version matrix plus heat:heartbeat.
//
// --effects additionally runs the declared-effects race analysis
// (src/analysis/effects.hpp) over every selected composition: shared
// written state reachable from concurrent join points without a common
// monitor, divergence between local and remote replicas, cache/effect
// conflicts, and statically-derived lock-order cycles. The
// `demo-broken-race` composition is this pass's seeded-defect fixture and
// always includes it.
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "apar/adapt/adaptation_aspect.hpp"
#include "apar/analysis/effects.hpp"
#include "apar/analysis/lock_order_aspect.hpp"
#include "apar/analysis/report.hpp"
#include "apar/analysis/weave_plan.hpp"
#include "apar/aop/aop.hpp"
#include "apar/aop/trace.hpp"
#include "apar/apps/heat_band.hpp"
#include "apar/cache/cache_aspect.hpp"
#include "apar/cluster/cluster.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/common/config.hpp"
#include "apar/common/json.hpp"
#include "apar/concurrency/sync_registry.hpp"
#include "apar/net/reactor.hpp"
#include "apar/net/tcp_middleware.hpp"
#include "apar/obs/metrics.hpp"
#include "apar/obs/profiling_aspect.hpp"
#include "apar/sieve/versions.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/distribution_aspect.hpp"
#include "apar/strategies/farm_aspect.hpp"
#include "apar/strategies/heartbeat_aspect.hpp"

namespace adapt = apar::adapt;
namespace analysis = apar::analysis;
namespace aop = apar::aop;
namespace cache = apar::cache;
namespace cluster = apar::cluster;
namespace common = apar::common;
namespace concurrency = apar::concurrency;
namespace net = apar::net;
namespace sieve = apar::sieve;
namespace strategies = apar::strategies;

namespace demo {

/// A type src/serial cannot marshal — the distribution hazard seed.
struct Opaque {
  void* handle = nullptr;
};

/// Tiny core class for the broken demo composition.
class Ledger {
 public:
  explicit Ledger(long long opening = 0) : balance_(opening) {}

  void deposit(long long amount) { balance_ += amount; }
  void withdraw(long long amount) { balance_ -= amount; }
  void put(Opaque token) { (void)token; }
  [[nodiscard]] long long balance() const { return balance_; }

 private:
  long long balance_ = 0;
};

}  // namespace demo

APAR_CLASS_NAME(demo::Ledger, "Ledger");
APAR_METHOD_NAME(&demo::Ledger::deposit, "deposit");
APAR_METHOD_NAME(&demo::Ledger::withdraw, "withdraw");
APAR_METHOD_NAME(&demo::Ledger::put, "put");
APAR_METHOD_NAME(&demo::Ledger::balance, "balance");

// Declared effects for the seeded race fixture: both mutators touch the
// one "balance" cell (put stays undeclared on purpose — it is the
// unknown-effects specimen when advised into a concurrent weave).
APAR_METHOD_WRITES(&demo::Ledger::deposit, "balance");
APAR_METHOD_WRITES(&demo::Ledger::withdraw, "balance");
APAR_METHOD_READS(&demo::Ledger::balance, "balance");

namespace {

/// Set by --effects: every selected composition's report additionally
/// merges the declared-effects race analysis.
bool g_effects = false;

analysis::Report analyze_plan(const aop::Context& ctx) {
  analysis::Report report = analysis::analyze_weave_plan(ctx);
  if (g_effects) report.merge(analysis::analyze_effects(ctx));
  return report;
}

analysis::Report analyze_sieve(sieve::Version version) {
  sieve::SieveConfig config;
  config.max = 20'000;
  config.filters = 2;
  config.pack_size = 2'000;
  config.nodes = 3;
  config.node_executors = 2;
  config.loopback_costs = true;
  sieve::SieveHarness harness(version, config);
  return analyze_plan(harness.context());
}

analysis::Report analyze_heartbeat() {
  using Heart =
      strategies::HeartbeatAspect<apar::apps::HeatBand, long long, long long,
                                  long long, long long, double>;
  aop::Context ctx;
  Heart::Options opts;
  opts.bands = 2;
  opts.ctor_args = [](std::size_t i, std::size_t k,
                      const std::tuple<long long, long long, long long,
                                       long long, double>& original) {
    const auto [rows, cols, offset, total, ns] = original;
    (void)offset;
    const long long share = rows / static_cast<long long>(k);
    return std::make_tuple(share, cols,
                           static_cast<long long>(i) * share, total, ns);
  };
  ctx.attach(std::make_shared<Heart>("Heartbeat", std::move(opts)));
  auto report = analyze_plan(ctx);
  ctx.quiesce();
  return report;
}

/// A TcpMiddleware wired to an endpoint that is never dialed: the
/// middleware connects lazily, so static analysis can inspect a real-wire
/// composition without any server process running.
net::TcpMiddleware::Options undialed_tcp() {
  net::TcpMiddleware::Options opts;
  opts.endpoints = {{"127.0.0.1", 1}};
  return opts;
}

/// The two-process sieve weave (examples/sieve_client.cpp): farm +
/// concurrency + distribution over the REAL TCP transport. Verifying it
/// here is stronger than for the simulated middlewares — wire-transport
/// targets promote serialization findings to errors, so a clean report
/// means every distributed argument genuinely crosses the socket.
analysis::Report analyze_sieve_tcp() {
  using Farm = strategies::FarmAspect<sieve::PrimeFilter, long long,
                                      long long, long long, double>;
  using Conc = strategies::ConcurrencyAspect<sieve::PrimeFilter>;
  using Dist = strategies::DistributionAspect<sieve::PrimeFilter, long long,
                                              long long, double>;
  net::TcpMiddleware middleware(undialed_tcp());
  net::TcpFabric fabric(middleware);

  aop::Context ctx;
  Farm::Options fopts;
  fopts.duplicates = 2;
  fopts.pack_size = 2'000;
  ctx.attach(std::make_shared<Farm>("Partition", fopts));
  auto conc = std::make_shared<Conc>("Concurrency");
  conc->async_method<&sieve::PrimeFilter::process>()
      .async_method<&sieve::PrimeFilter::filter>()
      .guarded_method<&sieve::PrimeFilter::collect>();
  ctx.attach(conc);
  auto dist = std::make_shared<Dist>("Distribution", fabric, middleware);
  dist->distribute_method<&sieve::PrimeFilter::filter>()
      .distribute_method<&sieve::PrimeFilter::process>(/*allow_one_way=*/true)
      .distribute_method<&sieve::PrimeFilter::collect>(/*allow_one_way=*/true)
      .distribute_method<&sieve::PrimeFilter::take_results>();
  ctx.attach(dist);

  auto report = analyze_plan(ctx);
  ctx.quiesce();
  return report;
}

/// The TCP sieve weave as served by the event-driven reactor
/// (TcpServer::Mode::kReactor): ReactorIngressAspect declares that every
/// served method may be entered from a pool worker the reactor dispatched
/// to — unconfined concurrency injected by the TRANSPORT, not by any
/// client-side weave. The effects pass then demands a monitor covering
/// every pair of served methods that race on declared state, which is why
/// Conc guards take_results here (collect and take_results both write
/// "results"; the plain FarmTCP weave only ever calls take_results from
/// the single gather thread, but a reactor server cannot assume that).
/// Must analyze clean: the template for exposing a class behind the
/// reactor safely.
analysis::Report analyze_sieve_tcp_reactor() {
  using Farm = strategies::FarmAspect<sieve::PrimeFilter, long long,
                                      long long, long long, double>;
  using Conc = strategies::ConcurrencyAspect<sieve::PrimeFilter>;
  using Dist = strategies::DistributionAspect<sieve::PrimeFilter, long long,
                                              long long, double>;
  net::TcpMiddleware middleware(undialed_tcp());
  net::TcpFabric fabric(middleware);

  aop::Context ctx;
  Farm::Options fopts;
  fopts.duplicates = 2;
  fopts.pack_size = 2'000;
  ctx.attach(std::make_shared<Farm>("Partition", fopts));
  auto ingress =
      std::make_shared<net::ReactorIngressAspect<sieve::PrimeFilter>>();
  ingress->serve_method<&sieve::PrimeFilter::filter>()
      .serve_method<&sieve::PrimeFilter::process>()
      .serve_method<&sieve::PrimeFilter::collect>()
      .serve_method<&sieve::PrimeFilter::take_results>();
  ctx.attach(ingress);
  auto conc = std::make_shared<Conc>("Concurrency");
  conc->async_method<&sieve::PrimeFilter::process>()
      .async_method<&sieve::PrimeFilter::filter>()
      .guarded_method<&sieve::PrimeFilter::collect>()
      .guarded_method<&sieve::PrimeFilter::take_results>();
  ctx.attach(conc);
  auto dist = std::make_shared<Dist>("Distribution", fabric, middleware);
  dist->distribute_method<&sieve::PrimeFilter::filter>()
      .distribute_method<&sieve::PrimeFilter::process>(/*allow_one_way=*/true)
      .distribute_method<&sieve::PrimeFilter::collect>(/*allow_one_way=*/true)
      .distribute_method<&sieve::PrimeFilter::take_results>();
  ctx.attach(dist);

  auto report = analyze_plan(ctx);
  ctx.quiesce();
  return report;
}

/// The TCP sieve weave with the memoisation aspect in front of the wire:
/// CacheAspect caches PrimeFilter::filter (declared idempotent, all-
/// serializable effect) at the optimisation layer, so hits return before
/// the distribution advice runs. Must analyze clean — the template for
/// safe caching over a real transport.
analysis::Report analyze_sieve_tcp_cached() {
  using Conc = strategies::ConcurrencyAspect<sieve::PrimeFilter>;
  using Dist = strategies::DistributionAspect<sieve::PrimeFilter, long long,
                                              long long, double>;
  net::TcpMiddleware middleware(undialed_tcp());
  net::TcpFabric fabric(middleware);

  aop::Context ctx;
  auto conc = std::make_shared<Conc>("Concurrency");
  conc->guarded_method<&sieve::PrimeFilter::collect>();
  ctx.attach(conc);
  auto memo = std::make_shared<cache::CacheAspect<sieve::PrimeFilter>>("Memo");
  memo->cache_method<&sieve::PrimeFilter::filter>();
  ctx.attach(memo);
  auto dist = std::make_shared<Dist>("Distribution", fabric, middleware);
  dist->distribute_method<&sieve::PrimeFilter::filter>();
  ctx.attach(dist);

  auto report = analyze_plan(ctx);
  ctx.quiesce();
  return report;
}

/// The TCP sieve weave with the full observability plane plugged in:
/// ProfilingAspect (order 40) outside TraceAspect (order 50) outside the
/// functional aspects (100..500). Their orders land in the weave-plan
/// composition table, so the collision pass covers the observability
/// layer too — two profilers at the same order on the same method would
/// gate exactly like two concurrency aspects do. Must analyze clean.
analysis::Report analyze_sieve_tcp_obs() {
  using Farm = strategies::FarmAspect<sieve::PrimeFilter, long long,
                                      long long, long long, double>;
  using Conc = strategies::ConcurrencyAspect<sieve::PrimeFilter>;
  using Dist = strategies::DistributionAspect<sieve::PrimeFilter, long long,
                                              long long, double>;
  net::TcpMiddleware middleware(undialed_tcp());
  net::TcpFabric fabric(middleware);

  aop::Context ctx;
  auto profiling = std::make_shared<apar::obs::ProfilingAspect<
      sieve::PrimeFilter>>("Profiling", apar::obs::MetricsRegistry::global());
  profiling->profile_method<&sieve::PrimeFilter::process>()
      .profile_method<&sieve::PrimeFilter::filter>();
  ctx.attach(profiling);
  auto trace = std::make_shared<aop::TraceAspect<sieve::PrimeFilter>>(
      "Trace", aop::Tracer::global());
  trace->trace_method<&sieve::PrimeFilter::process>()
      .trace_method<&sieve::PrimeFilter::filter>()
      .trace_method<&sieve::PrimeFilter::collect>();
  ctx.attach(trace);
  Farm::Options fopts;
  fopts.duplicates = 2;
  fopts.pack_size = 2'000;
  ctx.attach(std::make_shared<Farm>("Partition", fopts));
  auto conc = std::make_shared<Conc>("Concurrency");
  conc->async_method<&sieve::PrimeFilter::process>()
      .async_method<&sieve::PrimeFilter::filter>()
      .guarded_method<&sieve::PrimeFilter::collect>();
  ctx.attach(conc);
  auto dist = std::make_shared<Dist>("Distribution", fabric, middleware);
  dist->distribute_method<&sieve::PrimeFilter::filter>()
      .distribute_method<&sieve::PrimeFilter::process>(/*allow_one_way=*/true)
      .distribute_method<&sieve::PrimeFilter::collect>(/*allow_one_way=*/true)
      .distribute_method<&sieve::PrimeFilter::take_results>();
  ctx.attach(dist);

  auto report = analyze_plan(ctx);
  ctx.quiesce();
  return report;
}

/// The self-tuning sieve weave: an AdaptationAspect plugged outermost
/// around Farm + Concurrency, declaring which parallelism knobs its
/// controller actuates behind process/filter (pool workers via online
/// resize, pack grain via the farm's atomic pack_size). Must analyze
/// clean: every concurrency-spawning advice on the adapted signatures —
/// the farm's split and the concurrency aspect's async dispatch — declares
/// mark_online_resizable(), so the controller can retune mid-run without
/// orphaning or double-running accepted work.
analysis::Report analyze_sieve_farm_adapt() {
  using Farm = strategies::FarmAspect<sieve::PrimeFilter, long long,
                                      long long, long long, double>;
  using Conc = strategies::ConcurrencyAspect<sieve::PrimeFilter>;

  aop::Context ctx;
  Farm::Options fopts;
  fopts.duplicates = 2;
  fopts.pack_size = 2'000;
  auto farm = std::make_shared<Farm>("Partition", fopts);
  ctx.attach(farm);
  auto conc = std::make_shared<Conc>("Concurrency");
  conc->async_method<&sieve::PrimeFilter::process>()
      .async_method<&sieve::PrimeFilter::filter>()
      .guarded_method<&sieve::PrimeFilter::collect>();
  ctx.attach(conc);
  auto tuner =
      std::make_shared<adapt::AdaptationAspect<sieve::PrimeFilter>>();
  tuner->controller().set_grain_knob(adapt::Knob(
      "grain", 250, 20'000,
      static_cast<std::int64_t>(farm->pack_size()),
      [farm](std::int64_t v) {
        farm->set_pack_size(static_cast<std::size_t>(v));
      }));
  tuner->adapt_method<&sieve::PrimeFilter::process>({"workers", "grain"})
      .adapt_method<&sieve::PrimeFilter::filter>({"workers", "grain"});
  ctx.attach(tuner);

  auto report = analyze_plan(ctx);
  ctx.quiesce();
  return report;
}

/// The adaptation misuse fixture: the AdaptationAspect declares it will
/// retune {workers, grain} behind Ledger.deposit, but the farm it is
/// plugged against sizes its worker fan-out once at plug time — its split
/// advice spawns concurrency WITHOUT mark_online_resizable(). Unlike a
/// latent hazard, the controller is guaranteed to actuate at runtime, so
/// the analyzer must reject the composition outright
/// (adaptation-unsafe-resize, error).
analysis::Report analyze_demo_broken_adapt() {
  aop::Context ctx;
  auto farm = std::make_shared<aop::Aspect>("StaticFarm");
  farm->around_call<demo::Ledger, void, long long>(
          aop::Pattern("Ledger.deposit"), aop::order::kPartitionSplit,
          aop::Scope::any(), [](auto& inv) { return inv.proceed(); })
      .mark_spawns_concurrency();
  ctx.attach(farm);
  auto tuner = std::make_shared<adapt::AdaptationAspect<demo::Ledger>>();
  tuner->adapt_method<&demo::Ledger::deposit>({"workers", "grain"});
  ctx.attach(tuner);

  auto report = analyze_plan(ctx);
  ctx.quiesce();
  return report;
}

/// Every cache-safety defect at once, over the real wire so each gates as
/// an error: memoizing deposit (a mutator nobody declared idempotent —
/// hits would silently skip remote state transitions) and put (non-
/// idempotent AND an unserializable effect, so the cache never fires while
/// every call still pays the round-trip).
analysis::Report analyze_demo_broken_cache() {
  net::TcpMiddleware middleware(undialed_tcp());
  net::TcpFabric fabric(middleware);

  aop::Context ctx;
  auto dist =
      std::make_shared<strategies::DistributionAspect<demo::Ledger, long long>>(
          "Distribution", fabric, middleware);
  dist->distribute_method<&demo::Ledger::deposit>()
      .distribute_method<&demo::Ledger::put>();
  ctx.attach(dist);
  auto memo = std::make_shared<cache::CacheAspect<demo::Ledger>>("Memo");
  memo->cache_method<&demo::Ledger::deposit>()
      .cache_method<&demo::Ledger::put>();
  ctx.attach(memo);

  auto report = analyze_plan(ctx);
  ctx.quiesce();
  return report;
}

/// demo-broken's distribution hazard, retargeted at the real wire: over
/// the simulated RMI the unserializable put(Opaque) is a warning (local
/// dispatch still works); over TcpMiddleware there IS no local dispatch,
/// so the same weave must gate as an error.
analysis::Report analyze_demo_broken_tcp() {
  net::TcpMiddleware middleware(undialed_tcp());
  net::TcpFabric fabric(middleware);

  aop::Context ctx;
  auto dist =
      std::make_shared<strategies::DistributionAspect<demo::Ledger, long long>>(
          "Distribution", fabric, middleware);
  dist->distribute_method<&demo::Ledger::put>();
  ctx.attach(dist);

  auto report = analyze_plan(ctx);
  ctx.quiesce();
  return report;
}

/// The acceptance composition: one aspect set carrying every static defect
/// class at once, plus a scripted ABBA acquisition for the dynamic check.
analysis::Report analyze_demo_broken() {
  aop::Context ctx;

  // (1) Dead pointcut: "Ledger.depositt" — note the typo.
  auto typo = std::make_shared<aop::Aspect>("Audit");
  typo->around_call<demo::Ledger, void, long long>(
      aop::Pattern("Ledger.depositt"), aop::order::kDefault, aop::Scope::any(),
      [](auto& inv) { return inv.proceed(); });
  ctx.attach(typo);

  // (2)+(3) Two concurrency aspects guarding the same method: equal order
  // (kConcurrencySync twice) AND double synchronisation.
  auto sync_a = std::make_shared<strategies::ConcurrencyAspect<demo::Ledger>>(
      "SyncA");
  sync_a->guarded_method<&demo::Ledger::deposit>();
  auto sync_b = std::make_shared<strategies::ConcurrencyAspect<demo::Ledger>>(
      "SyncB");
  sync_b->guarded_method<&demo::Ledger::deposit>();
  ctx.attach(sync_a);
  ctx.attach(sync_b);

  // (4) Distribution hazard: put(Opaque) cannot cross the wire.
  cluster::Cluster::Options copts;
  copts.nodes = 2;
  copts.executors_per_node = 1;
  cluster::Cluster demo_cluster(copts);
  cluster::RmiMiddleware middleware(demo_cluster,
                                    cluster::CostModel::loopback());
  auto dist =
      std::make_shared<strategies::DistributionAspect<demo::Ledger, long long>>(
          "Distribution", demo_cluster, middleware);
  dist->distribute_method<&demo::Ledger::put>();
  ctx.attach(dist);

  // (5) Cache misuse: memoizing deposit, a mutator nobody declared
  // idempotent. A warning here (simulated middleware); the same weave over
  // TCP is demo-broken-cache, where it gates as an error.
  auto memo = std::make_shared<cache::CacheAspect<demo::Ledger>>("Memo");
  memo->cache_method<&demo::Ledger::deposit>();
  ctx.attach(memo);

  auto report = analyze_plan(ctx);

  // (6) Dynamic half: plug the lock-order aspect and acquire two monitors
  // in conflicting orders — the ABBA shape, scripted sequentially so the
  // demo itself never deadlocks.
  auto lock_order = std::make_shared<analysis::LockOrderAspect>();
  ctx.attach(lock_order);
  {
    concurrency::SyncRegistry monitors;
    demo::Ledger a(1), b(2);
    {
      auto first = monitors.acquire(&a);
      auto second = monitors.acquire(&b);
    }
    {
      auto first = monitors.acquire(&b);
      auto second = monitors.acquire(&a);
    }
  }
  report.merge(lock_order->report());
  ctx.detach(lock_order->name());

  ctx.quiesce();
  return report;
}

/// The effects acceptance composition: every declared-effects defect class
/// at once. SyncA fires deposit asynchronously, SyncB withdraw — both
/// mutators write the one "balance" cell, but each aspect guards only its
/// own method, so no single monitor covers the racing pair
/// (unsynchronized-shared-write). A TCP distribution aspect ships deposit
/// but not withdraw, so remote and local replicas of "balance" diverge
/// (remote-divergent-write, error over the real wire). A cache aspect
/// memoizes the balance-writing deposit (cache-effect-conflict, escalated
/// by the wire-mandatory distributor). And two bridge advices running
/// inside the monitors each initiate the other aspect's guarded method —
/// the ABBA shape demo-broken scripts dynamically, derived here from
/// advice metadata alone (static-lock-order-cycle). Always analyzed with
/// the effects pass: this composition IS its fixture.
analysis::Report analyze_demo_broken_race() {
  net::TcpMiddleware middleware(undialed_tcp());
  net::TcpFabric fabric(middleware);

  aop::Context ctx;
  auto sync_a = std::make_shared<strategies::ConcurrencyAspect<demo::Ledger>>(
      "SyncA");
  sync_a->async_method<&demo::Ledger::deposit>();
  ctx.attach(sync_a);
  auto sync_b = std::make_shared<strategies::ConcurrencyAspect<demo::Ledger>>(
      "SyncB");
  sync_b->async_method<&demo::Ledger::withdraw>();
  ctx.attach(sync_b);

  auto dist =
      std::make_shared<strategies::DistributionAspect<demo::Ledger, long long>>(
          "Distribution", fabric, middleware);
  dist->distribute_method<&demo::Ledger::deposit>();
  ctx.attach(dist);

  auto memo = std::make_shared<cache::CacheAspect<demo::Ledger>>("Memo");
  memo->cache_method<&demo::Ledger::deposit>();
  ctx.attach(memo);

  // The bridges run inside the monitors (higher order = inner) and declare
  // that they call into the other guarded method while the first monitor
  // is still held.
  auto bridge = std::make_shared<aop::Aspect>("Bridge");
  bridge
      ->around_call<demo::Ledger, void, long long>(
          aop::Pattern("Ledger.deposit"), aop::order::kOptimisation + 10,
          aop::Scope::any(), [](auto& inv) { return inv.proceed(); })
      .mark_initiates({"Ledger.withdraw"});
  bridge
      ->around_call<demo::Ledger, void, long long>(
          aop::Pattern("Ledger.withdraw"), aop::order::kOptimisation + 10,
          aop::Scope::any(), [](auto& inv) { return inv.proceed(); })
      .mark_initiates({"Ledger.deposit"});
  ctx.attach(bridge);

  analysis::Report report = analysis::analyze_weave_plan(ctx);
  report.merge(analysis::analyze_effects(ctx));
  ctx.quiesce();
  return report;
}

using Builder = std::function<analysis::Report()>;

std::vector<std::pair<std::string, Builder>> all_compositions() {
  std::vector<std::pair<std::string, Builder>> out;
  out.emplace_back("sieve:Sequential",
                   [] { return analyze_sieve(sieve::Version::kSequential); });
  for (const sieve::Version v : sieve::extended_versions()) {
    out.emplace_back("sieve:" + std::string(sieve::version_name(v)),
                     [v] { return analyze_sieve(v); });
  }
  out.emplace_back("heat:heartbeat", [] { return analyze_heartbeat(); });
  out.emplace_back("sieve:FarmTCP", [] { return analyze_sieve_tcp(); });
  out.emplace_back("sieve:FarmTCP+Cache",
                   [] { return analyze_sieve_tcp_cached(); });
  out.emplace_back("sieve:FarmTCP+Obs", [] { return analyze_sieve_tcp_obs(); });
  out.emplace_back("sieve:FarmTCP+Reactor",
                   [] { return analyze_sieve_tcp_reactor(); });
  out.emplace_back("sieve:Farm+Adapt",
                   [] { return analyze_sieve_farm_adapt(); });
  return out;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threshold=info|warning|error] [--json FILE] "
               "[--list] [--effects] [composition ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Config cli(argc, argv);

  const auto threshold =
      analysis::parse_severity(cli.get("threshold", "warning"));
  if (!threshold) {
    std::fprintf(stderr, "apar-analyze: bad --threshold value '%s'\n",
                 cli.get("threshold").c_str());
    return usage(argv[0]);
  }

  g_effects = cli.get_bool("effects", false);

  auto clean = all_compositions();
  if (cli.get_bool("list", false)) {
    for (const auto& [name, build] : clean) std::printf("%s\n", name.c_str());
    std::printf("demo-broken\n");
    std::printf("demo-broken-tcp\n");
    std::printf("demo-broken-cache\n");
    std::printf("demo-broken-race\n");
    std::printf("demo-broken-adapt\n");
    return 0;
  }

  // Resolve the requested compositions (default: every clean one).
  std::vector<std::pair<std::string, Builder>> selected;
  if (cli.positional().empty()) {
    selected = clean;
  } else {
    for (const std::string& want : cli.positional()) {
      if (want == "demo-broken") {
        selected.emplace_back(want, [] { return analyze_demo_broken(); });
        continue;
      }
      if (want == "demo-broken-race") {
        selected.emplace_back(want,
                              [] { return analyze_demo_broken_race(); });
        continue;
      }
      if (want == "demo-broken-tcp") {
        selected.emplace_back(want,
                              [] { return analyze_demo_broken_tcp(); });
        continue;
      }
      if (want == "demo-broken-cache") {
        selected.emplace_back(want,
                              [] { return analyze_demo_broken_cache(); });
        continue;
      }
      if (want == "demo-broken-adapt") {
        selected.emplace_back(want,
                              [] { return analyze_demo_broken_adapt(); });
        continue;
      }
      bool found = false;
      for (const auto& [name, build] : clean) {
        if (name == want) {
          selected.emplace_back(name, build);
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "apar-analyze: unknown composition '%s'\n",
                     want.c_str());
        return usage(argv[0]);
      }
    }
  }

  std::size_t gating = 0;
  std::size_t total = 0;
  std::string json = "{\n  \"schema_version\": " +
                     std::to_string(analysis::kReportSchemaVersion) +
                     ",\n  \"threshold\": \"" +
                     std::string(analysis::severity_name(*threshold)) +
                     "\",\n  \"compositions\": [";
  bool first = true;
  for (const auto& [name, build] : selected) {
    const analysis::Report report = build();
    total += report.size();
    gating += report.count_at_least(*threshold);

    std::printf("== %s: %zu finding(s) ==\n", name.c_str(), report.size());
    if (!report.empty()) std::printf("%s\n", report.table(2).c_str());

    if (!first) json += ",";
    first = false;
    json += "\n    {\"name\": \"" + common::json_escape(name) +
            "\", \"report\": " + report.json() + "}";
  }
  json += first ? "],\n" : "\n  ],\n";
  json += "  \"total\": " + common::json_number(double(total)) +
          ",\n  \"at_or_above_threshold\": " +
          common::json_number(double(gating)) + "\n}\n";

  if (cli.has("json")) {
    const std::string path = cli.get("json");
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "apar-analyze: cannot write %s\n", path.c_str());
      return 2;
    }
  }

  std::printf("%zu finding(s) total, %zu at or above threshold '%s'\n", total,
              gating, analysis::severity_name(*threshold).data());
  return gating > 0 ? 1 : 0;
}
