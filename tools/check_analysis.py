#!/usr/bin/env python3
"""Schema validator for apar-analyze JSON output.

Checks the machine-readable contract CI and downstream tooling rely on:

  * top level: schema_version, threshold, compositions[], total,
    at_or_above_threshold — with the totals recomputed from the findings,
    not trusted;
  * each report: schema_version matching the envelope, a findings[] of
    {severity, kind, subject, detail} with known severities and kinds,
    counts consistent with the findings, and the deterministic rendering
    order (severity descending, then subject) the Report::sorted()
    contract promises;
  * optionally (--require-kind, repeatable): that a given finding kind
    appears somewhere in the document — how CI pins the seeded demo
    compositions to the defect classes they must exhibit.

Exit status: 0 when the document validates, 1 with a message otherwise.

Usage:
  check_analysis.py analysis.json
  check_analysis.py broken-race.json \
      --require-kind unsynchronized-shared-write \
      --require-kind static-lock-order-cycle
"""

import argparse
import json
import sys

SCHEMA_VERSION = 2

SEVERITIES = ["info", "warning", "error"]

KNOWN_KINDS = {
    "dead-pointcut",
    "order-collision",
    "double-sync",
    "distribution-hazard",
    "lock-order-cycle",
    "wait-with-monitor",
    "empty-signature-table",
    "cache-non-idempotent",
    "cache-unserializable",
    "unsynchronized-shared-write",
    "remote-divergent-write",
    "cache-effect-conflict",
    "static-lock-order-cycle",
    "unknown-effects",
}


def fail(message):
    print(f"check_analysis: {message}", file=sys.stderr)
    sys.exit(1)


def check_report(report, where):
    if report.get("schema_version") != SCHEMA_VERSION:
        fail(f"{where}: report schema_version "
             f"{report.get('schema_version')!r} != {SCHEMA_VERSION}")
    findings = report.get("findings")
    if not isinstance(findings, list):
        fail(f"{where}: findings is not a list")
    counts = {s: 0 for s in SEVERITIES}
    previous = None
    for i, finding in enumerate(findings):
        for key in ("severity", "kind", "subject", "detail"):
            if not isinstance(finding.get(key), str):
                fail(f"{where}: findings[{i}].{key} missing or not a string")
        severity = finding["severity"]
        if severity not in SEVERITIES:
            fail(f"{where}: findings[{i}] has unknown severity {severity!r}")
        if finding["kind"] not in KNOWN_KINDS:
            fail(f"{where}: findings[{i}] has unknown kind "
                 f"{finding['kind']!r}")
        counts[severity] += 1
        # Deterministic rendering order: severity descending, then subject,
        # then kind name, then detail (Report::sorted()).
        key = (-SEVERITIES.index(severity), finding["subject"],
               finding["kind"], finding["detail"])
        if previous is not None and key < previous:
            fail(f"{where}: findings[{i}] out of deterministic order")
        previous = key
    declared = report.get("counts")
    if declared != counts:
        fail(f"{where}: counts {declared} disagree with findings {counts}")
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="apar-analyze --json output")
    parser.add_argument("--require-kind", action="append", default=[],
                        metavar="KIND",
                        help="finding kind that must appear somewhere "
                             "(repeatable)")
    args = parser.parse_args()

    with open(args.file, encoding="utf-8") as handle:
        doc = json.load(handle)

    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"top-level schema_version {doc.get('schema_version')!r} "
             f"!= {SCHEMA_VERSION}")
    threshold = doc.get("threshold")
    if threshold not in SEVERITIES:
        fail(f"unknown threshold {threshold!r}")
    compositions = doc.get("compositions")
    if not isinstance(compositions, list):
        fail("compositions is not a list")

    total = 0
    gating = 0
    seen_kinds = set()
    for comp in compositions:
        name = comp.get("name")
        if not isinstance(name, str) or not name:
            fail("composition without a name")
        findings = check_report(comp.get("report", {}), name)
        total += len(findings)
        floor = SEVERITIES.index(threshold)
        gating += sum(1 for f in findings
                      if SEVERITIES.index(f["severity"]) >= floor)
        seen_kinds |= {f["kind"] for f in findings}

    if doc.get("total") != total:
        fail(f"total {doc.get('total')!r} disagrees with findings ({total})")
    if doc.get("at_or_above_threshold") != gating:
        fail(f"at_or_above_threshold {doc.get('at_or_above_threshold')!r} "
             f"disagrees with findings ({gating})")

    missing = set(args.require_kind) - seen_kinds
    if missing:
        fail(f"required finding kinds not reported: {sorted(missing)}")

    print(f"check_analysis: {args.file} OK — {len(compositions)} "
          f"composition(s), {total} finding(s), {gating} at/above "
          f"'{threshold}'")


if __name__ == "__main__":
    main()
