#!/usr/bin/env python3
"""Validate BENCH_adapt.json (produced by tools/run_bench.py --adapt).

Structural checks always run: every configuration must report every
phase with a positive measured duration and consistent throughput, and
the recovery table must agree with the per-phase numbers it distills.
With --require-recovery R the acceptance gate is enforced too, both
halves of it:

  * the adaptive configuration recovers at least R of the best static
    configuration's throughput in EVERY phase (its worst-phase recovery
    is >= R), and
  * no single static configuration does the same — the phase-shifting
    workload genuinely has no one-size static answer, otherwise
    "adaptive keeps up" would be vacuous.

    tools/check_adapt_bench.py BENCH_adapt.json                 # schema only
    tools/check_adapt_bench.py BENCH_adapt.json --require-recovery 0.8

Exit status: 0 valid, 1 invalid.
"""

import argparse
import json
import sys

RELATIVE_TOLERANCE = 1e-6


def fail(message):
    print(f"check_adapt_bench: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_config(name, row, phases):
    reported = row.get("phases")
    if not isinstance(reported, dict):
        fail(f"config {name}: missing 'phases'")
    for phase in phases:
        if phase not in reported:
            fail(f"config {name}: missing phase '{phase}'")
        stats = reported[phase]
        for key in ("items", "seconds", "throughput_items_per_s"):
            if not isinstance(stats.get(key), (int, float)):
                fail(f"config {name}/{phase}: bad '{key}' "
                     f"({stats.get(key)!r})")
        if stats["seconds"] <= 0 or stats["items"] <= 0:
            fail(f"config {name}/{phase}: empty measurement")
        expected = stats["items"] / stats["seconds"]
        if abs(stats["throughput_items_per_s"] - expected) > \
                expected * 1e-3 + 1e-9:
            fail(f"config {name}/{phase}: throughput "
                 f"{stats['throughput_items_per_s']} inconsistent with "
                 f"items/seconds ({expected:.3f})")


def recompute_recovery(doc, phases):
    """Re-derive the recovery table from the raw per-phase numbers; the
    committed distillation must match what it claims to summarize."""
    configs = doc["configs"]
    best = {}
    for phase in phases:
        best[phase] = max(
            (name for name in configs if name != "adaptive"),
            key=lambda n: configs[n]["phases"][phase]
            ["throughput_items_per_s"])
    min_recovery = {}
    for name, row in configs.items():
        min_recovery[name] = min(
            row["phases"][p]["throughput_items_per_s"] /
            configs[best[p]]["phases"][p]["throughput_items_per_s"]
            for p in phases)
    return best, min_recovery


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="BENCH_adapt.json to validate")
    parser.add_argument("--require-recovery", type=float, default=0.0,
                        help="minimum adaptive worst-phase recovery; also "
                             "requires every static config to fall short of "
                             "it (0 = schema checks only)")
    args = parser.parse_args(argv)

    try:
        with open(args.path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {args.path}: {e}")

    configs = doc.get("configs")
    recovery = doc.get("recovery")
    if not configs or not recovery:
        fail("missing 'configs' or 'recovery' block")
    if "adaptive" not in configs:
        fail("no 'adaptive' configuration")
    statics = [n for n in configs if n != "adaptive"]
    if len(statics) < 2:
        fail(f"need at least two static configurations, got {statics}")

    phases = sorted(configs["adaptive"]["phases"])
    if not phases:
        fail("adaptive configuration reports no phases")
    for name, row in configs.items():
        check_config(name, row, phases)

    best, min_recovery = recompute_recovery(doc, phases)
    claimed = recovery.get("min_recovery", {})
    for name, value in min_recovery.items():
        if name not in claimed:
            fail(f"recovery.min_recovery missing '{name}'")
        if abs(claimed[name] - value) > max(1e-3, value * 1e-2):
            fail(f"recovery.min_recovery[{name}] = {claimed[name]} "
                 f"disagrees with recomputed {value:.4f}")
    adaptive = min_recovery["adaptive"]
    best_static = max(min_recovery[n] for n in statics)

    for phase in phases:
        top = configs[best[phase]]["phases"][phase]["throughput_items_per_s"]
        ours = configs["adaptive"]["phases"][phase]["throughput_items_per_s"]
        print(f"check_adapt_bench: {phase}: best static {best[phase]} "
              f"at {top:.0f} items/s, adaptive {ours:.0f} "
              f"({ours / top:.3f})")

    if args.require_recovery > 0:
        if adaptive < args.require_recovery:
            fail(f"adaptive worst-phase recovery {adaptive:.3f} < required "
                 f"{args.require_recovery}")
        if best_static >= args.require_recovery:
            fail(f"static config reaches {best_static:.3f} across all "
                 f"phases; the workload no longer needs adaptation")
        print(f"check_adapt_bench: adaptive recovers {adaptive:.3f} in its "
              f"worst phase (gate {args.require_recovery}); best static "
              f"manages only {best_static:.3f}")
    print(f"check_adapt_bench: {args.path} OK "
          f"({len(configs)} configs, {len(phases)} phases)")


if __name__ == "__main__":
    main(sys.argv[1:])
