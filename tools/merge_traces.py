#!/usr/bin/env python3
"""Merge per-process apar Chrome traces into one multi-process timeline.

Each process dumps its own trace (APAR_TRACE_OUT or the kTelemetry
flush), with timestamps on its own steady clock. This tool aligns them:
file 0 is the reference; for every other file it finds the cross-process
parent links the wire propagation created (a span whose parent_span_id
is a span_id recorded in the reference file), then estimates the clock
offset by RTT midpoint — the server-side span's midpoint is assumed to
sit at the midpoint of the client's wire span, which is exact when the
two network legs are symmetric and within RTT/2 always. The median over
all linked pairs is applied, pids are reassigned (reference = 1), and
the result is one Perfetto/chrome://tracing-loadable JSON array.

  tools/merge_traces.py client.json server.json -o merged.json \
      --require-links 1 --assert-remote-parents serve.

Exit status: 0 on success, 1 when an assertion (--require-links /
--assert-remote-parents) fails, 2 on unusable input.
"""

import argparse
import json
import os
import statistics
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc if isinstance(doc, list) else doc.get("traceEvents", [])
    if not isinstance(events, list):
        raise ValueError("%s: not a Chrome trace array" % path)
    return events


def spans(events):
    return [e for e in events if e.get("ph") == "X"]


def span_ids(events):
    return {e["args"]["span_id"]
            for e in spans(events)
            if "span_id" in e.get("args", {})}


def midpoint(e):
    return e["ts"] + e.get("dur", 0) / 2.0


def cross_links(reference, other):
    """(parent-span-in-reference, child-span-in-other) pairs."""
    by_span = {e["args"]["span_id"]: e
               for e in spans(reference) if "span_id" in e.get("args", {})}
    links = []
    for e in spans(other):
        parent = e.get("args", {}).get("parent_span_id")
        if parent and parent in by_span:
            links.append((by_span[parent], e))
    return links


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", metavar="TRACE.json",
                    help="first file is the clock reference")
    ap.add_argument("-o", "--output", default="merged_trace.json")
    ap.add_argument("--require-links", type=int, default=0, metavar="N",
                    help="fail unless every non-reference file links to the "
                         "reference through at least N parent spans")
    ap.add_argument("--assert-remote-parents", metavar="PREFIX",
                    help="fail if any span named PREFIX* in a non-reference "
                         "file lacks a parent span in the reference file")
    args = ap.parse_args()

    try:
        files = [load_events(p) for p in args.traces]
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print("merge_traces: %s" % e, file=sys.stderr)
        return 2

    reference = files[0]
    ref_ids = span_ids(reference)
    merged = []
    failures = []

    for pid, (path, events) in enumerate(zip(args.traces, files), start=1):
        offset = 0.0
        if pid > 1:
            links = cross_links(reference, events)
            if links:
                # Client wire span [send..recv] brackets the server span;
                # symmetric legs put the server midpoint at the client
                # midpoint, so their difference IS the clock offset.
                offset = statistics.median(
                    midpoint(p) - midpoint(c) for p, c in links)
            if len(links) < args.require_links:
                failures.append(
                    "%s: %d cross-process link(s) to %s, need %d" %
                    (path, len(links), args.traces[0], args.require_links))
            if args.assert_remote_parents:
                for e in spans(events):
                    if not e.get("name", "").startswith(
                            args.assert_remote_parents):
                        continue
                    parent = e.get("args", {}).get("parent_span_id")
                    if not parent:
                        failures.append(
                            "%s: span '%s' has no parent_span_id" %
                            (path, e.get("name")))
                    elif parent not in ref_ids:
                        failures.append(
                            "%s: span '%s' parent %s not found in %s" %
                            (path, e.get("name"), parent, args.traces[0]))

        named = any(e.get("ph") == "M" and e.get("name") == "process_name"
                    for e in events)
        if not named:
            merged.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {
                               "name": os.path.splitext(
                                   os.path.basename(path))[0]}})
        for e in events:
            e = dict(e)
            e["pid"] = pid
            if "ts" in e:
                e["ts"] = round(e["ts"] + offset, 3)
            merged.append(e)
        print("merge_traces: %s -> pid %d, offset %+.1f us, %d event(s)" %
              (path, pid, offset, len(events)))

    # Re-zero the merged timeline: offset correction can push the earliest
    # event below 0, and trace viewers (and check_obs) want ts >= 0.
    timestamps = [e["ts"] for e in merged if "ts" in e]
    if timestamps and min(timestamps) < 0:
        base = min(timestamps)
        for e in merged:
            if "ts" in e:
                e["ts"] = round(e["ts"] - base, 3)

    merged.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0)))
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(merged, f)
    print("merge_traces: wrote %s (%d events from %d processes)" %
          (args.output, len(merged), len(files)))

    for msg in failures:
        print("merge_traces: FAIL %s" % msg, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
