// loadgen — latency/throughput harness for the TCP transport.
//
// Drives a running TcpServer (any server speaking the frame protocol;
// examples/sieve_server is the usual target) with N concurrent
// raw-socket clients and reports HDR-style percentiles plus throughput.
// Two load models:
//
//   --mode closed   each client keeps exactly one request in flight and
//                   issues --requests of them after --warmup unrecorded
//                   ones. Measures the transport's best-case service
//                   latency and its saturation throughput.
//   --mode open     requests are scheduled at a fixed aggregate --rate
//                   (requests/second across all clients) for
//                   --measure-seconds, after --warmup-seconds unrecorded.
//                   Latency is measured from the request's INTENDED send
//                   time, so a stalled server inflates the percentiles
//                   instead of silently slowing the generator down
//                   (coordinated-omission corrected). This is the honest
//                   load model for "how does p99 behave at 4x the
//                   connections" questions.
//
// Options: --port P [--host H] [--mode closed|open] [--clients N]
//          [--requests N] [--warmup N] [--rate R] [--measure-seconds S]
//          [--warmup-seconds S] [--op lookup|telemetry] [--timeout-ms T]
//          [--label NAME] [--dump PATH]
//
// --dump writes one JSON object (consumed by tools/run_bench.py --net and
// validated by tools/check_net_bench.py); without it a human summary goes
// to stdout. Exit status 0 on success, 2 when the target is unreachable.
#include <atomic>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "apar/common/config.hpp"
#include "apar/net/error.hpp"
#include "apar/net/frame.hpp"
#include "apar/net/socket.hpp"

namespace ac = apar::common;
namespace net = apar::net;

namespace {

using Clock = std::chrono::steady_clock;

/// HDR-style log-linear latency histogram over nanoseconds: each power of
/// two is split into 32 sub-buckets, so any recorded value is off by at
/// most ~3% while the whole 1ns..584y range fits in a few KiB. Unlike a
/// raw sample vector this merges in O(buckets) and never allocates on the
/// hot path.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;  // 32 sub-buckets per octave
  static constexpr std::size_t kBuckets = 64 << kSubBits;

  void record(std::uint64_t ns) {
    ++buckets_[index_of(ns)];
    ++count_;
    sum_ns_ += static_cast<double>(ns);
    if (ns > max_ns_) max_ns_ = ns;
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double max_us() const {
    return static_cast<double>(max_ns_) / 1000.0;
  }
  [[nodiscard]] double mean_us() const {
    return count_ == 0 ? 0.0 : sum_ns_ / static_cast<double>(count_) / 1000.0;
  }

  /// Value (µs) at quantile q in [0,1]: midpoint of the bucket where the
  /// cumulative count crosses q*count.
  [[nodiscard]] double percentile_us(double q) const {
    if (count_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target && buckets_[i] > 0) return midpoint_us(i);
    }
    return static_cast<double>(max_ns_) / 1000.0;
  }

 private:
  static std::size_t index_of(std::uint64_t ns) {
    constexpr std::uint64_t kSub = 1u << kSubBits;
    if (ns < kSub) return static_cast<std::size_t>(ns);  // linear head
    const int msb = 63 - __builtin_clzll(ns);
    const int shift = msb - kSubBits;
    const auto sub = static_cast<std::size_t>(ns >> shift);  // [32, 64)
    return static_cast<std::size_t>(shift) * (kSub * 2) + sub;
  }

  static double midpoint_us(std::size_t index) {
    constexpr std::uint64_t kSub = 1u << kSubBits;
    if (index < kSub) return static_cast<double>(index) / 1000.0;
    const auto shift = index / (kSub * 2);
    const auto sub = index % (kSub * 2);
    const double lo = static_cast<double>(sub << shift);
    const double hi = static_cast<double>((sub + 1) << shift);
    return (lo + hi) / 2.0 / 1000.0;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ns_ = 0;
  double sum_ns_ = 0.0;
};

struct Settings {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string mode = "closed";
  std::string op = "lookup";
  std::string label;
  int clients = 8;
  int requests = 1000;       // per client, closed loop
  int warmup = 100;          // per client, closed loop
  double rate = 2000.0;      // aggregate requests/s, open loop
  double measure_seconds = 5.0;
  double warmup_seconds = 1.0;
  int timeout_ms = 2000;
};

struct WorkerResult {
  LatencyHistogram hist;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
};

std::vector<std::byte> build_request(const Settings& s,
                                     std::uint64_t request_id) {
  net::FrameHeader header;
  header.request_id = request_id;
  std::vector<std::byte> payload;
  if (s.op == "telemetry") {
    header.op = net::FrameHeader::Op::kTelemetry;
    payload.push_back(std::byte{0});
  } else {
    // A lookup for an unbound name: the smallest useful RPC — it crosses
    // the full dispatch path (envelope decode, name-server lock, reply
    // encode) without mutating server state or needing an object.
    header.op = net::FrameHeader::Op::kLookup;
    net::put_string(payload, "loadgen-probe");
  }
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  const auto bytes = net::encode_header(header);
  std::vector<std::byte> frame(bytes.begin(), bytes.end());
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

/// One request/reply on an established connection. Returns false on any
/// transport error (timeout, close, protocol) or when the reply does not
/// correlate to this request. After a failure the stream may hold a late
/// reply for an abandoned request, so the CALLER must reconnect — reading
/// on would silently pair request N with reply N-1.
bool exchange_once(net::Socket& socket, const std::vector<std::byte>& frame,
                   std::uint64_t request_id, std::chrono::milliseconds timeout) {
  try {
    const net::Deadline deadline = net::deadline_after(timeout);
    net::send_all(socket, frame.data(), frame.size(), deadline);
    std::array<std::byte, net::FrameHeader::kSize> head;
    net::recv_exact(socket, head.data(), head.size(), deadline);
    const net::FrameHeader reply = net::decode_header(head.data(), head.size());
    std::vector<std::byte> payload(reply.payload_len);
    if (reply.payload_len > 0)
      net::recv_exact(socket, payload.data(), payload.size(), deadline);
    return reply.op == net::FrameHeader::Op::kReplyOk &&
           reply.request_id == request_id;
  } catch (const net::NetError&) {
    return false;
  }
}

/// Reconnect after a failed exchange; returns an invalid socket when the
/// dial itself fails (the caller keeps counting errors and retrying).
net::Socket redial(const Settings& s) {
  try {
    return net::dial({s.host, s.port},
                     net::deadline_after(std::chrono::milliseconds(2000)));
  } catch (const net::NetError&) {
    return net::Socket{};
  }
}

void run_closed(const Settings& s, int client_id, WorkerResult& out) {
  net::Socket socket;
  try {
    socket = net::dial({s.host, s.port},
                       net::deadline_after(std::chrono::milliseconds(5000)));
  } catch (const net::NetError&) {
    out.errors += static_cast<std::uint64_t>(s.requests);
    return;
  }
  const std::chrono::milliseconds timeout(s.timeout_ms);
  std::uint64_t request_id =
      static_cast<std::uint64_t>(client_id) * 1000000 + 1;
  for (int i = 0; i < s.warmup + s.requests; ++i) {
    const std::uint64_t id = request_id++;
    const auto frame = build_request(s, id);
    const auto t0 = Clock::now();
    const bool ok =
        socket.valid() && exchange_once(socket, frame, id, timeout);
    if (!ok) socket = redial(s);  // failed stream cannot be trusted
    if (i < s.warmup) continue;
    ++out.sent;
    ok ? ++out.ok : ++out.errors;
    out.hist.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count()));
  }
}

void run_open(const Settings& s, int client_id, Clock::time_point start,
              WorkerResult& out) {
  net::Socket socket;
  try {
    socket = net::dial({s.host, s.port},
                       net::deadline_after(std::chrono::milliseconds(5000)));
  } catch (const net::NetError&) {
    ++out.errors;
    return;
  }
  const std::chrono::milliseconds timeout(s.timeout_ms);
  const auto interval = std::chrono::nanoseconds(static_cast<std::int64_t>(
      1e9 * static_cast<double>(s.clients) / s.rate));
  const auto measure_from =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(s.warmup_seconds));
  const auto end =
      measure_from + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(s.measure_seconds));
  // Stagger clients across one interval so the aggregate arrivals are
  // evenly spaced, not N-at-a-time bursts.
  auto intended = start + interval * client_id / s.clients;
  std::uint64_t request_id =
      static_cast<std::uint64_t>(client_id) * 1000000 + 1;

  while (intended < end) {
    if (Clock::now() >= end) break;  // backlogged past the window: stop
    std::this_thread::sleep_until(intended);  // no-op once we fall behind
    const std::uint64_t id = request_id++;
    const auto frame = build_request(s, id);
    const bool ok =
        socket.valid() && exchange_once(socket, frame, id, timeout);
    if (!ok) socket = redial(s);  // failed stream cannot be trusted
    const auto now = Clock::now();
    if (intended >= measure_from) {
      ++out.sent;
      ok ? ++out.ok : ++out.errors;
      // Latency from the INTENDED send time: queueing delay caused by a
      // slow server counts against it, not for it.
      out.hist.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now - intended)
              .count()));
    }
    intended += interval;
  }
  // Requests whose slot passed while we were stuck never got issued;
  // coordinated-omission accounting charges them as failures lasting
  // until the window closed.
  for (; intended < end; intended += interval) {
    if (intended < measure_from) continue;
    ++out.sent;
    ++out.errors;
    out.hist.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - intended)
            .count()));
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string to_json(const Settings& s, const WorkerResult& total,
                    double elapsed_s) {
  const double throughput =
      elapsed_s > 0.0 ? static_cast<double>(total.ok) / elapsed_s : 0.0;
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"label\":\"%s\",\"mode\":\"%s\",\"op\":\"%s\",\"clients\":%d,"
      "\"requests\":%llu,\"ok\":%llu,\"errors\":%llu,"
      "\"elapsed_s\":%.3f,\"throughput_rps\":%.1f,"
      "\"latency_us\":{\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,"
      "\"p999\":%.1f,\"max\":%.1f,\"mean\":%.1f}}",
      json_escape(s.label.empty() ? s.mode : s.label).c_str(), s.mode.c_str(),
      s.op.c_str(), s.clients,
      static_cast<unsigned long long>(total.sent),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.errors), elapsed_s, throughput,
      total.hist.percentile_us(0.50), total.hist.percentile_us(0.95),
      total.hist.percentile_us(0.99), total.hist.percentile_us(0.999),
      total.hist.max_us(), total.hist.mean_us());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const ac::Config cli(argc, argv);
  Settings s;
  s.host = cli.get("host", s.host);
  s.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  s.mode = cli.get("mode", s.mode);
  s.op = cli.get("op", s.op);
  s.label = cli.get("label", "");
  s.clients = cli.get_int("clients", s.clients);
  s.requests = cli.get_int("requests", s.requests);
  s.warmup = cli.get_int("warmup", s.warmup);
  s.rate = cli.get_double("rate", s.rate);
  s.measure_seconds = cli.get_double("measure-seconds", s.measure_seconds);
  s.warmup_seconds = cli.get_double("warmup-seconds", s.warmup_seconds);
  s.timeout_ms = cli.get_int("timeout-ms", s.timeout_ms);
  const std::string dump = cli.get("dump", "");

  if (s.port == 0) {
    std::fprintf(stderr, "loadgen: --port is required\n");
    return 2;
  }
  if (s.mode != "closed" && s.mode != "open") {
    std::fprintf(stderr, "loadgen: unknown --mode %s\n", s.mode.c_str());
    return 2;
  }
  if (!net::loopback_available() && s.host == "127.0.0.1") {
    std::fprintf(stderr, "loadgen: loopback TCP unavailable here\n");
    return 2;
  }

  std::vector<WorkerResult> results(static_cast<std::size_t>(s.clients));
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (int c = 0; c < s.clients; ++c) {
    threads.emplace_back([&, c] {
      if (s.mode == "closed")
        run_closed(s, c, results[static_cast<std::size_t>(c)]);
      else
        run_open(s, c, start, results[static_cast<std::size_t>(c)]);
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count() -
      (s.mode == "open" ? s.warmup_seconds : 0.0);

  WorkerResult total;
  for (const auto& r : results) {
    total.hist.merge(r.hist);
    total.sent += r.sent;
    total.ok += r.ok;
    total.errors += r.errors;
  }

  const std::string json = to_json(s, total, elapsed_s);
  if (!dump.empty()) {
    std::ofstream out(dump);
    out << json << "\n";
    if (!out) {
      std::fprintf(stderr, "loadgen: cannot write %s\n", dump.c_str());
      return 2;
    }
  }
  std::printf(
      "loadgen %s/%s: %d clients, %llu requests (%llu ok, %llu errors) in "
      "%.2fs -> %.0f req/s\n"
      "  latency p50 %.1fus  p95 %.1fus  p99 %.1fus  p99.9 %.1fus  "
      "max %.1fus\n",
      s.mode.c_str(), s.op.c_str(), s.clients,
      static_cast<unsigned long long>(total.sent),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.errors), elapsed_s,
      elapsed_s > 0.0 ? static_cast<double>(total.ok) / elapsed_s : 0.0,
      total.hist.percentile_us(0.50), total.hist.percentile_us(0.95),
      total.hist.percentile_us(0.99), total.hist.percentile_us(0.999),
      total.hist.max_us());
  // A run where nothing succeeded is a failed run, not a datapoint.
  return total.ok > 0 ? 0 : 1;
}
