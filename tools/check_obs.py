#!/usr/bin/env python3
"""Validate the observability artifacts a bench run produces.

Usage:
    check_obs.py --trace trace.json [--metrics metrics.json]
                 [--require-metric NAME ...]
    check_obs.py --telemetry telemetry.json [--require-metric NAME ...]
    check_obs.py --merged merged.json [--remote-prefix serve.]

Checks that the Chrome trace file is a well-formed `trace_event` JSON array
(loadable in Perfetto / chrome://tracing) and, when given, that the metrics
JSON is well-formed and that each --require-metric names a series with
non-zero activity (counter value, gauge movement, or histogram count).

--telemetry validates the JSON a TcpServer returns for an Op::kTelemetry
frame (what tools/apar_top.py polls): node/pid/uptime/server envelope plus
an embedded metrics registry, which also honours --require-metric.

--merged validates the output of tools/merge_traces.py for the two-process
sieve demo: at least two distinct pids in one trace, and every span whose
name starts with --remote-prefix (default "serve.") must carry a
parent_span_id that resolves to a span in a DIFFERENT process — the
distributed-tracing golden structure.

Exits non-zero on the first violation, so CI can gate on it.
"""

import argparse
import json
import sys


def fail(message: str) -> None:
    print(f"check_obs: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        events = json.load(f)
    if not isinstance(events, list):
        fail(f"{path}: top level must be a JSON array (trace_event format)")
    if not events:
        fail(f"{path}: trace is empty — no events were recorded")
    complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event {i} missing required key '{key}'")
        ph = event["ph"]
        if ph == "X":
            complete += 1
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    fail(f"{path}: complete event {i} missing numeric '{key}'")
            if event["dur"] < 0 or event["ts"] < 0:
                fail(f"{path}: complete event {i} has negative ts/dur")
        elif ph == "M":
            if "args" not in event:
                fail(f"{path}: metadata event {i} missing 'args'")
        else:
            fail(f"{path}: event {i} has unexpected phase '{ph}'")
    if complete == 0:
        fail(f"{path}: no complete ('X') span events")
    print(f"check_obs: trace ok: {path} "
          f"({len(events)} events, {complete} spans)")


def metric_activity(metric: dict) -> float:
    kind = metric.get("type")
    if kind == "histogram":
        return float(metric.get("count", 0))
    return abs(float(metric.get("value", 0)))


def check_metrics(path: str, required: list) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        fail(f"{path}: expected top-level object with a 'metrics' array")
    for i, metric in enumerate(metrics):
        for key in ("name", "type", "labels"):
            if key not in metric:
                fail(f"{path}: metric {i} missing required key '{key}'")
        if metric["type"] not in ("counter", "gauge", "histogram"):
            fail(f"{path}: metric {i} has unknown type '{metric['type']}'")
        if metric["type"] == "histogram" and "buckets" not in metric:
            fail(f"{path}: histogram metric '{metric['name']}' lacks buckets")
    by_name = {}
    for metric in metrics:
        by_name.setdefault(metric["name"], 0)
        by_name[metric["name"]] += metric_activity(metric)
    for name in required:
        if name not in by_name:
            fail(f"{path}: required metric '{name}' is absent "
                 f"(have: {', '.join(sorted(by_name)) or 'none'})")
        if by_name[name] == 0:
            fail(f"{path}: required metric '{name}' recorded no activity")
    print(f"check_obs: metrics ok: {path} ({len(metrics)} series, "
          f"{len(required)} required present and active)")


def check_telemetry(path: str, required: list) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: telemetry must be a JSON object")
    for key in ("node", "pid", "uptime_us", "server", "metrics"):
        if key not in doc:
            fail(f"{path}: telemetry missing required key '{key}'")
    server = doc["server"]
    for key in ("accepted", "frames_in", "frames_out", "protocol_errors",
                "dispatch_errors"):
        if not isinstance(server.get(key), int):
            fail(f"{path}: telemetry server.{key} missing or non-integer")
    metrics = doc["metrics"].get("metrics")
    if not isinstance(metrics, list):
        fail(f"{path}: telemetry 'metrics' must embed a registry dump")
    if "trace" in doc:
        trace = doc["trace"]
        for key in ("tag", "dropped", "events"):
            if key not in trace:
                fail(f"{path}: telemetry trace missing key '{key}'")
        if not isinstance(trace["events"], list):
            fail(f"{path}: telemetry trace.events must be an array")
    by_name = {}
    for metric in metrics:
        by_name.setdefault(metric["name"], 0)
        by_name[metric["name"]] += metric_activity(metric)
    for name in required:
        if name not in by_name:
            fail(f"{path}: required metric '{name}' is absent "
                 f"(have: {', '.join(sorted(by_name)) or 'none'})")
        if by_name[name] == 0:
            fail(f"{path}: required metric '{name}' recorded no activity")
    print(f"check_obs: telemetry ok: {path} (node={doc['node']!r}, "
          f"{len(metrics)} series)")


def check_merged(path: str, remote_prefix: str) -> None:
    check_trace(path)  # structural validity first
    with open(path, encoding="utf-8") as f:
        events = json.load(f)
    spans = [e for e in events if e["ph"] == "X"]
    pids = {e["pid"] for e in spans}
    if len(pids) < 2:
        fail(f"{path}: merged trace holds spans from {len(pids)} process(es)"
             " — expected at least 2 (was merge_traces.py run?)")
    span_pid_by_id = {}
    for e in spans:
        span_id = e.get("args", {}).get("span_id")
        if span_id:
            span_pid_by_id[span_id] = e["pid"]
    remote = [e for e in spans if e["name"].startswith(remote_prefix)]
    if not remote:
        fail(f"{path}: no '{remote_prefix}*' spans — the server side "
             "recorded nothing")
    for e in remote:
        parent = e.get("args", {}).get("parent_span_id")
        if not parent:
            fail(f"{path}: span '{e['name']}' (pid {e['pid']}) has no "
                 "parent_span_id — it did not join the caller's trace")
        if parent not in span_pid_by_id:
            fail(f"{path}: span '{e['name']}' parent {parent} resolves to "
                 "no recorded span")
        if span_pid_by_id[parent] == e["pid"]:
            fail(f"{path}: span '{e['name']}' is parented within its own "
                 "process — expected a cross-process parent")
    print(f"check_obs: merged ok: {path} ({len(pids)} processes, "
          f"{len(remote)} '{remote_prefix}*' spans all parented across "
          "the wire)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON file")
    parser.add_argument("--metrics", help="metrics registry JSON file")
    parser.add_argument("--telemetry",
                        help="kTelemetry reply JSON file (apar_top.py dump)")
    parser.add_argument("--merged",
                        help="merge_traces.py output to validate as a "
                             "multi-process trace")
    parser.add_argument("--remote-prefix", default="serve.",
                        help="span-name prefix that must be remote-parented "
                             "in --merged (default: serve.)")
    parser.add_argument("--require-metric", action="append", default=[],
                        help="metric name that must exist with activity "
                             "(repeatable)")
    args = parser.parse_args()
    if not (args.trace or args.metrics or args.telemetry or args.merged):
        parser.error("nothing to check: pass --trace, --metrics, "
                     "--telemetry and/or --merged")
    if args.trace:
        check_trace(args.trace)
    if args.merged:
        check_merged(args.merged, args.remote_prefix)
    if args.telemetry:
        check_telemetry(args.telemetry, args.require_metric)
    if args.metrics:
        check_metrics(args.metrics, args.require_metric)
    elif args.require_metric and not args.telemetry:
        parser.error("--require-metric needs --metrics or --telemetry")


if __name__ == "__main__":
    main()
