#!/usr/bin/env python3
"""Validate the observability artifacts a bench run produces.

Usage:
    check_obs.py --trace trace.json [--metrics metrics.json]
                 [--require-metric NAME ...]

Checks that the Chrome trace file is a well-formed `trace_event` JSON array
(loadable in Perfetto / chrome://tracing) and, when given, that the metrics
JSON is well-formed and that each --require-metric names a series with
non-zero activity (counter value, gauge movement, or histogram count).
Exits non-zero on the first violation, so CI can gate on it.
"""

import argparse
import json
import sys


def fail(message: str) -> None:
    print(f"check_obs: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as f:
        events = json.load(f)
    if not isinstance(events, list):
        fail(f"{path}: top level must be a JSON array (trace_event format)")
    if not events:
        fail(f"{path}: trace is empty — no events were recorded")
    complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event {i} missing required key '{key}'")
        ph = event["ph"]
        if ph == "X":
            complete += 1
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    fail(f"{path}: complete event {i} missing numeric '{key}'")
            if event["dur"] < 0 or event["ts"] < 0:
                fail(f"{path}: complete event {i} has negative ts/dur")
        elif ph == "M":
            if "args" not in event:
                fail(f"{path}: metadata event {i} missing 'args'")
        else:
            fail(f"{path}: event {i} has unexpected phase '{ph}'")
    if complete == 0:
        fail(f"{path}: no complete ('X') span events")
    print(f"check_obs: trace ok: {path} "
          f"({len(events)} events, {complete} spans)")


def metric_activity(metric: dict) -> float:
    kind = metric.get("type")
    if kind == "histogram":
        return float(metric.get("count", 0))
    return abs(float(metric.get("value", 0)))


def check_metrics(path: str, required: list) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        fail(f"{path}: expected top-level object with a 'metrics' array")
    for i, metric in enumerate(metrics):
        for key in ("name", "type", "labels"):
            if key not in metric:
                fail(f"{path}: metric {i} missing required key '{key}'")
        if metric["type"] not in ("counter", "gauge", "histogram"):
            fail(f"{path}: metric {i} has unknown type '{metric['type']}'")
        if metric["type"] == "histogram" and "buckets" not in metric:
            fail(f"{path}: histogram metric '{metric['name']}' lacks buckets")
    by_name = {}
    for metric in metrics:
        by_name.setdefault(metric["name"], 0)
        by_name[metric["name"]] += metric_activity(metric)
    for name in required:
        if name not in by_name:
            fail(f"{path}: required metric '{name}' is absent "
                 f"(have: {', '.join(sorted(by_name)) or 'none'})")
        if by_name[name] == 0:
            fail(f"{path}: required metric '{name}' recorded no activity")
    print(f"check_obs: metrics ok: {path} ({len(metrics)} series, "
          f"{len(required)} required present and active)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON file")
    parser.add_argument("--metrics", help="metrics registry JSON file")
    parser.add_argument("--require-metric", action="append", default=[],
                        help="metric name that must exist with activity "
                             "(repeatable)")
    args = parser.parse_args()
    if not args.trace and not args.metrics:
        parser.error("nothing to check: pass --trace and/or --metrics")
    if args.trace:
        check_trace(args.trace)
    if args.metrics:
        check_metrics(args.metrics, args.require_metric)
    elif args.require_metric:
        parser.error("--require-metric needs --metrics")


if __name__ == "__main__":
    main()
