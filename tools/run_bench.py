#!/usr/bin/env python3
"""Run a google-benchmark binary and distill median-of-N timings to JSON.

Default target is the scheduler ablation (bench/scheduler_scaling):

    tools/run_bench.py --binary build/bench/scheduler_scaling \
        --out BENCH_scheduler.json --repetitions 5

The binary is run once with --benchmark_repetitions=N and JSON output;
per-benchmark medians (real ns/op and items/s) are computed here rather
than trusting the binary's aggregate rows, so partial runs and filters
behave predictably. The output records enough machine context (cores,
load, date from the benchmark's own header) to keep numbers honest when
they are quoted in EXPERIMENTS.md.

Exit status is nonzero when the benchmark binary fails or produces no
usable entries, so CI can gate on it.
"""

import argparse
import json
import statistics
import subprocess
import sys


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="build/bench/scheduler_scaling",
                        help="google-benchmark binary to run")
    parser.add_argument("--out", default="BENCH_scheduler.json",
                        help="output JSON path")
    parser.add_argument("--repetitions", type=int, default=5,
                        help="repetitions per benchmark (median is reported)")
    parser.add_argument("--min-time", type=float, default=0.2,
                        help="per-repetition minimum running time, seconds")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex (empty: all)")
    parser.add_argument("--quick", action="store_true",
                        help="1 repetition, 0.05s min time: CI smoke mode")
    return parser.parse_args(argv)


def run_benchmark(args):
    repetitions = 1 if args.quick else args.repetitions
    min_time = 0.05 if args.quick else args.min_time
    cmd = [
        args.binary,
        f"--benchmark_repetitions={repetitions}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_report_aggregates_only=false",
        "--benchmark_format=json",
    ]
    if args.filter:
        cmd.append(f"--benchmark_filter={args.filter}")
    print("+ " + " ".join(cmd), file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark binary failed ({proc.returncode})")
    return json.loads(proc.stdout), repetitions


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale[unit]


def distill(doc, repetitions):
    """Group raw iteration rows by benchmark name; median each metric."""
    samples = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue  # skip the binary's own aggregate rows
        name = row["name"]
        entry = samples.setdefault(
            name, {"real_ns": [], "cpu_ns": [], "items_per_second": []})
        entry["real_ns"].append(to_ns(row["real_time"], row["time_unit"]))
        entry["cpu_ns"].append(to_ns(row["cpu_time"], row["time_unit"]))
        if "items_per_second" in row:
            entry["items_per_second"].append(row["items_per_second"])

    results = {}
    for name, entry in sorted(samples.items()):
        results[name] = {
            "median_real_ns": statistics.median(entry["real_ns"]),
            "median_cpu_ns": statistics.median(entry["cpu_ns"]),
            "repetitions": len(entry["real_ns"]),
        }
        if entry["items_per_second"]:
            results[name]["median_items_per_second"] = statistics.median(
                entry["items_per_second"])
    if not results:
        raise SystemExit("no benchmark entries produced (bad --filter?)")
    return {
        "context": doc.get("context", {}),
        "requested_repetitions": repetitions,
        "benchmarks": results,
    }


def summarize(results):
    """Print speedups where benchmark pairs line up: central-queue vs
    work-stealing (scheduler ablation) and recompute vs cached hit
    (cache_costs)."""
    for name in sorted(results["benchmarks"]):
        if "Recompute" not in name:
            continue
        hit_name = name.replace("Recompute", "CachedHit")
        if hit_name not in results["benchmarks"]:
            continue
        recompute = results["benchmarks"][name]["median_real_ns"]
        hit = results["benchmarks"][hit_name]["median_real_ns"]
        print(f"{hit_name}: {hit:12.0f} ns  vs  {name}: {recompute:12.0f} ns"
              f"  -> hit speedup {recompute / hit:5.2f}x")
    pairs = []
    for name in results["benchmarks"]:
        if name.startswith("BM_WorkStealing_"):
            continue
        if not name.startswith("BM_CentralQueue_"):
            continue
        shape_arg = name[len("BM_CentralQueue_"):]
        for ws_shape in ("ParallelFor", "ExternalPost", "RecursiveFan"):
            cq_shape = "ChunkedFor" if ws_shape == "ParallelFor" else ws_shape
            if not shape_arg.startswith(cq_shape):
                continue
            suffix = shape_arg[len(cq_shape):]
            ws_name = f"BM_WorkStealing_{ws_shape}{suffix}"
            if ws_name in results["benchmarks"]:
                pairs.append((name, ws_name))
    for cq_name, ws_name in pairs:
        cq = results["benchmarks"][cq_name]["median_real_ns"]
        ws = results["benchmarks"][ws_name]["median_real_ns"]
        print(f"{ws_name}: {ws:12.0f} ns  vs  {cq_name}: {cq:12.0f} ns  "
              f"-> speedup {cq / ws:5.2f}x")


def main(argv):
    args = parse_args(argv)
    doc, repetitions = run_benchmark(args)
    results = distill(doc, repetitions)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} ({len(results['benchmarks'])} benchmarks, "
          f"median of {repetitions})")
    summarize(results)


if __name__ == "__main__":
    main(sys.argv[1:])
