#!/usr/bin/env python3
"""Run a google-benchmark binary and distill median-of-N timings to JSON.

Default target is the scheduler ablation (bench/scheduler_scaling):

    tools/run_bench.py --binary build/bench/scheduler_scaling \
        --out BENCH_scheduler.json --repetitions 5

The binary is run once with --benchmark_repetitions=N and JSON output;
per-benchmark medians (real ns/op and items/s) are computed here rather
than trusting the binary's aggregate rows, so partial runs and filters
behave predictably. The output records enough machine context (cores,
load, date from the benchmark's own header) to keep numbers honest when
they are quoted in EXPERIMENTS.md.

With --net the flow is different: instead of a google-benchmark binary it
drives examples/sieve_server + tools/loadgen through the thread-mode vs
reactor-mode latency scenarios and writes BENCH_net.json:

    tools/run_bench.py --net --build build --out BENCH_net.json

Scenarios (full mode; --quick runs one small closed-loop round for CI):
  thread_wW_cW    closed loop at thread mode's natural capacity
                  (clients == workers): the baseline service latency.
  thread_wW_cN    open loop, N = 4x workers connections: thread-per-
                  connection past its worker limit (starved clients,
                  coordinated-omission-corrected percentiles).
  reactor_wW_cN   the same open-loop load against Mode::kReactor.
The "comparison" block distills the acceptance question — how many
connections the reactor sustains versus thread mode, at what p99 — and
tools/check_net_bench.py gates on it.

With --adapt it drives bench/adapt_scaling — the phase-shifting autonomic
workload — and writes BENCH_adapt.json:

    tools/run_bench.py --adapt --build build --out BENCH_adapt.json

The binary sweeps the static (workers, grain) corners plus the adaptive
configuration over alternating sieve/service/mandel phases and emits the
recovery table tools/check_adapt_bench.py gates on (--quick shrinks the
phases for CI). Full mode appends an informational closed-loop loadgen
round — the net.rtt_us source the routing plane consumes — skipped with a
marker where the sandbox forbids loopback sockets.

Exit status is nonzero when the benchmark binary fails or produces no
usable entries, so CI can gate on it.
"""

import argparse
import json
import os
import signal
import statistics
import subprocess
import sys
import tempfile
import time


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", default="build/bench/scheduler_scaling",
                        help="google-benchmark binary to run")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: BENCH_scheduler.json, "
                             "or BENCH_net.json with --net)")
    parser.add_argument("--repetitions", type=int, default=5,
                        help="repetitions per benchmark (median is reported)")
    parser.add_argument("--min-time", type=float, default=0.2,
                        help="per-repetition minimum running time, seconds")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex (empty: all)")
    parser.add_argument("--quick", action="store_true",
                        help="1 repetition, 0.05s min time: CI smoke mode")
    parser.add_argument("--net", action="store_true",
                        help="run the sieve_server/loadgen latency scenarios "
                             "instead of a google-benchmark binary")
    parser.add_argument("--adapt", action="store_true",
                        help="run bench/adapt_scaling (phase-shifting "
                             "autonomic workload) instead of a "
                             "google-benchmark binary")
    parser.add_argument("--build", default="build",
                        help="[--net/--adapt] build directory with the "
                             "binaries")
    parser.add_argument("--workers", type=int, default=8,
                        help="[--net] server workers W")
    parser.add_argument("--connections", type=int, default=32,
                        help="[--net] reactor-scenario connection count N")
    parser.add_argument("--rate", type=float, default=3000.0,
                        help="[--net] open-loop aggregate requests/second")
    parser.add_argument("--measure-seconds", type=float, default=4.0,
                        help="[--net] open-loop measurement window")
    return parser.parse_args(argv)


def run_benchmark(args):
    repetitions = 1 if args.quick else args.repetitions
    min_time = 0.05 if args.quick else args.min_time
    cmd = [
        args.binary,
        f"--benchmark_repetitions={repetitions}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_report_aggregates_only=false",
        "--benchmark_format=json",
    ]
    if args.filter:
        cmd.append(f"--benchmark_filter={args.filter}")
    print("+ " + " ".join(cmd), file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark binary failed ({proc.returncode})")
    return json.loads(proc.stdout), repetitions


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale[unit]


def distill(doc, repetitions):
    """Group raw iteration rows by benchmark name; median each metric."""
    samples = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue  # skip the binary's own aggregate rows
        name = row["name"]
        entry = samples.setdefault(
            name, {"real_ns": [], "cpu_ns": [], "items_per_second": []})
        entry["real_ns"].append(to_ns(row["real_time"], row["time_unit"]))
        entry["cpu_ns"].append(to_ns(row["cpu_time"], row["time_unit"]))
        if "items_per_second" in row:
            entry["items_per_second"].append(row["items_per_second"])

    results = {}
    for name, entry in sorted(samples.items()):
        results[name] = {
            "median_real_ns": statistics.median(entry["real_ns"]),
            "median_cpu_ns": statistics.median(entry["cpu_ns"]),
            "repetitions": len(entry["real_ns"]),
        }
        if entry["items_per_second"]:
            results[name]["median_items_per_second"] = statistics.median(
                entry["items_per_second"])
    if not results:
        raise SystemExit("no benchmark entries produced (bad --filter?)")
    return {
        "context": doc.get("context", {}),
        "requested_repetitions": repetitions,
        "benchmarks": results,
    }


def summarize(results):
    """Print speedups where benchmark pairs line up: central-queue vs
    work-stealing (scheduler ablation) and recompute vs cached hit
    (cache_costs)."""
    for name in sorted(results["benchmarks"]):
        if "Recompute" not in name:
            continue
        hit_name = name.replace("Recompute", "CachedHit")
        if hit_name not in results["benchmarks"]:
            continue
        recompute = results["benchmarks"][name]["median_real_ns"]
        hit = results["benchmarks"][hit_name]["median_real_ns"]
        print(f"{hit_name}: {hit:12.0f} ns  vs  {name}: {recompute:12.0f} ns"
              f"  -> hit speedup {recompute / hit:5.2f}x")
    pairs = []
    for name in results["benchmarks"]:
        if name.startswith("BM_WorkStealing_"):
            continue
        if not name.startswith("BM_CentralQueue_"):
            continue
        shape_arg = name[len("BM_CentralQueue_"):]
        for ws_shape in ("ParallelFor", "ExternalPost", "RecursiveFan"):
            cq_shape = "ChunkedFor" if ws_shape == "ParallelFor" else ws_shape
            if not shape_arg.startswith(cq_shape):
                continue
            suffix = shape_arg[len(cq_shape):]
            ws_name = f"BM_WorkStealing_{ws_shape}{suffix}"
            if ws_name in results["benchmarks"]:
                pairs.append((name, ws_name))
    for cq_name, ws_name in pairs:
        cq = results["benchmarks"][cq_name]["median_real_ns"]
        ws = results["benchmarks"][ws_name]["median_real_ns"]
        print(f"{ws_name}: {ws:12.0f} ns  vs  {cq_name}: {cq:12.0f} ns  "
              f"-> speedup {cq / ws:5.2f}x")


# --- --net: sieve_server + loadgen latency scenarios -----------------------

class NetServer:
    """examples/sieve_server as a context manager: starts the process,
    waits for the port file, SIGTERMs on exit."""

    def __init__(self, build, mode, workers):
        self.binary = os.path.join(build, "examples", "sieve_server")
        self.mode = mode
        self.workers = workers
        self.proc = None
        self.port = None

    def __enter__(self):
        port_file = tempfile.NamedTemporaryFile(
            prefix="apar_port_", delete=False)
        port_file.close()
        os.unlink(port_file.name)
        cmd = [self.binary, "--mode", self.mode,
               "--workers", str(self.workers),
               "--port-file", port_file.name, "--run-seconds", "300"]
        print("+ " + " ".join(cmd), file=sys.stderr)
        self.proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL)
        deadline = time.time() + 10.0
        while time.time() < deadline:
            rc = self.proc.poll()
            if rc is not None:
                # rc 2 = loopback unavailable in this sandbox
                raise LoopbackUnavailable() if rc == 2 else SystemExit(
                    f"sieve_server exited early ({rc})")
            if os.path.exists(port_file.name):
                with open(port_file.name) as fh:
                    text = fh.read().strip()
                if text:
                    self.port = int(text)
                    os.unlink(port_file.name)
                    return self
            time.sleep(0.05)
        raise SystemExit("sieve_server did not report a port within 10s")

    def __exit__(self, *exc):
        if self.proc and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
        return False


class LoopbackUnavailable(Exception):
    pass


def run_loadgen(build, port, label, extra):
    dump = tempfile.NamedTemporaryFile(prefix="apar_lg_", suffix=".json",
                                       delete=False)
    dump.close()
    cmd = [os.path.join(build, "tools", "loadgen"),
           "--port", str(port), "--label", label, "--dump", dump.name] + extra
    print("+ " + " ".join(cmd), file=sys.stderr)
    proc = subprocess.run(cmd)
    if proc.returncode not in (0, 1):  # 1 = zero successes, still a datapoint
        raise SystemExit(f"loadgen failed ({proc.returncode})")
    with open(dump.name) as fh:
        result = json.load(fh)
    os.unlink(dump.name)
    return result


def run_net(args):
    workers = args.workers
    connections = args.connections
    scenarios = {}
    try:
        if args.quick:
            # CI smoke: one small closed-loop round against the reactor,
            # just enough to validate the whole pipeline end to end.
            name = f"reactor_w2_c4_quick"
            with NetServer(args.build, "reactor", 2) as server:
                scenarios[name] = run_loadgen(
                    args.build, server.port, name,
                    ["--mode", "closed", "--clients", "4",
                     "--requests", "200", "--warmup", "50"])
        else:
            open_args = ["--mode", "open",
                         "--clients", str(connections),
                         "--rate", str(args.rate),
                         "--measure-seconds", str(args.measure_seconds),
                         "--warmup-seconds", "1", "--timeout-ms", "1000"]
            name = f"thread_w{workers}_c{workers}"
            with NetServer(args.build, "thread", workers) as server:
                scenarios[name] = run_loadgen(
                    args.build, server.port, name,
                    ["--mode", "closed", "--clients", str(workers),
                     "--requests", "2000", "--warmup", "200"])
            name = f"thread_w{workers}_c{connections}"
            with NetServer(args.build, "thread", workers) as server:
                scenarios[name] = run_loadgen(args.build, server.port, name,
                                              open_args)
            name = f"reactor_w{workers}_c{connections}"
            with NetServer(args.build, "reactor", workers) as server:
                scenarios[name] = run_loadgen(args.build, server.port, name,
                                              open_args)
    except LoopbackUnavailable:
        print("loopback TCP unavailable; writing a skip marker",
              file=sys.stderr)
        with open(args.out, "w") as fh:
            json.dump({"skipped": "loopback TCP unavailable"}, fh, indent=2)
            fh.write("\n")
        return

    doc = {"workers": workers, "scenarios": scenarios}
    if not args.quick:
        # Thread-per-connection can serve at most `workers` connections at
        # once; the reactor scenario offers `connections` of them. The pair
        # of open-loop runs at identical offered load is the apples-to-
        # apples comparison the acceptance gate checks.
        thread = scenarios[f"thread_w{workers}_c{connections}"]
        reactor = scenarios[f"reactor_w{workers}_c{connections}"]
        doc["comparison"] = {
            "thread_sustainable_connections": workers,
            "reactor_connections": connections,
            "connection_ratio": connections / workers,
            "offered_rate_rps": args.rate,
            "thread_p99_us_at_reactor_load": thread["latency_us"]["p99"],
            "reactor_p99_us": reactor["latency_us"]["p99"],
            "thread_errors": thread["errors"],
            "reactor_errors": reactor["errors"],
        }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} ({len(scenarios)} scenarios)")
    for name, row in scenarios.items():
        lat = row["latency_us"]
        print(f"  {name}: {row['ok']}/{row['requests']} ok, "
              f"{row['throughput_rps']:.0f} rps, "
              f"p50 {lat['p50']:.0f}us p99 {lat['p99']:.0f}us")


# --- --adapt: phase-shifting autonomic workload ----------------------------

def run_adapt(args):
    binary = os.path.join(args.build, "bench", "adapt_scaling")
    cmd = [binary, "--out", args.out]
    if args.quick:
        cmd += ["--phase-seconds", "2", "--reps", "1"]
    print("+ " + " ".join(cmd), file=sys.stderr)
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        raise SystemExit(f"adapt_scaling failed ({proc.returncode})")
    with open(args.out) as fh:
        doc = json.load(fh)

    if not args.quick:
        # Informational net leg: a closed-loop loadgen round against the
        # reactor server records the net.rtt_us shape the controller's
        # routing plane consumes. Not part of the recovery gate.
        try:
            with NetServer(args.build, "reactor", 2) as server:
                doc["net"] = run_loadgen(
                    args.build, server.port, "adapt_net",
                    ["--mode", "closed", "--clients", "4",
                     "--requests", "500", "--warmup", "50"])
        except LoopbackUnavailable:
            print("loopback TCP unavailable; net leg skipped",
                  file=sys.stderr)
            doc["net"] = {"skipped": "loopback TCP unavailable"}
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")

    recovery = doc["recovery"]
    print(f"wrote {args.out} ({len(doc['configs'])} configs)")
    for name, r in sorted(recovery["min_recovery"].items()):
        print(f"  {name}: worst-phase recovery {r:.3f}")
    print(f"  adaptive {recovery['adaptive_min_recovery']:.3f} vs best "
          f"static {recovery['best_static_min_recovery']:.3f}")


def main(argv):
    args = parse_args(argv)
    if args.out is None:
        if args.net:
            args.out = "BENCH_net.json"
        elif args.adapt:
            args.out = "BENCH_adapt.json"
        else:
            args.out = "BENCH_scheduler.json"
    if args.net:
        run_net(args)
        return
    if args.adapt:
        run_adapt(args)
        return
    doc, repetitions = run_benchmark(args)
    results = distill(doc, repetitions)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} ({len(results['benchmarks'])} benchmarks, "
          f"median of {repetitions})")
    summarize(results)


if __name__ == "__main__":
    main(sys.argv[1:])
