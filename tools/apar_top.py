#!/usr/bin/env python3
"""apar-top: live telemetry viewer for apar TCP nodes.

Polls one or more servers over the frame protocol's kTelemetry op and
renders a refreshing table of server counters and metric series —
counters with per-interval rates, histograms with count/p50/p95/p99/p999
(threadpool.queue_wait shows up here once the server has tracing or
metrics enabled). Stdlib only; speaks the 18-byte frame header directly
so it needs no build artifacts.

  tools/apar_top.py 127.0.0.1:7077 127.0.0.1:7078
  tools/apar_top.py --interval 0.5 --iterations 3 --plain HOST:PORT  # CI

Exit status: 0 if every endpoint answered at least once, 1 otherwise.
"""

import argparse
import json
import socket
import struct
import sys
import time

MAGIC = 0x5041
PROTOCOL_VERSION = 1
OP_TELEMETRY = 8
OP_REPLY_OK = 6
OP_REPLY_ERROR = 7
HEADER = struct.Struct("<HBBBBIQ")  # magic, ver, format, op, flags, len, rid


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        buf += chunk
    return buf


def fetch_telemetry(host, port, timeout, include_trace=False, flush=False):
    """One kTelemetry round trip; returns the parsed JSON document."""
    tflags = (1 if include_trace or flush else 0) | (2 if flush else 0)
    payload = bytes([tflags])
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            HEADER.pack(MAGIC, PROTOCOL_VERSION, 0, OP_TELEMETRY, 0,
                        len(payload), 1) + payload)
        magic, ver, _fmt, op, _flags, plen, _rid = HEADER.unpack(
            recv_exact(sock, HEADER.size))
        if magic != MAGIC or ver != PROTOCOL_VERSION:
            raise ConnectionError("bad reply header")
        body = recv_exact(sock, plen)
        if op == OP_REPLY_ERROR:
            raise ConnectionError("server error: " +
                                  body.decode("utf-8", "replace"))
        if op != OP_REPLY_OK:
            raise ConnectionError("unexpected reply op %d" % op)
        return json.loads(body.decode("utf-8"))


# Mirrors adapt::decision_name (src/adapt/controller.cpp): the
# adapt.last_decision gauge carries the enum value over the wire.
DECISION_NAMES = {
    0: "none", 1: "grow-workers", 2: "shrink-workers", 3: "revert-grow",
    4: "revert-shrink", 5: "grain-coarsen", 6: "grain-refine",
    7: "feeder-deepen", 8: "feeder-shallow", 9: "promote-fast",
    10: "demote-fast",
}


def adapt_summary(doc):
    """Distill the adapt.* plane from one telemetry document; None when
    the endpoint runs no AdaptationController."""
    vals = {}
    for m in doc.get("metrics", {}).get("metrics", []):
        name = m.get("name", "")
        if name.startswith("adapt."):
            vals[name] = m.get("value", m.get("count", 0))
    if not vals:
        return None
    return {
        "workers": int(vals.get("adapt.workers", 0)),
        "grain": int(vals.get("adapt.grain", 0)),
        "feeder_depth": int(vals.get("adapt.feeder_depth", 0)),
        "routing": int(vals.get("adapt.routing", 0)),
        "last_decision": DECISION_NAMES.get(
            int(vals.get("adapt.last_decision", 0)),
            str(vals.get("adapt.last_decision", 0))),
        "ticks": int(vals.get("adapt.ticks", 0)),
        "decisions": int(vals.get("adapt.decisions", 0)),
        "reverts": int(vals.get("adapt.reverts", 0)),
    }


def metric_key(m):
    labels = ",".join("%s=%s" % kv for kv in sorted(m.get("labels",
                                                          {}).items()))
    return m["name"] + ("{%s}" % labels if labels else "")


def fmt(v):
    if isinstance(v, float):
        return "%.1f" % v
    return str(v)


def render(docs, prev, interval):
    """Rows for all endpoints; `prev` holds last-poll values for deltas."""
    lines = []
    for ep, doc in docs.items():
        if doc is None:
            lines.append("%-22s UNREACHABLE" % ep)
            continue
        srv = doc.get("server", {})
        lines.append("%-22s node=%s pid=%s up=%.1fs frames_in=%s "
                     "dispatch_errors=%s" %
                     (ep, doc.get("node", "?"), doc.get("pid", "?"),
                      doc.get("uptime_us", 0) / 1e6, srv.get("frames_in", 0),
                      srv.get("dispatch_errors", 0)))
        adapt = adapt_summary(doc)
        if adapt is not None:
            cur = adapt["decisions"]
            rate = (cur - prev.get((ep, "__adapt_decisions"), cur)) / interval
            prev[(ep, "__adapt_decisions")] = cur
            lines.append("  adaptation: workers=%d grain=%d last=%s "
                         "decisions/s=%.2f reverts=%d ticks=%d" %
                         (adapt["workers"], adapt["grain"],
                          adapt["last_decision"], rate, adapt["reverts"],
                          adapt["ticks"]))
        header = "  %-38s %-10s %12s %10s %10s %10s %10s %10s" % (
            "metric", "type", "value/cnt", "rate/s", "p50", "p95", "p99",
            "p999")
        lines.append(header)
        for m in doc.get("metrics", {}).get("metrics", []):
            key = metric_key(m)
            kind = m.get("type", "?")
            if kind == "histogram":
                cur = m.get("count", 0)
                rate = (cur - prev.get((ep, key), cur)) / interval
                lines.append(
                    "  %-38s %-10s %12s %10.1f %10s %10s %10s %10s" %
                    (key[:38], kind, cur, rate, fmt(m.get("p50", 0)),
                     fmt(m.get("p95", 0)), fmt(m.get("p99", 0)),
                     fmt(m.get("p999", 0))))
            else:
                cur = m.get("value", 0)
                rate = (cur - prev.get((ep, key), cur)) / interval
                lines.append("  %-38s %-10s %12s %10.1f" %
                             (key[:38], kind, fmt(cur), rate))
            prev[(ep, key)] = cur
        lines.append("")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("endpoints", nargs="+", metavar="HOST:PORT")
    ap.add_argument("--interval", type=float, default=1.0)
    ap.add_argument("--iterations", type=int, default=0,
                    help="stop after N polls (0 = until interrupted)")
    ap.add_argument("--timeout", type=float, default=2.0)
    ap.add_argument("--plain", action="store_true",
                    help="append frames instead of redrawing (CI logs)")
    ap.add_argument("--dump", metavar="PATH",
                    help="write the first endpoint's last raw telemetry "
                         "JSON to PATH (for check_obs.py --telemetry)")
    args = ap.parse_args()

    targets = []
    for ep in args.endpoints:
        host, _, port = ep.rpartition(":")
        try:
            targets.append((ep, host or "127.0.0.1", int(port)))
        except ValueError:
            ap.error("bad endpoint %r (want HOST:PORT)" % ep)

    prev = {}
    answered = set()
    last_doc = None
    n = 0
    try:
        while True:
            docs = {}
            for ep, host, port in targets:
                try:
                    docs[ep] = fetch_telemetry(host, port, args.timeout)
                    answered.add(ep)
                except (OSError, ValueError, ConnectionError):
                    docs[ep] = None
            first = docs.get(args.endpoints[0])
            if first is not None:
                last_doc = first
            frame = render(docs, prev, max(args.interval, 1e-6))
            if not args.plain:
                sys.stdout.write("\x1b[2J\x1b[H")
            print("apar-top  poll #%d  %s" %
                  (n + 1, time.strftime("%H:%M:%S")))
            print(frame)
            sys.stdout.flush()
            n += 1
            if args.iterations and n >= args.iterations:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    if args.dump and last_doc is not None:
        adapt = adapt_summary(last_doc)
        if adapt is not None:
            last_doc["adaptation"] = adapt
        with open(args.dump, "w", encoding="utf-8") as f:
            json.dump(last_doc, f)
        print("apar-top: telemetry dumped to %s" % args.dump)
    return 0 if len(answered) == len(targets) else 1


if __name__ == "__main__":
    sys.exit(main())
