#!/usr/bin/env bash
# Two-process sieve smoke over real TCP (docs/networking.md): start a
# sieve_server, run sieve_client against it in BOTH wire formats, then
# shut the server down cleanly. The client verifies its own prime count
# against the reference sieve and exits nonzero on a mismatch, so this
# script passing means bytes genuinely crossed a process boundary and
# came back right.
#
# Usage:
#   tools/run_net_smoke.sh [build-dir]     # default: build
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SERVER="$BUILD/examples/sieve_server"
CLIENT="$BUILD/examples/sieve_client"
if [ ! -x "$SERVER" ] || [ ! -x "$CLIENT" ]; then
  echo "run_net_smoke: build the examples first ($SERVER, $CLIENT)" >&2
  exit 2
fi

PORT_FILE="$(mktemp)"
rm -f "$PORT_FILE"
"$SERVER" --port-file "$PORT_FILE" --run-seconds 120 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 200); do
  [ -s "$PORT_FILE" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    # The server self-skips (exit 2) where the sandbox forbids sockets.
    wait "$SERVER_PID" && rc=0 || rc=$?
    if [ "$rc" -eq 2 ]; then
      echo "run_net_smoke: loopback TCP unavailable — skipping"
      trap - EXIT
      exit 0
    fi
    echo "run_net_smoke: server died before publishing a port (rc=$rc)" >&2
    exit 1
  fi
  sleep 0.05
done
[ -s "$PORT_FILE" ] || { echo "run_net_smoke: no port published" >&2; exit 1; }
PORT="$(cat "$PORT_FILE")"

for fmt in compact verbose; do
  echo "=== sieve over tcp://127.0.0.1:$PORT ($fmt) ==="
  "$CLIENT" --port "$PORT" --format "$fmt" --max 100000 --filters 3
done

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
trap - EXIT
rm -f "$PORT_FILE"
echo "net smoke clean: both formats, two processes, one socket"
