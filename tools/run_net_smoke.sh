#!/usr/bin/env bash
# Two-process sieve smoke over real TCP (docs/networking.md): start a
# sieve_server, run sieve_client against it in BOTH wire formats, then
# shut the server down cleanly. The client verifies its own prime count
# against the reference sieve and exits nonzero on a mismatch, so this
# script passing means bytes genuinely crossed a process boundary and
# came back right.
#
# A second, traced round (docs/observability.md) then reruns the pair with
# APAR_TRACE_OUT set on both halves, polls the server's kTelemetry op with
# apar_top.py, merges the two per-process trace dumps with merge_traces.py,
# and gates on check_obs.py: the merged trace must show every server-side
# serve.* span parented to a span in the CLIENT process — distributed
# tracing, asserted from outside the binaries.
#
# Usage:
#   tools/run_net_smoke.sh [build-dir]     # default: build
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SERVER="$BUILD/examples/sieve_server"
CLIENT="$BUILD/examples/sieve_client"
if [ ! -x "$SERVER" ] || [ ! -x "$CLIENT" ]; then
  echo "run_net_smoke: build the examples first ($SERVER, $CLIENT)" >&2
  exit 2
fi

PORT_FILE="$(mktemp)"
rm -f "$PORT_FILE"
"$SERVER" --port-file "$PORT_FILE" --run-seconds 120 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 200); do
  [ -s "$PORT_FILE" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    # The server self-skips (exit 2) where the sandbox forbids sockets.
    wait "$SERVER_PID" && rc=0 || rc=$?
    if [ "$rc" -eq 2 ]; then
      echo "run_net_smoke: loopback TCP unavailable — skipping"
      trap - EXIT
      exit 0
    fi
    echo "run_net_smoke: server died before publishing a port (rc=$rc)" >&2
    exit 1
  fi
  sleep 0.05
done
[ -s "$PORT_FILE" ] || { echo "run_net_smoke: no port published" >&2; exit 1; }
PORT="$(cat "$PORT_FILE")"

for fmt in compact verbose; do
  echo "=== sieve over tcp://127.0.0.1:$PORT ($fmt) ==="
  "$CLIENT" --port "$PORT" --format "$fmt" --max 100000 --filters 3
done

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
trap - EXIT
rm -f "$PORT_FILE"
echo "net smoke clean: both formats, two processes, one socket"

# ---- traced round: distributed tracing + live telemetry ----
PY=python3
command -v "$PY" >/dev/null 2>&1 || { echo "run_net_smoke: python3 missing — skipping traced round"; exit 0; }

TRACE_DIR="$(mktemp -d)"
rm -f "$PORT_FILE"
APAR_TRACE_OUT="$TRACE_DIR/server.json" APAR_METRICS=1 \
  "$SERVER" --port-file "$PORT_FILE" --run-seconds 120 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$TRACE_DIR"' EXIT
for _ in $(seq 1 200); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.05
done
[ -s "$PORT_FILE" ] || { echo "run_net_smoke: no port for traced round" >&2; exit 1; }
PORT="$(cat "$PORT_FILE")"

echo "=== traced sieve over tcp://127.0.0.1:$PORT ==="
APAR_TRACE_OUT="$TRACE_DIR/client.json" \
  "$CLIENT" --port "$PORT" --format compact --max 100000 --filters 3

# Live telemetry: three refreshing polls of the kTelemetry op, last one
# dumped raw so check_obs can validate the envelope.
"$PY" tools/apar_top.py --plain --interval 0.3 --iterations 3 \
  --dump "$TRACE_DIR/telemetry.json" "127.0.0.1:$PORT"
"$PY" tools/check_obs.py --telemetry "$TRACE_DIR/telemetry.json" \
  --require-metric threadpool.queue_wait

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
trap 'rm -rf "$TRACE_DIR"' EXIT

# Stitch the two per-process dumps into one Perfetto-loadable trace and
# assert the golden structure: serve.* spans remote-parented into the
# client's spans.
"$PY" tools/merge_traces.py "$TRACE_DIR/client.json" "$TRACE_DIR/server.json" \
  -o "$TRACE_DIR/merged.json" --require-links 1 --assert-remote-parents serve.
"$PY" tools/check_obs.py --merged "$TRACE_DIR/merged.json"

rm -rf "$TRACE_DIR" "$PORT_FILE"
trap - EXIT
echo "net smoke clean: both formats + one distributed trace, two processes"

# ---- reactor round: same client, event-driven server ----
# The reactor mode (docs/networking.md) must be wire-invisible: the
# unmodified client runs the same weave against `--mode reactor` and the
# distributed-trace gate must hold identically — server-side serve.*
# spans parented into the client process even though requests now arrive
# via the event loop and execute on whichever pool worker the reactor
# dispatched to.
TRACE_DIR="$(mktemp -d)"
rm -f "$PORT_FILE"
APAR_TRACE_OUT="$TRACE_DIR/server.json" APAR_METRICS=1 \
  "$SERVER" --mode reactor --port-file "$PORT_FILE" --run-seconds 120 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$TRACE_DIR"' EXIT
for _ in $(seq 1 200); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.05
done
[ -s "$PORT_FILE" ] || { echo "run_net_smoke: no port for reactor round" >&2; exit 1; }
PORT="$(cat "$PORT_FILE")"

echo "=== traced sieve over tcp://127.0.0.1:$PORT (reactor) ==="
APAR_TRACE_OUT="$TRACE_DIR/client.json" \
  "$CLIENT" --port "$PORT" --format compact --max 100000 --filters 3

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
trap 'rm -rf "$TRACE_DIR"' EXIT

"$PY" tools/merge_traces.py "$TRACE_DIR/client.json" "$TRACE_DIR/server.json" \
  -o "$TRACE_DIR/merged.json" --require-links 1 --assert-remote-parents serve.
"$PY" tools/check_obs.py --merged "$TRACE_DIR/merged.json"

rm -rf "$TRACE_DIR" "$PORT_FILE"
trap - EXIT
echo "net smoke clean: thread and reactor modes, one distributed trace each"
