#!/usr/bin/env python3
"""Validate BENCH_net.json (produced by tools/run_bench.py --net).

Structural checks always run: every scenario must carry the full latency
summary with ordered percentiles and a sane request accounting. With
--require-ratio R the acceptance gate is enforced too: the reactor
scenario must serve at least R times thread-per-connection's sustainable
connection count (its worker limit) at equal-or-better p99 under the same
offered load, with zero reactor-side errors.

    tools/check_net_bench.py BENCH_net.json               # schema only
    tools/check_net_bench.py BENCH_net.json --require-ratio 4

Exit status: 0 valid (or an explicit loopback-skip marker), 1 invalid.
"""

import argparse
import json
import sys

PERCENTILE_KEYS = ("p50", "p95", "p99", "p999", "max")
REQUIRED_KEYS = ("mode", "clients", "requests", "ok", "errors",
                 "throughput_rps", "latency_us")


def fail(message):
    print(f"check_net_bench: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_scenario(name, row):
    for key in REQUIRED_KEYS:
        if key not in row:
            fail(f"scenario {name}: missing key '{key}'")
    lat = row["latency_us"]
    for key in PERCENTILE_KEYS + ("mean",):
        if key not in lat:
            fail(f"scenario {name}: latency_us missing '{key}'")
        if not isinstance(lat[key], (int, float)) or lat[key] < 0:
            fail(f"scenario {name}: latency_us.{key} = {lat[key]!r}")
    for lo, hi in zip(PERCENTILE_KEYS, PERCENTILE_KEYS[1:]):
        # Log-linear buckets quantize, so equality is fine; inversion is not.
        if lat[lo] > lat[hi] * 1.001:
            fail(f"scenario {name}: {lo} ({lat[lo]}) > {hi} ({lat[hi]})")
    if row["requests"] != row["ok"] + row["errors"]:
        fail(f"scenario {name}: requests {row['requests']} != "
             f"ok {row['ok']} + errors {row['errors']}")
    if row["requests"] <= 0:
        fail(f"scenario {name}: no requests recorded")
    if row["ok"] > 0 and row["throughput_rps"] <= 0:
        fail(f"scenario {name}: ok > 0 but throughput_rps <= 0")


def check_ratio(doc, require_ratio):
    comparison = doc.get("comparison")
    if not comparison:
        fail("--require-ratio needs the 'comparison' block "
             "(full-mode run_bench.py --net, not --quick)")
    ratio = comparison["connection_ratio"]
    if ratio < require_ratio:
        fail(f"connection ratio {ratio:.1f} < required {require_ratio}")
    thread_p99 = comparison["thread_p99_us_at_reactor_load"]
    reactor_p99 = comparison["reactor_p99_us"]
    if reactor_p99 > thread_p99:
        fail(f"reactor p99 {reactor_p99}us worse than thread-per-connection "
             f"{thread_p99}us at the same offered load")
    if comparison["reactor_errors"] != 0:
        fail(f"reactor dropped {comparison['reactor_errors']} requests "
             f"while serving {comparison['reactor_connections']} connections")
    print(f"check_net_bench: reactor held {comparison['reactor_connections']} "
          f"connections ({ratio:.1f}x thread mode's "
          f"{comparison['thread_sustainable_connections']}) at p99 "
          f"{reactor_p99}us vs {thread_p99}us")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="BENCH_net.json to validate")
    parser.add_argument("--require-ratio", type=float, default=0.0,
                        help="minimum reactor/thread connection ratio at "
                             "equal-or-better p99 (0 = schema checks only)")
    args = parser.parse_args(argv)

    try:
        with open(args.path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {args.path}: {e}")

    if "skipped" in doc:
        print(f"check_net_bench: skipped ({doc['skipped']})")
        return
    scenarios = doc.get("scenarios")
    if not scenarios:
        fail("no scenarios in document")
    for name, row in scenarios.items():
        check_scenario(name, row)
    if args.require_ratio > 0:
        check_ratio(doc, args.require_ratio)
    print(f"check_net_bench: {args.path} OK ({len(scenarios)} scenarios)")


if __name__ == "__main__":
    main(sys.argv[1:])
