// Two-process sieve, client half: the SAME weave as the in-process
// FarmRMI/FarmMPP versions (farm partition + concurrency + distribution),
// but the distribution aspect now targets net::TcpMiddleware, so every
// create/call crosses a real socket into a sieve_server process. The core
// functionality line below is untouched — that is the paper's claim, now
// demonstrated across an actual process boundary.
//
//   ./examples/sieve_server --port-file /tmp/p &
//   ./examples/sieve_client --port $(cat /tmp/p) --format compact
//
// Options: --host H --port P --format compact|verbose --max M
//          --filters N --pack P --work-seconds S
// Exits 0 iff the prime count over the wire matches the reference sieve.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apar/aop/context.hpp"
#include "apar/aop/trace.hpp"
#include "apar/common/config.hpp"
#include "apar/common/stopwatch.hpp"
#include "apar/common/table.hpp"
#include "apar/net/error.hpp"
#include "apar/net/tcp_middleware.hpp"
#include "apar/serial/archive.hpp"
#include "apar/sieve/prime_filter.hpp"
#include "apar/sieve/versions.hpp"
#include "apar/sieve/workload.hpp"
#include "apar/strategies/strategies.hpp"

namespace ac = apar::common;
namespace aop = apar::aop;
namespace as = apar::serial;
namespace net = apar::net;
namespace obs = apar::obs;
namespace st = apar::strategies;
namespace sv = apar::sieve;

namespace {
using FarmAspect = st::FarmAspect<sv::PrimeFilter, long long, long long,
                                  long long, double>;
using ConcAspect = st::ConcurrencyAspect<sv::PrimeFilter>;
using DistAspect =
    st::DistributionAspect<sv::PrimeFilter, long long, long long, double>;
}  // namespace

int main(int argc, char** argv) {
  const ac::Config cli(argc, argv);
  const auto host = cli.get("host", "127.0.0.1");
  const auto port = cli.get_int("port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "sieve_client: --port is required (1..65535)\n");
    return 2;
  }
  const auto format_name = cli.get("format", "compact");
  as::Format format;
  if (format_name == "compact") {
    format = as::Format::kCompact;
  } else if (format_name == "verbose") {
    format = as::Format::kVerbose;
  } else {
    std::fprintf(stderr,
                 "sieve_client: unknown --format '%s' (compact|verbose)\n",
                 format_name.c_str());
    return 2;
  }
  const long long max = cli.get_int("max", 200'000);
  const auto filters = static_cast<std::size_t>(cli.get_int("filters", 3));
  const auto pack = static_cast<std::size_t>(
      cli.get_int("pack", static_cast<long long>(max / 100)));
  const double work_seconds = cli.get_double("work-seconds", 0.0);
  const double ns_per_op =
      work_seconds > 0 ? sv::calibrate_ns_per_op(max, work_seconds) : 0.0;

  std::printf("sieve_client: sieving up to %s over tcp://%s:%lld "
              "(%s format, %zu filters, packs of %zu)\n",
              ac::fmt_count(max).c_str(), host.c_str(),
              static_cast<long long>(port), format_name.c_str(), filters,
              pack);

  net::TcpMiddleware::Options mopts;
  mopts.endpoints = {{host, static_cast<std::uint16_t>(port)}};
  mopts.format = format;
  net::TcpMiddleware middleware(mopts);
  net::TcpFabric fabric(middleware);

  // Identical weave to SieveHarness's farm versions — only the middleware
  // (and therefore the machine boundary) changed.
  aop::Context ctx;
  // Tracing rides along as one more aspect: when APAR_TRACE/_OUT enables
  // it, the app-level spans (process/filter/collect) nest above the wire
  // spans the middleware records on its own.
  if (obs::tracing_enabled()) {
    auto trace =
        std::make_shared<aop::TraceAspect<sv::PrimeFilter>>("Trace",
                                                            obs::Tracer::global());
    trace->trace_method<&sv::PrimeFilter::process>()
        .trace_method<&sv::PrimeFilter::filter>()
        .trace_method<&sv::PrimeFilter::collect>();
    ctx.attach(trace);
  }
  FarmAspect::Options fopts;
  fopts.duplicates = filters;
  fopts.pack_size = pack;
  auto farm = std::make_shared<FarmAspect>("Partition", fopts);
  ctx.attach(farm);
  auto conc = std::make_shared<ConcAspect>("Concurrency");
  conc->async_method<&sv::PrimeFilter::process>()
      .async_method<&sv::PrimeFilter::filter>()
      .guarded_method<&sv::PrimeFilter::collect>();
  ctx.attach(conc);
  auto dist = std::make_shared<DistAspect>("Distribution", fabric, middleware);
  dist->distribute_method<&sv::PrimeFilter::filter>()
      .distribute_method<&sv::PrimeFilter::process>(/*allow_one_way=*/true)
      .distribute_method<&sv::PrimeFilter::collect>(/*allow_one_way=*/true)
      .distribute_method<&sv::PrimeFilter::take_results>();
  ctx.attach(dist);

  const long long root = sv::sieve_root(max);
  auto candidates = sv::odd_candidates(max);

  long long primes = 0;
  double seconds = 0;
  try {
    ac::Stopwatch sw;
    // ---- the entire core functionality (paper §5.1) ----
    auto p = ctx.create<sv::PrimeFilter>(2LL, root, ns_per_op);
    ctx.call<&sv::PrimeFilter::process>(p, candidates);
    ctx.quiesce();
    // ----------------------------------------------------
    seconds = sw.seconds();
    const auto survivors = farm->gather_results(ctx);
    primes = sv::count_primes_up_to(root) +
             static_cast<long long>(survivors.size());
  } catch (const net::NetError& e) {
    // A dead or restarted server surfaces here as a clean, typed error
    // within the configured deadlines — never as a hang.
    std::fprintf(stderr, "sieve_client: transport failure (%s): %s\n",
                 net::NetError::kind_name(e.kind()), e.what());
    return 3;
  }

  // The client half of the distributed trace (root span + app spans + wire
  // spans). merge_traces.py aligns the server's dump against this one.
  if (const char* trace_out = std::getenv("APAR_TRACE_OUT");
      trace_out != nullptr && *trace_out != '\0' && obs::tracing_enabled()) {
    obs::Tracer::global()->write_chrome_trace(trace_out,
                                              static_cast<int>(::getpid()),
                                              "sieve-client");
    std::printf("sieve_client: trace written to %s\n", trace_out);
  }

  const long long expected = sv::count_primes_up_to(max);
  const auto mw = middleware.stats().snapshot();
  const auto wire = middleware.net_counters();
  std::printf("\nfound %s primes in %.3f s  (reference: %s — %s)\n",
              ac::fmt_count(primes).c_str(), seconds,
              ac::fmt_count(expected).c_str(),
              primes == expected ? "CORRECT" : "WRONG");
  std::printf("middleware traffic: %llu creates, %llu sync, %llu one-way, "
              "%s payload bytes\n",
              static_cast<unsigned long long>(mw.creates),
              static_cast<unsigned long long>(mw.sync_calls),
              static_cast<unsigned long long>(mw.one_way_calls),
              ac::fmt_count(static_cast<long long>(mw.bytes_sent +
                                                   mw.bytes_received))
                  .c_str());
  std::printf("wire traffic: %llu connects (%llu reconnects), %llu frames "
              "out / %llu in, %s bytes out / %s in\n",
              static_cast<unsigned long long>(wire.connects),
              static_cast<unsigned long long>(wire.reconnects),
              static_cast<unsigned long long>(wire.frames_sent),
              static_cast<unsigned long long>(wire.frames_received),
              ac::fmt_count(static_cast<long long>(wire.wire_bytes_sent))
                  .c_str(),
              ac::fmt_count(static_cast<long long>(wire.wire_bytes_received))
                  .c_str());
  return primes == expected ? 0 : 1;
}
