// Heartbeat strategy on a 2-D Jacobi heat solver: the third strategy
// category the paper reports (§7). The core class (HeatBand) is a complete
// sequential solver; plugging the HeartbeatAspect turns the same `run`
// call into band-parallel compute/exchange rounds.
//
//   ./examples/heat_heartbeat --rows 96 --cols 64 --iters 60 --bands 4
#include <cstdio>
#include <memory>
#include <tuple>

#include "apar/apps/heat_band.hpp"
#include "apar/common/config.hpp"
#include "apar/common/stopwatch.hpp"
#include "apar/strategies/heartbeat_aspect.hpp"

namespace ac = apar::common;
namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::apps::HeatBand;

using Heart = st::HeartbeatAspect<HeatBand, long long, long long, long long,
                                  long long, double>;

int main(int argc, char** argv) {
  const ac::Config cli(argc, argv);
  const long long rows = cli.get_int("rows", 96);
  const long long cols = cli.get_int("cols", 64);
  const int iters = static_cast<int>(cli.get_int("iters", 60));
  const auto bands = static_cast<std::size_t>(cli.get_int("bands", 4));
  const double ns_per_cell = cli.get_double("ns-per-cell", 1500.0);

  std::printf("heat diffusion on a %lldx%lld grid, hot top edge, %d Jacobi "
              "iterations\n\n",
              rows, cols, iters);

  // --- sequential core ----------------------------------------------------
  ac::Stopwatch seq_watch;
  HeatBand sequential(rows, cols, 0, rows, ns_per_cell);
  sequential.run(iters);
  const double seq_seconds = seq_watch.seconds();
  std::printf("sequential core:     %.3f s   residual %.3e\n", seq_seconds,
              sequential.residual());

  // --- the same program with the heartbeat aspect plugged -----------------
  aop::Context ctx;
  Heart::Options opts;
  opts.bands = bands;
  opts.ctor_args =
      [](std::size_t i, std::size_t k,
         const std::tuple<long long, long long, long long, long long,
                          double>& original) {
        const auto [r, c, offset, total, ns] = original;
        (void)offset;
        const long long share = r / static_cast<long long>(k);
        const long long extra = r % static_cast<long long>(k);
        const long long my_rows =
            share + (static_cast<long long>(i) < extra ? 1 : 0);
        long long my_offset = 0;
        for (std::size_t j = 0; j < i; ++j)
          my_offset += share + (static_cast<long long>(j) < extra ? 1 : 0);
        return std::make_tuple(my_rows, c, my_offset, total, ns);
      };
  auto heart = std::make_shared<Heart>(opts);
  ctx.attach(heart);

  ac::Stopwatch par_watch;
  // Identical core lines — the aspect re-expresses them as k bands with
  // halo exchanges between iterations.
  auto band = ctx.create<HeatBand>(rows, cols, 0LL, rows, ns_per_cell);
  ctx.call<&HeatBand::run>(band, iters);
  ctx.quiesce();
  const double par_seconds = par_watch.seconds();

  std::printf("heartbeat, %zu bands: %.3f s   residual %.3e   speedup %.2fx\n",
              bands, par_seconds, heart->residual(ctx),
              seq_seconds / par_seconds);

  // --- verify bit-exact agreement -----------------------------------------
  std::vector<double> stitched;
  for (auto& b : heart->bands()) {
    const auto part = b.local()->snapshot();
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  const bool exact = stitched == sequential.snapshot();
  std::printf("bit-exact vs sequential core: %s\n", exact ? "yes" : "NO");

  // A tiny visualisation of the temperature field (top-to-bottom decay).
  std::printf("\ntemperature profile (middle column):\n");
  for (long long r = 0; r < rows; r += rows / 8) {
    const double v =
        stitched[static_cast<std::size_t>(r * cols + cols / 2)];
    const int width = static_cast<int>(v * 60);
    std::printf("  row %3lld %6.3f |%.*s\n", r, v, width,
                "############################################################");
  }
  return exact ? 0 : 1;
}
