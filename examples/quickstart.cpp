// Quickstart: the paper's §3 AspectJ tour, in AspectPar.
//
//   1. a plain core class (Point);
//   2. dynamic crosscutting: a Logging aspect intercepting `Point.move*`
//      (Figure 3), plugged and unplugged at run time;
//   3. static crosscutting: adding migrate() to Point without editing it
//      (Figure 2);
//   4. the punchline: the same Point code parallelised by plugging a
//      concurrency aspect — zero changes to Point or to the core lines.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <memory>
#include <string>

#include "apar/aop/aop.hpp"
#include "apar/aop/trace.hpp"
#include "apar/strategies/concurrency_aspect.hpp"

namespace aop = apar::aop;

// --------------------------------------------------------------------------
// Core functionality (paper Figure 1) — knows nothing about aspects.
// --------------------------------------------------------------------------
class Point {
 public:
  void moveX(int delta) { x_ += delta; }
  void moveY(int delta) { y_ += delta; }
  [[nodiscard]] int x() const { return x_; }
  [[nodiscard]] int y() const { return y_; }

 private:
  int x_ = 0;
  int y_ = 0;
};

// Expose join point names (the design step the paper calls "provide
// adequate joinpoints").
APAR_CLASS_NAME(Point, "Point");
APAR_METHOD_NAME(&Point::moveX, "moveX");
APAR_METHOD_NAME(&Point::moveY, "moveY");

// --------------------------------------------------------------------------
// A dynamic crosscutting aspect (paper Figure 3): around `Point.move*`.
// --------------------------------------------------------------------------
std::shared_ptr<aop::Aspect> make_logging_aspect() {
  auto logging = std::make_shared<aop::Aspect>("Logging");
  logging->around_call<Point, void, int>(
      aop::Pattern("Point.move*"), aop::order::kDefault, aop::Scope::any(),
      [](aop::CallInvocation<Point, void, int>& inv) {
        std::printf("  [Logging] %s called with %d\n",
                    inv.signature().str().c_str(), std::get<0>(inv.args()));
        inv.proceed();  // proceed the original call
      });
  return logging;
}

// --------------------------------------------------------------------------
// Static crosscutting (paper Figure 2): introduce migrate() into Point.
// --------------------------------------------------------------------------
template <class Self>
struct Migratable {
  void migrate(const std::string& node) {
    std::printf("  [Static] migrate to %s\n", node.c_str());
  }
};

int main() {
  aop::Context ctx;

  std::printf("1) plain core functionality:\n");
  auto p = ctx.create<Point>();
  ctx.call<&Point::moveX>(p, 10);
  ctx.call<&Point::moveY>(p, 5);
  std::printf("  point at (%d, %d)\n", p.local()->x(), p.local()->y());

  std::printf("\n2) plug the Logging aspect (dynamic crosscutting):\n");
  ctx.attach(make_logging_aspect());
  ctx.call<&Point::moveX>(p, 1);
  ctx.call<&Point::moveY>(p, 2);

  std::printf("\n   ...and unplug it again:\n");
  ctx.detach("Logging");
  ctx.call<&Point::moveX>(p, 1);
  std::printf("  (silence — advice is gone; point at (%d, %d))\n",
              p.local()->x(), p.local()->y());

  std::printf("\n3) static crosscutting — Point with an introduced member:\n");
  aop::ct::Introduce<Point, Migratable> migratable_point;
  migratable_point.moveX(3);
  migratable_point.migrate("node-2");

  std::printf("\n4) plug concurrency — same core lines, now asynchronous:\n");
  auto conc = std::make_shared<apar::strategies::ConcurrencyAspect<Point>>(
      "Concurrency");
  conc->async_method<&Point::moveX>().async_method<&Point::moveY>();
  ctx.attach(conc);
  for (int i = 0; i < 100; ++i) {
    ctx.call<&Point::moveX>(p, 1);  // each call runs on its own thread,
    ctx.call<&Point::moveY>(p, 1);  // serialized by the object monitor
  }
  ctx.quiesce();
  std::printf("  after 200 asynchronous moves: (%d, %d)\n", p.local()->x(),
              p.local()->y());

  std::printf(
      "\n5) plug a Trace aspect — the paper's interaction diagrams, live:\n");
  auto tracer = std::make_shared<aop::Tracer>();
  auto trace = std::make_shared<aop::TraceAspect<Point>>(tracer);
  trace->trace_method<&Point::moveX>().trace_method<&Point::moveY>();
  ctx.attach(trace);
  ctx.call<&Point::moveX>(p, 1);
  ctx.call<&Point::moveY>(p, 1);
  ctx.quiesce();
  std::printf("%s", tracer->interaction_diagram().c_str());
  std::printf("summary:\n%s", tracer->summary().c_str());

  std::printf("\ndone — core Point code never changed.\n");
  return 0;
}
