// Farm and dynamic-farm strategies on a Mandelbrot row renderer — a
// second domain reusing the SAME partition aspects as the prime sieve
// (the paper's §7 reuse claim), with an ASCII rendering as proof of life.
//
//   ./examples/mandelbrot_farm --workers 4 --dynamic
#include <cstdio>
#include <memory>
#include <numeric>

#include "apar/apps/mandel_worker.hpp"
#include "apar/common/config.hpp"
#include "apar/common/stopwatch.hpp"
#include "apar/strategies/strategies.hpp"

namespace ac = apar::common;
namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::apps::MandelWorker;

int main(int argc, char** argv) {
  const ac::Config cli(argc, argv);
  const long long width = cli.get_int("width", 72);
  const long long height = cli.get_int("height", 24);
  const long long max_iter = cli.get_int("max-iter", 2000);
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 4));
  const bool dynamic = cli.get_bool("dynamic", false);

  std::printf("mandelbrot %lldx%lld, %zu workers, %s farm\n\n", width, height,
              workers, dynamic ? "dynamic (demand-driven)" : "static");

  aop::Context ctx;
  using Farm = st::FarmAspect<MandelWorker, long long, long long, long long,
                              long long, double>;
  using DFarm = st::DynamicFarmAspect<MandelWorker, long long, long long,
                                      long long, long long, double>;
  std::shared_ptr<Farm> farm;
  std::shared_ptr<DFarm> dfarm;
  if (dynamic) {
    DFarm::Options opts;
    opts.duplicates = workers;
    opts.pack_size = 2;
    dfarm = std::make_shared<DFarm>("Partition", opts);
    ctx.attach(dfarm);
  } else {
    Farm::Options opts;
    opts.duplicates = workers;
    opts.pack_size = 2;
    farm = std::make_shared<Farm>("Partition", opts);
    ctx.attach(farm);
    auto conc =
        std::make_shared<st::ConcurrencyAspect<MandelWorker>>("Concurrency");
    conc->async_method<&MandelWorker::process>();
    ctx.attach(conc);
  }

  // Core functionality: render all rows (identical for any aspect set).
  std::vector<long long> rows(static_cast<std::size_t>(height));
  std::iota(rows.begin(), rows.end(), 0);
  ac::Stopwatch sw;
  auto renderer = ctx.create<MandelWorker>(width, height, max_iter, 0.0);
  ctx.call<&MandelWorker::process>(renderer, rows);
  ctx.quiesce();
  const double seconds = sw.seconds();

  const auto& managed = dynamic ? dfarm->workers() : farm->workers();
  std::uint64_t total_iters = 0;
  std::printf("per-worker load (escape iterations):\n");
  for (std::size_t i = 0; i < managed.size(); ++i) {
    const auto iters = managed[i].local()->iterations();
    total_iters += iters;
    std::printf("  worker %zu: %12llu\n", i,
                static_cast<unsigned long long>(iters));
  }
  std::printf("total %llu iterations in %.3f s\n\n",
              static_cast<unsigned long long>(total_iters), seconds);

  // Re-render sequentially for the ASCII picture (cheap at this size).
  std::printf("the set itself:\n");
  MandelWorker artist(width, height, max_iter, 0.0);
  for (long long r = 0; r < height; ++r) {
    // escape_iterations is private; approximate the picture through the
    // public API: render one row and use its iteration delta as shading.
    std::string line;
    for (long long c = 0; c < width; ++c) {
      const double re = -2.0 + 3.0 * static_cast<double>(c) /
                                   static_cast<double>(width - 1);
      const double im = -1.2 + 2.4 * static_cast<double>(r) /
                                   static_cast<double>(height - 1);
      double x = 0, y = 0;
      int it = 0;
      while (x * x + y * y <= 4.0 && it < 64) {
        const double nx = x * x - y * y + re;
        y = 2 * x * y + im;
        x = nx;
        ++it;
      }
      line += (it >= 64 ? '#' : (it > 8 ? '+' : (it > 4 ? '.' : ' ')));
    }
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
