// Two-process sieve, server half: hosts PrimeFilter behind a real TCP
// socket. The paper's "target machine" — it knows nothing about farms,
// packs or formats; it just exposes the registered core class and lets
// clients create and call instances over the wire.
//
//   ./examples/sieve_server                      # ephemeral port, printed
//   ./examples/sieve_server --port 7077
//   ./examples/sieve_server --port-file /tmp/p   # for scripting (CI smoke)
//
// Options: --port P --port-file PATH --workers N --run-seconds S
//          --mode thread|reactor --max-connections N
// --mode reactor serves every connection from one event loop
// (src/net/reactor) and uses the workers purely as a dispatch pool, so the
// connection count is no longer bounded by --workers; tools/loadgen
// measures the difference. Runs until SIGINT/SIGTERM or until
// --run-seconds elapses (default 300, a leak guard for scripted runs),
// then prints its traffic stats.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "apar/cluster/rpc.hpp"
#include "apar/common/config.hpp"
#include "apar/net/socket.hpp"
#include "apar/net/tcp_server.hpp"
#include "apar/obs/trace_context.hpp"
#include "apar/obs/tracer.hpp"
#include "apar/sieve/prime_filter.hpp"

namespace ac = apar::common;
namespace net = apar::net;
namespace obs = apar::obs;
namespace sv = apar::sieve;

namespace {
std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  const ac::Config cli(argc, argv);
  const auto run_seconds = cli.get_double("run-seconds", 300.0);
  const auto port_file = cli.get("port-file", "");

  if (!net::loopback_available()) {
    std::fprintf(stderr, "sieve_server: loopback TCP unavailable here\n");
    return 2;
  }

  // The server side of the paper's split: register the core class once;
  // everything else (who creates filters, how many, with what arguments)
  // is the client's weave.
  apar::cluster::rpc::Registry registry;
  registry.bind<sv::PrimeFilter>("PrimeFilter")
      .ctor<long long, long long, double>()
      .method<&sv::PrimeFilter::filter>("filter")
      .method<&sv::PrimeFilter::process>("process")
      .method<&sv::PrimeFilter::collect>("collect")
      .method<&sv::PrimeFilter::take_results>("take_results");

  net::TcpServer::Options opts;
  opts.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  opts.workers = static_cast<std::size_t>(cli.get_int("workers", 4));
  opts.label = "sieve-server";
  const std::string mode = cli.get("mode", "thread");
  if (mode == "reactor") {
    opts.mode = net::TcpServer::Mode::kReactor;
    opts.reactor.max_connections =
        static_cast<std::size_t>(cli.get_int("max-connections", 1024));
  } else if (mode != "thread") {
    std::fprintf(stderr, "sieve_server: unknown --mode %s\n", mode.c_str());
    return 2;
  }
  net::TcpServer server(registry, opts);

  std::printf(
      "sieve_server: PrimeFilter hosted on 127.0.0.1:%u (%zu workers, "
      "%s mode)\n",
      server.port(), opts.workers, mode.c_str());
  std::fflush(stdout);
  if (!port_file.empty()) {
    if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%u\n", server.port());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "sieve_server: cannot write %s\n",
                   port_file.c_str());
      return 2;
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(run_seconds));
  while (!g_stop.load() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server.stop();
  // APAR_TRACE_OUT=<path> dumps this half of the distributed trace; the
  // serve spans inside carry the CLIENT's ids as parents, which is what
  // lets tools/merge_traces.py stitch the two processes back together.
  if (const char* trace_out = std::getenv("APAR_TRACE_OUT");
      trace_out != nullptr && *trace_out != '\0' && obs::tracing_enabled()) {
    obs::Tracer::global()->write_chrome_trace(trace_out,
                                              static_cast<int>(::getpid()),
                                              "sieve-server");
    std::printf("sieve_server: trace written to %s\n", trace_out);
  }
  const auto s = server.stats();
  std::printf("sieve_server: served %llu frames in / %llu out, "
              "%llu bytes in / %llu out, %llu objects hosted, "
              "%llu dispatch errors\n",
              static_cast<unsigned long long>(s.frames_in),
              static_cast<unsigned long long>(s.frames_out),
              static_cast<unsigned long long>(s.bytes_in),
              static_cast<unsigned long long>(s.bytes_out),
              static_cast<unsigned long long>(server.dispatcher().object_count()),
              static_cast<unsigned long long>(s.dispatch_errors));
  return 0;
}
