// Pipeline-protocol reuse on a second domain: a gain -> clip -> quantize
// signal chain driven by the SAME PipelineAspect that drives the prime
// sieve — the paper's §7 claim that moving a strategy between applications
// is "copying the parallelisation aspects and updating these modules".
//
// Also demonstrates incremental development end-to-end on this app:
// sequential core -> +pipeline -> +concurrency -> swap stage counts.
//
//   ./examples/signal_pipeline --samples 200000 --stages 3
#include <algorithm>
#include <cstdio>
#include <memory>

#include "apar/apps/signal_stage.hpp"
#include "apar/common/config.hpp"
#include "apar/common/rng.hpp"
#include "apar/common/stopwatch.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/pipeline_aspect.hpp"

namespace ac = apar::common;
namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::apps::SignalStage;
namespace sig = apar::apps::signal;

using Pipe = st::PipelineAspect<SignalStage, long long, long long, double>;

int main(int argc, char** argv) {
  const ac::Config cli(argc, argv);
  const auto samples = static_cast<std::size_t>(
      cli.get_int("samples", 200'000));
  const auto stages = static_cast<std::size_t>(cli.get_int("stages", 3));
  const double ns_per_sample = cli.get_double("ns-per-sample", 2000.0);

  // A reproducible noisy signal.
  ac::Rng rng(2026);
  std::vector<long long> signal(samples);
  for (auto& s : signal)
    s = static_cast<long long>(rng.uniform(0, 4000)) - 2000;

  std::printf("signal chain over %zu samples (gain -> clip -> quantize)\n\n",
              samples);

  // --- step 0: sequential core ---------------------------------------------
  ac::Stopwatch seq_watch;
  SignalStage all(sig::kAll, ns_per_sample);
  auto seq_data = signal;
  all.process(seq_data);
  auto expected = all.take_results();
  std::printf("sequential core:        %.3f s\n", seq_watch.seconds());

  // --- step 1: plug the pipeline (same aspect class as the sieve's) -------
  aop::Context ctx;
  Pipe::Options opts;
  opts.duplicates = stages;
  opts.pack_size = samples / 50;
  opts.ctor_args = [](std::size_t i, std::size_t k,
                      const std::tuple<long long, double>& original) {
    // Stage i applies transform bit i; a lone stage applies everything.
    const long long mask = k == 1 ? sig::kAll : (1LL << i);
    return std::make_tuple(mask, std::get<1>(original));
  };
  auto pipe = std::make_shared<Pipe>(opts);
  ctx.attach(pipe);

  auto run_woven = [&](const char* label) {
    ac::Stopwatch watch;
    auto first = ctx.create<SignalStage>(sig::kAll, ns_per_sample);
    auto data = signal;
    ctx.call<&SignalStage::process>(first, data);
    ctx.quiesce();
    const double seconds = watch.seconds();
    auto results = pipe->gather_results(ctx);
    std::sort(results.begin(), results.end());
    auto sorted_expected = expected;
    std::sort(sorted_expected.begin(), sorted_expected.end());
    std::printf("%-23s %.3f s   (%s)\n", label, seconds,
                results == sorted_expected ? "matches core" : "WRONG");
  };

  run_woven("pipeline (sequential):");

  // --- step 2: plug concurrency --------------------------------------------
  auto conc =
      std::make_shared<st::ConcurrencyAspect<SignalStage>>("Concurrency");
  conc->async_method<&SignalStage::filter>()
      .async_method<&SignalStage::process>()
      .guarded_method<&SignalStage::collect>();
  ctx.attach(conc);
  run_woven("pipeline + concurrency:");

  // --- step 3: unplug everything — back to a valid sequential program -----
  ctx.detach("Concurrency");
  ctx.detach("Pipeline");
  ac::Stopwatch back_watch;
  auto plain = ctx.create<SignalStage>(sig::kAll, ns_per_sample);
  auto data = signal;
  ctx.call<&SignalStage::process>(plain, data);
  const bool same =
      ctx.call<&SignalStage::take_results>(plain) == expected;
  std::printf("unplugged again:        %.3f s   (%s)\n", back_watch.seconds(),
              same ? "matches core" : "WRONG");
  return same ? 0 : 1;
}
