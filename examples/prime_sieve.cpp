// The paper's case study (§5) as a command-line application: a prime
// number sieve whose parallelisation is chosen by PLUGGING modules, never
// by editing the sieve.
//
//   ./examples/prime_sieve                               # sequential core
//   ./examples/prime_sieve --version FarmThreads --filters 4
//   ./examples/prime_sieve --version PipeRMI    --filters 8
//   ./examples/prime_sieve --version FarmMPP    --filters 8 --max 2000000
//   ./examples/prime_sieve --version FarmDRMI   --filters 8
//
// Options: --version V --filters N --max M --pack P --work-seconds S
#include <cstdio>
#include <string>

#include "apar/common/config.hpp"
#include "apar/common/table.hpp"
#include "apar/sieve/versions.hpp"
#include "apar/sieve/workload.hpp"

namespace ac = apar::common;
namespace sv = apar::sieve;

namespace {
sv::Version parse_version(const std::string& name) {
  if (name == "Sequential") return sv::Version::kSequential;
  if (name == "FarmThreads") return sv::Version::kFarmThreads;
  if (name == "PipeRMI") return sv::Version::kPipeRmi;
  if (name == "FarmRMI") return sv::Version::kFarmRmi;
  if (name == "FarmDRMI") return sv::Version::kFarmDRmi;
  if (name == "FarmMPP") return sv::Version::kFarmMpp;
  std::fprintf(stderr,
               "unknown --version '%s' (expected Sequential, FarmThreads, "
               "PipeRMI, FarmRMI, FarmDRMI or FarmMPP)\n",
               name.c_str());
  std::exit(2);
}
}  // namespace

int main(int argc, char** argv) {
  const ac::Config cli(argc, argv);
  sv::SieveConfig cfg;
  cfg.max = cli.get_int("max", 1'000'000);
  cfg.filters = static_cast<std::size_t>(cli.get_int("filters", 2));
  cfg.pack_size = static_cast<std::size_t>(
      cli.get_int("pack", static_cast<long long>(cfg.max / 100)));
  const double work_seconds = cli.get_double("work-seconds", 0.5);
  cfg.ns_per_op = sv::calibrate_ns_per_op(cfg.max, work_seconds);
  const auto version = parse_version(cli.get("version", "Sequential"));

  std::printf("prime sieve up to %s — version %s, %zu filters, packs of %zu\n",
              ac::fmt_count(cfg.max).c_str(),
              std::string(sv::version_name(version)).c_str(), cfg.filters,
              cfg.pack_size);

  sv::SieveHarness harness(version, cfg);
  {
    std::string plugged;
    for (const auto& name : harness.plugged_aspects()) {
      if (!plugged.empty()) plugged += ", ";
      plugged += name;
    }
    std::printf("plugged aspects: %s\n",
                plugged.empty() ? "(none — pure core functionality)"
                                : plugged.c_str());
  }

  const auto result = harness.run();
  const long long expected = sv::count_primes_up_to(cfg.max);
  std::printf("\nfound %s primes in %.3f s  (reference: %s — %s)\n",
              ac::fmt_count(result.primes).c_str(), result.seconds,
              ac::fmt_count(expected).c_str(),
              result.primes == expected ? "CORRECT" : "WRONG");
  if (result.sync_messages + result.one_way_messages > 0) {
    std::printf("middleware traffic: %llu sync calls, %llu one-way, %s "
                "bytes on the wire\n",
                static_cast<unsigned long long>(result.sync_messages),
                static_cast<unsigned long long>(result.one_way_messages),
                ac::fmt_count(
                    static_cast<long long>(result.bytes_on_wire)).c_str());
  }
  return result.primes == expected ? 0 : 1;
}
