// Model-based fuzz harness for ShardedLru: a single-threaded reference
// model replays the cache's documented rules (LRU recency, ceil-split
// entry/byte bounds, lazy TTL reaping, counter semantics) over seeded
// random op streams and must agree with the real cache on every lookup
// result, every per-shard recency order, and every counter — exactly, not
// statistically. Failures replay with APAR_STRESS_SEED=<printed seed>.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apar/cache/sharded_lru.hpp"
#include "apar/common/rng.hpp"
#include "../stress/stress_common.hpp"

namespace cache = apar::cache;
namespace common = apar::common;

namespace {

using Lru = cache::ShardedLru<std::string, std::string>;

/// Per-entry charge used by both sides; deliberately not the default so
/// the test proves Options::size_of is honoured.
std::size_t charge_of(const std::string&, const std::string& value) {
  return 8 + value.size();
}

/// The single-threaded reference: one recency list + map per shard,
/// counting exactly what CacheStats counts.
class ReferenceModel {
 public:
  ReferenceModel(std::size_t shards, std::size_t cap_entries,
                 std::size_t cap_bytes, std::uint64_t ttl,
                 const std::uint64_t* now)
      : shards_(shards),
        cap_entries_(cap_entries),
        cap_bytes_(cap_bytes),
        ttl_(ttl),
        now_(now),
        state_(shards) {}

  std::optional<std::string> get(std::size_t shard, const std::string& key) {
    Shard& sh = state_[shard];
    ++gets;
    auto it = sh.map.find(key);
    if (it == sh.map.end()) {
      ++misses;
      return std::nullopt;
    }
    if (lapsed(it->second)) {
      remove(sh, it);
      ++expiries;
      ++misses;
      return std::nullopt;
    }
    sh.recency.remove(key);
    sh.recency.push_front(key);
    ++hits;
    return it->second.value;
  }

  void put(std::size_t shard, const std::string& key,
           const std::string& value) {
    Shard& sh = state_[shard];
    auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      sh.bytes -= it->second.charge;
      sh.recency.remove(key);
    } else {
      it = sh.map.emplace(key, Entry{}).first;
    }
    it->second.value = value;
    it->second.charge = charge_of(key, value);
    it->second.expires_at = ttl_ > 0 ? *now_ + ttl_ : 0;
    sh.recency.push_front(key);
    sh.bytes += it->second.charge;
    ++inserts;
    while (sh.map.size() > cap_entries_ ||
           (cap_bytes_ != 0 && sh.bytes > cap_bytes_)) {
      const std::string victim = sh.recency.back();
      remove(sh, sh.map.find(victim));
      ++evictions;
      if (sh.map.empty()) break;
    }
  }

  bool erase(std::size_t shard, const std::string& key) {
    Shard& sh = state_[shard];
    auto it = sh.map.find(key);
    if (it == sh.map.end()) return false;
    remove(sh, it);
    ++erases;
    return true;
  }

  [[nodiscard]] std::vector<std::string> keys(std::size_t shard) const {
    return {state_[shard].recency.begin(), state_[shard].recency.end()};
  }
  [[nodiscard]] std::size_t bytes(std::size_t shard) const {
    return state_[shard].bytes;
  }

  std::uint64_t gets = 0, hits = 0, misses = 0, inserts = 0, evictions = 0,
                expiries = 0, erases = 0;

 private:
  struct Entry {
    std::string value;
    std::size_t charge = 0;
    std::uint64_t expires_at = 0;
  };
  struct Shard {
    std::unordered_map<std::string, Entry> map;
    std::list<std::string> recency;  // MRU first
    std::size_t bytes = 0;
  };

  [[nodiscard]] bool lapsed(const Entry& e) const {
    return e.expires_at != 0 && *now_ >= e.expires_at;
  }

  void remove(Shard& sh, std::unordered_map<std::string, Entry>::iterator it) {
    sh.bytes -= it->second.charge;
    sh.recency.remove(it->first);
    sh.map.erase(it);
  }

  std::size_t shards_;
  std::size_t cap_entries_;
  std::size_t cap_bytes_;
  std::uint64_t ttl_;
  const std::uint64_t* now_;
  std::vector<Shard> state_;
};

struct FuzzConfig {
  std::size_t shards = 1;
  std::size_t max_entries = 16;
  std::size_t max_bytes = 0;
  std::uint64_t ttl = 0;
  std::size_t ops = 6000;
  std::size_t key_space = 24;
  std::uint64_t seed = 0;
};

void agree(const Lru& lru, const ReferenceModel& model) {
  const auto s = lru.stats().snapshot();
  ASSERT_EQ(s.gets, model.gets);
  ASSERT_EQ(s.hits, model.hits);
  ASSERT_EQ(s.misses, model.misses);
  ASSERT_EQ(s.inserts, model.inserts);
  ASSERT_EQ(s.evictions, model.evictions);
  ASSERT_EQ(s.expiries, model.expiries);
  ASSERT_EQ(s.erases, model.erases);
  ASSERT_EQ(s.coalesced, 0u);  // single-threaded: nothing coalesces
  for (std::size_t shard = 0; shard < lru.shard_count(); ++shard) {
    ASSERT_EQ(lru.keys_in(shard), model.keys(shard)) << "shard " << shard;
    ASSERT_EQ(lru.bytes_in(shard), model.bytes(shard)) << "shard " << shard;
  }
}

void run_fuzz(const FuzzConfig& cfg) {
  std::uint64_t now = 0;
  Lru::Options o;
  o.shards = cfg.shards;
  o.max_entries = cfg.max_entries;
  o.max_bytes = cfg.max_bytes;
  o.ttl = std::chrono::nanoseconds(cfg.ttl);
  o.size_of = charge_of;
  o.now = [&now] { return now; };
  Lru lru(o);
  ReferenceModel model(lru.shard_count(), lru.shard_entry_capacity(),
                       lru.shard_byte_capacity(), cfg.ttl, &now);

  common::Rng rng(cfg.seed);
  for (std::size_t i = 0; i < cfg.ops; ++i) {
    const std::string key =
        "k" + std::to_string(rng.uniform(0, cfg.key_space - 1));
    const std::size_t shard = lru.shard_of(key);
    const std::uint64_t roll = rng.uniform(0, 99);
    if (roll < 45) {
      const auto got = lru.get(key);
      const auto expect = model.get(shard, key);
      ASSERT_EQ(got, expect) << "op " << i << " get(" << key << ")";
    } else if (roll < 80) {
      const std::string value(rng.uniform(0, 30), 'v');
      lru.put(key, value);
      model.put(shard, key, value);
    } else if (roll < 90) {
      ASSERT_EQ(lru.erase(key), model.erase(shard, key)) << "op " << i;
    } else if (cfg.ttl > 0) {
      now += rng.uniform(1, cfg.ttl);  // advance time, sometimes past expiry
    } else {
      const auto got = lru.get(key);  // no clock: extra read traffic
      const auto expect = model.get(shard, key);
      ASSERT_EQ(got, expect) << "op " << i;
    }
    if (i % 97 == 0) {
      agree(lru, model);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  agree(lru, model);
  const auto s = lru.stats().snapshot();
  EXPECT_EQ(s.gets, s.hits + s.misses + s.coalesced);
}

}  // namespace

TEST(CacheModel, FuzzSingleShardEntryBound) {
  FuzzConfig cfg;
  cfg.seed = apar::test::announce_stress_seed(0xCACE01);
  cfg.shards = 1;
  cfg.max_entries = 8;
  run_fuzz(cfg);
}

TEST(CacheModel, FuzzMultiShardEntryBound) {
  FuzzConfig cfg;
  cfg.seed = apar::test::announce_stress_seed(0xCACE02);
  cfg.shards = 4;
  cfg.max_entries = 16;  // 4 per shard
  cfg.key_space = 48;
  run_fuzz(cfg);
}

TEST(CacheModel, FuzzByteBound) {
  FuzzConfig cfg;
  cfg.seed = apar::test::announce_stress_seed(0xCACE03);
  cfg.shards = 2;
  cfg.max_entries = 64;
  cfg.max_bytes = 200;  // 100 per shard; entries charge 8..38 bytes
  run_fuzz(cfg);
}

TEST(CacheModel, FuzzTtlWithManualClock) {
  FuzzConfig cfg;
  cfg.seed = apar::test::announce_stress_seed(0xCACE04);
  cfg.shards = 2;
  cfg.max_entries = 16;
  cfg.ttl = 64;
  run_fuzz(cfg);
}

TEST(CacheModel, FuzzEverythingAtOnce) {
  FuzzConfig cfg;
  cfg.seed = apar::test::announce_stress_seed(0xCACE05);
  cfg.shards = 4;
  cfg.max_entries = 24;
  cfg.max_bytes = 600;
  cfg.ttl = 128;
  cfg.ops = 10000;
  cfg.key_space = 40;
  run_fuzz(cfg);
}
