// CacheAspect end-to-end over the weaving Context: memoized sieve
// segments and Mandelbrot tiles, copy-restore hit semantics, per-target
// vs args-only keying, runtime unplug, and the pass-through degradation
// for unserializable signatures.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apar/aop/aop.hpp"
#include "apar/apps/mandel_worker.hpp"
#include "apar/cache/cache_aspect.hpp"
#include "apar/sieve/prime_filter.hpp"

namespace aop = apar::aop;
namespace cache = apar::cache;
using apar::apps::MandelWorker;
using apar::sieve::PrimeFilter;

namespace apar::test {

/// A class whose method signature the serial layer cannot encode — the
/// pass-through degradation target.
struct Blob {
  void* p = nullptr;
};
class Opaque {
 public:
  void absorb(Blob blob) {
    (void)blob;
    ++calls_;
  }
  [[nodiscard]] int calls() const { return calls_; }

 private:
  int calls_ = 0;
};

/// Counts its invocations so tests can see exactly when memoisation
/// short-circuited the body.
class CountingSquarer {
 public:
  explicit CountingSquarer(long long bias = 0) : bias_(bias) {}

  long long square(long long x) {
    ++calls_;
    return x * x + bias_;
  }
  [[nodiscard]] int calls() const { return calls_; }

 private:
  long long bias_;
  int calls_ = 0;
};

}  // namespace apar::test

APAR_CLASS_NAME(apar::test::Opaque, "Opaque");
APAR_METHOD_NAME(&apar::test::Opaque::absorb, "absorb");
APAR_CLASS_NAME(apar::test::CountingSquarer, "CountingSquarer");
APAR_METHOD_NAME(&apar::test::CountingSquarer::square, "square");
APAR_METHOD_IDEMPOTENT(&apar::test::CountingSquarer::square);

using apar::test::Blob;
using apar::test::CountingSquarer;
using apar::test::Opaque;

namespace {

std::shared_ptr<cache::CacheAspect<PrimeFilter>> sieve_cache() {
  auto memo = std::make_shared<cache::CacheAspect<PrimeFilter>>("Memo");
  memo->cache_method<&PrimeFilter::filter>();
  return memo;
}

}  // namespace

TEST(CacheAspect, MemoizesSieveSegmentsWithCopyRestore) {
  aop::Context ctx;
  ctx.attach(sieve_cache());
  auto filter = ctx.create<PrimeFilter>(2LL, 31LL, 0.0);

  std::vector<long long> pack;
  for (long long v = 1000; v < 1200; ++v) pack.push_back(v);
  const std::vector<long long> original = pack;
  ctx.call<&PrimeFilter::filter>(filter, pack);
  const std::vector<long long> survivors = pack;
  ASSERT_LT(survivors.size(), original.size());

  const std::uint64_t ops_after_first = filter.local()->ops();
  std::vector<long long> replay = original;
  ctx.call<&PrimeFilter::filter>(filter, replay);

  // The hit replays the recorded pack mutation without running the body:
  // identical survivors, zero additional trial divisions.
  EXPECT_EQ(replay, survivors);
  EXPECT_EQ(filter.local()->ops(), ops_after_first);
  const auto* memo =
      dynamic_cast<cache::CacheAspect<PrimeFilter>*>(ctx.find("Memo").get());
  ASSERT_NE(memo, nullptr);
  EXPECT_EQ(memo->hits(), 1u);
  EXPECT_EQ(memo->misses(), 1u);
}

TEST(CacheAspect, MemoizesMandelTiles) {
  aop::Context ctx;
  auto memo = std::make_shared<cache::CacheAspect<MandelWorker>>("Memo");
  memo->cache_method<&MandelWorker::row_checksum>();
  ctx.attach(memo);

  auto worker = ctx.create<MandelWorker>(64LL, 16LL, 300LL, 0.0);
  const auto first = ctx.call<&MandelWorker::row_checksum>(worker, 7LL);
  const auto second = ctx.call<&MandelWorker::row_checksum>(worker, 7LL);
  EXPECT_EQ(first, second);
  EXPECT_EQ(memo->hits(), 1u);
  EXPECT_EQ(memo->misses(), 1u);
  // A different tile is a different key.
  (void)ctx.call<&MandelWorker::row_checksum>(worker, 8LL);
  EXPECT_EQ(memo->misses(), 2u);
}

TEST(CacheAspect, PerTargetKeyingSeparatesDifferentlyConstructedObjects) {
  aop::Context ctx;
  auto memo = std::make_shared<cache::CacheAspect<CountingSquarer>>("Memo");
  memo->cache_method<&CountingSquarer::square>();  // default: kPerTarget
  ctx.attach(memo);

  auto plain = ctx.create<CountingSquarer>(0LL);
  auto biased = ctx.create<CountingSquarer>(100LL);
  // Same argument, different construction-fixed state: the per-target key
  // must NOT let biased steal plain's entry.
  EXPECT_EQ(ctx.call<&CountingSquarer::square>(plain, 4LL), 16LL);
  EXPECT_EQ(ctx.call<&CountingSquarer::square>(biased, 4LL), 116LL);
  EXPECT_EQ(memo->misses(), 2u);
  EXPECT_EQ(memo->hits(), 0u);
}

TEST(CacheAspect, ArgsOnlyKeyingSharesAcrossFungibleTargets) {
  aop::Context ctx;
  auto memo = std::make_shared<cache::CacheAspect<CountingSquarer>>("Memo");
  memo->cache_method<&CountingSquarer::square>(cache::KeyScope::kArgsOnly);
  ctx.attach(memo);

  auto a = ctx.create<CountingSquarer>(0LL);
  auto b = ctx.create<CountingSquarer>(0LL);  // fungible duplicate
  EXPECT_EQ(ctx.call<&CountingSquarer::square>(a, 9LL), 81LL);
  EXPECT_EQ(ctx.call<&CountingSquarer::square>(b, 9LL), 81LL);
  // b's call hit a's entry: the body ran exactly once across both targets.
  EXPECT_EQ(a.local()->calls() + b.local()->calls(), 1);
  EXPECT_EQ(memo->hits(), 1u);
}

TEST(CacheAspect, UnplugRestoresRecomputation) {
  aop::Context ctx;
  auto memo = std::make_shared<cache::CacheAspect<CountingSquarer>>("Memo");
  memo->cache_method<&CountingSquarer::square>();
  ctx.attach(memo);

  auto sq = ctx.create<CountingSquarer>(0LL);
  (void)ctx.call<&CountingSquarer::square>(sq, 3LL);
  (void)ctx.call<&CountingSquarer::square>(sq, 3LL);
  EXPECT_EQ(sq.local()->calls(), 1);

  // The paper's litmus test for every aspect: unplug at runtime and the
  // core behaves as if the concern never existed.
  ctx.detach("Memo");
  (void)ctx.call<&CountingSquarer::square>(sq, 3LL);
  (void)ctx.call<&CountingSquarer::square>(sq, 3LL);
  EXPECT_EQ(sq.local()->calls(), 3);
}

TEST(CacheAspect, DisableSkipsAdviceWithoutDetaching) {
  aop::Context ctx;
  auto memo = std::make_shared<cache::CacheAspect<CountingSquarer>>("Memo");
  memo->cache_method<&CountingSquarer::square>();
  ctx.attach(memo);

  auto sq = ctx.create<CountingSquarer>(0LL);
  memo->set_enabled(false);
  (void)ctx.call<&CountingSquarer::square>(sq, 5LL);
  (void)ctx.call<&CountingSquarer::square>(sq, 5LL);
  EXPECT_EQ(sq.local()->calls(), 2);
  EXPECT_EQ(memo->stats().snapshot().gets, 0u);

  memo->set_enabled(true);
  (void)ctx.call<&CountingSquarer::square>(sq, 5LL);
  (void)ctx.call<&CountingSquarer::square>(sq, 5LL);
  EXPECT_EQ(sq.local()->calls(), 3);
}

TEST(CacheAspect, UnserializableSignatureDegradesToPassThrough) {
  aop::Context ctx;
  auto memo = std::make_shared<cache::CacheAspect<Opaque>>("Memo");
  memo->cache_method<&Opaque::absorb>();
  ctx.attach(memo);

  auto obj = ctx.create<Opaque>();
  ctx.call<&Opaque::absorb>(obj, Blob{});
  ctx.call<&Opaque::absorb>(obj, Blob{});
  // Every call ran the body; the cache saw no traffic at all.
  EXPECT_EQ(obj.local()->calls(), 2);
  EXPECT_EQ(memo->stats().snapshot().gets, 0u);
  // But the advice metadata still records the gap for the analyzer.
  ASSERT_EQ(memo->advice().size(), 1u);
  EXPECT_TRUE(memo->advice()[0]->caches());
  EXPECT_FALSE(memo->advice()[0]->cache_idempotent());
  EXPECT_FALSE(memo->advice()[0]->cache_args()[0].serializable);
}

TEST(CacheAspect, BoundedStoreEvictsOldEntries) {
  aop::Context ctx;
  cache::CacheAspect<CountingSquarer>::Options copts;
  copts.shards = 1;
  copts.max_entries = 2;  // tiny: the third distinct key evicts the LRU
  auto memo = std::make_shared<cache::CacheAspect<CountingSquarer>>("Memo",
                                                                    copts);
  memo->cache_method<&CountingSquarer::square>();
  ctx.attach(memo);

  auto sq = ctx.create<CountingSquarer>(0LL);
  (void)ctx.call<&CountingSquarer::square>(sq, 1LL);
  (void)ctx.call<&CountingSquarer::square>(sq, 2LL);
  (void)ctx.call<&CountingSquarer::square>(sq, 3LL);  // evicts key(1)
  (void)ctx.call<&CountingSquarer::square>(sq, 1LL);  // recomputes
  EXPECT_EQ(sq.local()->calls(), 4);
  EXPECT_EQ(memo->stats().snapshot().evictions, 2u);
}
