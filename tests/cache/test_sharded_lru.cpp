// Unit tests for the sharded concurrent LRU: deterministic single-thread
// behaviour — recency order, entry/byte bounds, TTL reaping, counter
// exactness. The model-based fuzz harness (test_cache_model.cpp) replays
// the same rules at scale; these tests pin each rule individually.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "apar/cache/sharded_lru.hpp"

namespace cache = apar::cache;

namespace {

using Lru = cache::ShardedLru<std::string, std::string>;

/// One shard and a fixed charge of 10 bytes per entry: every structural
/// rule becomes exactly predictable.
Lru::Options single_shard(std::size_t max_entries, std::size_t max_bytes = 0) {
  Lru::Options o;
  o.shards = 1;
  o.max_entries = max_entries;
  o.max_bytes = max_bytes;
  o.size_of = [](const std::string&, const std::string&) {
    return std::size_t{10};
  };
  return o;
}

}  // namespace

TEST(ShardedLru, MissThenPutThenHit) {
  Lru lru(single_shard(4));
  EXPECT_FALSE(lru.get("a").has_value());
  lru.put("a", "1");
  const auto v = lru.get("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "1");

  const auto s = lru.stats().snapshot();
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.inserts, 1u);
}

TEST(ShardedLru, EvictsLeastRecentlyUsed) {
  Lru lru(single_shard(3));
  lru.put("a", "1");
  lru.put("b", "2");
  lru.put("c", "3");
  // Freshen "a": the LRU tail is now "b".
  ASSERT_TRUE(lru.get("a").has_value());
  lru.put("d", "4");

  EXPECT_FALSE(lru.peek("b"));
  EXPECT_TRUE(lru.peek("a"));
  EXPECT_TRUE(lru.peek("c"));
  EXPECT_TRUE(lru.peek("d"));
  EXPECT_EQ(lru.stats().snapshot().evictions, 1u);

  // MRU-first recency order.
  const auto keys = lru.keys_in(0);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "d");
  EXPECT_EQ(keys[1], "a");
  EXPECT_EQ(keys[2], "c");
}

TEST(ShardedLru, OverwriteMovesToFrontAndCountsInsert) {
  Lru lru(single_shard(3));
  lru.put("a", "1");
  lru.put("b", "2");
  lru.put("a", "one");  // overwrite: "a" becomes MRU, still 2 entries
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_EQ(lru.stats().snapshot().inserts, 3u);
  EXPECT_EQ(lru.keys_in(0).front(), "a");
  EXPECT_EQ(*lru.get("a"), "one");
}

TEST(ShardedLru, ByteBoundEvictsFromTail) {
  // 10 bytes per entry, 25-byte budget: the third insert is over budget
  // and evicts the tail.
  Lru lru(single_shard(100, 25));
  lru.put("a", "1");
  lru.put("b", "2");
  EXPECT_EQ(lru.bytes(), 20u);
  lru.put("c", "3");
  EXPECT_EQ(lru.size(), 2u);
  EXPECT_FALSE(lru.peek("a"));
  EXPECT_EQ(lru.stats().snapshot().evictions, 1u);
}

TEST(ShardedLru, OversizedEntryEvictsItself) {
  Lru::Options o = single_shard(100, 5);  // every 10-byte entry is oversized
  Lru lru(o);
  lru.put("a", "1");
  // Inserted, then immediately evicted to honour the byte bound: the
  // deterministic "shard ends empty" rule the model test replays.
  EXPECT_EQ(lru.size(), 0u);
  EXPECT_EQ(lru.bytes(), 0u);
  const auto s = lru.stats().snapshot();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(ShardedLru, TtlExpiresOnLookup) {
  std::uint64_t now = 0;
  Lru::Options o = single_shard(4);
  o.ttl = std::chrono::nanoseconds(100);
  o.now = [&now] { return now; };
  Lru lru(o);

  lru.put("a", "1");
  now = 99;
  EXPECT_TRUE(lru.get("a").has_value());  // still live
  now = 100;
  EXPECT_FALSE(lru.get("a").has_value());  // lapsed: reaped, miss
  const auto s = lru.stats().snapshot();
  EXPECT_EQ(s.expiries, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(lru.size(), 0u);
}

TEST(ShardedLru, TtlRefreshedByOverwriteNotByGet) {
  std::uint64_t now = 0;
  Lru::Options o = single_shard(4);
  o.ttl = std::chrono::nanoseconds(100);
  o.now = [&now] { return now; };
  Lru lru(o);

  lru.put("a", "1");
  now = 60;
  EXPECT_TRUE(lru.get("a").has_value());  // read does NOT extend the TTL
  now = 100;
  EXPECT_FALSE(lru.get("a").has_value());

  lru.put("b", "2");       // expires at 200
  now = 150;
  lru.put("b", "2b");      // overwrite: expiry pushed to 250
  now = 220;
  EXPECT_TRUE(lru.get("b").has_value());
}

TEST(ShardedLru, EraseCountsEraseEvenWhenExpired) {
  std::uint64_t now = 0;
  Lru::Options o = single_shard(4);
  o.ttl = std::chrono::nanoseconds(10);
  o.now = [&now] { return now; };
  Lru lru(o);

  lru.put("a", "1");
  now = 50;  // "a" lapsed but not yet reaped (no lookup touched it)
  EXPECT_TRUE(lru.erase("a"));
  EXPECT_FALSE(lru.erase("a"));
  const auto s = lru.stats().snapshot();
  EXPECT_EQ(s.erases, 1u);
  EXPECT_EQ(s.expiries, 0u);
}

TEST(ShardedLru, PeekHasNoSideEffects) {
  Lru lru(single_shard(2));
  lru.put("a", "1");
  lru.put("b", "2");
  EXPECT_TRUE(lru.peek("a"));
  // peek must not have freshened "a": it is still the LRU tail.
  lru.put("c", "3");
  EXPECT_FALSE(lru.peek("a"));
  const auto s = lru.stats().snapshot();
  EXPECT_EQ(s.gets, 0u);
  EXPECT_EQ(s.hits, 0u);
}

TEST(ShardedLru, ShardingSplitsCapacityCeil) {
  Lru::Options o;
  o.shards = 3;  // rounded up to 4
  o.max_entries = 10;
  Lru lru(o);
  EXPECT_EQ(lru.shard_count(), 4u);
  EXPECT_EQ(lru.shard_entry_capacity(), 3u);  // ceil(10/4)
  // Keys land on the shard shard_of says they do.
  lru.put("k", "v");
  EXPECT_EQ(lru.entries_in(lru.shard_of("k")), 1u);
}

TEST(ShardedLru, ClearResetsEntriesAndBytes) {
  Lru lru(single_shard(8));
  lru.put("a", "1");
  lru.put("b", "2");
  lru.clear();
  EXPECT_EQ(lru.size(), 0u);
  EXPECT_EQ(lru.bytes(), 0u);
  EXPECT_FALSE(lru.peek("a"));
}

TEST(ShardedLru, DefaultChargeCountsDynamicPayload) {
  const std::string key(3, 'k');
  const std::string value(40, 'v');
  EXPECT_EQ(Lru::default_charge(key, value),
            sizeof(std::string) * 2 + 3 + 40);
}

TEST(ShardedLru, GetOrComputeCachesSuccessAndSkipsRecompute) {
  Lru lru(single_shard(4));
  int computed = 0;
  const auto compute = [&computed] {
    ++computed;
    return std::string("value");
  };
  EXPECT_EQ(lru.get_or_compute("k", compute), "value");
  EXPECT_EQ(lru.get_or_compute("k", compute), "value");
  EXPECT_EQ(computed, 1);
  const auto s = lru.stats().snapshot();
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(ShardedLru, GetOrComputeNeverCachesErrors) {
  Lru lru(single_shard(4));
  int calls = 0;
  const auto failing = [&calls]() -> std::string {
    ++calls;
    throw std::runtime_error("transient");
  };
  EXPECT_THROW(lru.get_or_compute("k", failing), std::runtime_error);
  EXPECT_FALSE(lru.peek("k"));
  // The failure did not poison the key: the next call recomputes.
  int ok_calls = 0;
  EXPECT_EQ(lru.get_or_compute("k",
                               [&ok_calls] {
                                 ++ok_calls;
                                 return std::string("fine");
                               }),
            "fine");
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(ok_calls, 1);
  EXPECT_EQ(lru.stats().snapshot().inserts, 1u);
}

TEST(ShardedLru, StatsInvariantGetsSplitExactly) {
  Lru lru(single_shard(2));
  for (int i = 0; i < 50; ++i) {
    const std::string k = "k" + std::to_string(i % 5);
    if (i % 3 == 0) lru.put(k, "v");
    (void)lru.get(k);
  }
  const auto s = lru.stats().snapshot();
  EXPECT_EQ(s.gets, s.hits + s.misses + s.coalesced);
}
