// CacheAspect composed with the fault-injecting middleware decorator:
// remote failures must surface to the caller and never be memoized, and
// a warm cache must answer hits without the call ever reaching the fault
// layer (the cache sits in front of the wire).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../strategies/fixtures.hpp"
#include "apar/cluster/fault_injection.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/cache/cache_aspect.hpp"
#include "apar/strategies/distribution_aspect.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace cache = apar::cache;
namespace st = apar::strategies;
using apar::test::SlowStage;

namespace {

using Dist = st::DistributionAspect<SlowStage, long long, long long>;

/// In-process cluster behind a fault decorator, with the memoization
/// aspect (order 450) layered in front of distribution (order 500): a
/// cache miss pays the faulty wire, a hit never reaches it.
struct FaultRig {
  explicit FaultRig(ac::FaultInjectingMiddleware::Options fopts) {
    ac::Cluster::Options copts;
    copts.nodes = 2;
    cluster = std::make_unique<ac::Cluster>(copts);
    cluster->registry()
        .bind<SlowStage>("SlowStage")
        .ctor<long long, long long>()
        .method<&SlowStage::query>("query");
    inner = std::make_unique<ac::RmiMiddleware>(*cluster,
                                                ac::CostModel::loopback());
    faulty = std::make_unique<ac::FaultInjectingMiddleware>(*inner, fopts);

    auto dist = std::make_shared<Dist>("Distribution", *cluster, *faulty);
    dist->distribute_method<&SlowStage::query>();
    memo = std::make_shared<cache::CacheAspect<SlowStage>>("Memo");
    memo->cache_method<&SlowStage::query>();
    ctx.attach(memo);
    ctx.attach(dist);
  }

  std::unique_ptr<ac::Cluster> cluster;
  std::unique_ptr<ac::RmiMiddleware> inner;
  std::unique_ptr<ac::FaultInjectingMiddleware> faulty;
  std::shared_ptr<cache::CacheAspect<SlowStage>> memo;
  aop::Context ctx;
};

}  // namespace

TEST(CacheFaults, DroppedRemoteCallIsNeverCached) {
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = 11;
  fopts.drop_rate = 1.0;  // every message is lost
  FaultRig rig(fopts);

  auto ref = rig.ctx.create<SlowStage>(7LL, 0LL);  // creates are unfaulted
  ASSERT_TRUE(ref.is_remote());
  EXPECT_THROW((void)rig.ctx.call<&SlowStage::query>(ref, 1LL),
               ac::rpc::RpcError);
  // The failure flowed through get_or_compute: counted as the computing
  // miss, memoized never.
  const auto after_failure = rig.memo->stats().snapshot();
  EXPECT_EQ(after_failure.misses, 1u);
  EXPECT_EQ(after_failure.inserts, 0u);

  // Heal the wire: the same call recomputes (no poisoned entry), then a
  // third call hits without another remote dispatch.
  rig.faulty->set_armed(false);
  EXPECT_EQ(rig.ctx.call<&SlowStage::query>(ref, 1LL), 8LL);
  const auto wire_calls = rig.inner->stats().sync_calls.load();
  EXPECT_EQ(rig.ctx.call<&SlowStage::query>(ref, 1LL), 8LL);
  EXPECT_EQ(rig.inner->stats().sync_calls.load(), wire_calls);
  const auto s = rig.memo->stats().snapshot();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.inserts, 1u);
}

TEST(CacheFaults, WarmHitNeverReachesTheFaultLayer) {
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = 12;
  fopts.drop_rate = 1.0;
  FaultRig rig(fopts);
  rig.faulty->set_armed(false);  // calm wire while priming

  auto ref = rig.ctx.create<SlowStage>(3LL, 0LL);
  EXPECT_EQ(rig.ctx.call<&SlowStage::query>(ref, 10LL), 13LL);

  // Wire goes fully lossy. The cached key still answers — and the fault
  // layer never even decided on the call, because it never saw it.
  rig.faulty->set_armed(true);
  const auto intercepted = rig.faulty->fault_stats().intercepted.load();
  EXPECT_EQ(rig.ctx.call<&SlowStage::query>(ref, 10LL), 13LL);
  EXPECT_EQ(rig.faulty->fault_stats().intercepted.load(), intercepted);
  EXPECT_EQ(rig.memo->hits(), 1u);
}

TEST(CacheFaults, ColdKeySurfacesTheFaultInsteadOfStaleData) {
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = 13;
  fopts.drop_rate = 1.0;
  FaultRig rig(fopts);
  rig.faulty->set_armed(false);

  auto ref = rig.ctx.create<SlowStage>(3LL, 0LL);
  EXPECT_EQ(rig.ctx.call<&SlowStage::query>(ref, 10LL), 13LL);

  // A DIFFERENT argument is a different key: no silent substitution of a
  // nearby cached value — the miss pays the (now dead) wire and throws.
  rig.faulty->set_armed(true);
  EXPECT_THROW((void)rig.ctx.call<&SlowStage::query>(ref, 11LL),
               ac::rpc::RpcError);
  EXPECT_EQ(rig.memo->stats().snapshot().inserts, 1u);  // only the primed key
}

TEST(CacheFaults, RetryAfterTransientDropsEventuallyCaches) {
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = 21;
  fopts.drop_rate = 0.5;  // transient: some calls get through
  FaultRig rig(fopts);

  auto ref = rig.ctx.create<SlowStage>(1LL, 0LL);
  long long value = 0;
  int attempts = 0;
  for (; attempts < 64; ++attempts) {
    try {
      value = rig.ctx.call<&SlowStage::query>(ref, 5LL);
      break;
    } catch (const ac::rpc::RpcError&) {
      // injected drop: retry the same key
    }
  }
  ASSERT_LT(attempts, 64) << "seeded 50% drop never let a call through";
  EXPECT_EQ(value, 6LL);

  // First success populated the cache; from here on the lossy wire is
  // irrelevant for this key.
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(rig.ctx.call<&SlowStage::query>(ref, 5LL), 6LL);
  const auto s = rig.memo->stats().snapshot();
  EXPECT_EQ(s.hits, 10u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.misses, static_cast<std::uint64_t>(attempts) + 1u);
}
