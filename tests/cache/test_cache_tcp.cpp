// CacheAspect over the real TCP transport: a memoized hit must skip the
// socket round-trip entirely (frame counters frozen), and the
// TcpMiddleware registry-lookup cache must answer repeat lookups locally
// while bind_name invalidates its own entry. Loopback-only; skips where
// the sandbox forbids sockets.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "../net/net_fixtures.hpp"
#include "../strategies/fixtures.hpp"
#include "apar/cache/cache_aspect.hpp"
#include "apar/strategies/distribution_aspect.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace as = apar::serial;
namespace cache = apar::cache;
namespace net = apar::net;
namespace st = apar::strategies;
using apar::test::SlowStage;

namespace {

void register_slow_stage(ac::rpc::Registry& registry) {
  registry.bind<SlowStage>("SlowStage")
      .ctor<long long, long long>()
      .method<&SlowStage::filter>("filter")
      .method<&SlowStage::query>("query");
}

}  // namespace

TEST(CacheTcp, CachedRemoteCallSkipsTheWire) {
  APAR_REQUIRE_LOOPBACK();
  ac::rpc::Registry registry;
  register_slow_stage(registry);
  net::TcpServer server(registry);

  net::TcpMiddleware::Options mopts;
  mopts.endpoints = {{"127.0.0.1", server.port()}};
  net::TcpMiddleware mw(mopts);
  net::TcpFabric fabric(mw);

  using Dist = st::DistributionAspect<SlowStage, long long, long long>;
  aop::Context ctx;
  auto dist = std::make_shared<Dist>("Distribution", fabric, mw);
  dist->distribute_method<&SlowStage::filter>()
      .distribute_method<&SlowStage::query>();
  auto memo = std::make_shared<cache::CacheAspect<SlowStage>>("Memo");
  memo->cache_method<&SlowStage::filter>().cache_method<&SlowStage::query>();
  ctx.attach(memo);
  ctx.attach(dist);

  auto ref = ctx.create<SlowStage>(5LL, 0LL);
  ASSERT_TRUE(ref.is_remote());

  // Miss: the call crosses the socket. Hit: identical result, and the
  // frame counters prove not one byte moved — the RTT the paper's
  // optimisation family is meant to save.
  EXPECT_EQ(ctx.call<&SlowStage::query>(ref, 37LL), 42LL);
  const auto after_miss = mw.net_counters();
  EXPECT_EQ(ctx.call<&SlowStage::query>(ref, 37LL), 42LL);
  const auto after_hit = mw.net_counters();
  EXPECT_EQ(after_hit.frames_sent, after_miss.frames_sent);
  EXPECT_EQ(after_hit.wire_bytes_sent, after_miss.wire_bytes_sent);
  EXPECT_EQ(memo->hits(), 1u);
  EXPECT_EQ(memo->misses(), 1u);

  // Copy-restore effects replay on hits too: the in-place pack mutation
  // recorded on the miss comes back byte-identical without a dispatch.
  std::vector<long long> pack{1, 2, 3};
  ctx.call<&SlowStage::filter>(ref, pack);
  EXPECT_EQ(pack, (std::vector<long long>{6, 7, 8}));
  const auto before_replay = mw.net_counters();
  std::vector<long long> again{1, 2, 3};
  ctx.call<&SlowStage::filter>(ref, again);
  EXPECT_EQ(again, (std::vector<long long>{6, 7, 8}));
  EXPECT_EQ(mw.net_counters().frames_sent, before_replay.frames_sent);
}

TEST(CacheTcp, LookupCacheAnswersRepeatLookupsLocally) {
  APAR_REQUIRE_LOOPBACK();
  apar::test::TcpRig rig;  // plain middleware hosts the shared server
  net::TcpMiddleware::Options mopts;
  mopts.endpoints = {{"127.0.0.1", rig.server->port()}};
  mopts.lookup_cache_entries = 16;
  net::TcpMiddleware mw(mopts);

  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 0LL));
  mw.bind_name("shared", handle);

  const auto first = mw.lookup("shared");
  ASSERT_TRUE(first.has_value());
  const auto after_first = mw.net_counters();
  const auto second = mw.lookup("shared");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, *first);
  // The repeat lookup never touched the registry server.
  EXPECT_EQ(mw.net_counters().frames_sent, after_first.frames_sent);
  ASSERT_NE(mw.lookup_cache_stats(), nullptr);
  EXPECT_EQ(mw.lookup_cache_stats()->snapshot().hits, 1u);
  // stats().lookups still counts every call — the cache is invisible to
  // the accounting the distribution aspect asserts on.
  EXPECT_EQ(mw.stats().lookups.load(), 2u);
}

TEST(CacheTcp, BindNameInvalidatesOwnCacheEntry) {
  APAR_REQUIRE_LOOPBACK();
  apar::test::TcpRig rig;
  net::TcpMiddleware::Options mopts;
  mopts.endpoints = {{"127.0.0.1", rig.server->port()}};
  mopts.lookup_cache_entries = 16;
  net::TcpMiddleware mw(mopts);

  const auto a = mw.create(0, "Counter", as::encode(mw.wire_format(), 1LL));
  const auto b = mw.create(0, "Counter", as::encode(mw.wire_format(), 2LL));
  ASSERT_NE(a, b);

  mw.bind_name("svc", a);
  ASSERT_EQ(*mw.lookup("svc"), a);  // now cached

  // Rebinding through this middleware must not leave the stale handle
  // cached: the next lookup goes back to the wire and sees b.
  mw.bind_name("svc", b);
  const auto before = mw.net_counters();
  const auto rebound = mw.lookup("svc");
  ASSERT_TRUE(rebound.has_value());
  EXPECT_EQ(*rebound, b);
  EXPECT_GT(mw.net_counters().frames_sent, before.frames_sent);
}

TEST(CacheTcp, NegativeLookupsAreNotCached) {
  APAR_REQUIRE_LOOPBACK();
  apar::test::TcpRig rig;
  net::TcpMiddleware::Options mopts;
  mopts.endpoints = {{"127.0.0.1", rig.server->port()}};
  mopts.lookup_cache_entries = 16;
  net::TcpMiddleware mw(mopts);

  // A miss may be a race with a concurrent bind: it must never be
  // memoized, so the name is found the moment it exists.
  EXPECT_FALSE(mw.lookup("late").has_value());
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 0LL));
  mw.bind_name("late", handle);
  const auto found = mw.lookup("late");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, handle);
}
