// Concurrency exactness for ShardedLru: N threads hammering shared key
// sets must produce exactly-accountable counters — compute-function
// invocations equal distinct keys (single-flight dedupes racing misses),
// gets always split exactly into hits + misses + coalesced, and a
// throwing compute reaches every waiter while caching nothing. Meant to
// run under tsan as part of `ctest -L cache` (tools/run_stress.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apar/cache/sharded_lru.hpp"

namespace cache = apar::cache;

namespace {

using Lru = cache::ShardedLru<std::string, std::string>;

}  // namespace

TEST(CacheConcurrency, SingleFlightComputesOncePerDistinctKey) {
  Lru::Options o;
  o.shards = 4;
  o.max_entries = 1024;  // nothing evicts: every compute should be reused
  Lru lru(o);

  constexpr int kThreads = 8;
  constexpr int kKeys = 16;
  constexpr int kRounds = 50;
  std::atomic<int> computes{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        for (int k = 0; k < kKeys; ++k) {
          const std::string key = "key" + std::to_string(k);
          const std::string value = lru.get_or_compute(key, [&] {
            computes.fetch_add(1);
            // Widen the race window so racing misses actually coalesce.
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            return "v" + std::to_string(k);
          });
          ASSERT_EQ(value, "v" + std::to_string(k));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // The heart of the exactness claim: racing misses elected one leader
  // per key, every other thread either hit or coalesced.
  EXPECT_EQ(computes.load(), kKeys);
  const auto s = lru.stats().snapshot();
  EXPECT_EQ(s.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(s.gets,
            static_cast<std::uint64_t>(kThreads) * kKeys * kRounds);
  EXPECT_EQ(s.gets, s.hits + s.misses + s.coalesced);
  EXPECT_EQ(s.inserts, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(lru.size(), static_cast<std::size_t>(kKeys));
}

TEST(CacheConcurrency, CountersSumExactlyUnderMixedTraffic) {
  Lru::Options o;
  o.shards = 8;
  o.max_entries = 32;  // small: plenty of evictions under pressure
  Lru lru(o);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lru, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 64);
        switch (i % 4) {
          case 0: lru.put(key, "v"); break;
          case 1: (void)lru.erase(key); break;
          default: (void)lru.get(key); break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto s = lru.stats().snapshot();
  // gets split exactly, puts all accounted, bounds never exceeded.
  EXPECT_EQ(s.gets, s.hits + s.misses + s.coalesced);
  EXPECT_EQ(s.gets,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread / 2);
  EXPECT_EQ(s.inserts,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread / 4);
  EXPECT_LE(lru.size(), lru.shard_count() * lru.shard_entry_capacity());
}

TEST(CacheConcurrency, ComputeErrorReachesEveryWaiterAndCachesNothing) {
  Lru::Options o;
  o.shards = 1;
  Lru lru(o);

  constexpr int kThreads = 6;
  std::atomic<int> computes{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        (void)lru.get_or_compute("doomed", [&]() -> std::string {
          computes.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          throw std::runtime_error("boom");
        });
        ADD_FAILURE() << "get_or_compute must rethrow the compute error";
      } catch (const std::runtime_error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every thread observed the failure (leader rethrow or waiter
  // delivery), and the error was never memoized.
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_FALSE(lru.peek("doomed"));
  EXPECT_EQ(lru.stats().snapshot().inserts, 0u);
  // Each failed flight retired its in-flight slot, so computes can be
  // anywhere in [1, kThreads] — but a later success must compute afresh.
  EXPECT_GE(computes.load(), 1);
  EXPECT_EQ(lru.get_or_compute("doomed", [] { return std::string("ok"); }),
            "ok");
  EXPECT_TRUE(lru.peek("doomed"));
}

TEST(CacheConcurrency, DistinctShardsProgressIndependently) {
  Lru::Options o;
  o.shards = 8;
  o.max_entries = 800;
  Lru lru(o);

  // One slow compute must not block hits on other keys: start a leader
  // that holds its flight open, then require fast completion elsewhere.
  std::atomic<bool> release{false};
  std::thread slow([&] {
    (void)lru.get_or_compute("slow-key", [&] {
      while (!release.load()) std::this_thread::sleep_for(
          std::chrono::milliseconds(1));
      return std::string("slow");
    });
  });

  const auto started = std::chrono::steady_clock::now();
  for (int i = 0; i < 100; ++i) {
    const std::string key = "fast" + std::to_string(i);
    EXPECT_EQ(lru.get_or_compute(key, [&] { return key; }), key);
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  release.store(true);
  slow.join();
  // 100 computes while the slow flight was open: the store never
  // serialized unrelated keys behind it.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
  EXPECT_EQ(*lru.get("slow-key"), "slow");
}
