#pragma once

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "apar/aop/aop.hpp"

namespace apar::test {

/// A Stage<long long> whose process() takes measurable time and detects
/// concurrent entry — the instrument for concurrency-aspect tests.
class SlowStage {
 public:
  explicit SlowStage(long long id, long long delay_us = 0)
      : id_(id), delay_us_(delay_us) {}

  void filter(std::vector<long long>& pack) {
    enter();
    for (long long& v : pack) v += id_;
    if (delay_us_ > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
    leave();
  }

  void process(std::vector<long long>& pack) {
    filter(pack);
    collect(pack);
  }

  void collect(const std::vector<long long>& pack) {
    enter();
    results_.insert(results_.end(), pack.begin(), pack.end());
    leave();
  }

  std::vector<long long> take_results() {
    std::vector<long long> out;
    out.swap(results_);
    return out;
  }

  /// Value-returning query with the stage's latency — the target for
  /// replicated-computation tests.
  long long query(long long x) {
    enter();
    if (delay_us_ > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
    leave();
    return id_ + x;
  }

  [[nodiscard]] long long id() const { return id_; }
  [[nodiscard]] bool overlapped() const { return overlapped_.load(); }
  [[nodiscard]] int calls() const { return calls_.load(); }

 private:
  void enter() {
    ++calls_;
    if (++inside_ > 1) overlapped_ = true;
  }
  void leave() { --inside_; }

  long long id_;
  long long delay_us_;
  std::vector<long long> results_;
  std::atomic<int> inside_{0};
  std::atomic<int> calls_{0};
  std::atomic<bool> overlapped_{false};
};

}  // namespace apar::test

APAR_CLASS_NAME(apar::test::SlowStage, "SlowStage");
APAR_METHOD_NAME(&apar::test::SlowStage::filter, "filter");
APAR_METHOD_NAME(&apar::test::SlowStage::process, "process");
APAR_METHOD_NAME(&apar::test::SlowStage::collect, "collect");
APAR_METHOD_NAME(&apar::test::SlowStage::take_results, "take_results");
APAR_METHOD_NAME(&apar::test::SlowStage::query, "query");
