#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/farm_aspect.hpp"
#include "fixtures.hpp"

namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::test::SlowStage;

using Farm = st::FarmAspect<SlowStage, long long, long long, long long>;

namespace {
Farm::Options farm_options(std::size_t workers, std::size_t pack_size) {
  Farm::Options opts;
  opts.duplicates = workers;
  opts.pack_size = pack_size;
  return opts;
}

std::vector<long long> iota_data(std::size_t n) {
  std::vector<long long> data(n);
  std::iota(data.begin(), data.end(), 0);
  return data;
}
}  // namespace

TEST(FarmAspect, BroadcastCtorArgsToAllWorkers) {
  aop::Context ctx;
  auto farm = std::make_shared<Farm>(farm_options(4, 10));
  ctx.attach(farm);
  auto first = ctx.create<SlowStage>(7LL, 0LL);
  ASSERT_EQ(farm->workers().size(), 4u);
  for (const auto& w : farm->workers()) EXPECT_EQ(w.local()->id(), 7);
  EXPECT_EQ(first.identity(), farm->workers().front().identity());
}

TEST(FarmAspect, RoundRobinSpreadsPacksEvenly) {
  aop::Context ctx;
  auto farm = std::make_shared<Farm>(farm_options(4, 10));
  ctx.attach(farm);
  auto first = ctx.create<SlowStage>(0LL, 0LL);
  auto data = iota_data(120);  // 12 packs over 4 workers
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();
  for (const auto& w : farm->workers()) EXPECT_EQ(w.local()->calls(), 3 * 2);
}

TEST(FarmAspect, ResultsMatchSequentialCore) {
  aop::Context ctx;
  auto farm = std::make_shared<Farm>(farm_options(3, 7));
  ctx.attach(farm);
  auto first = ctx.create<SlowStage>(100LL, 0LL);
  auto data = iota_data(50);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();
  auto results = farm->gather_results(ctx);
  std::sort(results.begin(), results.end());

  SlowStage reference(100);
  auto ref_data = iota_data(50);
  reference.process(ref_data);
  auto expected = reference.take_results();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(results, expected);
}

TEST(FarmAspect, ConcurrentFarmMatchesCore) {
  aop::Context ctx;
  auto farm = std::make_shared<Farm>(farm_options(4, 5));
  ctx.attach(farm);
  auto conc = std::make_shared<st::ConcurrencyAspect<SlowStage>>("Concurrency");
  conc->async_method<&SlowStage::process>();
  ctx.attach(conc);

  auto first = ctx.create<SlowStage>(10LL, 100LL);
  auto data = iota_data(100);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();
  auto results = farm->gather_results(ctx);
  EXPECT_EQ(results.size(), 100u);
  for (const auto& w : farm->workers()) EXPECT_FALSE(w.local()->overlapped());
}

TEST(FarmAspect, RandomRoutingCoversAllWorkersEventually) {
  aop::Context ctx;
  auto opts = farm_options(4, 1);
  opts.routing = st::RoutingPolicy::kRandom;
  auto farm = std::make_shared<Farm>(opts);
  ctx.attach(farm);
  auto first = ctx.create<SlowStage>(0LL, 0LL);
  auto data = iota_data(200);  // 200 single-element packs
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();
  for (const auto& w : farm->workers()) EXPECT_GT(w.local()->calls(), 0);
  EXPECT_EQ(farm->gather_results(ctx).size(), 200u);
}

TEST(FarmAspect, SingleWorkerFarmEqualsCore) {
  aop::Context ctx;
  auto farm = std::make_shared<Farm>(farm_options(1, 1000));
  ctx.attach(farm);
  auto first = ctx.create<SlowStage>(5LL, 0LL);
  auto data = iota_data(20);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();
  EXPECT_EQ(farm->gather_results(ctx).size(), 20u);
}

TEST(FarmAspect, SwappingPipelineForFarmIsAnAspectSwap) {
  // Paper §7: "exchanging a pipeline by a farm partition" is plugging a
  // different module — the core code below is identical in both runs.
  aop::Context ctx;
  auto farm = std::make_shared<Farm>(farm_options(2, 10));
  ctx.attach(farm);
  {
    auto first = ctx.create<SlowStage>(1LL, 0LL);
    auto data = iota_data(30);
    ctx.call<&SlowStage::process>(first, data);
    ctx.quiesce();
    EXPECT_EQ(farm->gather_results(ctx).size(), 30u);
  }
  ctx.detach("Farm");
  {
    // Same core lines, no partition: plain sequential behaviour.
    auto first = ctx.create<SlowStage>(1LL, 0LL);
    auto data = iota_data(30);
    ctx.call<&SlowStage::process>(first, data);
    ctx.quiesce();
    EXPECT_EQ(first.local()->take_results().size(), 30u);
  }
}
