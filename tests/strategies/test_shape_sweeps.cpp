// Property sweeps over strategy configuration shapes: grid geometries for
// the heartbeat, worker/pack combinations for the farm. Every shape must
// be exact — these are the configurations users actually vary.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <tuple>

#include "apar/apps/heat_band.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/farm_aspect.hpp"
#include "apar/strategies/heartbeat_aspect.hpp"
#include "fixtures.hpp"

namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::apps::HeatBand;
using apar::test::SlowStage;

namespace {

using Heart = st::HeartbeatAspect<HeatBand, long long, long long, long long,
                                  long long, double>;

Heart::Options band_split(std::size_t bands) {
  Heart::Options opts;
  opts.bands = bands;
  opts.ctor_args =
      [](std::size_t i, std::size_t k,
         const std::tuple<long long, long long, long long, long long,
                          double>& original) {
        const auto [rows, cols, offset, total, ns] = original;
        (void)offset;
        const long long share = rows / static_cast<long long>(k);
        const long long extra = rows % static_cast<long long>(k);
        const long long my_rows =
            share + (static_cast<long long>(i) < extra ? 1 : 0);
        long long my_offset = 0;
        for (std::size_t j = 0; j < i; ++j)
          my_offset += share + (static_cast<long long>(j) < extra ? 1 : 0);
        return std::make_tuple(my_rows, cols, my_offset, total, ns);
      };
  return opts;
}

}  // namespace

/// rows x cols x bands x iterations — including bands == rows (1-row
/// bands, halos only) and non-divisible splits.
class HeatShapeSweep
    : public ::testing::TestWithParam<
          std::tuple<long long, long long, std::size_t, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Geometries, HeatShapeSweep,
    ::testing::Values(
        std::make_tuple(7LL, 3LL, std::size_t{7}, 9),    // 1-row bands
        std::make_tuple(9LL, 4LL, std::size_t{4}, 11),   // uneven split
        std::make_tuple(16LL, 1LL, std::size_t{3}, 8),   // 1-column grid
        std::make_tuple(1LL, 8LL, std::size_t{1}, 5),    // single row
        std::make_tuple(13LL, 5LL, std::size_t{2}, 40)), // long run
    [](const auto& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "c" +
             std::to_string(std::get<1>(info.param)) + "b" +
             std::to_string(std::get<2>(info.param)) + "i" +
             std::to_string(std::get<3>(info.param));
    });

TEST_P(HeatShapeSweep, BitExactForEveryGeometry) {
  const auto [rows, cols, bands, iters] = GetParam();

  HeatBand reference(rows, cols, 0, rows, 0.0);
  reference.run(iters);

  aop::Context ctx;
  auto heart = std::make_shared<Heart>(band_split(bands));
  ctx.attach(heart);
  auto first = ctx.create<HeatBand>(rows, cols, 0LL, rows, 0.0);
  ctx.call<&HeatBand::run>(first, iters);
  ctx.quiesce();

  std::vector<double> stitched;
  for (auto& band : heart->bands()) {
    auto part = band.local()->snapshot();
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  EXPECT_EQ(stitched, reference.snapshot());
}

/// workers x pack-size x routing sweep on the farm.
class FarmShapeSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, st::RoutingPolicy>> {};

INSTANTIATE_TEST_SUITE_P(
    Configs, FarmShapeSweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{7}),
                       ::testing::Values(std::size_t{1}, std::size_t{13},
                                         std::size_t{500}),
                       ::testing::Values(st::RoutingPolicy::kRoundRobin,
                                         st::RoutingPolicy::kRandom)),
    [](const auto& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == st::RoutingPolicy::kRoundRobin
                  ? "_rr"
                  : "_rand");
    });

TEST_P(FarmShapeSweep, EveryElementProcessedExactlyOnce) {
  const auto [workers, pack, routing] = GetParam();
  using Farm = st::FarmAspect<SlowStage, long long, long long, long long>;
  Farm::Options opts;
  opts.duplicates = workers;
  opts.pack_size = pack;
  opts.routing = routing;

  aop::Context ctx;
  auto farm = std::make_shared<Farm>(opts);
  ctx.attach(farm);
  auto conc = std::make_shared<st::ConcurrencyAspect<SlowStage>>(
      "Concurrency");
  conc->async_method<&SlowStage::process>();
  ctx.attach(conc);

  auto first = ctx.create<SlowStage>(1000LL, 0LL);
  std::vector<long long> data(97);  // prime count: never divides evenly
  std::iota(data.begin(), data.end(), 0);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();

  auto results = farm->gather_results(ctx);
  std::sort(results.begin(), results.end());
  std::vector<long long> expected(97);
  std::iota(expected.begin(), expected.end(), 1000);
  EXPECT_EQ(results, expected);
}
