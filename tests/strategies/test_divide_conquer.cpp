// Divide-and-conquer protocol (paper §4.1's remark about object creation
// inside method-call advice): sorting through a woven recursion tree must
// equal the sequential core, with sub-solver creations flowing through
// the distribution aspect when plugged.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "apar/apps/sort_solver.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/common/rng.hpp"
#include "apar/strategies/distribution_aspect.hpp"
#include "apar/strategies/divide_conquer_aspect.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace st = apar::strategies;
using apar::apps::SortSolver;

using Dnc = st::DivideAndConquerAspect<SortSolver, std::vector<long long>,
                                       std::vector<long long>, long long,
                                       double>;
using Dist = st::DistributionAspect<SortSolver, long long, double>;

namespace {

std::vector<long long> random_problem(std::size_t n, std::uint64_t seed) {
  apar::common::Rng rng(seed);
  std::vector<long long> v(n);
  for (auto& x : v)
    x = static_cast<long long>(rng.uniform(0, 1'000'000));
  return v;
}

std::vector<long long> sorted_copy(std::vector<long long> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void register_solver(ac::rpc::Registry& registry) {
  registry.bind<SortSolver>("SortSolver")
      .ctor<long long, double>()
      .method<&SortSolver::solve>("solve")
      .method<&SortSolver::merge>("merge");
}

}  // namespace

TEST(DivideAndConquer, SmallProblemProceedsSequentially) {
  aop::Context ctx;
  auto dnc = std::make_shared<Dnc>();
  dnc->set_sub_solver_args(100, 0.0);
  ctx.attach(dnc);
  auto solver = ctx.create<SortSolver>(100LL, 0.0);
  const auto problem = random_problem(50, 1);
  EXPECT_EQ(ctx.call<&SortSolver::solve>(solver, problem),
            sorted_copy(problem));
  EXPECT_EQ(dnc->solvers_created(), 0u);
  ctx.quiesce();
}

TEST(DivideAndConquer, LargeProblemSplitsRecursively) {
  aop::Context ctx;
  auto dnc = std::make_shared<Dnc>();
  dnc->set_sub_solver_args(64, 0.0);
  ctx.attach(dnc);
  auto solver = ctx.create<SortSolver>(64LL, 0.0);
  const auto problem = random_problem(1000, 2);
  EXPECT_EQ(ctx.call<&SortSolver::solve>(solver, problem),
            sorted_copy(problem));
  // 1000 elements with threshold 64: ceil-log2 recursion, 2 children per
  // split; at minimum the first split created 2 solvers.
  EXPECT_GE(dnc->solvers_created(), 2u);
  ctx.quiesce();
}

TEST(DivideAndConquer, StableUnderDuplicatesAndSortedInput) {
  aop::Context ctx;
  auto dnc = std::make_shared<Dnc>();
  dnc->set_sub_solver_args(16, 0.0);
  ctx.attach(dnc);
  auto solver = ctx.create<SortSolver>(16LL, 0.0);
  std::vector<long long> problem(200, 7);  // all duplicates
  EXPECT_EQ(ctx.call<&SortSolver::solve>(solver, problem), problem);
  auto ascending = random_problem(200, 3);
  std::sort(ascending.begin(), ascending.end());
  EXPECT_EQ(ctx.call<&SortSolver::solve>(solver, ascending), ascending);
  ctx.quiesce();
}

TEST(DivideAndConquer, EmptyAndSingletonProblems) {
  aop::Context ctx;
  auto dnc = std::make_shared<Dnc>();
  dnc->set_sub_solver_args(4, 0.0);
  ctx.attach(dnc);
  auto solver = ctx.create<SortSolver>(4LL, 0.0);
  EXPECT_TRUE(ctx.call<&SortSolver::solve>(solver,
                                           std::vector<long long>{})
                  .empty());
  EXPECT_EQ(ctx.call<&SortSolver::solve>(solver,
                                         std::vector<long long>{5}),
            (std::vector<long long>{5}));
  ctx.quiesce();
}

TEST(DivideAndConquer, UnpluggedIsPlainSequentialSolve) {
  aop::Context ctx;
  auto solver = ctx.create<SortSolver>(8LL, 0.0);
  const auto problem = random_problem(500, 4);
  EXPECT_EQ(ctx.call<&SortSolver::solve>(solver, problem),
            sorted_copy(problem));
}

TEST(DivideAndConquer, SubSolversPlacedOnClusterNodes) {
  // The §4.1 point: creations made INSIDE method-call advice are join
  // points too — plugging distribution places every sub-solver remotely.
  ac::Cluster cluster(ac::Cluster::Options{3, 2});
  register_solver(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());

  aop::Context ctx;
  auto dnc = std::make_shared<Dnc>();
  dnc->set_sub_solver_args(128, 0.0);
  ctx.attach(dnc);
  auto dist = std::make_shared<Dist>("Distribution", cluster, rmi);
  dist->distribute_method<&SortSolver::solve>();
  ctx.attach(dist);

  auto root = ctx.create<SortSolver>(128LL, 0.0);
  EXPECT_TRUE(root.is_remote());
  const auto problem = random_problem(1000, 5);
  EXPECT_EQ(ctx.call<&SortSolver::solve>(root, problem),
            sorted_copy(problem));
  EXPECT_GE(dnc->solvers_created(), 2u);
  std::size_t hosted = 0;
  for (ac::NodeId n = 0; n < 3; ++n)
    hosted += cluster.node(n).object_count();
  EXPECT_EQ(hosted, 1u + dnc->solvers_created());  // root + sub-solvers
  ctx.detach("Distribution");
  ctx.quiesce();
}
