// Heartbeat + distribution: the bands live on simulated cluster nodes and
// every halo exchange crosses the middleware — the full composition the
// paper's methodology promises (partition aspects written for shared
// memory, distribution plugged afterwards, §4.3).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "apar/apps/heat_band.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/strategies/distribution_aspect.hpp"
#include "apar/strategies/heartbeat_aspect.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace st = apar::strategies;
using apar::apps::HeatBand;

using Heart = st::HeartbeatAspect<HeatBand, long long, long long, long long,
                                  long long, double>;
using Dist = st::DistributionAspect<HeatBand, long long, long long, long long,
                                    long long, double>;

namespace {

Heart::Options heart_options(std::size_t bands) {
  Heart::Options opts;
  opts.bands = bands;
  opts.ctor_args =
      [](std::size_t i, std::size_t k,
         const std::tuple<long long, long long, long long, long long,
                          double>& original) {
        const auto [rows, cols, offset, total, ns] = original;
        (void)offset;
        const long long share = rows / static_cast<long long>(k);
        const long long extra = rows % static_cast<long long>(k);
        const long long my_rows =
            share + (static_cast<long long>(i) < extra ? 1 : 0);
        long long my_offset = 0;
        for (std::size_t j = 0; j < i; ++j)
          my_offset += share + (static_cast<long long>(j) < extra ? 1 : 0);
        return std::make_tuple(my_rows, cols, my_offset, total, ns);
      };
  return opts;
}

void register_heat_band(ac::rpc::Registry& registry) {
  registry.bind<HeatBand>("HeatBand")
      .ctor<long long, long long, long long, long long, double>()
      .method<&HeatBand::step>("step")
      .method<&HeatBand::run>("run")
      .method<&HeatBand::top_row>("top_row")
      .method<&HeatBand::bottom_row>("bottom_row")
      .method<&HeatBand::set_halo_above>("set_halo_above")
      .method<&HeatBand::set_halo_below>("set_halo_below")
      .method<&HeatBand::residual>("residual")
      .method<&HeatBand::snapshot>("snapshot");
}

std::shared_ptr<Dist> make_dist(ac::Cluster& cluster, ac::Middleware& mw) {
  auto dist = std::make_shared<Dist>("Distribution", cluster, mw);
  dist->distribute_method<&HeatBand::step>()
      .distribute_method<&HeatBand::run>()
      .distribute_method<&HeatBand::top_row>()
      .distribute_method<&HeatBand::bottom_row>()
      .distribute_method<&HeatBand::set_halo_above>()
      .distribute_method<&HeatBand::set_halo_below>()
      .distribute_method<&HeatBand::residual>()
      .distribute_method<&HeatBand::snapshot>();
  return dist;
}

}  // namespace

class DistributedHeartbeat : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Middlewares, DistributedHeartbeat,
                         ::testing::Values("rmi", "mpp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST_P(DistributedHeartbeat, RemoteBandsMatchSequentialExactly) {
  constexpr long long kRows = 12, kCols = 5;
  constexpr int kIters = 15;

  HeatBand reference(kRows, kCols, 0, kRows, 0.0);
  reference.run(kIters);

  ac::Cluster cluster(ac::Cluster::Options{3, 2});
  register_heat_band(cluster.registry());
  std::unique_ptr<ac::Middleware> mw;
  if (std::string_view(GetParam()) == "mpp")
    mw = std::make_unique<ac::MppMiddleware>(cluster,
                                             ac::CostModel::loopback());
  else
    mw = std::make_unique<ac::RmiMiddleware>(cluster,
                                             ac::CostModel::loopback());

  aop::Context ctx;
  auto heart = std::make_shared<Heart>(heart_options(3));
  ctx.attach(heart);
  ctx.attach(make_dist(cluster, *mw));

  auto first = ctx.create<HeatBand>(kRows, kCols, 0LL, kRows, 0.0);
  EXPECT_TRUE(first.is_remote());
  ctx.call<&HeatBand::run>(first, kIters);
  ctx.quiesce();

  // Gather snapshots THROUGH the middleware and stitch.
  std::vector<double> stitched;
  for (auto& band : heart->bands()) {
    EXPECT_TRUE(band.is_remote());
    auto part = ctx.call<&HeatBand::snapshot>(band);
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  EXPECT_EQ(stitched, reference.snapshot());
  EXPECT_EQ(heart->beats(), static_cast<std::size_t>(kIters));

  // Every band landed on a node; halo traffic crossed the wire.
  EXPECT_GT(mw->stats().sync_calls.load(), 0u);
  ctx.detach("Distribution");
  ctx.quiesce();
}

TEST(DistributedHeartbeatResidual, ComputedAcrossRemoteBands) {
  ac::Cluster cluster(ac::Cluster::Options{2, 2});
  register_heat_band(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  aop::Context ctx;
  auto heart = std::make_shared<Heart>(heart_options(2));
  ctx.attach(heart);
  ctx.attach(make_dist(cluster, rmi));
  auto first = ctx.create<HeatBand>(8LL, 4LL, 0LL, 8LL, 0.0);
  ctx.call<&HeatBand::run>(first, 3);
  ctx.quiesce();
  EXPECT_GT(heart->residual(ctx), 0.0);
  ctx.detach("Distribution");
  ctx.quiesce();
}
