#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "apar/apps/signal_stage.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/pipeline_aspect.hpp"

namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::apps::SignalStage;
namespace sig = apar::apps::signal;

using Pipe = st::PipelineAspect<SignalStage, long long, long long, double>;

namespace {

/// Stage i applies transform bit i (gain, clip, quantize in order).
Pipe::Options pipe_options(std::size_t stages, std::size_t pack_size) {
  Pipe::Options opts;
  opts.duplicates = stages;
  opts.pack_size = pack_size;
  opts.ctor_args = [](std::size_t i, std::size_t,
                      const std::tuple<long long, double>& original) {
    return std::make_tuple(1LL << i, std::get<1>(original));
  };
  return opts;
}

std::vector<long long> test_signal() {
  std::vector<long long> data;
  for (long long i = -600; i < 600; ++i) data.push_back(i * 7);
  return data;
}

std::vector<long long> sequential_reference() {
  SignalStage all(sig::kAll);
  auto data = test_signal();
  all.process(data);
  return all.take_results();
}

}  // namespace

TEST(PipelineAspect, DuplicationCreatesRequestedStages) {
  aop::Context ctx;
  auto pipe = std::make_shared<Pipe>(pipe_options(3, 100));
  ctx.attach(pipe);
  auto first = ctx.create<SignalStage>(sig::kAll, 0.0);
  ASSERT_EQ(pipe->stages().size(), 3u);
  EXPECT_EQ(first.identity(), pipe->stages().front().identity());
  EXPECT_EQ(pipe->stages()[0].local()->mask(), sig::kGain);
  EXPECT_EQ(pipe->stages()[1].local()->mask(), sig::kClip);
  EXPECT_EQ(pipe->stages()[2].local()->mask(), sig::kQuantize);
}

TEST(PipelineAspect, SequentialPipelineMatchesCoreExactly) {
  // Partition plugged, concurrency NOT plugged: still valid, still exact
  // (paper §4.2's debugging configuration).
  aop::Context ctx;
  auto pipe = std::make_shared<Pipe>(pipe_options(3, 128));
  ctx.attach(pipe);
  auto first = ctx.create<SignalStage>(sig::kAll, 0.0);
  auto data = test_signal();
  ctx.call<&SignalStage::process>(first, data);
  ctx.quiesce();
  auto results = pipe->gather_results(ctx);
  std::sort(results.begin(), results.end());
  auto expected = sequential_reference();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(results, expected);
}

TEST(PipelineAspect, ConcurrentPipelineMatchesCore) {
  aop::Context ctx;
  auto pipe = std::make_shared<Pipe>(pipe_options(3, 64));
  ctx.attach(pipe);
  auto conc =
      std::make_shared<st::ConcurrencyAspect<SignalStage>>("Concurrency");
  conc->async_method<&SignalStage::filter>()
      .async_method<&SignalStage::process>()
      .guarded_method<&SignalStage::collect>();
  ctx.attach(conc);

  auto first = ctx.create<SignalStage>(sig::kAll, 0.0);
  auto data = test_signal();
  ctx.call<&SignalStage::process>(first, data);
  ctx.quiesce();
  auto results = pipe->gather_results(ctx);
  std::sort(results.begin(), results.end());
  auto expected = sequential_reference();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(results, expected);
}

TEST(PipelineAspect, OnlyLastStageRetainsResults) {
  aop::Context ctx;
  auto pipe = std::make_shared<Pipe>(pipe_options(3, 100));
  ctx.attach(pipe);
  auto first = ctx.create<SignalStage>(sig::kAll, 0.0);
  auto data = test_signal();
  ctx.call<&SignalStage::process>(first, data);
  ctx.quiesce();
  EXPECT_TRUE(pipe->stages()[0].local()->take_results().empty());
  EXPECT_TRUE(pipe->stages()[1].local()->take_results().empty());
  EXPECT_EQ(pipe->stages()[2].local()->take_results().size(),
            test_signal().size());
}

TEST(PipelineAspect, SplitHonoursPackSize) {
  aop::Context ctx;
  auto pipe = std::make_shared<Pipe>(pipe_options(1, 100));
  ctx.attach(pipe);
  auto first = ctx.create<SignalStage>(sig::kAll, 0.0);
  std::vector<long long> data(250, 1);
  ctx.call<&SignalStage::process>(first, data);
  ctx.quiesce();
  // 250 elements in packs of 100 -> 3 filter calls on the single stage.
  EXPECT_EQ(pipe->gather_results(ctx).size(), 250u);
}

TEST(PipelineAspect, SingleStagePipelineEqualsCore) {
  aop::Context ctx;
  Pipe::Options opts = pipe_options(1, 1000);
  opts.ctor_args = [](std::size_t, std::size_t,
                      const std::tuple<long long, double>& original) {
    return original;  // one stage keeps the full mask
  };
  auto pipe = std::make_shared<Pipe>(opts);
  ctx.attach(pipe);
  auto first = ctx.create<SignalStage>(sig::kAll, 0.0);
  auto data = test_signal();
  ctx.call<&SignalStage::process>(first, data);
  ctx.quiesce();
  auto results = pipe->gather_results(ctx);
  std::sort(results.begin(), results.end());
  auto expected = sequential_reference();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(results, expected);
}

TEST(PipelineAspect, UnpluggedRestoresCoreSemantics) {
  aop::Context ctx;
  auto pipe = std::make_shared<Pipe>(pipe_options(3, 100));
  ctx.attach(pipe);
  ctx.detach("Pipeline");
  auto stage = ctx.create<SignalStage>(sig::kAll, 0.0);
  auto data = test_signal();
  ctx.call<&SignalStage::process>(stage, data);
  EXPECT_EQ(stage.local()->take_results(), sequential_reference());
}

TEST(PipelineAspect, RewovenAfterSecondCreation) {
  // A second core creation rebuilds the stage set (fresh run).
  aop::Context ctx;
  auto pipe = std::make_shared<Pipe>(pipe_options(2, 100));
  ctx.attach(pipe);
  auto a = ctx.create<SignalStage>(sig::kAll, 0.0);
  const void* first_stage_a = pipe->stages()[0].identity();
  auto b = ctx.create<SignalStage>(sig::kAll, 0.0);
  EXPECT_EQ(pipe->stages().size(), 2u);
  EXPECT_NE(pipe->stages()[0].identity(), first_stage_a);
  EXPECT_EQ(b.identity(), pipe->stages()[0].identity());
}
