#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "apar/cluster/middleware.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/distribution_aspect.hpp"
#include "apar/strategies/farm_aspect.hpp"
#include "apar/strategies/pipeline_aspect.hpp"
#include "fixtures.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace st = apar::strategies;
using apar::test::SlowStage;

using Dist = st::DistributionAspect<SlowStage, long long, long long>;

namespace {

void register_slow_stage(ac::rpc::Registry& registry) {
  registry.bind<SlowStage>("SlowStage")
      .ctor<long long, long long>()
      .method<&SlowStage::filter>("filter")
      .method<&SlowStage::process>("process")
      .method<&SlowStage::collect>("collect")
      .method<&SlowStage::take_results>("take_results");
}

struct DistFixture {
  DistFixture(bool mpp = false) {
    ac::Cluster::Options copts;
    copts.nodes = 3;
    copts.executors_per_node = 2;
    cluster = std::make_unique<ac::Cluster>(copts);
    register_slow_stage(cluster->registry());
    if (mpp)
      middleware = std::make_unique<ac::MppMiddleware>(
          *cluster, ac::CostModel::loopback());
    else
      middleware = std::make_unique<ac::RmiMiddleware>(
          *cluster, ac::CostModel::loopback());
  }

  std::shared_ptr<Dist> make_aspect(Dist::Options opts = {}) {
    auto dist =
        std::make_shared<Dist>("Distribution", *cluster, *middleware, opts);
    dist->distribute_method<&SlowStage::filter>()
        .distribute_method<&SlowStage::process>(/*allow_one_way=*/true)
        .distribute_method<&SlowStage::collect>()
        .distribute_method<&SlowStage::take_results>();
    return dist;
  }

  std::unique_ptr<ac::Cluster> cluster;
  std::unique_ptr<ac::Middleware> middleware;
};

}  // namespace

TEST(DistributionAspect, CreationIsPlacedRemotely) {
  DistFixture fx;
  aop::Context ctx;
  ctx.attach(fx.make_aspect());
  auto ref = ctx.create<SlowStage>(5LL, 0LL);
  EXPECT_TRUE(ref.is_remote());
  EXPECT_FALSE(ref.is_local());
  EXPECT_NE(ref.describe().find("SlowStage@node"), std::string::npos);
  ctx.detach("Distribution");
  // Unplugged: creations are local again (paper: shared-memory version).
  auto local = ctx.create<SlowStage>(5LL, 0LL);
  EXPECT_TRUE(local.is_local());
}

TEST(DistributionAspect, RoundRobinPlacement) {
  DistFixture fx;
  aop::Context ctx;
  ctx.attach(fx.make_aspect());
  for (int i = 0; i < 6; ++i) ctx.create<SlowStage>(0LL, 0LL);
  EXPECT_EQ(fx.cluster->node(0).object_count(), 2u);
  EXPECT_EQ(fx.cluster->node(1).object_count(), 2u);
  EXPECT_EQ(fx.cluster->node(2).object_count(), 2u);
}

TEST(DistributionAspect, RandomPlacementStaysInRange) {
  DistFixture fx;
  aop::Context ctx;
  Dist::Options opts;
  opts.placement = st::PlacementPolicy::kRandom;
  ctx.attach(fx.make_aspect(opts));
  for (int i = 0; i < 12; ++i) ctx.create<SlowStage>(0LL, 0LL);
  std::size_t total = 0;
  for (ac::NodeId n = 0; n < 3; ++n)
    total += fx.cluster->node(n).object_count();
  EXPECT_EQ(total, 12u);
}

TEST(DistributionAspect, RemoteCallRoundTripsWithCopyRestore) {
  DistFixture fx;
  aop::Context ctx;
  ctx.attach(fx.make_aspect());
  auto ref = ctx.create<SlowStage>(10LL, 0LL);
  std::vector<long long> pack{1, 2, 3};
  ctx.call<&SlowStage::filter>(ref, pack);
  // The remote filter added id=10 in place; copy-restore brought it back.
  EXPECT_EQ(pack, (std::vector<long long>{11, 12, 13}));
}

TEST(DistributionAspect, RemoteResultsReturn) {
  DistFixture fx;
  aop::Context ctx;
  ctx.attach(fx.make_aspect());
  auto ref = ctx.create<SlowStage>(1LL, 0LL);
  std::vector<long long> pack{5};
  ctx.call<&SlowStage::process>(ref, pack);
  ctx.quiesce();
  auto results = ctx.call<&SlowStage::take_results>(ref);
  EXPECT_EQ(results, (std::vector<long long>{6}));
}

TEST(DistributionAspect, OneWayUsedOnlyWhenMiddlewareSupportsIt) {
  {
    DistFixture rmi(false);
    aop::Context ctx;
    ctx.attach(rmi.make_aspect());
    auto ref = ctx.create<SlowStage>(0LL, 0LL);
    std::vector<long long> pack{1};
    ctx.call<&SlowStage::process>(ref, pack);
    EXPECT_EQ(rmi.middleware->stats().one_way_calls.load(), 0u);
    EXPECT_GT(rmi.middleware->stats().sync_calls.load(), 0u);
  }
  {
    DistFixture mpp(true);
    aop::Context ctx;
    ctx.attach(mpp.make_aspect());
    auto ref = ctx.create<SlowStage>(0LL, 0LL);
    std::vector<long long> pack{1};
    ctx.call<&SlowStage::process>(ref, pack);
    ctx.quiesce();
    EXPECT_EQ(mpp.middleware->stats().one_way_calls.load(), 1u);
  }
}

TEST(DistributionAspect, NamesRegisteredLikeFigure14) {
  DistFixture fx;
  aop::Context ctx;
  ctx.attach(fx.make_aspect());
  ctx.create<SlowStage>(0LL, 0LL);
  ctx.create<SlowStage>(0LL, 0LL);
  auto names = fx.cluster->name_server().names();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"PS1", "PS2"}));
  EXPECT_GT(fx.middleware->stats().lookups.load(), 0u);
}

TEST(DistributionAspect, NameRegistrationCanBeDisabled) {
  DistFixture fx;
  aop::Context ctx;
  Dist::Options opts;
  opts.register_names = false;
  ctx.attach(fx.make_aspect(opts));
  ctx.create<SlowStage>(0LL, 0LL);
  EXPECT_EQ(fx.cluster->name_server().size(), 0u);
  EXPECT_EQ(fx.middleware->stats().lookups.load(), 0u);
}

TEST(DistributionAspect, LocalRefsPassThroughUntouched) {
  DistFixture fx;
  aop::Context ctx;
  // Create BEFORE attaching distribution: a local object.
  auto local = ctx.create<SlowStage>(3LL, 0LL);
  ctx.attach(fx.make_aspect());
  std::vector<long long> pack{1};
  ctx.call<&SlowStage::filter>(local, pack);
  EXPECT_EQ(pack, (std::vector<long long>{4}));
  EXPECT_EQ(fx.middleware->stats().sync_calls.load(), 0u);
}

TEST(DistributionAspect, PipelineOverMppUsesSyncForwardingCalls) {
  // A pipeline needs the filtered pack back at the client to forward it,
  // so its filter calls must stay synchronous even on a one-way-capable
  // middleware — the harness registers filter without allow_one_way, and
  // correctness follows.
  DistFixture mpp(true);
  aop::Context ctx;

  using Pipe = st::PipelineAspect<SlowStage, long long, long long, long long>;
  Pipe::Options popts;
  popts.duplicates = 3;
  popts.pack_size = 4;
  popts.ctor_args = [](std::size_t i, std::size_t,
                       const std::tuple<long long, long long>& orig) {
    // Stage i adds 10^i; the composition across stages is order-sensitive,
    // which catches any forwarding of stale (pre-filter) packs.
    long long id = 1;
    for (std::size_t j = 0; j < i; ++j) id *= 10;
    return std::make_tuple(id, std::get<1>(orig));
  };
  auto pipe = std::make_shared<Pipe>(popts);
  ctx.attach(pipe);
  ctx.attach(mpp.make_aspect());

  auto first = ctx.create<SlowStage>(0LL, 0LL);
  EXPECT_TRUE(first.is_remote());
  std::vector<long long> data(12, 0);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();

  auto results = pipe->gather_results(ctx);
  ASSERT_EQ(results.size(), 12u);
  // Every element passed stages +1, +10, +100 in order.
  for (long long v : results) EXPECT_EQ(v, 111);
  // filter calls were synchronous; only collect may have gone one-way.
  EXPECT_GE(mpp.middleware->stats().sync_calls.load(), 9u);
}

TEST(DistributionAspect, ComposesWithFarmAndConcurrency) {
  // The full FarmRMI stack on a second domain class — every pack routed,
  // asynced, monitored and remoted, results exact.
  DistFixture fx;
  aop::Context ctx;

  using Farm = st::FarmAspect<SlowStage, long long, long long, long long>;
  Farm::Options fopts;
  fopts.duplicates = 3;
  fopts.pack_size = 4;
  auto farm = std::make_shared<Farm>(fopts);
  ctx.attach(farm);

  auto conc = std::make_shared<st::ConcurrencyAspect<SlowStage>>("Concurrency");
  conc->async_method<&SlowStage::process>();
  ctx.attach(conc);
  ctx.attach(fx.make_aspect());

  auto first = ctx.create<SlowStage>(100LL, 0LL);
  EXPECT_TRUE(first.is_remote());
  std::vector<long long> data(40);
  std::iota(data.begin(), data.end(), 0);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();

  auto results = farm->gather_results(ctx);
  std::sort(results.begin(), results.end());
  std::vector<long long> expected(40);
  std::iota(expected.begin(), expected.end(), 100);
  EXPECT_EQ(results, expected);
}
