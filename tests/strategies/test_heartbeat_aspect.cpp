#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "apar/apps/heat_band.hpp"
#include "apar/strategies/heartbeat_aspect.hpp"

namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::apps::HeatBand;

using Heart = st::HeartbeatAspect<HeatBand, long long, long long, long long,
                                  long long, double>;

namespace {

/// Band i gets a contiguous slab of rows; offsets partition [0, total).
Heart::Options heart_options(std::size_t bands, bool parallel = true) {
  Heart::Options opts;
  opts.bands = bands;
  opts.parallel_step = parallel;
  opts.ctor_args =
      [](std::size_t i, std::size_t k,
         const std::tuple<long long, long long, long long, long long,
                          double>& original) {
        const auto [rows, cols, offset, total, ns] = original;
        (void)offset;
        const long long share = rows / static_cast<long long>(k);
        const long long extra = rows % static_cast<long long>(k);
        const long long my_rows =
            share + (static_cast<long long>(i) < extra ? 1 : 0);
        long long my_offset = 0;
        for (std::size_t j = 0; j < i; ++j)
          my_offset += share + (static_cast<long long>(j) < extra ? 1 : 0);
        return std::make_tuple(my_rows, cols, my_offset, total, ns);
      };
  return opts;
}

/// Reference: one band covering the whole domain, stepped sequentially.
std::vector<double> sequential_heat(long long rows, long long cols,
                                    int iters) {
  HeatBand band(rows, cols, 0, rows, 0.0);
  band.run(iters);
  return band.snapshot();
}

}  // namespace

TEST(HeartbeatAspect, DuplicationPartitionsRows) {
  aop::Context ctx;
  auto heart = std::make_shared<Heart>(heart_options(3));
  ctx.attach(heart);
  ctx.create<HeatBand>(10LL, 8LL, 0LL, 10LL, 0.0);
  ASSERT_EQ(heart->bands().size(), 3u);
  EXPECT_EQ(heart->bands()[0].local()->rows(), 4);
  EXPECT_EQ(heart->bands()[1].local()->rows(), 3);
  EXPECT_EQ(heart->bands()[2].local()->rows(), 3);
  EXPECT_EQ(heart->bands()[1].local()->row_offset(), 4);
  EXPECT_EQ(heart->bands()[2].local()->row_offset(), 7);
}

class HeartbeatEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    BandsAndModes, HeartbeatEquivalence,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3}, std::size_t{5}),
                       ::testing::Bool()),
    [](const auto& info) {
      return "bands" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_parallel" : "_sequentialstep");
    });

TEST_P(HeartbeatEquivalence, PartitionedSolverMatchesSequentialExactly) {
  const auto [bands, parallel] = GetParam();
  constexpr long long kRows = 12, kCols = 6;
  constexpr int kIters = 25;

  aop::Context ctx;
  auto heart = std::make_shared<Heart>(heart_options(bands, parallel));
  ctx.attach(heart);
  auto first = ctx.create<HeatBand>(kRows, kCols, 0LL, kRows, 0.0);
  ctx.call<&HeatBand::run>(first, kIters);
  ctx.quiesce();

  // Stitch the bands' snapshots together and compare bit-for-bit with the
  // sequential core — synchronous Jacobi is deterministic.
  std::vector<double> stitched;
  for (auto& band : heart->bands()) {
    auto part = band.local()->snapshot();
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  EXPECT_EQ(stitched, sequential_heat(kRows, kCols, kIters));
  EXPECT_EQ(heart->beats(), static_cast<std::size_t>(kIters));
}

TEST(HeartbeatAspect, ResidualDecreasesTowardSteadyState) {
  aop::Context ctx;
  auto heart = std::make_shared<Heart>(heart_options(2));
  ctx.attach(heart);
  auto first = ctx.create<HeatBand>(10LL, 10LL, 0LL, 10LL, 0.0);
  ctx.call<&HeatBand::run>(first, 5);
  ctx.quiesce();
  const double early = heart->residual(ctx);
  ctx.call<&HeatBand::run>(first, 100);
  ctx.quiesce();
  const double late = heart->residual(ctx);
  EXPECT_LT(late, early);
  EXPECT_GT(early, 0.0);
}

TEST(HeartbeatAspect, UnpluggedSequentialRunStillWorks) {
  aop::Context ctx;
  auto heart = std::make_shared<Heart>(heart_options(4));
  ctx.attach(heart);
  ctx.detach("Heartbeat");
  auto band = ctx.create<HeatBand>(8LL, 8LL, 0LL, 8LL, 0.0);
  ctx.call<&HeatBand::run>(band, 10);
  EXPECT_EQ(band.local()->snapshot(), sequential_heat(8, 8, 10));
}
