#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <thread>

#include "apar/common/stopwatch.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/optimisation_aspects.hpp"
#include "fixtures.hpp"

namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::test::SlowStage;

using Conc = st::ConcurrencyAspect<SlowStage>;

namespace {
std::shared_ptr<Conc> make_conc() {
  auto conc = std::make_shared<Conc>("Concurrency");
  conc->async_method<&SlowStage::process>()
      .guarded_method<&SlowStage::collect>();
  return conc;
}
}  // namespace

TEST(ConcurrencyAspect, AsyncCallReturnsBeforeExecutionCompletes) {
  aop::Context ctx;
  ctx.attach(make_conc());
  auto stage = ctx.create<SlowStage>(0LL, 20'000LL);  // 20 ms per call
  std::vector<long long> pack{1};
  apar::common::Stopwatch sw;
  ctx.call<&SlowStage::process>(stage, pack);
  EXPECT_LT(sw.millis(), 15.0);  // returned before the 20 ms body ran
  ctx.quiesce();
  EXPECT_EQ(stage.local()->calls(), 2);  // filter + collect
}

TEST(ConcurrencyAspect, AsyncArgumentsAreCopiedByValue) {
  aop::Context ctx;
  ctx.attach(make_conc());
  auto stage = ctx.create<SlowStage>(5LL);
  std::vector<long long> pack{1, 2};
  ctx.call<&SlowStage::process>(stage, pack);
  ctx.quiesce();
  EXPECT_EQ(pack, (std::vector<long long>{1, 2}));  // caller's pack intact
  EXPECT_EQ(stage.local()->take_results(),
            (std::vector<long long>{6, 7}));
}

TEST(ConcurrencyAspect, MonitorPreventsConcurrentEntry) {
  aop::Context ctx;
  ctx.attach(make_conc());
  auto stage = ctx.create<SlowStage>(0LL, 1'000LL);
  std::vector<long long> pack{1};
  for (int i = 0; i < 16; ++i) ctx.call<&SlowStage::process>(stage, pack);
  ctx.quiesce();
  EXPECT_FALSE(stage.local()->overlapped());
  EXPECT_EQ(stage.local()->calls(), 32);
}

TEST(ConcurrencyAspect, WithoutAspectRacesAreExposed) {
  // Control experiment: driving the same object from raw threads without
  // the concurrency aspect's monitor does overlap — the aspect is what
  // prevents it.
  aop::Context ctx;
  auto stage = ctx.create<SlowStage>(0LL, 2'000LL);
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i)
    threads.emplace_back([&] {
      std::vector<long long> pack{1};
      stage.local()->process(pack);
    });
  for (auto& t : threads) t.join();
  EXPECT_TRUE(stage.local()->overlapped());
}

TEST(ConcurrencyAspect, UnpluggedExecutionIsSequentialAndValid) {
  // Paper §4.2: "the program must be valid without concurrency".
  aop::Context ctx;
  auto conc = make_conc();
  ctx.attach(conc);
  ctx.detach("Concurrency");
  auto stage = ctx.create<SlowStage>(3LL);
  std::vector<long long> pack{1, 2, 3};
  ctx.call<&SlowStage::process>(stage, pack);
  // Synchronous: effects visible immediately, argument mutated in place.
  EXPECT_EQ(pack, (std::vector<long long>{4, 5, 6}));
  EXPECT_EQ(stage.local()->take_results(), (std::vector<long long>{4, 5, 6}));
}

TEST(ConcurrencyAspect, DisabledAspectBehavesAsUnplugged) {
  aop::Context ctx;
  auto conc = make_conc();
  ctx.attach(conc);
  conc->set_enabled(false);
  auto stage = ctx.create<SlowStage>(1LL);
  std::vector<long long> pack{0};
  ctx.call<&SlowStage::process>(stage, pack);
  EXPECT_EQ(pack, (std::vector<long long>{1}));
}

TEST(ConcurrencyAspect, PooledModeRunsAllCalls) {
  aop::Context ctx;
  auto conc = make_conc();
  conc->use_pool(3);
  EXPECT_TRUE(conc->pooled());
  ctx.attach(conc);
  auto stage = ctx.create<SlowStage>(0LL);
  std::vector<long long> pack{1};
  for (int i = 0; i < 25; ++i) ctx.call<&SlowStage::process>(stage, pack);
  ctx.quiesce();
  EXPECT_EQ(stage.local()->calls(), 50);
  EXPECT_FALSE(stage.local()->overlapped());
  EXPECT_EQ(conc->spawned(), 25u);
}

TEST(ConcurrencyAspect, ThreadPoolOptimisationFlipsNamedAspect) {
  aop::Context ctx;
  auto conc = make_conc();
  ctx.attach(conc);
  EXPECT_FALSE(conc->pooled());
  auto opt = std::make_shared<st::optimisation::ThreadPoolOptimisation>(
      "Concurrency", 4);
  ctx.attach(opt);
  EXPECT_TRUE(conc->pooled());
  ctx.detach("ThreadPoolOpt");
  EXPECT_FALSE(conc->pooled());
}

TEST(ConcurrencyAspect, ThreadPoolOptimisationIgnoresMissingTarget) {
  aop::Context ctx;
  auto opt = std::make_shared<st::optimisation::ThreadPoolOptimisation>(
      "NoSuchAspect", 4);
  EXPECT_NO_THROW(ctx.attach(opt));
  EXPECT_NO_THROW(ctx.detach("ThreadPoolOpt"));
}
