#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "apar/common/stopwatch.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/farm_aspect.hpp"
#include "apar/strategies/optimisation_aspects.hpp"
#include "fixtures.hpp"

namespace aop = apar::aop;
namespace st = apar::strategies;
namespace opt = apar::strategies::optimisation;
using apar::test::SlowStage;

TEST(LocalCpuAspect, CapsConcurrentLocalExecution) {
  aop::Context ctx;
  auto conc = std::make_shared<st::ConcurrencyAspect<SlowStage>>("Concurrency");
  conc->async_method<&SlowStage::process>();
  ctx.attach(conc);
  auto cpu = std::make_shared<opt::LocalCpuAspect<SlowStage>>("LocalCpu", 2);
  cpu->limit_method<&SlowStage::process>();
  ctx.attach(cpu);

  // 8 independent objects: the monitor never serializes them, only the
  // CPU permit can. Measure wall time: 8 x 20ms at 2 slots >= ~80ms.
  std::vector<aop::Ref<SlowStage>> stages;
  for (int i = 0; i < 8; ++i)
    stages.push_back(ctx.create<SlowStage>(0LL, 20'000LL));
  apar::common::Stopwatch sw;
  std::vector<long long> pack{1};
  for (auto& s : stages) ctx.call<&SlowStage::process>(s, pack);
  ctx.quiesce();
  EXPECT_GE(sw.millis(), 70.0);
  EXPECT_EQ(cpu->hardware_contexts(), 2u);
}

TEST(LocalCpuAspect, UnpluggedRemovesTheCap) {
  aop::Context ctx;
  auto conc = std::make_shared<st::ConcurrencyAspect<SlowStage>>("Concurrency");
  conc->async_method<&SlowStage::process>();
  ctx.attach(conc);

  std::vector<aop::Ref<SlowStage>> stages;
  for (int i = 0; i < 8; ++i)
    stages.push_back(ctx.create<SlowStage>(0LL, 20'000LL));
  apar::common::Stopwatch sw;
  std::vector<long long> pack{1};
  for (auto& s : stages) ctx.call<&SlowStage::process>(s, pack);
  ctx.quiesce();
  // All 8 sleeps overlap: well under the serialized 160 ms.
  EXPECT_LT(sw.millis(), 80.0);
}

TEST(PackingAspect, CoalescesPacksPerTarget) {
  aop::Context ctx;
  using Pack = opt::PackingAspect<SlowStage, long long>;
  Pack::Options popts;
  popts.batch_packs = 2;
  auto packing = std::make_shared<Pack>(popts);
  ctx.attach(packing);

  auto stage = ctx.create<SlowStage>(0LL, 0LL);
  std::vector<long long> p1{1, 2}, p2{3, 4}, p3{5, 6}, p4{7, 8};
  ctx.call<&SlowStage::process>(stage, p1);
  ctx.call<&SlowStage::process>(stage, p2);
  ctx.call<&SlowStage::process>(stage, p3);
  ctx.call<&SlowStage::process>(stage, p4);
  ctx.quiesce();
  // 4 packs, batch=2: the object saw 2 coalesced calls.
  EXPECT_EQ(packing->coalesced_calls(), 2u);
  EXPECT_EQ(stage.local()->calls(), 4);  // 2 filter + 2 collect entries
  auto results = stage.local()->take_results();
  std::sort(results.begin(), results.end());
  EXPECT_EQ(results, (std::vector<long long>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(PackingAspect, QuiesceFlushesStragglers) {
  aop::Context ctx;
  using Pack = opt::PackingAspect<SlowStage, long long>;
  Pack::Options popts;
  popts.batch_packs = 4;
  auto packing = std::make_shared<Pack>(popts);
  ctx.attach(packing);

  auto stage = ctx.create<SlowStage>(0LL, 0LL);
  std::vector<long long> p1{1};
  ctx.call<&SlowStage::process>(stage, p1);  // buffered, not yet executed
  EXPECT_EQ(stage.local()->calls(), 0);
  ctx.quiesce();  // flush
  EXPECT_EQ(stage.local()->take_results(), (std::vector<long long>{1}));
}

TEST(PackingAspect, NoLossAcrossManyTargets) {
  aop::Context ctx;
  using Pack = opt::PackingAspect<SlowStage, long long>;
  Pack::Options popts;
  popts.batch_packs = 3;
  auto packing = std::make_shared<Pack>(popts);
  ctx.attach(packing);

  auto a = ctx.create<SlowStage>(0LL, 0LL);
  auto b = ctx.create<SlowStage>(0LL, 0LL);
  for (long long i = 0; i < 10; ++i) {
    std::vector<long long> p{i};
    ctx.call<&SlowStage::process>(i % 2 ? a : b, p);
  }
  ctx.quiesce();
  auto all = a.local()->take_results();
  auto more = b.local()->take_results();
  all.insert(all.end(), more.begin(), more.end());
  std::sort(all.begin(), all.end());
  std::vector<long long> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

TEST(ObjectCacheAspect, RepeatCreationsHitTheCache) {
  aop::Context ctx;
  using Cache = opt::ObjectCacheAspect<SlowStage, long long, long long>;
  auto cache = std::make_shared<Cache>();
  ctx.attach(cache);

  auto a = ctx.create<SlowStage>(1LL, 0LL);
  auto b = ctx.create<SlowStage>(1LL, 0LL);
  auto c = ctx.create<SlowStage>(2LL, 0LL);
  EXPECT_EQ(a.identity(), b.identity());
  EXPECT_NE(a.identity(), c.identity());
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_EQ(cache->misses(), 2u);
}

TEST(ObjectCacheAspect, UnpluggedCreatesFreshObjects) {
  aop::Context ctx;
  using Cache = opt::ObjectCacheAspect<SlowStage, long long, long long>;
  ctx.attach(std::make_shared<Cache>());
  ctx.detach("ObjectCache");
  auto a = ctx.create<SlowStage>(1LL, 0LL);
  auto b = ctx.create<SlowStage>(1LL, 0LL);
  EXPECT_NE(a.identity(), b.identity());
}
