#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "apar/strategies/dynamic_farm_aspect.hpp"
#include "fixtures.hpp"

namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::test::SlowStage;

using DFarm = st::DynamicFarmAspect<SlowStage, long long, long long, long long>;

namespace {
DFarm::Options dfarm_options(std::size_t workers, std::size_t pack_size) {
  DFarm::Options opts;
  opts.duplicates = workers;
  opts.pack_size = pack_size;
  return opts;
}

std::vector<long long> iota_data(std::size_t n) {
  std::vector<long long> data(n);
  std::iota(data.begin(), data.end(), 0);
  return data;
}
}  // namespace

TEST(DynamicFarmAspect, ProcessesEveryPackExactlyOnce) {
  aop::Context ctx;
  auto dfarm = std::make_shared<DFarm>(dfarm_options(3, 10));
  ctx.attach(dfarm);
  auto first = ctx.create<SlowStage>(0LL, 0LL);
  auto data = iota_data(100);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();
  auto results = dfarm->gather_results(ctx);
  std::sort(results.begin(), results.end());
  EXPECT_EQ(results, iota_data(100));
  const auto loads = dfarm->packs_per_worker();
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::size_t{0}), 10u);
}

TEST(DynamicFarmAspect, WorkersNeverOverlapOnTheirOwnObject) {
  // One worker loop per object: no monitor needed, by construction.
  aop::Context ctx;
  auto dfarm = std::make_shared<DFarm>(dfarm_options(4, 2));
  ctx.attach(dfarm);
  auto first = ctx.create<SlowStage>(0LL, 200LL);
  auto data = iota_data(60);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();
  for (const auto& w : dfarm->workers())
    EXPECT_FALSE(w.local()->overlapped());
}

TEST(DynamicFarmAspect, DemandDrivenBalancingUnderSkew) {
  // With one deliberately slow worker, the fast workers should pick up
  // more packs — the dynamic farm's whole point.
  aop::Context ctx;
  DFarm::Options opts = dfarm_options(2, 1);
  opts.ctor_args = [](std::size_t i, std::size_t,
                      const std::tuple<long long, long long>& original) {
    // Worker 0 is 50x slower per call.
    return std::make_tuple(std::get<0>(original),
                           i == 0 ? 5'000LL : 100LL);
  };
  auto dfarm = std::make_shared<DFarm>("DynamicFarm", opts);
  ctx.attach(dfarm);
  auto first = ctx.create<SlowStage>(0LL, 0LL);
  auto data = iota_data(40);  // 40 single-element packs
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();
  const auto loads = dfarm->packs_per_worker();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_GT(loads[1], loads[0]);  // the fast worker did more
  EXPECT_EQ(loads[0] + loads[1], 40u);
}

TEST(DynamicFarmAspect, QuiesceWaitsForQueueDrain) {
  aop::Context ctx;
  auto dfarm = std::make_shared<DFarm>(dfarm_options(2, 5));
  ctx.attach(dfarm);
  auto first = ctx.create<SlowStage>(0LL, 500LL);
  auto data = iota_data(50);
  ctx.call<&SlowStage::process>(first, data);  // returns after enqueue
  ctx.quiesce();                               // must wait for all 10 packs
  EXPECT_EQ(dfarm->gather_results(ctx).size(), 50u);
}

TEST(DynamicFarmAspect, DetachStopsWorkersCleanly) {
  aop::Context ctx;
  auto dfarm = std::make_shared<DFarm>(dfarm_options(2, 10));
  ctx.attach(dfarm);
  auto first = ctx.create<SlowStage>(0LL, 0LL);
  auto data = iota_data(20);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();
  EXPECT_NO_THROW(ctx.detach("DynamicFarm"));
  // After detach the same core lines behave sequentially.
  auto plain = ctx.create<SlowStage>(1LL, 0LL);
  auto more = iota_data(5);
  ctx.call<&SlowStage::process>(plain, more);
  EXPECT_EQ(plain.local()->take_results().size(), 5u);
}

TEST(DynamicFarmAspect, SecondRunAfterRecreation) {
  aop::Context ctx;
  auto dfarm = std::make_shared<DFarm>(dfarm_options(2, 10));
  ctx.attach(dfarm);
  for (int round = 0; round < 2; ++round) {
    auto first = ctx.create<SlowStage>(0LL, 0LL);
    auto data = iota_data(30);
    ctx.call<&SlowStage::process>(first, data);
    ctx.quiesce();
    EXPECT_EQ(dfarm->gather_results(ctx).size(), 30u) << "round " << round;
  }
}
