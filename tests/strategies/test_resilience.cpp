// Retry/failover and replicated-computation aspects: crosscutting
// resilience and latency-hiding concerns, plugged like any other module.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "apar/cluster/middleware.hpp"
#include "apar/common/stopwatch.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/distribution_aspect.hpp"
#include "apar/strategies/farm_aspect.hpp"
#include "apar/strategies/optimisation_aspects.hpp"
#include "fixtures.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace st = apar::strategies;
namespace opt = apar::strategies::optimisation;
using apar::test::SlowStage;

namespace {

void register_slow_stage(ac::rpc::Registry& registry) {
  registry.bind<SlowStage>("SlowStage")
      .ctor<long long, long long>()
      .method<&SlowStage::filter>("filter")
      .method<&SlowStage::process>("process")
      .method<&SlowStage::collect>("collect")
      .method<&SlowStage::take_results>("take_results")
      .method<&SlowStage::query>("query");
}

using Dist = st::DistributionAspect<SlowStage, long long, long long>;

std::shared_ptr<Dist> make_dist(ac::Cluster& cluster, ac::Middleware& mw) {
  auto dist = std::make_shared<Dist>("Distribution", cluster, mw);
  dist->distribute_method<&SlowStage::filter>()
      .distribute_method<&SlowStage::process>()
      .distribute_method<&SlowStage::query>()
      .distribute_method<&SlowStage::take_results>();
  return dist;
}

}  // namespace

TEST(RetryAspect, RetriesSameTargetOnTransientError) {
  // A remote object on a crashed node never recovers, so retrying the
  // same target must eventually rethrow after the configured attempts.
  ac::Cluster cluster(ac::Cluster::Options{2, 2});
  register_slow_stage(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  aop::Context ctx;
  ctx.attach(make_dist(cluster, rmi));
  auto ref = ctx.create<SlowStage>(1LL, 0LL);

  opt::RetryAspect<SlowStage>::Options ropts;
  ropts.attempts = 3;
  auto retry = std::make_shared<opt::RetryAspect<SlowStage>>(ropts);
  retry->retry_method<&SlowStage::filter>();
  ctx.attach(retry);

  cluster.node(0).crash();  // round-robin placement put ref on node 0
  std::vector<long long> pack{1};
  EXPECT_THROW(ctx.call<&SlowStage::filter>(ref, pack), ac::rpc::RpcError);
  EXPECT_EQ(retry->retries(), 2u);  // 3 attempts = 2 retries
}

TEST(RetryAspect, FailoverRedirectsToHealthyTarget) {
  ac::Cluster cluster(ac::Cluster::Options{2, 2});
  register_slow_stage(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  aop::Context ctx;
  ctx.attach(make_dist(cluster, rmi));
  auto primary = ctx.create<SlowStage>(10LL, 0LL);   // node 0
  auto standby = ctx.create<SlowStage>(20LL, 0LL);   // node 1

  opt::RetryAspect<SlowStage>::Options ropts;
  ropts.attempts = 2;
  ropts.failover = [standby](int, const aop::Ref<SlowStage>&) {
    return standby;
  };
  auto retry = std::make_shared<opt::RetryAspect<SlowStage>>(ropts);
  retry->retry_method<&SlowStage::filter>();
  ctx.attach(retry);

  cluster.node(0).crash();
  std::vector<long long> pack{1};
  ctx.call<&SlowStage::filter>(primary, pack);
  // The standby (id 20) served the call; copy-restore proves it.
  EXPECT_EQ(pack, (std::vector<long long>{21}));
  EXPECT_EQ(retry->retries(), 1u);
}

TEST(RetryAspect, NoErrorMeansNoRetry) {
  aop::Context ctx;
  opt::RetryAspect<SlowStage>::Options ropts;
  ropts.attempts = 5;
  auto retry = std::make_shared<opt::RetryAspect<SlowStage>>(ropts);
  retry->retry_method<&SlowStage::filter>();
  ctx.attach(retry);
  auto stage = ctx.create<SlowStage>(1LL, 0LL);
  std::vector<long long> pack{1};
  ctx.call<&SlowStage::filter>(stage, pack);
  EXPECT_EQ(retry->retries(), 0u);
  EXPECT_EQ(stage.local()->calls(), 1);
}

TEST(ReplicatedComputation, FirstReplicaWins) {
  aop::Context ctx;
  auto fast = ctx.create<SlowStage>(1LL, 1'000LL);    // 1 ms per query
  auto slow = ctx.create<SlowStage>(2LL, 100'000LL);  // 100 ms per query

  auto repl = std::make_shared<opt::ReplicatedComputationAspect<SlowStage>>();
  repl->set_replicas({slow, fast});
  repl->replicate_method<&SlowStage::query>();
  ctx.attach(repl);

  apar::common::Stopwatch sw;
  const long long result = ctx.call<&SlowStage::query>(slow, 5LL);
  EXPECT_EQ(result, 6);            // id 1 (the fast replica) + 5
  EXPECT_LT(sw.millis(), 80.0);    // well under the slow replica's 100 ms
  EXPECT_EQ(repl->fanouts(), 1u);
  ctx.quiesce();  // the loser finishes in the background
}

TEST(ReplicatedComputation, SingleReplicaPassesThrough) {
  aop::Context ctx;
  auto only = ctx.create<SlowStage>(1LL, 0LL);
  auto repl = std::make_shared<opt::ReplicatedComputationAspect<SlowStage>>();
  repl->set_replicas({only});
  repl->replicate_method<&SlowStage::query>();
  ctx.attach(repl);
  EXPECT_EQ(ctx.call<&SlowStage::query>(only, 7LL), 8);
  EXPECT_EQ(repl->fanouts(), 0u);
  ctx.quiesce();
}

TEST(ReplicatedComputation, HidesSlowRemoteNode) {
  // Two replicas on two nodes; one node is crippled by a huge simulated
  // delay. The racing aspect must return in roughly the fast replica's
  // time.
  ac::Cluster cluster(ac::Cluster::Options{2, 2});
  register_slow_stage(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  aop::Context ctx;
  ctx.attach(make_dist(cluster, rmi));
  auto a = ctx.create<SlowStage>(1LL, 150'000LL);  // node 0: 150 ms per call
  auto b = ctx.create<SlowStage>(2LL, 500LL);      // node 1: 0.5 ms

  auto repl = std::make_shared<opt::ReplicatedComputationAspect<SlowStage>>();
  repl->set_replicas({a, b});
  repl->replicate_method<&SlowStage::query>();
  ctx.attach(repl);

  apar::common::Stopwatch sw;
  const long long result = ctx.call<&SlowStage::query>(a, 10LL);
  EXPECT_EQ(result, 12);          // the fast node-1 replica answered
  EXPECT_LT(sw.millis(), 120.0);  // did not wait for the 150 ms replica
  ctx.quiesce();  // the slow loser finishes in the background
}

TEST(ReplicatedComputation, AllReplicasFailingPropagates) {
  ac::Cluster cluster(ac::Cluster::Options{2, 2});
  register_slow_stage(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  aop::Context ctx;
  ctx.attach(make_dist(cluster, rmi));
  auto a = ctx.create<SlowStage>(1LL, 0LL);
  auto b = ctx.create<SlowStage>(1LL, 0LL);
  auto repl = std::make_shared<opt::ReplicatedComputationAspect<SlowStage>>();
  repl->set_replicas({a, b});
  repl->replicate_method<&SlowStage::query>();
  ctx.attach(repl);

  cluster.node(0).crash();
  cluster.node(1).crash();
  EXPECT_THROW(ctx.call<&SlowStage::query>(a, 1LL), ac::rpc::RpcError);
  try {
    ctx.quiesce();
  } catch (const std::exception&) {
    // spawned replica tasks may also surface the error; either is fine
  }
}

TEST(FarmFailover, PacksRerouteAroundCrashedNode) {
  // End-to-end: farm + concurrency + distribution + retry-with-failover.
  // One node dies; every pack still gets processed by healthy workers.
  ac::Cluster cluster(ac::Cluster::Options{3, 2});
  register_slow_stage(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  aop::Context ctx;

  using Farm = st::FarmAspect<SlowStage, long long, long long, long long>;
  Farm::Options fopts;
  fopts.duplicates = 3;  // one worker per node (round-robin placement)
  fopts.pack_size = 5;
  auto farm = std::make_shared<Farm>(fopts);
  ctx.attach(farm);

  auto conc = std::make_shared<st::ConcurrencyAspect<SlowStage>>("Concurrency");
  conc->async_method<&SlowStage::process>();
  ctx.attach(conc);

  // Failover: route a failed pack to the next worker (mod workers).
  auto retry = std::make_shared<opt::RetryAspect<SlowStage>>(
      opt::RetryAspect<SlowStage>::Options{
          3, [farm](int attempt, const aop::Ref<SlowStage>& failed) {
            const auto& workers = farm->workers();
            for (std::size_t i = 0; i < workers.size(); ++i) {
              if (workers[i] == failed)
                return workers[(i + static_cast<std::size_t>(attempt)) %
                               workers.size()];
            }
            return workers.front();
          }});
  retry->retry_method<&SlowStage::process>();
  ctx.attach(retry);
  ctx.attach(make_dist(cluster, rmi));

  auto first = ctx.create<SlowStage>(100LL, 0LL);
  cluster.node(1).crash();  // kill the middle worker's node

  std::vector<long long> data(30);
  std::iota(data.begin(), data.end(), 0);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();

  // Gather by hand: the worker on the crashed node is unreachable, but
  // it never successfully processed anything, so skipping it loses no
  // results.
  std::vector<long long> results;
  for (const auto& w : farm->workers()) {
    try {
      auto part = ctx.call<&SlowStage::take_results>(w);
      results.insert(results.end(), part.begin(), part.end());
    } catch (const ac::rpc::RpcError&) {
    }
  }
  std::sort(results.begin(), results.end());
  std::vector<long long> expected(30);
  std::iota(expected.begin(), expected.end(), 100);
  EXPECT_EQ(results, expected);
  EXPECT_GT(retry->retries(), 0u);
}
