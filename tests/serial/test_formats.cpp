#include "apar/serial/archive.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace as = apar::serial;

// The verbose (RMI-like) format must be self-describing and strictly larger
// than the compact (MPP-like) format for the same data — this size gap is
// one of the two mechanisms behind FarmMPP < FarmRMI in Figure 17 (the
// other being the per-call handshake).

TEST(Formats, VerboseLargerThanCompactForScalars) {
  const auto compact = as::encode(as::Format::kCompact, 1, 2.0, true);
  const auto verbose = as::encode(as::Format::kVerbose, 1, 2.0, true);
  EXPECT_GT(verbose.size(), compact.size());
}

TEST(Formats, VerboseOverheadShrinksForBulkData) {
  // Element tags are hoisted for arithmetic vectors, so the relative
  // overhead must approach 1 as payloads grow.
  std::vector<long long> small(4, 1), big(100000, 1);
  const double small_ratio = as::verbose_overhead(small);
  const double big_ratio = as::verbose_overhead(big);
  EXPECT_GT(small_ratio, 1.0);
  EXPECT_LT(big_ratio, small_ratio);
  EXPECT_LT(big_ratio, 1.01);
}

TEST(Formats, CompactScalarIsExactlyPayloadSized) {
  const auto buf = as::encode(as::Format::kCompact, std::int64_t{5});
  EXPECT_EQ(buf.size(), sizeof(std::int64_t));
}

TEST(Formats, VerboseScalarCarriesTag) {
  const auto buf = as::encode(as::Format::kVerbose, std::int64_t{5});
  EXPECT_EQ(buf.size(), sizeof(std::int64_t) + 1);
}

TEST(Formats, VerboseDetectsTypeConfusion) {
  // Writing an int32 and reading a double must fail loudly in verbose mode.
  const auto buf = as::encode(as::Format::kVerbose, std::int32_t{1234});
  as::Reader r(buf, as::Format::kVerbose);
  double wrong = 0;
  EXPECT_THROW(r.value(wrong), as::SerialError);
}

TEST(Formats, VerboseDetectsSequenceElementConfusion) {
  const auto buf =
      as::encode(as::Format::kVerbose, std::vector<double>{1.0, 2.0});
  as::Reader r(buf, as::Format::kVerbose);
  std::vector<std::string> wrong;
  EXPECT_THROW(r.value(wrong), as::SerialError);
}

TEST(Formats, CompactDoesNotDetectTypeConfusion) {
  // Documented trade-off: compact trusts the endpoints (like MPP / raw MPI
  // buffers); same-width reinterpretation succeeds.
  const auto buf = as::encode(as::Format::kCompact, std::uint64_t{7});
  as::Reader r(buf, as::Format::kCompact);
  std::int64_t reinterpreted = 0;
  EXPECT_NO_THROW(r.value(reinterpreted));
  EXPECT_EQ(reinterpreted, 7);
}

TEST(Formats, ObjectHeaderTravelsOnlyInVerbose) {
  as::Writer wc(as::Format::kCompact);
  wc.begin_object("PrimeFilter");
  EXPECT_EQ(wc.size(), 0u);

  as::Writer wv(as::Format::kVerbose);
  wv.begin_object("PrimeFilter");
  EXPECT_GT(wv.size(), std::string("PrimeFilter").size());

  as::Reader rv(wv.bytes(), as::Format::kVerbose);
  EXPECT_EQ(rv.begin_object(), "PrimeFilter");
}

TEST(Formats, FormatMismatchFailsLoudlyOrHarmlessly) {
  // Verbose reader on compact bytes must throw (bad tags), never crash.
  const auto compact = as::encode(as::Format::kCompact, std::string("abc"));
  as::Reader r(compact, as::Format::kVerbose);
  std::string s;
  EXPECT_THROW(r.value(s), as::SerialError);
}

TEST(Formats, WriterTakeMovesBufferOut) {
  as::Writer w;
  w.value(std::int32_t{1});
  auto buf = w.take();
  EXPECT_EQ(buf.size(), sizeof(std::int32_t));
  EXPECT_EQ(w.size(), 0u);
}
