#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "apar/serial/archive.hpp"

namespace as = apar::serial;

namespace user_types {
struct TokenStat {
  std::string word;
  long long count = 0;
  double share = 0.0;
  friend bool operator==(const TokenStat&, const TokenStat&) = default;
};
APAR_SERIALIZE_FIELDS(TokenStat, word, count, share)

struct Nested {
  TokenStat top;
  std::vector<TokenStat> all;
  friend bool operator==(const Nested&, const Nested&) = default;
};
APAR_SERIALIZE_FIELDS(Nested, top, all)
}  // namespace user_types

class SerialEdge : public ::testing::TestWithParam<as::Format> {};

INSTANTIATE_TEST_SUITE_P(Formats, SerialEdge,
                         ::testing::Values(as::Format::kCompact,
                                           as::Format::kVerbose),
                         [](const auto& info) {
                           return info.param == as::Format::kCompact
                                      ? "Compact"
                                      : "Verbose";
                         });

TEST_P(SerialEdge, SpecialFloatingPointValues) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double denorm = std::numeric_limits<double>::denorm_min();
  const auto buf = as::encode(GetParam(), inf, -inf, nan, denorm, -0.0);
  const auto [a, b, c, d, e] =
      as::decode<double, double, double, double, double>(buf, GetParam());
  EXPECT_TRUE(std::isinf(a) && a > 0);
  EXPECT_TRUE(std::isinf(b) && b < 0);
  EXPECT_TRUE(std::isnan(c));
  EXPECT_EQ(d, denorm);
  EXPECT_EQ(e, 0.0);
  EXPECT_TRUE(std::signbit(e));
}

TEST_P(SerialEdge, IntegerExtremes) {
  const auto buf = as::encode(GetParam(),
                              std::numeric_limits<std::int64_t>::min(),
                              std::numeric_limits<std::int64_t>::max(),
                              std::numeric_limits<std::uint64_t>::max());
  const auto [lo, hi, u] =
      as::decode<std::int64_t, std::int64_t, std::uint64_t>(buf, GetParam());
  EXPECT_EQ(lo, std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(hi, std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(u, std::numeric_limits<std::uint64_t>::max());
}

TEST_P(SerialEdge, StringsWithEmbeddedNulsAndUtf8) {
  const std::string nuls("a\0b\0c", 5);
  const std::string utf8 = "π ≈ 3.14159 — ok";
  const auto buf = as::encode(GetParam(), nuls, utf8);
  const auto [n, u] = as::decode<std::string, std::string>(buf, GetParam());
  EXPECT_EQ(n, nuls);
  EXPECT_EQ(n.size(), 5u);
  EXPECT_EQ(u, utf8);
}

TEST_P(SerialEdge, VectorBoolRoundtrips) {
  const std::vector<bool> bits{true, false, true, true, false};
  const auto buf = as::encode(GetParam(), bits);
  const auto [out] = as::decode<std::vector<bool>>(buf, GetParam());
  EXPECT_EQ(out, bits);
}

TEST_P(SerialEdge, EmptyEverything) {
  const auto buf =
      as::encode(GetParam(), std::string{}, std::vector<int>{},
                 std::vector<bool>{}, std::map<int, int>{});
  const auto [s, v, b, m] =
      as::decode<std::string, std::vector<int>, std::vector<bool>,
                 std::map<int, int>>(buf, GetParam());
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(m.empty());
}

TEST_P(SerialEdge, DeeplyNestedStructures) {
  using Deep = std::vector<std::vector<std::vector<std::string>>>;
  const Deep deep{{{"a", "b"}, {}}, {{"c"}}, {}};
  const auto buf = as::encode(GetParam(), deep);
  const auto [out] = as::decode<Deep>(buf, GetParam());
  EXPECT_EQ(out, deep);
}

TEST_P(SerialEdge, OptionalOfOptional) {
  const std::optional<std::optional<int>> some_some = std::optional<int>(5);
  const std::optional<std::optional<int>> some_none =
      std::optional<int>(std::nullopt);
  const std::optional<std::optional<int>> none;
  const auto buf = as::encode(GetParam(), some_some, some_none, none);
  const auto [a, b, c] =
      as::decode<std::optional<std::optional<int>>,
                 std::optional<std::optional<int>>,
                 std::optional<std::optional<int>>>(buf, GetParam());
  EXPECT_EQ(a, some_some);
  EXPECT_EQ(b, some_none);
  EXPECT_EQ(c, none);
}

TEST_P(SerialEdge, LargeMixedPayloadRoundtrips) {
  std::vector<std::pair<std::string, std::vector<double>>> payload;
  for (int i = 0; i < 200; ++i) {
    payload.emplace_back("key-" + std::to_string(i),
                         std::vector<double>(static_cast<std::size_t>(i),
                                             i * 0.5));
  }
  const auto buf = as::encode(GetParam(), payload);
  const auto [out] = as::decode<decltype(payload)>(buf, GetParam());
  EXPECT_EQ(out, payload);
}

TEST_P(SerialEdge, UserTypesViaSerializeFieldsMacro) {
  const user_types::TokenStat stat{"sieve", 42, 0.125};
  const auto buf = as::encode(GetParam(), stat);
  const auto [out] = as::decode<user_types::TokenStat>(buf, GetParam());
  EXPECT_EQ(out, stat);
}

TEST_P(SerialEdge, NestedUserTypesAndContainersOfThem) {
  const user_types::Nested nested{
      {"farm", 7, 0.5},
      {{"pipe", 1, 0.1}, {"heartbeat", 2, 0.2}}};
  const std::vector<user_types::Nested> many{nested, nested};
  const auto buf = as::encode(GetParam(), nested, many);
  const auto [one, lots] =
      as::decode<user_types::Nested, std::vector<user_types::Nested>>(
          buf, GetParam());
  EXPECT_EQ(one, nested);
  EXPECT_EQ(lots, many);
}

TEST(SerialEdgeFixed, UserTypeCarriesDescriptorInVerboseMode) {
  const user_types::TokenStat stat{"x", 1, 0.0};
  const auto compact = as::encode(as::Format::kCompact, stat);
  const auto verbose = as::encode(as::Format::kVerbose, stat);
  // Verbose carries the "TokenStat" object descriptor plus field tags.
  EXPECT_GT(verbose.size(), compact.size() + std::string("TokenStat").size());
}

TEST(SerialEdgeFixed, CorruptedLengthDetected) {
  // A length prefix pointing far beyond the buffer must throw, not crash.
  as::Writer w;
  w.length(1u << 30);
  as::Reader r(w.bytes());
  const std::size_t huge = r.length();
  EXPECT_EQ(huge, 1u << 30);
  // Using that length to read a string from an empty remainder:
  as::Writer w2;
  w2.length(1000);  // claims 1000 bytes follow; none do
  as::Reader r2(w2.bytes());
  std::string s;
  EXPECT_THROW(r2.value(s), as::SerialError);
}

TEST(SerialEdgeFixed, EveryByteTruncationEitherThrowsOrYieldsPrefix) {
  // Property: truncating a valid buffer at ANY byte must throw SerialError
  // (never UB/crash) when fully decoded.
  const auto buf = as::encode(as::Format::kVerbose, std::string("hello"),
                              std::vector<long long>{1, 2, 3}, 3.14);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::vector<std::byte> truncated(buf.begin(),
                                     buf.begin() + static_cast<long>(cut));
    EXPECT_THROW(
        (as::decode<std::string, std::vector<long long>, double>(
            truncated, as::Format::kVerbose)),
        as::SerialError)
        << "cut at " << cut;
  }
}
