#include "apar/serial/archive.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

namespace as = apar::serial;

/// Roundtrip tests are parameterized over both wire formats: every value
/// must survive either encoding unchanged.
class ArchiveRoundtrip : public ::testing::TestWithParam<as::Format> {};

INSTANTIATE_TEST_SUITE_P(Formats, ArchiveRoundtrip,
                         ::testing::Values(as::Format::kCompact,
                                           as::Format::kVerbose),
                         [](const auto& info) {
                           return info.param == as::Format::kCompact
                                      ? "Compact"
                                      : "Verbose";
                         });

TEST_P(ArchiveRoundtrip, Scalars) {
  const auto buf = as::encode(GetParam(), std::int32_t{-5}, std::uint64_t{99},
                              3.25, true, std::int8_t{-1});
  const auto [i, u, d, b, c] =
      as::decode<std::int32_t, std::uint64_t, double, bool, std::int8_t>(
          buf, GetParam());
  EXPECT_EQ(i, -5);
  EXPECT_EQ(u, 99u);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(b);
  EXPECT_EQ(c, -1);
}

TEST_P(ArchiveRoundtrip, Strings) {
  const auto buf =
      as::encode(GetParam(), std::string("hello"), std::string(""),
                 std::string(1000, 'x'));
  const auto [a, b, c] =
      as::decode<std::string, std::string, std::string>(buf, GetParam());
  EXPECT_EQ(a, "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
}

TEST_P(ArchiveRoundtrip, ArithmeticVectorBulk) {
  std::vector<long long> v;
  for (long long i = 0; i < 10000; ++i) v.push_back(i * i);
  const auto buf = as::encode(GetParam(), v);
  const auto [out] = as::decode<std::vector<long long>>(buf, GetParam());
  EXPECT_EQ(out, v);
}

TEST_P(ArchiveRoundtrip, EmptyVector) {
  const std::vector<int> v;
  const auto buf = as::encode(GetParam(), v);
  const auto [out] = as::decode<std::vector<int>>(buf, GetParam());
  EXPECT_TRUE(out.empty());
}

TEST_P(ArchiveRoundtrip, NestedVectors) {
  const std::vector<std::vector<int>> v{{1, 2}, {}, {3}};
  const auto buf = as::encode(GetParam(), v);
  const auto [out] =
      as::decode<std::vector<std::vector<int>>>(buf, GetParam());
  EXPECT_EQ(out, v);
}

TEST_P(ArchiveRoundtrip, PairsAndTuples) {
  const std::pair<int, std::string> p{7, "seven"};
  const std::tuple<double, bool, std::string> t{1.5, false, "t"};
  const auto buf = as::encode(GetParam(), p, t);
  const auto [po, to] =
      as::decode<std::pair<int, std::string>,
                 std::tuple<double, bool, std::string>>(buf, GetParam());
  EXPECT_EQ(po, p);
  EXPECT_EQ(to, t);
}

TEST_P(ArchiveRoundtrip, Optionals) {
  const std::optional<int> some = 42;
  const std::optional<int> none;
  const auto buf = as::encode(GetParam(), some, none);
  const auto [a, b] =
      as::decode<std::optional<int>, std::optional<int>>(buf, GetParam());
  EXPECT_EQ(a, some);
  EXPECT_EQ(b, none);
}

TEST_P(ArchiveRoundtrip, Maps) {
  const std::map<std::string, int> m{{"one", 1}, {"two", 2}};
  const auto buf = as::encode(GetParam(), m);
  const auto [out] =
      as::decode<std::map<std::string, int>>(buf, GetParam());
  EXPECT_EQ(out, m);
}

TEST_P(ArchiveRoundtrip, Enums) {
  enum class Color : std::uint8_t { kRed = 1, kBlue = 2 };
  as::Writer w(GetParam());
  w.value(Color::kBlue);
  as::Reader r(w.bytes(), GetParam());
  Color c{};
  r.value(c);
  EXPECT_EQ(c, Color::kBlue);
}

TEST_P(ArchiveRoundtrip, TruncatedInputThrows) {
  auto buf = as::encode(GetParam(), std::string("hello world"));
  buf.resize(buf.size() / 2);
  EXPECT_THROW((as::decode<std::string>(buf, GetParam())),
               as::SerialError);
}

TEST_P(ArchiveRoundtrip, TrailingBytesDetected) {
  auto buf = as::encode(GetParam(), std::int32_t{1});
  buf.push_back(std::byte{0});
  EXPECT_THROW((as::decode<std::int32_t>(buf, GetParam())), as::SerialError);
}

TEST(ArchiveVarint, LengthBoundaries) {
  as::Writer w;
  for (std::size_t n : {std::size_t{0}, std::size_t{127}, std::size_t{128},
                        std::size_t{16383}, std::size_t{16384},
                        std::size_t{1} << 40}) {
    w.length(n);
  }
  as::Reader r(w.bytes());
  EXPECT_EQ(r.length(), 0u);
  EXPECT_EQ(r.length(), 127u);
  EXPECT_EQ(r.length(), 128u);
  EXPECT_EQ(r.length(), 16383u);
  EXPECT_EQ(r.length(), 16384u);
  EXPECT_EQ(r.length(), std::size_t{1} << 40);
  EXPECT_TRUE(r.exhausted());
}

TEST(ArchiveVarint, SingleByteFor127) {
  as::Writer w;
  w.length(127);
  EXPECT_EQ(w.size(), 1u);
  w.length(128);
  EXPECT_EQ(w.size(), 3u);  // +2 bytes
}
