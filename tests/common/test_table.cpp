#include "apar/common/table.hpp"

#include <gtest/gtest.h>

namespace ac = apar::common;

TEST(Table, AlignsColumns) {
  ac::Table t({"Filters", "Time"});
  t.add_row({"1", "6.10"});
  t.add_row({"16", "1.25"});
  const std::string out = t.str();
  EXPECT_NE(out.find("Filters  Time"), std::string::npos);
  EXPECT_NE(out.find("-------  ----"), std::string::npos);
  EXPECT_NE(out.find("16       1.25"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  ac::Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_NO_THROW(t.str());
}

TEST(Table, LongRowExtendsColumnCount) {
  ac::Table t({"a"});
  t.add_row({"x", "y"});
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CsvOutput) {
  ac::Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, IndentPrefixesEveryLine) {
  ac::Table t({"h"});
  t.add_row({"v"});
  const std::string out = t.str(2);
  EXPECT_EQ(out.rfind("  h", 0), 0u);
  EXPECT_NE(out.find("\n  -"), std::string::npos);
  EXPECT_NE(out.find("\n  v"), std::string::npos);
}

TEST(TableFormat, Seconds) { EXPECT_EQ(ac::fmt_seconds(3.14159), "3.142"); }

TEST(TableFormat, Millis) { EXPECT_EQ(ac::fmt_millis(12.345), "12.35 ms"); }

TEST(TableFormat, RatioAboveOne) { EXPECT_EQ(ac::fmt_ratio(1.042), "+4.2%"); }

TEST(TableFormat, RatioBelowOne) { EXPECT_EQ(ac::fmt_ratio(0.958), "-4.2%"); }

TEST(TableFormat, CountThousandsSeparators) {
  EXPECT_EQ(ac::fmt_count(10000000), "10,000,000");
  EXPECT_EQ(ac::fmt_count(999), "999");
  EXPECT_EQ(ac::fmt_count(1000), "1,000");
  EXPECT_EQ(ac::fmt_count(-1234567), "-1,234,567");
  EXPECT_EQ(ac::fmt_count(0), "0");
}
