#include "apar/common/config.hpp"

#include <gtest/gtest.h>

namespace ac = apar::common;

namespace {
ac::Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ac::Config(static_cast<int>(argv.size()), argv.data());
}
}  // namespace

TEST(Config, SpaceSeparatedValue) {
  const auto c = parse({"--filters", "16"});
  EXPECT_EQ(c.get_int("filters", 0), 16);
}

TEST(Config, EqualsSeparatedValue) {
  const auto c = parse({"--strategy=farm"});
  EXPECT_EQ(c.get("strategy"), "farm");
}

TEST(Config, BareFlagIsTrue) {
  const auto c = parse({"--verbose"});
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_TRUE(c.has("verbose"));
}

TEST(Config, MissingKeyUsesFallback) {
  const auto c = parse({});
  EXPECT_EQ(c.get_int("filters", 7), 7);
  EXPECT_EQ(c.get("strategy", "pipeline"), "pipeline");
  EXPECT_FALSE(c.has("filters"));
}

TEST(Config, PositionalArguments) {
  const auto c = parse({"input.txt", "--n", "3", "output.txt"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "input.txt");
  EXPECT_EQ(c.positional()[1], "output.txt");
}

TEST(Config, DoubleParsing) {
  const auto c = parse({"--latency-us=12.5"});
  EXPECT_DOUBLE_EQ(c.get_double("latency-us", 0.0), 12.5);
}

TEST(Config, BoolSpellings) {
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=on"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=no"}).get_bool("a", true));
}

TEST(Config, MalformedNumberFallsBack) {
  const auto c = parse({"--n=notanumber"});
  EXPECT_EQ(c.get_int("n", 42), 42);
}

TEST(Config, ProgrammaticSetOverrides) {
  auto c = parse({"--n=1"});
  c.set("n", "2");
  EXPECT_EQ(c.get_int("n", 0), 2);
}

TEST(Config, FlagFollowedByFlag) {
  const auto c = parse({"--a", "--b", "3"});
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_EQ(c.get_int("b", 0), 3);
}
