#include "apar/common/rng.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "apar/common/stress.hpp"

namespace ac = apar::common;

TEST(Rng, DeterministicForSameSeed) {
  ac::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  ac::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestoresSequence) {
  ac::Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<size_t>(i)]);
}

TEST(Rng, UniformRespectsBounds) {
  ac::Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  ac::Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform(5, 5), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  ac::Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01CoversRangeRoughly) {
  ac::Rng r(13);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, ProducesDistinctValues) {
  ac::Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(StressRng, RngAtIsPurePerIndex) {
  for (std::uint64_t i = 0; i < 32; ++i) {
    ac::Rng a = ac::rng_at(99, i);
    ac::Rng b = ac::rng_at(99, i);
    EXPECT_EQ(a(), b());
    EXPECT_EQ(a(), b());
  }
}

TEST(StressRng, RngAtDecorrelatesNeighbouringIndices) {
  // Consecutive indices (and consecutive seeds) must not produce related
  // streams — splitmix64 mixing, not raw xor, guards this.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 256; ++i) firsts.insert(ac::rng_at(1, i)());
  for (std::uint64_t s = 0; s < 256; ++s) firsts.insert(ac::rng_at(s, 0)());
  EXPECT_EQ(firsts.size(), 511u);  // seed 1/index 0 appears in both loops
}

TEST(StressRng, Mix64IsInjectiveOnASample) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) seen.insert(ac::mix64(i));
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(StressRng, StressSeedPrefersEnvironment) {
  ASSERT_EQ(unsetenv("APAR_STRESS_SEED"), 0);
  EXPECT_EQ(ac::stress_seed(123), 123u);
  ASSERT_EQ(setenv("APAR_STRESS_SEED", "98765", 1), 0);
  EXPECT_EQ(ac::stress_seed(123), 98765u);
  ASSERT_EQ(setenv("APAR_STRESS_SEED", "not-a-number", 1), 0);
  EXPECT_EQ(ac::stress_seed(123), 123u);  // unparseable -> fallback
  ASSERT_EQ(unsetenv("APAR_STRESS_SEED"), 0);
}
