#include "apar/common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ac = apar::common;

TEST(Stats, MedianOddCount) {
  EXPECT_DOUBLE_EQ(ac::median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Stats, MedianEvenCountAveragesMiddlePair) {
  EXPECT_DOUBLE_EQ(ac::median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MedianSingleElement) { EXPECT_DOUBLE_EQ(ac::median({7.5}), 7.5); }

TEST(Stats, MedianEmptyIsZero) { EXPECT_DOUBLE_EQ(ac::median({}), 0.0); }

TEST(Stats, MedianOfFiveMatchesPaperAggregation) {
  // The paper reports "median of five executions".
  EXPECT_DOUBLE_EQ(ac::median({5.0, 4.0, 1.0, 2.0, 3.0}), 3.0);
}

TEST(Stats, SummaryBasics) {
  const auto s = ac::summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Stats, SummaryEmpty) {
  const auto s = ac::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(ac::percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(ac::percentile(v, 100), 40.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(ac::percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(ac::percentile(v, 25), 2.5);
}

TEST(Stats, AccumulatorMatchesSummary) {
  ac::Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Stats, AccumulatorSingleObservationHasZeroVariance) {
  ac::Accumulator acc;
  acc.add(42.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Stats, MedianDoesNotRequireSortedInput) {
  EXPECT_DOUBLE_EQ(ac::median({9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 5.0}), 5.0);
}
