// Log sink format and the APAR_LOG_LEVEL environment override.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "apar/common/log.hpp"

namespace ac = apar::common;

namespace {

/// Restores the previous level (and env var state) on scope exit.
struct LevelGuard {
  ac::LogLevel saved = ac::log_level();
  ~LevelGuard() {
    unsetenv("APAR_LOG_LEVEL");
    ac::set_log_level(saved);
  }
};

}  // namespace

TEST(LogLevel, ParseNamesAndUnknownFallsBackToWarn) {
  EXPECT_EQ(ac::parse_log_level("trace"), ac::LogLevel::kTrace);
  EXPECT_EQ(ac::parse_log_level("debug"), ac::LogLevel::kDebug);
  EXPECT_EQ(ac::parse_log_level("info"), ac::LogLevel::kInfo);
  EXPECT_EQ(ac::parse_log_level("warn"), ac::LogLevel::kWarn);
  EXPECT_EQ(ac::parse_log_level("error"), ac::LogLevel::kError);
  EXPECT_EQ(ac::parse_log_level("off"), ac::LogLevel::kOff);
  EXPECT_EQ(ac::parse_log_level("banana"), ac::LogLevel::kWarn);
}

TEST(LogLevel, EnvOverrideAppliesOnReload) {
  LevelGuard guard;
  setenv("APAR_LOG_LEVEL", "debug", 1);
  EXPECT_TRUE(ac::detail::reload_log_level_from_env());
  EXPECT_EQ(ac::log_level(), ac::LogLevel::kDebug);

  setenv("APAR_LOG_LEVEL", "error", 1);
  EXPECT_TRUE(ac::detail::reload_log_level_from_env());
  EXPECT_EQ(ac::log_level(), ac::LogLevel::kError);
}

TEST(LogLevel, UnsetEnvLeavesLevelAlone) {
  LevelGuard guard;
  ac::set_log_level(ac::LogLevel::kInfo);
  unsetenv("APAR_LOG_LEVEL");
  EXPECT_FALSE(ac::detail::reload_log_level_from_env());
  EXPECT_EQ(ac::log_level(), ac::LogLevel::kInfo);
}

TEST(LogLevel, ExplicitSetWinsOverEnvironment) {
  LevelGuard guard;
  setenv("APAR_LOG_LEVEL", "trace", 1);
  ac::set_log_level(ac::LogLevel::kError);
  // The lazy env read must not clobber the programmatic choice.
  EXPECT_EQ(ac::log_level(), ac::LogLevel::kError);
}

TEST(LogSink, EmitsTimestampThreadIdLevelAndComponent) {
  testing::internal::CaptureStderr();
  ac::detail::log_sink(ac::LogLevel::kInfo, "obs", "hello metrics");
  const std::string line = testing::internal::GetCapturedStderr();
  // "[HH:MM:SS.uuuuuu] [INFO ] [t:<id>] obs: hello metrics"
  EXPECT_NE(line.find("[INFO ]"), std::string::npos);
  EXPECT_NE(line.find("[t:"), std::string::npos);
  EXPECT_NE(line.find("obs: hello metrics"), std::string::npos);
  ASSERT_GE(line.size(), 16u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[3], ':');  // HH:MM
  EXPECT_EQ(line[6], ':');  // MM:SS
  EXPECT_EQ(line[9], '.');  // seconds.micros
}

TEST(LogLine, RespectsThreshold) {
  LevelGuard guard;
  ac::set_log_level(ac::LogLevel::kWarn);
  testing::internal::CaptureStderr();
  APAR_DEBUG("test") << "invisible";
  APAR_WARN("test") << "visible";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("invisible"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}
