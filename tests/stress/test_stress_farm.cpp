// Farm strategy under stress: chaos-perturbed schedules locally, and
// lossy/slow middleware remotely with retry+failover riding on top. In
// every configuration the farm's output must equal the sequential core's.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "../strategies/fixtures.hpp"
#include "apar/cluster/fault_injection.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/strategies/chaos_aspect.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/distribution_aspect.hpp"
#include "apar/strategies/farm_aspect.hpp"
#include "apar/strategies/optimisation_aspects.hpp"
#include "stress_common.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace st = apar::strategies;
namespace opt = apar::strategies::optimisation;
using apar::test::SlowStage;
using apar::test::announce_stress_seed;

namespace {

using Farm = st::FarmAspect<SlowStage, long long, long long, long long>;
using Dist = st::DistributionAspect<SlowStage, long long, long long>;

void register_slow_stage(ac::rpc::Registry& registry) {
  registry.bind<SlowStage>("SlowStage")
      .ctor<long long, long long>()
      .method<&SlowStage::filter>("filter")
      .method<&SlowStage::process>("process")
      .method<&SlowStage::collect>("collect")
      .method<&SlowStage::take_results>("take_results")
      .method<&SlowStage::query>("query");
}

std::vector<long long> gather(aop::Context& ctx, Farm& farm) {
  std::vector<long long> results;
  for (const auto& w : farm.workers()) {
    auto part = ctx.call<&SlowStage::take_results>(w);
    results.insert(results.end(), part.begin(), part.end());
  }
  std::sort(results.begin(), results.end());
  return results;
}

std::vector<long long> expected_range(long long n, long long base) {
  std::vector<long long> expected(static_cast<std::size_t>(n));
  std::iota(expected.begin(), expected.end(), base);
  return expected;
}

}  // namespace

TEST(StressFarm, ChaosPerturbedAsyncFarmMatchesReference) {
  const std::uint64_t seed = announce_stress_seed(0xFB01);
  aop::Context ctx;

  Farm::Options fopts;
  fopts.duplicates = 4;
  fopts.pack_size = 7;
  auto farm = std::make_shared<Farm>(fopts);
  ctx.attach(farm);

  auto conc =
      std::make_shared<st::ConcurrencyAspect<SlowStage>>("Concurrency");
  conc->async_method<&SlowStage::process>();
  ctx.attach(conc);

  auto schedule = std::make_shared<st::ChaosSchedule>(
      st::ChaosSchedule::Options{seed, 0.4, 0.25, 80});
  auto chaos = std::make_shared<st::ChaosAspect<SlowStage>>("Chaos", schedule);
  chaos->perturb_method<&SlowStage::process>()
      .perturb_method<&SlowStage::collect>();
  ctx.attach(chaos);

  auto first = ctx.create<SlowStage>(100LL, 20LL);
  std::vector<long long> data(60);
  std::iota(data.begin(), data.end(), 0);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();

  EXPECT_EQ(gather(ctx, *farm), expected_range(60, 100));
  EXPECT_GT(schedule->decisions(), 0u);
}

TEST(StressFarm, FaultyMiddlewareWithFailoverStaysExact) {
  const std::uint64_t seed = announce_stress_seed(0xFB02);
  ac::Cluster cluster(ac::Cluster::Options{3, 2});
  register_slow_stage(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::FaultInjectingMiddleware::Options iopts;
  iopts.seed = seed;
  iopts.drop_rate = 0.15;
  iopts.delay_rate = 0.3;
  iopts.max_delay_us = 100;
  ac::FaultInjectingMiddleware faulty(rmi, iopts);

  aop::Context ctx;
  Farm::Options fopts;
  fopts.duplicates = 3;  // one worker per node
  fopts.pack_size = 5;
  auto farm = std::make_shared<Farm>(fopts);
  ctx.attach(farm);

  auto conc =
      std::make_shared<st::ConcurrencyAspect<SlowStage>>("Concurrency");
  conc->async_method<&SlowStage::process>();
  ctx.attach(conc);

  // Six attempts against a 15% drop rate: the chance a pack exhausts all
  // of them is ~1e-5 — dropped packs re-route to the next worker instead.
  auto retry = std::make_shared<opt::RetryAspect<SlowStage>>(
      opt::RetryAspect<SlowStage>::Options{
          6, [farm](int attempt, const aop::Ref<SlowStage>& failed) {
            const auto& workers = farm->workers();
            for (std::size_t i = 0; i < workers.size(); ++i) {
              if (workers[i] == failed)
                return workers[(i + static_cast<std::size_t>(attempt)) %
                               workers.size()];
            }
            return workers.front();
          }});
  retry->retry_method<&SlowStage::process>();
  ctx.attach(retry);

  auto dist = std::make_shared<Dist>("Distribution", cluster, faulty);
  dist->distribute_method<&SlowStage::process>()
      .distribute_method<&SlowStage::take_results>();
  ctx.attach(dist);

  auto first = ctx.create<SlowStage>(200LL, 0LL);
  std::vector<long long> data(45);
  std::iota(data.begin(), data.end(), 0);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();

  // Quiet the wire before collecting: injection exercised steady state,
  // the harvest must be loss-free to audit it.
  faulty.set_armed(false);
  EXPECT_EQ(gather(ctx, *farm), expected_range(45, 200));
  EXPECT_GT(faulty.fault_stats().intercepted.load(), 0u);
  if (faulty.fault_stats().dropped.load() > 0)
    EXPECT_GT(retry->retries(), 0u);
}
