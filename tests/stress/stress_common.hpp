#pragma once

#include <cstdio>
#include <cstdint>

#include "apar/common/stress.hpp"

namespace apar::test {

/// Resolve this test's seed (APAR_STRESS_SEED wins over the test's
/// default) and print the reproduction line. Every stress test calls this
/// once, so a failing run can be replayed with the exact same fault /
/// perturbation schedule:
///
///   APAR_STRESS_SEED=<printed seed> ctest -L stress -R <test> ...
inline std::uint64_t announce_stress_seed(std::uint64_t fallback) {
  const std::uint64_t seed = common::stress_seed(fallback);
  std::printf("[ STRESS  ] seed=%llu (replay: APAR_STRESS_SEED=%llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));
  std::fflush(stdout);
  return seed;
}

}  // namespace apar::test
