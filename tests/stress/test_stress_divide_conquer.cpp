// Divide-and-conquer under stress: chaos in the recursion tree and
// injected wire delays under the distributed variant — sorting must stay
// bit-for-bit equal to std::sort on the same (seed-reproducible) input.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "apar/apps/sort_solver.hpp"
#include "apar/cluster/fault_injection.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/common/stress.hpp"
#include "apar/strategies/chaos_aspect.hpp"
#include "apar/strategies/distribution_aspect.hpp"
#include "apar/strategies/divide_conquer_aspect.hpp"
#include "stress_common.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace st = apar::strategies;
using apar::apps::SortSolver;
using apar::test::announce_stress_seed;

namespace {

using Dnc = st::DivideAndConquerAspect<SortSolver, std::vector<long long>,
                                       std::vector<long long>, long long,
                                       double>;
using Dist = st::DistributionAspect<SortSolver, long long, double>;

std::vector<long long> random_problem(std::size_t n, std::uint64_t seed) {
  apar::common::Rng rng(seed);
  std::vector<long long> v(n);
  for (auto& x : v)
    x = static_cast<long long>(rng.uniform(0, 1'000'000));
  return v;
}

std::vector<long long> sorted_copy(std::vector<long long> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void register_solver(ac::rpc::Registry& registry) {
  registry.bind<SortSolver>("SortSolver")
      .ctor<long long, double>()
      .method<&SortSolver::solve>("solve")
      .method<&SortSolver::merge>("merge");
}

}  // namespace

TEST(StressDivideConquer, ChaoticRecursionTreeSortsExactly) {
  const std::uint64_t seed = announce_stress_seed(0xFD01);
  aop::Context ctx;
  auto dnc = std::make_shared<Dnc>();
  dnc->set_sub_solver_args(64, 0.0);
  ctx.attach(dnc);

  auto schedule = std::make_shared<st::ChaosSchedule>(
      st::ChaosSchedule::Options{seed, 0.4, 0.25, 60});
  auto chaos =
      std::make_shared<st::ChaosAspect<SortSolver>>("Chaos", schedule);
  chaos->perturb_method<&SortSolver::solve>()
      .perturb_method<&SortSolver::merge>()
      .perturb_new<long long, double>();
  ctx.attach(chaos);

  auto solver = ctx.create<SortSolver>(64LL, 0.0);
  const auto problem = random_problem(1500, seed);
  EXPECT_EQ(ctx.call<&SortSolver::solve>(solver, problem),
            sorted_copy(problem));
  EXPECT_GE(dnc->solvers_created(), 2u);
  EXPECT_GT(schedule->decisions(), 0u);
  ctx.quiesce();
}

TEST(StressDivideConquer, DistributedSortUnderInjectedDelaysStaysExact) {
  const std::uint64_t seed = announce_stress_seed(0xFD02);
  ac::Cluster cluster(ac::Cluster::Options{3, 2});
  register_solver(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  // Delay-only injection: a slow wire must never change the sorted result.
  ac::FaultInjectingMiddleware::Options iopts;
  iopts.seed = seed;
  iopts.delay_rate = 0.5;
  iopts.max_delay_us = 80;
  ac::FaultInjectingMiddleware faulty(rmi, iopts);

  aop::Context ctx;
  auto dnc = std::make_shared<Dnc>();
  dnc->set_sub_solver_args(128, 0.0);
  ctx.attach(dnc);
  auto dist = std::make_shared<Dist>("Distribution", cluster, faulty);
  dist->distribute_method<&SortSolver::solve>();
  ctx.attach(dist);

  auto root = ctx.create<SortSolver>(128LL, 0.0);
  EXPECT_TRUE(root.is_remote());
  const auto problem = random_problem(1000, seed + 1);
  EXPECT_EQ(ctx.call<&SortSolver::solve>(root, problem),
            sorted_copy(problem));
  EXPECT_GE(dnc->solvers_created(), 2u);
  EXPECT_GT(faulty.fault_stats().intercepted.load(), 0u);
  ctx.detach("Distribution");
  ctx.quiesce();
}
