// Heartbeat strategy under chaos: synchronous Jacobi iteration is
// deterministic, so perturbed worker schedules must still stitch to a
// bit-for-bit copy of the sequential solution — any deviation means the
// halo-exchange barrier leaked.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "apar/apps/heat_band.hpp"
#include "apar/strategies/chaos_aspect.hpp"
#include "apar/strategies/heartbeat_aspect.hpp"
#include "stress_common.hpp"

namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::apps::HeatBand;
using apar::test::announce_stress_seed;

namespace {

using Heart = st::HeartbeatAspect<HeatBand, long long, long long, long long,
                                  long long, double>;

Heart::Options heart_options(std::size_t bands, bool parallel = true) {
  Heart::Options opts;
  opts.bands = bands;
  opts.parallel_step = parallel;
  opts.ctor_args =
      [](std::size_t i, std::size_t k,
         const std::tuple<long long, long long, long long, long long,
                          double>& original) {
        const auto [rows, cols, offset, total, ns] = original;
        (void)offset;
        const long long share = rows / static_cast<long long>(k);
        const long long extra = rows % static_cast<long long>(k);
        const long long my_rows =
            share + (static_cast<long long>(i) < extra ? 1 : 0);
        long long my_offset = 0;
        for (std::size_t j = 0; j < i; ++j)
          my_offset += share + (static_cast<long long>(j) < extra ? 1 : 0);
        return std::make_tuple(my_rows, cols, my_offset, total, ns);
      };
  return opts;
}

std::vector<double> sequential_heat(long long rows, long long cols,
                                    int iters) {
  HeatBand band(rows, cols, 0, rows, 0.0);
  band.run(iters);
  return band.snapshot();
}

std::vector<double> stitched(Heart& heart) {
  std::vector<double> all;
  for (auto& band : heart.bands()) {
    auto part = band.local()->snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

}  // namespace

TEST(StressHeartbeat, ChaoticParallelStepsMatchSequentialExactly) {
  const std::uint64_t seed = announce_stress_seed(0xFE01);
  constexpr long long kRows = 12, kCols = 6;
  constexpr int kIters = 25;

  aop::Context ctx;
  auto heart = std::make_shared<Heart>(heart_options(3, true));
  ctx.attach(heart);
  auto schedule = std::make_shared<st::ChaosSchedule>(
      st::ChaosSchedule::Options{seed, 0.4, 0.3, 80});
  auto chaos = std::make_shared<st::ChaosAspect<HeatBand>>("Chaos", schedule);
  // Perturb the per-iteration join points: the sweep itself and both halo
  // reads, i.e. exactly where a missing barrier would corrupt the stencil.
  chaos->perturb_method<&HeatBand::step>()
      .perturb_method<&HeatBand::top_row>()
      .perturb_method<&HeatBand::bottom_row>();
  ctx.attach(chaos);

  auto first = ctx.create<HeatBand>(kRows, kCols, 0LL, kRows, 0.0);
  ctx.call<&HeatBand::run>(first, kIters);
  ctx.quiesce();

  EXPECT_EQ(stitched(*heart), sequential_heat(kRows, kCols, kIters));
  EXPECT_EQ(heart->beats(), static_cast<std::size_t>(kIters));
  EXPECT_GT(schedule->decisions(), 0u);
}

TEST(StressHeartbeat, ChaosOnManyBandsStillConverges) {
  const std::uint64_t seed = announce_stress_seed(0xFE02);
  constexpr long long kRows = 16, kCols = 8;
  constexpr int kIters = 40;

  aop::Context ctx;
  auto heart = std::make_shared<Heart>(heart_options(5, true));
  ctx.attach(heart);
  auto schedule = std::make_shared<st::ChaosSchedule>(
      st::ChaosSchedule::Options{seed, 0.5, 0.2, 50});
  auto chaos = std::make_shared<st::ChaosAspect<HeatBand>>("Chaos", schedule);
  chaos->perturb_method<&HeatBand::step>();
  ctx.attach(chaos);

  auto first = ctx.create<HeatBand>(kRows, kCols, 0LL, kRows, 0.0);
  ctx.call<&HeatBand::run>(first, kIters);
  ctx.quiesce();

  EXPECT_EQ(stitched(*heart), sequential_heat(kRows, kCols, kIters));
  EXPECT_GT(heart->residual(ctx), 0.0);
}
