// Seed determinism: the same seed must reproduce the exact fault and
// perturbation schedule — byte-identical dumps — no matter how threads
// interleave. This is what makes a printed stress seed a real repro.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "../cluster/fixtures.hpp"
#include "../strategies/fixtures.hpp"
#include "apar/cluster/fault_injection.hpp"
#include "apar/common/stress.hpp"
#include "apar/strategies/chaos_aspect.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/distribution_aspect.hpp"
#include "apar/strategies/farm_aspect.hpp"
#include "stress_common.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace as = apar::serial;
namespace st = apar::strategies;
using apar::test::Counter;
using apar::test::SlowStage;
using apar::test::announce_stress_seed;
using apar::test::register_counter;

namespace {

/// One full fault-injected run over a fresh cluster; returns the decided
/// fault schedule.
std::string fault_run(std::uint64_t seed) {
  ac::Cluster cluster(ac::Cluster::Options{2, 2});
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = seed;
  fopts.drop_rate = 0.2;
  fopts.delay_rate = 0.3;
  fopts.max_delay_us = 30;
  fopts.duplicate_rate = 0.2;
  ac::FaultInjectingMiddleware faulty(rmi, fopts);
  const auto handle =
      faulty.create(0, "Counter", as::encode(faulty.wire_format(), 0LL));
  for (int i = 0; i < 40; ++i) {
    try {
      faulty.invoke(handle, "add", as::encode(faulty.wire_format(), 1LL));
    } catch (const ac::rpc::RpcError&) {
    }
  }
  for (int i = 0; i < 20; ++i)
    faulty.invoke_one_way(handle, "add",
                          as::encode(faulty.wire_format(), 1LL));
  cluster.drain();
  return faulty.schedule_dump();
}

/// Four threads race over one shared schedule; the dump must not care.
std::string chaos_run(std::uint64_t seed) {
  st::ChaosSchedule::Options copts;
  copts.seed = seed;
  copts.yield_rate = 0.3;
  copts.sleep_rate = 0.2;
  copts.max_sleep_us = 50;
  st::ChaosSchedule schedule(copts);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&schedule] {
      for (int i = 0; i < 50; ++i) schedule.perturb();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(schedule.decisions(), 200u);
  return schedule.dump();
}

/// Full woven stack — Rng-seeded data + FaultInjectingMiddleware +
/// ChaosAspect over an asynchronous farm — returning both schedules.
std::pair<std::string, std::string> woven_run(std::uint64_t seed) {
  ac::Cluster cluster(ac::Cluster::Options{3, 2});
  cluster.registry()
      .bind<SlowStage>("SlowStage")
      .ctor<long long, long long>()
      .method<&SlowStage::filter>("filter")
      .method<&SlowStage::process>("process")
      .method<&SlowStage::collect>("collect")
      .method<&SlowStage::take_results>("take_results");
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  // Delay-only faults keep the operation count fixed (no drops → no
  // retries), so the two runs consume exactly the same decision indices.
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = seed;
  fopts.delay_rate = 0.4;
  fopts.max_delay_us = 60;
  ac::FaultInjectingMiddleware faulty(rmi, fopts);

  aop::Context ctx;
  using Farm = st::FarmAspect<SlowStage, long long, long long, long long>;
  Farm::Options farm_opts;
  farm_opts.duplicates = 3;
  farm_opts.pack_size = 5;
  auto farm = std::make_shared<Farm>(farm_opts);
  ctx.attach(farm);
  auto conc =
      std::make_shared<st::ConcurrencyAspect<SlowStage>>("Concurrency");
  conc->async_method<&SlowStage::process>();
  ctx.attach(conc);
  auto schedule = std::make_shared<st::ChaosSchedule>(
      st::ChaosSchedule::Options{seed + 1, 0.3, 0.2, 40});
  auto chaos = std::make_shared<st::ChaosAspect<SlowStage>>("Chaos", schedule);
  chaos->perturb_method<&SlowStage::process>()
      .perturb_method<&SlowStage::collect>();
  ctx.attach(chaos);
  using Dist = st::DistributionAspect<SlowStage, long long, long long>;
  auto dist = std::make_shared<Dist>("Distribution", cluster, faulty);
  dist->distribute_method<&SlowStage::process>()
      .distribute_method<&SlowStage::take_results>();
  ctx.attach(dist);

  auto first = ctx.create<SlowStage>(100LL, 0LL);
  std::vector<long long> data(30);
  std::iota(data.begin(), data.end(), 0);
  ctx.call<&SlowStage::process>(first, data);
  ctx.quiesce();

  // Correctness under perturbation: every element processed exactly once.
  std::vector<long long> results;
  for (const auto& w : farm->workers()) {
    auto part = ctx.call<&SlowStage::take_results>(w);
    results.insert(results.end(), part.begin(), part.end());
  }
  std::sort(results.begin(), results.end());
  std::vector<long long> expected(30);
  std::iota(expected.begin(), expected.end(), 100);
  EXPECT_EQ(results, expected);

  return {faulty.schedule_dump(), schedule->dump()};
}

}  // namespace

TEST(SeedDeterminism, FaultScheduleIsByteIdenticalAcrossRuns) {
  const std::uint64_t seed = announce_stress_seed(0xDE01);
  const std::string first = fault_run(seed);
  const std::string second = fault_run(seed);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first.find("op 0:"), std::string::npos);
}

TEST(SeedDeterminism, DifferentSeedsProduceDifferentSchedules) {
  const std::uint64_t seed = announce_stress_seed(0xDE02);
  EXPECT_NE(fault_run(seed), fault_run(seed + 1));
}

TEST(SeedDeterminism, ChaosScheduleSurvivesThreadInterleaving) {
  const std::uint64_t seed = announce_stress_seed(0xDE03);
  const std::string first = chaos_run(seed);
  const std::string second = chaos_run(seed);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(SeedDeterminism, RngAtIsAPureFunctionOfSeedAndIndex) {
  const std::uint64_t seed = announce_stress_seed(0xDE04);
  for (std::uint64_t i = 0; i < 16; ++i) {
    apar::common::Rng a = apar::common::rng_at(seed, i);
    apar::common::Rng b = apar::common::rng_at(seed, i);
    EXPECT_EQ(a.uniform(0, 1'000'000), b.uniform(0, 1'000'000));
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(SeedDeterminism, WovenStackReproducesBothSchedules) {
  const std::uint64_t seed = announce_stress_seed(0xDE05);
  const auto first = woven_run(seed);
  const auto second = woven_run(seed);
  EXPECT_EQ(first.first, second.first) << "fault schedule diverged";
  EXPECT_EQ(first.second, second.second) << "chaos schedule diverged";
  EXPECT_FALSE(first.first.empty());
  EXPECT_FALSE(first.second.empty());
}
