// Pipeline strategy under chaos: seeded yields/sleeps woven into the
// stage methods must reshuffle interleavings without ever changing the
// processed signal — and the chaos aspect must unplug without residue.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "apar/apps/signal_stage.hpp"
#include "apar/strategies/chaos_aspect.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "apar/strategies/pipeline_aspect.hpp"
#include "stress_common.hpp"

namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::apps::SignalStage;
using apar::test::announce_stress_seed;
namespace sig = apar::apps::signal;

namespace {

using Pipe = st::PipelineAspect<SignalStage, long long, long long, double>;

Pipe::Options pipe_options(std::size_t stages, std::size_t pack_size) {
  Pipe::Options opts;
  opts.duplicates = stages;
  opts.pack_size = pack_size;
  opts.ctor_args = [](std::size_t i, std::size_t,
                      const std::tuple<long long, double>& original) {
    return std::make_tuple(1LL << i, std::get<1>(original));
  };
  return opts;
}

std::vector<long long> test_signal() {
  std::vector<long long> data;
  for (long long i = -600; i < 600; ++i) data.push_back(i * 7);
  return data;
}

std::vector<long long> sequential_reference() {
  SignalStage all(sig::kAll);
  auto data = test_signal();
  all.process(data);
  return all.take_results();
}

}  // namespace

TEST(StressPipeline, ChaoticConcurrentPipelineMatchesCore) {
  const std::uint64_t seed = announce_stress_seed(0xFC01);
  aop::Context ctx;
  auto pipe = std::make_shared<Pipe>(pipe_options(3, 64));
  ctx.attach(pipe);
  auto conc =
      std::make_shared<st::ConcurrencyAspect<SignalStage>>("Concurrency");
  conc->async_method<&SignalStage::filter>()
      .async_method<&SignalStage::process>()
      .guarded_method<&SignalStage::collect>();
  ctx.attach(conc);

  auto schedule = std::make_shared<st::ChaosSchedule>(
      st::ChaosSchedule::Options{seed, 0.35, 0.25, 60});
  auto chaos =
      std::make_shared<st::ChaosAspect<SignalStage>>("Chaos", schedule);
  chaos->perturb_method<&SignalStage::filter>()
      .perturb_method<&SignalStage::collect>();
  ctx.attach(chaos);

  auto first = ctx.create<SignalStage>(sig::kAll, 0.0);
  auto data = test_signal();
  ctx.call<&SignalStage::process>(first, data);
  ctx.quiesce();

  auto results = pipe->gather_results(ctx);
  std::sort(results.begin(), results.end());
  auto expected = sequential_reference();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(results, expected);
  EXPECT_GT(schedule->decisions(), 0u);
}

TEST(StressPipeline, DetachedChaosLeavesNoProbesBehind) {
  announce_stress_seed(0xFC02);
  aop::Context ctx;
  auto pipe = std::make_shared<Pipe>(pipe_options(3, 128));
  ctx.attach(pipe);
  auto schedule = std::make_shared<st::ChaosSchedule>(
      st::ChaosSchedule::Options{7, 1.0, 1.0, 10});  // would fire every call
  auto chaos =
      std::make_shared<st::ChaosAspect<SignalStage>>("Chaos", schedule);
  chaos->perturb_method<&SignalStage::filter>()
      .perturb_method<&SignalStage::collect>();
  ctx.attach(chaos);
  ctx.detach("Chaos");  // the unplugged configuration

  auto first = ctx.create<SignalStage>(sig::kAll, 0.0);
  auto data = test_signal();
  ctx.call<&SignalStage::process>(first, data);
  ctx.quiesce();
  auto results = pipe->gather_results(ctx);
  std::sort(results.begin(), results.end());
  auto expected = sequential_reference();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(results, expected);
  // Detached before the run: not one decision was consumed.
  EXPECT_EQ(schedule->decisions(), 0u);
}
