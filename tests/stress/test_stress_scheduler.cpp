// Seeded stress for the work-stealing scheduler: randomized mixes of
// post / submit / bulk_post / parallel_for from external threads and from
// inside worker tasks, drains and pool teardowns racing active stealing.
// Designed to run under APAR_SANITIZE=thread|address (tools/run_stress.sh);
// every task is accounted for, so any lost wakeup or dropped task hangs or
// fails loudly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apar/common/rng.hpp"
#include "apar/concurrency/parallel_for.hpp"
#include "apar/concurrency/task.hpp"
#include "apar/concurrency/thread_pool.hpp"
#include "stress_common.hpp"

namespace {

using apar::common::Rng;
using apar::concurrency::parallel_for;
using apar::concurrency::Task;
using apar::concurrency::ThreadPool;

TEST(StressScheduler, MixedProducersEveryTaskRunsExactlyOnce) {
  const std::uint64_t seed = apar::test::announce_stress_seed(0x5CED11ULL);
  ThreadPool pool(4);
  constexpr int kProducers = 4;
  constexpr int kOpsPerProducer = 400;
  std::atomic<std::uint64_t> ran{0};
  std::atomic<std::uint64_t> posted{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(seed + static_cast<std::uint64_t>(p) * 7919);
      for (int op = 0; op < kOpsPerProducer; ++op) {
        switch (rng.uniform(0, 3)) {
          case 0:  // single external post
            posted.fetch_add(1, std::memory_order_relaxed);
            pool.post([&ran] {
              ran.fetch_add(1, std::memory_order_relaxed);
            });
            break;
          case 1: {  // bulk post
            const std::size_t n = rng.uniform(1, 16);
            std::vector<Task> tasks;
            tasks.reserve(n);
            for (std::size_t i = 0; i < n; ++i)
              tasks.emplace_back([&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
              });
            posted.fetch_add(n, std::memory_order_relaxed);
            pool.bulk_post(tasks);
            break;
          }
          case 2: {  // task that recursively posts from the worker
            const std::size_t n = rng.uniform(0, 8);
            posted.fetch_add(n + 1, std::memory_order_relaxed);
            pool.post([&pool, &ran, n] {
              ran.fetch_add(1, std::memory_order_relaxed);
              for (std::size_t i = 0; i < n; ++i)
                pool.post([&ran] {
                  ran.fetch_add(1, std::memory_order_relaxed);
                });
            });
            break;
          }
          default:  // submit with a result
            posted.fetch_add(1, std::memory_order_relaxed);
            if (pool.submit([&ran] {
                      ran.fetch_add(1, std::memory_order_relaxed);
                      return 17;
                    })
                    .get() != 17)
              ADD_FAILURE() << "submit returned wrong value";
            break;
        }
        if (op % 64 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.drain();
  EXPECT_EQ(ran.load(), posted.load());
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(StressScheduler, TeardownRacesActiveStealing) {
  const std::uint64_t seed = apar::test::announce_stress_seed(0x7EA12ULL);
  Rng rng(seed);
  for (int round = 0; round < 30; ++round) {
    std::atomic<std::uint64_t> ran{0};
    std::atomic<std::uint64_t> accepted{1};  // the seeder itself
    {
      ThreadPool pool(3);
      const std::size_t fan = rng.uniform(8, 64);
      // Seed one worker's deque so teardown overlaps in-flight steals.
      // Posts racing the destructor may be rejected (documented shutdown
      // contract); every ACCEPTED task must still run before the
      // destructor returns.
      pool.post([&pool, &ran, &accepted, fan] {
        ran.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t i = 0; i < fan; ++i) {
          try {
            pool.post(
                [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
            accepted.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::runtime_error&) {
            break;  // pool is shutting down
          }
        }
      });
      // Sometimes give the workers a head start, sometimes tear down
      // immediately.
      if (rng.uniform(0, 1) == 0) std::this_thread::yield();
    }
    ASSERT_EQ(ran.load(), accepted.load()) << "round " << round;
  }
}

TEST(StressScheduler, RandomizedParallelForNestingStaysExact) {
  const std::uint64_t seed = apar::test::announce_stress_seed(0x4E57ULL);
  Rng rng(seed);
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    const std::size_t outer = rng.uniform(4, 32);
    const std::size_t inner = rng.uniform(4, 64);
    const std::size_t grain = rng.uniform(1, 8);
    std::atomic<std::uint64_t> hits{0};
    parallel_for(pool, 0, outer, 1, [&](std::size_t) {
      // Nested parallel_for from inside a pool task: must help, not
      // deadlock, even with all workers busy in the outer loop.
      parallel_for(pool, 0, inner, grain, [&](std::size_t) {
        hits.fetch_add(1, std::memory_order_relaxed);
      });
    });
    ASSERT_EQ(hits.load(), outer * inner) << "round " << round;
    pool.drain();
    ASSERT_EQ(pool.pending(), 0u);
  }
}

TEST(StressScheduler, FailingTasksNeverPoisonTheScheduler) {
  const std::uint64_t seed = apar::test::announce_stress_seed(0xFA11ULL);
  Rng rng(seed);
  ThreadPool pool(3);
  std::uint64_t expected_failures = 0;
  std::atomic<std::uint64_t> survivors{0};
  for (int i = 0; i < 2000; ++i) {
    if (rng.uniform(0, 3) == 0) {
      ++expected_failures;
      pool.post([] { throw std::runtime_error("stress failure"); });
    } else {
      pool.post([&survivors] {
        survivors.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  pool.drain();
  EXPECT_EQ(pool.task_failures(), expected_failures);
  EXPECT_EQ(survivors.load(), 2000 - expected_failures);
}

}  // namespace
