// FaultInjectingMiddleware semantics under load: every injected fault is
// accounted for, every perturbed operation either completes correctly or
// fails with a clean RpcError — never a hang, never a half-applied write.
#include <gtest/gtest.h>

#include <cstdint>

#include "../cluster/fixtures.hpp"
#include "apar/cluster/fault_injection.hpp"
#include "stress_common.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;
using apar::test::Counter;
using apar::test::announce_stress_seed;
using apar::test::register_counter;

namespace {

ac::Cluster::Options small_cluster() {
  ac::Cluster::Options o;
  o.nodes = 3;
  o.executors_per_node = 2;
  return o;
}

void add_one(ac::Middleware& mw, const ac::RemoteHandle& handle) {
  mw.invoke(handle, "add", as::encode(mw.wire_format(), 1LL));
}

long long read_value(ac::Middleware& mw, const ac::RemoteHandle& handle) {
  const auto reply = mw.invoke(handle, "get", as::encode(mw.wire_format()));
  const auto [value] = as::decode<long long>(reply, mw.wire_format());
  return value;
}

}  // namespace

TEST(FaultInjection, SyncDropsFailCleanlyAndStateMatchesSuccesses) {
  const std::uint64_t seed = announce_stress_seed(0xFA01);
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = seed;
  fopts.drop_rate = 0.3;
  ac::FaultInjectingMiddleware faulty(rmi, fopts);

  const auto handle =
      faulty.create(0, "Counter", as::encode(faulty.wire_format(), 0LL));
  long long successes = 0;
  for (int i = 0; i < 100; ++i) {
    try {
      add_one(faulty, handle);
      ++successes;
    } catch (const ac::rpc::RpcError&) {
      // a dropped reply: the add never reached the node (clean failure)
    }
  }
  const auto dropped =
      static_cast<long long>(faulty.fault_stats().dropped.load());
  EXPECT_EQ(successes, 100 - dropped);
  EXPECT_GT(dropped, 0) << "seed " << seed << " injected no drops at 30%";

  faulty.set_armed(false);  // read back through the quiet wire
  EXPECT_EQ(read_value(faulty, handle), successes);
}

TEST(FaultInjection, DuplicatedSyncCallsAreAtLeastOnce) {
  const std::uint64_t seed = announce_stress_seed(0xFA02);
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = seed;
  fopts.duplicate_rate = 0.5;
  ac::FaultInjectingMiddleware faulty(rmi, fopts);

  const auto handle =
      faulty.create(1, "Counter", as::encode(faulty.wire_format(), 0LL));
  for (int i = 0; i < 50; ++i) add_one(faulty, handle);

  const auto duplicated =
      static_cast<long long>(faulty.fault_stats().duplicated.load());
  faulty.set_armed(false);
  // At-least-once delivery: every duplicate executed the add a second time.
  EXPECT_EQ(read_value(faulty, handle), 50 + duplicated);
  EXPECT_GT(duplicated, 0) << "seed " << seed << " injected no dups at 50%";
}

TEST(FaultInjection, OneWayLossIsSilentAndFullyAccounted) {
  const std::uint64_t seed = announce_stress_seed(0xFA03);
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = seed;
  fopts.drop_rate = 0.25;
  fopts.delay_rate = 0.3;
  fopts.max_delay_us = 100;
  fopts.duplicate_rate = 0.2;
  ac::FaultInjectingMiddleware faulty(mpp, fopts);

  const auto handle =
      faulty.create(2, "Counter", as::encode(faulty.wire_format(), 0LL));
  for (int i = 0; i < 80; ++i)
    faulty.invoke_one_way(handle, "add",
                          as::encode(faulty.wire_format(), 1LL));
  // Lost one-ways never become pending completions, so drain terminates
  // cleanly — a lossy wire must not wedge the cluster.
  EXPECT_NO_THROW(cluster.drain());

  const auto dropped =
      static_cast<long long>(faulty.fault_stats().dropped.load());
  const auto duplicated =
      static_cast<long long>(faulty.fault_stats().duplicated.load());
  EXPECT_EQ(read_value(rmi, handle), 80 - dropped + duplicated);
  EXPECT_EQ(faulty.fault_stats().intercepted.load(), 80u);
}

TEST(FaultInjection, CrashOnNthCallKillsTargetNodeWithoutHanging) {
  const std::uint64_t seed = announce_stress_seed(0xFA04);
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = seed;
  fopts.crash_on_call = 5;  // the 5th operation crashes its target node
  fopts.cluster = &cluster;
  ac::FaultInjectingMiddleware faulty(rmi, fopts);

  const auto handle =
      faulty.create(1, "Counter", as::encode(faulty.wire_format(), 0LL));
  int successes = 0, failures = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      add_one(faulty, handle);
      ++successes;
    } catch (const ac::rpc::RpcError&) {
      ++failures;
    }
  }
  // Deterministic split: ops 1-4 land, op 5 crashes the node first, and
  // every later call to the dead node fails loudly.
  EXPECT_EQ(successes, 4);
  EXPECT_EQ(failures, 6);
  EXPECT_TRUE(cluster.node(1).crashed());
  EXPECT_EQ(faulty.fault_stats().crashes.load(), 1u);
}

TEST(FaultInjection, DisarmedInjectionIsTransparent) {
  announce_stress_seed(0xFA05);
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::FaultInjectingMiddleware faulty(
      rmi, ac::FaultInjectingMiddleware::Options{});
  faulty.set_armed(false);  // the unplugged configuration

  const auto handle =
      faulty.create(0, "Counter", as::encode(faulty.wire_format(), 0LL));
  for (int i = 0; i < 20; ++i) add_one(faulty, handle);
  EXPECT_EQ(read_value(faulty, handle), 20);
  // Not a single decision was consumed or logged.
  EXPECT_EQ(faulty.fault_stats().intercepted.load(), 0u);
  EXPECT_TRUE(faulty.schedule_dump().empty());
  EXPECT_GE(rmi.stats().sync_calls.load(), 21u);  // 20 adds + 1 get
}

TEST(FaultInjection, HybridOverWrappedBackendsKeepsRoutedCallsFaulty) {
  const std::uint64_t seed = announce_stress_seed(0xFA06);
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  // Wrap the CONCRETE middlewares, then compose the hybrid over the
  // wrappers — routed traffic cannot escape the fault layer.
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = seed;
  fopts.delay_rate = 0.5;
  fopts.max_delay_us = 50;
  ac::FaultInjectingMiddleware faulty_rmi(rmi, fopts);
  ac::FaultInjectingMiddleware faulty_mpp(mpp, fopts);
  ac::HybridMiddleware hybrid(faulty_rmi, faulty_mpp, {"add"});

  EXPECT_EQ(&hybrid.route_for("add"), &faulty_mpp);
  EXPECT_EQ(&hybrid.route_for("get"), &faulty_rmi);
  // A fault wrapper routes to itself: there is no way around it.
  EXPECT_EQ(&faulty_mpp.route_for("add"), &faulty_mpp);

  const auto handle =
      hybrid.create(0, "Counter", as::encode(rmi.wire_format(), 0LL));
  auto& fast = hybrid.route_for("add");
  for (int i = 0; i < 10; ++i)
    fast.invoke_one_way(handle, "add", as::encode(fast.wire_format(), 1LL));
  cluster.drain();
  EXPECT_EQ(faulty_mpp.fault_stats().intercepted.load(), 10u);
  EXPECT_EQ(read_value(hybrid.route_for("get"), handle), 10);
  EXPECT_GE(faulty_rmi.fault_stats().intercepted.load(), 1u);
}
