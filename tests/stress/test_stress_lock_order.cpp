// Seeded deadlock-hazard stress: two independent concurrency aspects each
// guard one Worker method with their own SyncRegistry, and two "bridge"
// advice (order kOptimisation, inside the guards) cross-call the other
// method — the classic ABBA shape. The conflicting acquisition orders are
// driven in serialized phases so the test itself can never hang, but the
// plugged LockOrderAspect must still report the cycle: the order graph
// remembers what a lucky schedule got away with.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "../aop/fixtures.hpp"
#include "apar/analysis/effects.hpp"
#include "apar/analysis/lock_order_aspect.hpp"
#include "apar/aop/aop.hpp"
#include "apar/concurrency/sync_observer.hpp"
#include "apar/strategies/concurrency_aspect.hpp"
#include "stress_common.hpp"

namespace an = apar::analysis;
namespace aop = apar::aop;
namespace acc = apar::concurrency;
namespace strategies = apar::strategies;
using apar::test::Worker;
using apar::test::announce_stress_seed;

namespace {

bool has_cycle(const an::Report& report) {
  for (const an::Finding& f : report.findings())
    if (f.kind == an::FindingKind::kLockOrderCycle) return true;
  return false;
}

/// The static effects pass's counterpart finding, if any: a
/// static-lock-order-cycle whose subject lists the aspects on the loop.
const an::Finding* static_cycle(const an::Report& report) {
  for (const an::Finding& f : report.findings())
    if (f.kind == an::FindingKind::kStaticLockOrderCycle) return &f;
  return nullptr;
}

}  // namespace

TEST(StressLockOrder, AbbaBetweenTwoSyncAspectsIsReported) {
#ifdef APAR_SANITIZED
  GTEST_SKIP() << "TSan flags the deliberate lock-order inversion itself; "
                  "the aspect-level detection is covered unsanitized";
#endif
  const std::uint64_t seed = announce_stress_seed(0x10C0);

  aop::Context ctx;

  // Each sync aspect owns a private SyncRegistry, so the same Worker is
  // guarded by two distinct monitors — the precondition for ABBA.
  auto sync_process =
      std::make_shared<strategies::ConcurrencyAspect<Worker>>("SyncProcess");
  sync_process->guarded_method<&Worker::process>();
  auto sync_compute =
      std::make_shared<strategies::ConcurrencyAspect<Worker>>("SyncCompute");
  sync_compute->guarded_method<&Worker::compute>();
  ctx.attach(sync_process);
  ctx.attach(sync_compute);

  // Bridges sit INSIDE the guards (kOptimisation > kConcurrencySync) and
  // cross-call the other guarded method. core_only keeps them off the
  // nested calls they make themselves, so the chains terminate:
  //   core process -> [SyncProcess] -> bridge -> compute -> [SyncCompute]
  //   core compute -> [SyncCompute] -> bridge -> process -> [SyncProcess]
  auto bridge_p = std::make_shared<aop::Aspect>("BridgeProcess");
  bridge_p
      ->around_method<&Worker::process>(
          aop::order::kOptimisation, aop::Scope::core_only(),
          [](auto& inv) {
            (void)inv.context().template call<&Worker::compute>(inv.target(),
                                                                1);
            return inv.proceed();
          })
      .mark_initiates({"Worker.compute"});
  auto bridge_c = std::make_shared<aop::Aspect>("BridgeCompute");
  bridge_c
      ->around_method<&Worker::compute>(
          aop::order::kOptimisation, aop::Scope::core_only(),
          [](auto& inv) {
            std::vector<int> nested{1, 2};
            inv.context().template call<&Worker::process>(inv.target(),
                                                          nested);
            return inv.proceed();
          })
      .mark_initiates({"Worker.process"});
  ctx.attach(bridge_p);
  ctx.attach(bridge_c);

  auto lock_order = std::make_shared<an::LockOrderAspect>();
  ctx.attach(lock_order);

  // The static effects pass must convict this plan before a single thread
  // runs: the mark_initiates declarations give it the same may-acquire
  // edges the dynamic observer will later record.
  const an::Report plan_report = an::analyze_effects(ctx);
  const an::Finding* predicted = static_cycle(plan_report);
  ASSERT_NE(predicted, nullptr) << "static pass missed the ABBA plan";
  EXPECT_EQ(predicted->severity, an::Severity::kError);
  EXPECT_NE(predicted->subject.find("SyncProcess"), std::string::npos)
      << predicted->subject;
  EXPECT_NE(predicted->subject.find("SyncCompute"), std::string::npos)
      << predicted->subject;

  auto worker = ctx.create<Worker>(1);

  // Drive both acquisition orders from distinct threads, serialized by
  // join so the hazard can never actually wedge the test. The seed only
  // perturbs which side goes first each round — the cycle must be found
  // regardless, and a failing seed replays exactly.
  const int rounds = 4;
  for (int round = 0; round < rounds; ++round) {
    auto rng = apar::common::rng_at(seed, static_cast<std::uint64_t>(round));
    const bool process_first = rng.uniform(0, 1) == 0;
    const std::function<void()> run_process = [&] {
      std::vector<int> pack{1, 2, 3};
      ctx.call<&Worker::process>(worker, pack);
    };
    const std::function<void()> run_compute = [&] {
      ctx.call<&Worker::compute>(worker, 5);
    };
    {
      std::thread t(process_first ? run_process : run_compute);
      t.join();
    }
    {
      std::thread t(process_first ? run_compute : run_process);
      t.join();
    }
  }

  // Both nesting orders were observed, so the graph has the ABBA cycle —
  // the dynamic observer confirms exactly what the static pass predicted
  // above from the weave plan alone.
  EXPECT_GE(lock_order->edges(), 2u) << "seed " << seed;
  const an::Report report = lock_order->report();
  EXPECT_TRUE(has_cycle(report)) << "seed " << seed << "\n" << report.table();

  // Unplug: the observer slot is released and later traffic is invisible.
  ctx.detach(lock_order->name());
  EXPECT_EQ(acc::sync_observer(), nullptr);
  const std::size_t frozen = lock_order->acquisitions();
  std::vector<int> pack{4};
  ctx.call<&Worker::process>(worker, pack);
  EXPECT_EQ(lock_order->acquisitions(), frozen);

  ctx.quiesce();
}

TEST(StressLockOrder, ConsistentBridgeOrderStaysClean) {
  // Control: only one bridge direction exists, so every thread nests the
  // monitors the same way — the analyzer must stay silent no matter how
  // the seeded schedule orders the rounds.
  const std::uint64_t seed = announce_stress_seed(0x10C1);

  aop::Context ctx;
  auto sync_process =
      std::make_shared<strategies::ConcurrencyAspect<Worker>>("SyncProcess");
  sync_process->guarded_method<&Worker::process>();
  auto sync_compute =
      std::make_shared<strategies::ConcurrencyAspect<Worker>>("SyncCompute");
  sync_compute->guarded_method<&Worker::compute>();
  ctx.attach(sync_process);
  ctx.attach(sync_compute);

  auto bridge_p = std::make_shared<aop::Aspect>("BridgeProcess");
  bridge_p
      ->around_method<&Worker::process>(
          aop::order::kOptimisation, aop::Scope::core_only(),
          [](auto& inv) {
            (void)inv.context().template call<&Worker::compute>(inv.target(),
                                                                1);
            return inv.proceed();
          })
      .mark_initiates({"Worker.compute"});
  ctx.attach(bridge_p);

  auto lock_order = std::make_shared<an::LockOrderAspect>();
  ctx.attach(lock_order);

  // One-directional bridging gives the static pass a single may-acquire
  // edge — no loop, so it must agree with the dynamic observer below.
  EXPECT_EQ(static_cycle(an::analyze_effects(ctx)), nullptr);

  auto worker = ctx.create<Worker>(2);
  for (int round = 0; round < 4; ++round) {
    auto rng = apar::common::rng_at(seed, static_cast<std::uint64_t>(round));
    const auto calls = 1 + rng.uniform(0, 2);
    for (std::uint64_t i = 0; i < calls; ++i) {
      std::thread t([&] {
        std::vector<int> pack{1, 2, 3};
        ctx.call<&Worker::process>(worker, pack);
      });
      t.join();
      std::thread u([&] { ctx.call<&Worker::compute>(worker, 5); });
      u.join();
    }
  }

  const an::Report report = lock_order->report();
  EXPECT_FALSE(has_cycle(report)) << "seed " << seed << "\n" << report.table();
  ctx.detach(lock_order->name());
  ctx.quiesce();
}
