#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "apar/sieve/versions.hpp"
#include "apar/sieve/workload.hpp"

namespace sv = apar::sieve;

namespace {

sv::SieveConfig small_config(std::size_t filters) {
  sv::SieveConfig cfg;
  cfg.max = 30'000;       // small but non-trivial: pi = 3245
  cfg.filters = filters;
  cfg.pack_size = 2'000;  // ~7 packs
  cfg.ns_per_op = 0.0;
  cfg.nodes = 3;
  cfg.node_executors = 2;
  return cfg;
}

long long reference_primes(long long max) {
  return sv::count_primes_up_to(max);
}

}  // namespace

/// THE central property: every Table 1 module combination computes exactly
/// the primes the sequential core computes, for several filter counts.
class SieveVersionSweep
    : public ::testing::TestWithParam<std::tuple<sv::Version, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Table1, SieveVersionSweep,
    ::testing::Combine(
        ::testing::Values(sv::Version::kSequential, sv::Version::kFarmThreads,
                          sv::Version::kPipeRmi, sv::Version::kFarmRmi,
                          sv::Version::kFarmDRmi, sv::Version::kFarmMpp,
                          sv::Version::kFarmHybrid),
        ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{5})),
    [](const auto& info) {
      return std::string(sv::version_name(std::get<0>(info.param))) + "_f" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(SieveVersionSweep, FindsExactlyTheReferencePrimes) {
  const auto [version, filters] = GetParam();
  sv::SieveHarness harness(version, small_config(filters));
  const auto result = harness.run();
  EXPECT_EQ(result.primes, reference_primes(30'000));
  EXPECT_GT(result.seconds, 0.0);
}

TEST(SieveVersions, RepeatedRunsAreIndependent) {
  sv::SieveHarness harness(sv::Version::kFarmRmi, small_config(3));
  for (int i = 0; i < 3; ++i) {
    const auto result = harness.run();
    EXPECT_EQ(result.primes, reference_primes(30'000)) << "run " << i;
  }
}

TEST(SieveVersions, Table1AspectSetsMatchThePaper) {
  using V = sv::Version;
  auto plugged = [&](V v) {
    sv::SieveHarness h(v, small_config(2));
    auto names = h.plugged_aspects();
    std::sort(names.begin(), names.end());
    return names;
  };
  EXPECT_EQ(plugged(V::kSequential), (std::vector<std::string>{}));
  EXPECT_EQ(plugged(V::kFarmThreads),
            (std::vector<std::string>{"Concurrency", "LocalCpu", "Partition"}));
  EXPECT_EQ(plugged(V::kPipeRmi),
            (std::vector<std::string>{"Concurrency", "Distribution",
                                      "Partition"}));
  EXPECT_EQ(plugged(V::kFarmRmi),
            (std::vector<std::string>{"Concurrency", "Distribution",
                                      "Partition"}));
  // Dynamic farm: no separate concurrency aspect (paper: "we were not able
  // yet to separate partition from concurrency issues").
  EXPECT_EQ(plugged(V::kFarmDRmi),
            (std::vector<std::string>{"Distribution", "Partition"}));
  EXPECT_EQ(plugged(V::kFarmMpp),
            (std::vector<std::string>{"Concurrency", "Distribution",
                                      "Partition"}));
}

TEST(SieveVersions, MessageTrafficMatchesTopology) {
  const std::size_t filters = 4;
  auto cfg = small_config(filters);
  const std::size_t packs =
      (sv::odd_candidates(cfg.max).size() + cfg.pack_size - 1) /
      cfg.pack_size;

  {
    sv::SieveHarness pipe(sv::Version::kPipeRmi, cfg);
    const auto r = pipe.run();
    // Pipeline: every pack crosses every stage (+ a collect at the end,
    // + k creations). All synchronous under RMI.
    EXPECT_GE(r.sync_messages, packs * filters + packs);
    EXPECT_EQ(r.one_way_messages, 0u);
  }
  {
    sv::SieveHarness farm(sv::Version::kFarmRmi, cfg);
    const auto r = farm.run();
    // Farm: one process call per pack (+ creations).
    EXPECT_GE(r.sync_messages, packs + filters);
    EXPECT_LT(r.sync_messages, packs * filters);
    EXPECT_EQ(r.one_way_messages, 0u);
  }
  {
    sv::SieveHarness mpp(sv::Version::kFarmMpp, cfg);
    const auto r = mpp.run();
    // MPP farm: the process calls go one-way.
    EXPECT_EQ(r.one_way_messages, packs);
  }
}

TEST(SieveVersions, VerboseRmiMovesMoreBytesThanCompactMpp) {
  auto cfg = small_config(3);
  sv::SieveHarness rmi(sv::Version::kFarmRmi, cfg);
  sv::SieveHarness mpp(sv::Version::kFarmMpp, cfg);
  const auto r_rmi = rmi.run();
  const auto r_mpp = mpp.run();
  EXPECT_GT(r_rmi.bytes_on_wire, r_mpp.bytes_on_wire);
}

TEST(SieveVersions, HybridSplitsControlAndDataTraffic) {
  // Paper §5.3 extension: MPP carries the filter traffic one-way, RMI the
  // creations and result gathering.
  sv::SieveHarness hybrid(sv::Version::kFarmHybrid, small_config(4));
  const auto r = hybrid.run();
  EXPECT_EQ(r.primes, reference_primes(30'000));
  EXPECT_GT(r.one_way_messages, 0u);  // MPP data plane
  EXPECT_GT(r.sync_messages, 0u);     // RMI control plane (creations)
}

TEST(SieveVersions, ExtendedVersionsIncludeHybrid) {
  const auto& extended = sv::extended_versions();
  EXPECT_EQ(extended.size(), 6u);
  EXPECT_EQ(extended.back(), sv::Version::kFarmHybrid);
  EXPECT_EQ(sv::version_name(sv::Version::kFarmHybrid), "FarmHybrid");
}

TEST(SieveVersions, VersionNamesAreStable) {
  EXPECT_EQ(sv::version_name(sv::Version::kSequential), "Sequential");
  EXPECT_EQ(sv::version_name(sv::Version::kFarmThreads), "FarmThreads");
  EXPECT_EQ(sv::version_name(sv::Version::kPipeRmi), "PipeRMI");
  EXPECT_EQ(sv::version_name(sv::Version::kFarmRmi), "FarmRMI");
  EXPECT_EQ(sv::version_name(sv::Version::kFarmDRmi), "FarmDRMI");
  EXPECT_EQ(sv::version_name(sv::Version::kFarmMpp), "FarmMPP");
  EXPECT_EQ(sv::table1_versions().size(), 5u);
}

TEST(SieveVersions, CalibrationScalesWithTarget) {
  const auto ops = sv::measure_total_ops(30'000);
  EXPECT_GT(ops, 0u);
  const double ns1 = sv::calibrate_ns_per_op(30'000, 1.0);
  const double ns2 = sv::calibrate_ns_per_op(30'000, 2.0);
  EXPECT_NEAR(ns2 / ns1, 2.0, 1e-9);
  EXPECT_NEAR(ns1 * static_cast<double>(ops), 1e9, 1.0);
}
