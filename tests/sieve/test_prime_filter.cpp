#include <gtest/gtest.h>

#include <algorithm>

#include "apar/common/stopwatch.hpp"
#include "apar/sieve/prime_filter.hpp"
#include "apar/sieve/workload.hpp"

using apar::sieve::PrimeFilter;
namespace sv = apar::sieve;

TEST(Workload, Isqrt) {
  EXPECT_EQ(sv::isqrt(0), 0);
  EXPECT_EQ(sv::isqrt(1), 1);
  EXPECT_EQ(sv::isqrt(3), 1);
  EXPECT_EQ(sv::isqrt(4), 2);
  EXPECT_EQ(sv::isqrt(99), 9);
  EXPECT_EQ(sv::isqrt(100), 10);
  EXPECT_EQ(sv::isqrt(10'000'000), 3162);
}

TEST(Workload, PrimesUpToKnownValues) {
  EXPECT_EQ(sv::primes_up_to(1).size(), 0u);
  EXPECT_EQ(sv::primes_up_to(2), (std::vector<long long>{2}));
  EXPECT_EQ(sv::primes_up_to(20),
            (std::vector<long long>{2, 3, 5, 7, 11, 13, 17, 19}));
  // pi(10^4) = 1229, pi(10^5) = 9592 (classic table values).
  EXPECT_EQ(sv::count_primes_up_to(10'000), 1229);
  EXPECT_EQ(sv::count_primes_up_to(100'000), 9592);
}

TEST(Workload, OddCandidatesRange) {
  const auto cands = sv::odd_candidates(100);  // root = 10
  ASSERT_FALSE(cands.empty());
  EXPECT_EQ(cands.front(), 11);
  EXPECT_EQ(cands.back(), 99);
  for (long long c : cands) EXPECT_EQ(c % 2, 1);
  EXPECT_EQ(cands.size(), 45u);
}

TEST(Workload, BalancedRangesCoverBasePrimes) {
  const auto ranges = sv::balanced_prime_ranges(10'000, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges.front().first, 2);
  EXPECT_EQ(ranges.back().second, 100);
  for (std::size_t i = 1; i < ranges.size(); ++i)
    EXPECT_EQ(ranges[i].first, ranges[i - 1].second + 1);
  // Every base prime falls in exactly one range; shares are balanced.
  const auto primes = sv::primes_up_to(100);  // 25 primes
  std::vector<std::size_t> counts(4, 0);
  for (long long p : primes)
    for (std::size_t i = 0; i < 4; ++i)
      if (p >= ranges[i].first && p <= ranges[i].second) ++counts[i];
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 25u);
  for (auto c : counts) {
    EXPECT_GE(c, 6u);
    EXPECT_LE(c, 7u);
  }
}

TEST(Workload, MoreRangesThanPrimesYieldsEmptyTail) {
  const auto ranges = sv::balanced_prime_ranges(9, 5);  // primes <= 3: {2,3}
  ASSERT_EQ(ranges.size(), 5u);
  EXPECT_EQ(ranges.front().first, 2);
  EXPECT_EQ(ranges.back().second, 3);
}

TEST(PrimeFilterTest, CtorComputesPrimesInRange) {
  PrimeFilter f(5, 20);
  EXPECT_EQ(f.primes(), (std::vector<long long>{5, 7, 11, 13, 17, 19}));
  EXPECT_EQ(f.pmin(), 5);
  EXPECT_EQ(f.pmax(), 20);
}

TEST(PrimeFilterTest, EmptyRangeFiltersNothing) {
  PrimeFilter f(8, 10);  // no primes in [8, 10]
  EXPECT_TRUE(f.primes().empty());
  std::vector<long long> pack{12, 15, 21};
  f.filter(pack);
  EXPECT_EQ(pack, (std::vector<long long>{12, 15, 21}));
}

TEST(PrimeFilterTest, FilterRemovesMultiples) {
  PrimeFilter f(2, 10);  // primes 2,3,5,7
  std::vector<long long> pack{11, 12, 13, 14, 15, 49, 121, 127};
  f.filter(pack);
  // 121 = 11^2 survives (11 not in filter range); 49 = 7^2 removed.
  EXPECT_EQ(pack, (std::vector<long long>{11, 13, 121, 127}));
}

TEST(PrimeFilterTest, TwoStageFilteringEqualsOneStage) {
  // The pipeline identity: filtering by [2,5] then [6,10] equals
  // filtering by [2,10].
  std::vector<long long> pack = sv::odd_candidates(400);
  auto staged = pack;
  PrimeFilter lo(2, 5), hi(6, 10), all(2, 10);
  lo.filter(staged);
  hi.filter(staged);
  all.filter(pack);
  EXPECT_EQ(staged, pack);
}

TEST(PrimeFilterTest, ProcessCollectsSurvivors) {
  PrimeFilter f(2, 10);
  std::vector<long long> pack{11, 12, 13};
  f.process(pack);
  EXPECT_EQ(f.take_results(), (std::vector<long long>{11, 13}));
  EXPECT_TRUE(f.take_results().empty());  // drained
}

TEST(PrimeFilterTest, CollectAppends) {
  PrimeFilter f(2, 10);
  f.collect({3, 5});
  f.collect({7});
  EXPECT_EQ(f.take_results(), (std::vector<long long>{3, 5, 7}));
}

TEST(PrimeFilterTest, OpsCountTrialDivisions) {
  PrimeFilter f(2, 10);  // 4 primes
  std::vector<long long> pack{13};  // survivor: tries all 4 primes
  f.filter(pack);
  EXPECT_EQ(f.ops(), 4u);
  std::vector<long long> even{14};  // divisible by 2: 1 division
  f.filter(even);
  EXPECT_EQ(f.ops(), 5u);
}

TEST(PrimeFilterTest, FullSieveMatchesReference) {
  const long long kMax = 50'000;
  PrimeFilter f(2, sv::isqrt(kMax));
  auto candidates = sv::odd_candidates(kMax);
  f.process(candidates);
  const long long total = sv::count_primes_up_to(sv::isqrt(kMax)) +
                          static_cast<long long>(f.take_results().size());
  EXPECT_EQ(total, sv::count_primes_up_to(kMax));
}

TEST(PrimeFilterTest, WorkModelSleepsProportionally) {
  PrimeFilter slow(2, 100, 50'000.0);  // 50 us per division
  std::vector<long long> pack{101};    // survivor: 25 divisions
  apar::common::Stopwatch sw;
  slow.filter(pack);
  EXPECT_GE(sw.millis(), 1.0);  // 25 x 50us = 1.25 ms
}
