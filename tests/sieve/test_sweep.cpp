// Wider property sweeps over the woven sieve: odd pack sizes, more
// filters than cluster capacity, tiny workloads, degenerate configs —
// every combination must still produce exactly the reference primes.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apar/sieve/versions.hpp"
#include "apar/sieve/workload.hpp"

namespace sv = apar::sieve;

namespace {
sv::SieveConfig config_for(long long max, std::size_t filters,
                           std::size_t pack) {
  sv::SieveConfig cfg;
  cfg.max = max;
  cfg.filters = filters;
  cfg.pack_size = pack;
  cfg.nodes = 2;
  cfg.node_executors = 2;
  cfg.loopback_costs = true;  // semantics under test, not timing
  return cfg;
}
}  // namespace

/// pack_size x filters property sweep on the two structurally riskiest
/// versions (pipeline: forwarding chains; MPP farm: one-way ordering).
class PackSweep
    : public ::testing::TestWithParam<
          std::tuple<sv::Version, std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackSweep,
    ::testing::Combine(::testing::Values(sv::Version::kPipeRmi,
                                         sv::Version::kFarmMpp),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{8}),
                       ::testing::Values(std::size_t{37}, std::size_t{1000},
                                         std::size_t{100000})),
    [](const auto& info) {
      return std::string(sv::version_name(std::get<0>(info.param))) + "_f" +
             std::to_string(std::get<1>(info.param)) + "_p" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(PackSweep, ExactPrimesForEveryShape) {
  const auto [version, filters, pack] = GetParam();
  // Small max keeps the sweep fast; pack sizes range from 1 element per
  // message to one message for everything.
  const long long max = 10'000;
  sv::SieveHarness harness(version, config_for(max, filters, pack));
  EXPECT_EQ(harness.run().primes, sv::count_primes_up_to(max));
}

TEST(SieveSweepEdges, MoreFiltersThanClusterCapacity) {
  // 12 filters on a 2-node / 2-executor cluster: heavy oversubscription.
  const long long max = 20'000;
  sv::SieveHarness harness(sv::Version::kFarmRmi,
                           config_for(max, 12, 1'000));
  EXPECT_EQ(harness.run().primes, sv::count_primes_up_to(max));
}

TEST(SieveSweepEdges, TinyMaxWithNoCandidates) {
  // max=9: root=3, candidates are odd numbers in (3,9] = {5,7,9};
  // primes up to 9 are {2,3,5,7}.
  sv::SieveHarness harness(sv::Version::kFarmThreads, config_for(9, 2, 10));
  EXPECT_EQ(harness.run().primes, 4);
}

TEST(SieveSweepEdges, MaxSmallerThanFirstCandidate) {
  // max=3: no candidates at all; primes {2,3}.
  sv::SieveHarness harness(sv::Version::kSequential, config_for(3, 1, 10));
  EXPECT_EQ(harness.run().primes, 2);
}

TEST(SieveSweepEdges, SingleElementPacksThroughPipeline) {
  const long long max = 2'000;
  sv::SieveHarness harness(sv::Version::kPipeRmi, config_for(max, 2, 1));
  EXPECT_EQ(harness.run().primes, sv::count_primes_up_to(max));
}

TEST(SieveSweepEdges, DynamicFarmWithMoreWorkersThanPacks) {
  const long long max = 10'000;
  // pack = whole candidate set -> 1 pack, 6 workers (5 idle).
  sv::SieveHarness harness(sv::Version::kFarmDRmi,
                           config_for(max, 6, 100'000));
  EXPECT_EQ(harness.run().primes, sv::count_primes_up_to(max));
}

TEST(SieveSweepEdges, HarnessSurvivesManyRebuilds) {
  for (int i = 0; i < 5; ++i) {
    sv::SieveHarness harness(sv::Version::kFarmMpp, config_for(5'000, 3, 500));
    EXPECT_EQ(harness.run().primes, sv::count_primes_up_to(5'000));
  }
}
