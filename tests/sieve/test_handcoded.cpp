#include <gtest/gtest.h>

#include "apar/sieve/handcoded.hpp"
#include "apar/sieve/workload.hpp"

namespace sv = apar::sieve;

namespace {
sv::SieveConfig small_config(std::size_t filters) {
  sv::SieveConfig cfg;
  cfg.max = 30'000;
  cfg.filters = filters;
  cfg.pack_size = 2'000;
  cfg.ns_per_op = 0.0;
  cfg.nodes = 3;
  cfg.node_executors = 2;
  return cfg;
}
}  // namespace

TEST(Handcoded, PipelineRmiFindsReferencePrimes) {
  for (std::size_t filters : {std::size_t{1}, std::size_t{3}}) {
    const auto result =
        sv::handcoded::run_pipeline_rmi(small_config(filters));
    EXPECT_EQ(result.primes, sv::count_primes_up_to(30'000))
        << filters << " filters";
    EXPECT_GT(result.sync_messages, 0u);
  }
}

TEST(Handcoded, FarmThreadsFindsReferencePrimes) {
  for (std::size_t filters : {std::size_t{1}, std::size_t{4}}) {
    const auto result =
        sv::handcoded::run_farm_threads(small_config(filters));
    EXPECT_EQ(result.primes, sv::count_primes_up_to(30'000))
        << filters << " filters";
  }
}

TEST(Handcoded, PipelineMessageCountMatchesWovenTopology) {
  // The hand-coded baseline must exercise the same communication pattern
  // as the woven PipeRMI version, or the Figure 16 comparison is unfair:
  // packs x filters filter-calls + packs collect-calls + creations.
  auto cfg = small_config(3);
  const std::size_t packs =
      (sv::odd_candidates(cfg.max).size() + cfg.pack_size - 1) /
      cfg.pack_size;
  const auto result = sv::handcoded::run_pipeline_rmi(cfg);
  EXPECT_GE(result.sync_messages, packs * 3 + packs + 3);
}
