// Cache-safety pass of the weave-plan verifier: memoizing a method
// nobody declared idempotent, or an effect the serial layer cannot
// record, is a warning locally and an ERROR when the same join point is
// also carried over a wire-mandatory distribution advice.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "../aop/fixtures.hpp"
#include "apar/analysis/report.hpp"
#include "apar/analysis/weave_plan.hpp"
#include "apar/cache/cache_aspect.hpp"
#include "apar/serial/wire_types.hpp"
#include "apar/sieve/prime_filter.hpp"

namespace an = apar::analysis;
namespace aop = apar::aop;
namespace cache = apar::cache;
using apar::sieve::PrimeFilter;
using apar::test::Worker;

namespace {

std::size_t count_kind(const an::Report& report, an::FindingKind kind) {
  return static_cast<std::size_t>(
      std::count_if(report.findings().begin(), report.findings().end(),
                    [&](const an::Finding& f) { return f.kind == kind; }));
}

an::Severity kind_severity(const an::Report& report, an::FindingKind kind) {
  const auto it = std::find_if(
      report.findings().begin(), report.findings().end(),
      [&](const an::Finding& f) { return f.kind == kind; });
  EXPECT_NE(it, report.findings().end());
  return it == report.findings().end() ? an::Severity::kInfo : it->severity;
}

std::shared_ptr<aop::Aspect> passthrough_on(std::string name,
                                            const char* pattern, int order) {
  auto aspect = std::make_shared<aop::Aspect>(std::move(name));
  aspect->around_call<Worker, void, std::vector<int>&>(
      aop::Pattern(pattern), order, aop::Scope::any(),
      [](auto& inv) { return inv.proceed(); });
  return aspect;
}

/// What CacheAspect records for a given declaration, without needing a
/// real cached method: lets each analyzer rule be pinned in isolation.
std::shared_ptr<aop::Aspect> caching_on(std::string name,
                                        std::vector<aop::WireArg> args,
                                        bool idempotent) {
  auto aspect =
      passthrough_on(std::move(name), "Worker.process", aop::order::kOptimisation);
  aspect->advice().back()->mark_caches(std::move(args), idempotent);
  return aspect;
}

}  // namespace

TEST(CacheSafety, IdempotentSerializableCacheIsClean) {
  aop::Context ctx;
  ctx.attach(caching_on("Memo", {aop::WireArg{"vector<int>", true}},
                        /*idempotent=*/true));
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_TRUE(report.empty()) << report.table();
}

TEST(CacheSafety, NonIdempotentCacheWarnsLocally) {
  aop::Context ctx;
  ctx.attach(caching_on("Memo", {aop::WireArg{"vector<int>", true}},
                        /*idempotent=*/false));
  const an::Report report = an::analyze_weave_plan(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kCacheNonIdempotent), 1u)
      << report.table();
  EXPECT_EQ(kind_severity(report, an::FindingKind::kCacheNonIdempotent),
            an::Severity::kWarning);
  EXPECT_EQ(report.findings().front().subject, "Memo/Worker.process");
}

TEST(CacheSafety, UnserializableEffectWarnsLocally) {
  aop::Context ctx;
  ctx.attach(caching_on("Memo", {aop::WireArg{"test::CacheBlob", false}},
                        /*idempotent=*/true));
  const an::Report report = an::analyze_weave_plan(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kCacheUnserializable), 1u)
      << report.table();
  EXPECT_EQ(kind_severity(report, an::FindingKind::kCacheUnserializable),
            an::Severity::kWarning);
}

TEST(CacheSafety, TypeRegistryOverrideSilencesUnserializable) {
  // Mirrors the distribution hazard rule: an out-of-band registry note
  // that the type actually serializes must silence the finding.
  apar::serial::TypeRegistry::global().note("test::CacheLateBlessed", true);
  aop::Context ctx;
  ctx.attach(caching_on("Memo", {aop::WireArg{"test::CacheLateBlessed", false}},
                        /*idempotent=*/true));
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kCacheUnserializable), 0u)
      << report.table();
}

TEST(CacheSafety, WireMandatoryDistributionEscalatesToError) {
  // The same signature is cached AND distributed over a real transport:
  // a hit would skip the remote state transition entirely, so both cache
  // findings become errors.
  aop::Context ctx;
  ctx.attach(caching_on("Memo", {aop::WireArg{"test::CacheBlob", false}},
                        /*idempotent=*/false));
  auto dist = passthrough_on("Dist", "Worker.process", aop::order::kDistribution);
  dist->advice().back()->mark_distributes({aop::WireArg{"vector<int>", true}},
                                          /*wire_mandatory=*/true);
  ctx.attach(dist);
  const an::Report report = an::analyze_weave_plan(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kCacheNonIdempotent), 1u)
      << report.table();
  ASSERT_EQ(count_kind(report, an::FindingKind::kCacheUnserializable), 1u)
      << report.table();
  EXPECT_EQ(kind_severity(report, an::FindingKind::kCacheNonIdempotent),
            an::Severity::kError);
  EXPECT_EQ(kind_severity(report, an::FindingKind::kCacheUnserializable),
            an::Severity::kError);
}

TEST(CacheSafety, SimulatedMiddlewareStaysWarning) {
  // Distribution over the in-process simulated RMI (wire_mandatory=false)
  // does not escalate: a hit skips only local work.
  aop::Context ctx;
  ctx.attach(caching_on("Memo", {aop::WireArg{"vector<int>", true}},
                        /*idempotent=*/false));
  auto dist = passthrough_on("Dist", "Worker.process", aop::order::kDistribution);
  dist->advice().back()->mark_distributes({aop::WireArg{"vector<int>", true}},
                                          /*wire_mandatory=*/false);
  ctx.attach(dist);
  const an::Report report = an::analyze_weave_plan(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kCacheNonIdempotent), 1u)
      << report.table();
  EXPECT_EQ(kind_severity(report, an::FindingKind::kCacheNonIdempotent),
            an::Severity::kWarning);
}

TEST(CacheSafety, DistributionOnOtherSignatureDoesNotEscalate) {
  // The wire transport carries Worker.compute; the cache covers
  // Worker.process. No shared join point, no escalation.
  aop::Context ctx;
  ctx.attach(caching_on("Memo", {aop::WireArg{"vector<int>", true}},
                        /*idempotent=*/false));
  auto dist = std::make_shared<aop::Aspect>("Dist");
  dist->around_call<Worker, int, int>(
      aop::Pattern("Worker.compute"), aop::order::kDistribution,
      aop::Scope::any(), [](auto& inv) { return inv.proceed(); });
  dist->advice().back()->mark_distributes({aop::WireArg{"int", true}},
                                          /*wire_mandatory=*/true);
  ctx.attach(dist);
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_EQ(kind_severity(report, an::FindingKind::kCacheNonIdempotent),
            an::Severity::kWarning);
}

TEST(CacheSafety, RealCacheAspectOnSieveFilterIsClean) {
  // End-to-end: the shipped CacheAspect records exactly the metadata the
  // analyzer needs, and PrimeFilter::filter is declared idempotent with a
  // fully serializable effect.
  aop::Context ctx;
  auto memo = std::make_shared<cache::CacheAspect<PrimeFilter>>("Memo");
  memo->cache_method<&PrimeFilter::filter>();
  ctx.attach(memo);
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_TRUE(report.empty()) << report.table();
  ASSERT_EQ(memo->advice().size(), 1u);
  EXPECT_TRUE(memo->advice()[0]->caches());
  EXPECT_TRUE(memo->advice()[0]->cache_idempotent());
}
