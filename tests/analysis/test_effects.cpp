// Declared-effects race analysis (src/analysis/effects.cpp): shared
// written cells under concurrent weave plans, monitor coverage,
// object-confined spawns, remote divergence, cache/effect conflicts and
// statically-derived lock-order cycles — each rule pinned in isolation
// with hand-marked advice, the same idiom test_cache_safety.cpp uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "../aop/fixtures.hpp"
#include "apar/analysis/effects.hpp"
#include "apar/analysis/report.hpp"
#include "apar/aop/effects.hpp"

namespace an = apar::analysis;
namespace aop = apar::aop;
using apar::test::Point;

namespace apar::test_fx {

/// Effects fixture: two methods sharing the "count" cell, one reader, and
/// one writer of a cell declared idempotent-safe.
class Tally {
 public:
  void bump() { ++n_; }
  void drain() { n_ = 0; }
  [[nodiscard]] int total() const { return n_; }
  void scribble() { buf_ = n_; }

 private:
  int n_ = 0;
  int buf_ = 0;
};

}  // namespace apar::test_fx

APAR_CLASS_NAME(apar::test_fx::Tally, "Tally");
APAR_METHOD_NAME(&apar::test_fx::Tally::bump, "bump");
APAR_METHOD_NAME(&apar::test_fx::Tally::drain, "drain");
APAR_METHOD_NAME(&apar::test_fx::Tally::total, "total");
APAR_METHOD_NAME(&apar::test_fx::Tally::scribble, "scribble");

APAR_METHOD_WRITES(&apar::test_fx::Tally::bump, "count");
APAR_METHOD_WRITES(&apar::test_fx::Tally::drain, "count");
APAR_METHOD_READS(&apar::test_fx::Tally::total, "count");
APAR_METHOD_READS(&apar::test_fx::Tally::scribble, "count");
APAR_METHOD_WRITES(&apar::test_fx::Tally::scribble, "buffer");
APAR_STATE_IDEMPOTENT(apar::test_fx::Tally, "buffer");

using apar::test_fx::Tally;

namespace {

std::size_t count_kind(const an::Report& report, an::FindingKind kind) {
  return static_cast<std::size_t>(
      std::count_if(report.findings().begin(), report.findings().end(),
                    [&](const an::Finding& f) { return f.kind == kind; }));
}

an::Severity kind_severity(const an::Report& report, an::FindingKind kind) {
  const auto it = std::find_if(
      report.findings().begin(), report.findings().end(),
      [&](const an::Finding& f) { return f.kind == kind; });
  EXPECT_NE(it, report.findings().end());
  return it == report.findings().end() ? an::Severity::kInfo : it->severity;
}

/// Passthrough advice on `pattern` with no metadata; marks are chained by
/// each test onto aspect->advice().back().
template <class T = Tally>
std::shared_ptr<aop::Aspect> passthrough_on(std::string name,
                                            const char* pattern, int order) {
  auto aspect = std::make_shared<aop::Aspect>(std::move(name));
  aspect->around_call<T, void>(aop::Pattern(pattern), order, aop::Scope::any(),
                               [](auto& inv) { return inv.proceed(); });
  return aspect;
}

std::shared_ptr<aop::Aspect> spawner_on(std::string name, const char* pattern,
                                        bool confined = false) {
  auto aspect = passthrough_on(std::move(name), pattern,
                               aop::order::kConcurrencyAsync);
  aspect->advice().back()->mark_spawns_concurrency(confined);
  return aspect;
}

std::shared_ptr<aop::Aspect> monitor_on(std::string name, const char* pattern) {
  auto aspect =
      passthrough_on(std::move(name), pattern, aop::order::kConcurrencySync);
  aspect->advice().back()->mark_acquires_monitor();
  return aspect;
}

std::shared_ptr<aop::Aspect> distributor_on(std::string name,
                                            const char* pattern,
                                            bool wire_mandatory) {
  auto aspect =
      passthrough_on(std::move(name), pattern, aop::order::kDistribution);
  aspect->advice().back()->mark_distributes({}, wire_mandatory);
  return aspect;
}

}  // namespace

// --- effect registry ------------------------------------------------------

TEST(EffectRegistry, DeclaredSetsAreVisibleAndDeduplicated) {
  const aop::EffectRegistry& reg = aop::EffectRegistry::global();
  const aop::Signature bump{"Tally", "bump", aop::JoinPointKind::kMethodCall};
  ASSERT_TRUE(reg.declared(bump));
  const auto effects = reg.effects(bump);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].state, "count");
  EXPECT_EQ(effects[0].kind, aop::EffectKind::kWrite);

  // Registration is idempotent: a second TU running the same macro (or a
  // repeated explicit add) must not grow the set.
  const std::size_t before = reg.size();
  aop::EffectRegistry::global().add("Tally", "bump", "count",
                                    aop::EffectKind::kWrite);
  EXPECT_EQ(reg.size(), before);

  EXPECT_TRUE(reg.state_idempotent("Tally", "buffer"));
  EXPECT_FALSE(reg.state_idempotent("Tally", "count"));
}

// --- unknown effects ------------------------------------------------------

TEST(EffectAnalysis, UnannotatedConcurrentSignatureIsInfoNeverError) {
  // Point declares no effects anywhere; spawning it concurrently must
  // produce only informational findings — unannotated code never gates.
  aop::Context ctx;
  auto spawn = std::make_shared<aop::Aspect>("Conc");
  spawn->around_call<Point, void, int>(
      aop::Pattern("Point.moveX"), aop::order::kConcurrencyAsync,
      aop::Scope::any(), [](auto& inv) { return inv.proceed(); });
  spawn->advice().back()->mark_spawns_concurrency();
  ctx.attach(spawn);

  const an::Report report = an::analyze_effects(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kUnknownEffects), 1u)
      << report.table();
  EXPECT_EQ(report.size(), 1u);
  EXPECT_EQ(report.count_at_least(an::Severity::kWarning), 0u);
  EXPECT_EQ(report.findings().front().subject, "Point.moveX");
  ctx.quiesce();
}

// --- (a) unsynchronized shared writes -------------------------------------

TEST(EffectAnalysis, UnconfinedFanOutOfWriterRacesWithItself) {
  aop::Context ctx;
  ctx.attach(spawner_on("Conc", "Tally.bump"));
  const an::Report report = an::analyze_effects(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kUnsynchronizedSharedWrite),
            1u)
      << report.table();
  EXPECT_EQ(kind_severity(report, an::FindingKind::kUnsynchronizedSharedWrite),
            an::Severity::kError);
  EXPECT_EQ(report.findings().front().subject, "Tally.count");
  ctx.quiesce();
}

TEST(EffectAnalysis, GlobSpawnUnionsEffectsAcrossMatchedSignatures) {
  // One glob advice makes every Tally method concurrent; bump, drain,
  // total and scribble all touch "count", so the uncovered pairs with at
  // least one writer must all be reported for the one cell.
  aop::Context ctx;
  ctx.attach(spawner_on("Conc", "Tally.*"));
  const an::Report report = an::analyze_effects(ctx);
  // Pairs over {bump(w), drain(w), scribble(r), total(r)}: every pair with
  // a writer, including the two writer self-pairs, minus the read-only
  // (scribble,total) pair: 7. "buffer" adds scribble's own self-pair: 8.
  EXPECT_EQ(count_kind(report, an::FindingKind::kUnsynchronizedSharedWrite),
            8u)
      << report.table();
  EXPECT_EQ(count_kind(report, an::FindingKind::kUnknownEffects), 0u);
  ctx.quiesce();
}

TEST(EffectAnalysis, SingleAspectMonitorCoveringAllTouchersIsClean) {
  aop::Context ctx;
  ctx.attach(spawner_on("Conc", "Tally.*"));
  ctx.attach(monitor_on("Guard", "Tally.*"));
  const an::Report report = an::analyze_effects(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kUnsynchronizedSharedWrite),
            0u)
      << report.table();
  ctx.quiesce();
}

TEST(EffectAnalysis, SeparateAspectMonitorsDoNotCoverThePair) {
  // Each writer is guarded — by a DIFFERENT aspect, i.e. a different
  // SyncRegistry. The two critical sections do not exclude each other, so
  // the cross pair must still be reported (self-pairs are covered).
  aop::Context ctx;
  ctx.attach(spawner_on("Conc", "Tally.bump"));
  ctx.attach(spawner_on("Conc2", "Tally.drain"));
  ctx.attach(monitor_on("SyncA", "Tally.bump"));
  ctx.attach(monitor_on("SyncB", "Tally.drain"));
  const an::Report report = an::analyze_effects(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kUnsynchronizedSharedWrite),
            1u)
      << report.table();
  EXPECT_EQ(report.findings().front().subject, "Tally.count");
  ctx.quiesce();
}

TEST(EffectAnalysis, ObjectConfinedSpawnCannotRace) {
  // The DynamicFarm shape: each spawned flow drives its own target object,
  // so per-instance state never interleaves and nothing is reported.
  aop::Context ctx;
  ctx.attach(spawner_on("Farm", "Tally.*", /*confined=*/true));
  const an::Report report = an::analyze_effects(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kUnsynchronizedSharedWrite),
            0u)
      << report.table();
  ctx.quiesce();
}

// --- (b) remote divergent writes ------------------------------------------

TEST(EffectAnalysis, PartialDistributionOfWrittenCellDiverges) {
  aop::Context ctx;
  ctx.attach(distributor_on("Dist", "Tally.bump", /*wire_mandatory=*/true));
  // drain is in play (advised) but NOT shipped by Dist: the remote
  // replica's "count" and the local one evolve independently.
  ctx.attach(passthrough_on("Other", "Tally.drain", aop::order::kDefault));
  const an::Report report = an::analyze_effects(ctx);
  ASSERT_GE(count_kind(report, an::FindingKind::kRemoteDivergentWrite), 1u)
      << report.table();
  EXPECT_EQ(kind_severity(report, an::FindingKind::kRemoteDivergentWrite),
            an::Severity::kError);
  ctx.quiesce();
}

TEST(EffectAnalysis, SimulatedMiddlewareDivergenceStaysWarning) {
  aop::Context ctx;
  ctx.attach(distributor_on("Dist", "Tally.bump", /*wire_mandatory=*/false));
  ctx.attach(passthrough_on("Other", "Tally.drain", aop::order::kDefault));
  const an::Report report = an::analyze_effects(ctx);
  ASSERT_GE(count_kind(report, an::FindingKind::kRemoteDivergentWrite), 1u)
      << report.table();
  EXPECT_EQ(kind_severity(report, an::FindingKind::kRemoteDivergentWrite),
            an::Severity::kWarning);
  ctx.quiesce();
}

TEST(EffectAnalysis, WholesaleDistributionOfTheCellIsClean) {
  // One glob advice ships every toucher of "count" through the same
  // aspect: the cell crosses the wire wholesale, no divergence.
  aop::Context ctx;
  ctx.attach(distributor_on("Dist", "Tally.*", /*wire_mandatory=*/true));
  const an::Report report = an::analyze_effects(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kRemoteDivergentWrite), 0u)
      << report.table();
  ctx.quiesce();
}

TEST(EffectAnalysis, UnadvisedTouchersAreOutOfPlay) {
  // The registry knows drain writes "count", but this composition never
  // advises drain — a weave plan is judged on its own footprint, so
  // distributing bump alone is clean.
  aop::Context ctx;
  ctx.attach(distributor_on("Dist", "Tally.bump", /*wire_mandatory=*/true));
  const an::Report report = an::analyze_effects(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kRemoteDivergentWrite), 0u)
      << report.table();
  ctx.quiesce();
}

// --- (c) cache/effect conflicts -------------------------------------------

TEST(EffectAnalysis, CachingDeclaredWriterConflictsLocally) {
  aop::Context ctx;
  auto memo = passthrough_on("Memo", "Tally.bump", aop::order::kOptimisation);
  memo->advice().back()->mark_caches({}, /*idempotent=*/false);
  ctx.attach(memo);
  const an::Report report = an::analyze_effects(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kCacheEffectConflict), 1u)
      << report.table();
  EXPECT_EQ(kind_severity(report, an::FindingKind::kCacheEffectConflict),
            an::Severity::kWarning);
  EXPECT_EQ(report.findings().front().subject, "Memo/Tally.bump");
  ctx.quiesce();
}

TEST(EffectAnalysis, WireMandatoryDistributionEscalatesCacheConflict) {
  aop::Context ctx;
  auto memo = passthrough_on("Memo", "Tally.bump", aop::order::kOptimisation);
  memo->advice().back()->mark_caches({}, /*idempotent=*/false);
  ctx.attach(memo);
  ctx.attach(distributor_on("Dist", "Tally.bump", /*wire_mandatory=*/true));
  const an::Report report = an::analyze_effects(ctx);
  EXPECT_EQ(kind_severity(report, an::FindingKind::kCacheEffectConflict),
            an::Severity::kError);
  ctx.quiesce();
}

TEST(EffectAnalysis, IdempotentSafeStateSilencesTheConflict) {
  // scribble writes "buffer", which Tally declared APAR_STATE_IDEMPOTENT
  // (fully overwritten before any read): replaying a memoized result skips
  // a write nobody can observe. Its "count" READ is no conflict either.
  aop::Context ctx;
  auto memo =
      passthrough_on("Memo", "Tally.scribble", aop::order::kOptimisation);
  memo->advice().back()->mark_caches({}, /*idempotent=*/true);
  ctx.attach(memo);
  const an::Report report = an::analyze_effects(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kCacheEffectConflict), 0u)
      << report.table();
  ctx.quiesce();
}

// --- (d) static lock-order cycles -----------------------------------------

TEST(EffectAnalysis, CrossInitiationOfGuardedMethodsIsAnAbbaCycle) {
  aop::Context ctx;
  ctx.attach(monitor_on("SyncA", "Tally.bump"));
  ctx.attach(monitor_on("SyncB", "Tally.drain"));
  // Bridges run INSIDE the monitors (higher order) and declare the cross
  // calls their bodies make while the outer monitor is held.
  auto bridge = std::make_shared<aop::Aspect>("Bridge");
  bridge
      ->around_call<Tally, void>(aop::Pattern("Tally.bump"),
                                 aop::order::kOptimisation, aop::Scope::any(),
                                 [](auto& inv) { return inv.proceed(); })
      .mark_initiates({"Tally.drain"});
  bridge
      ->around_call<Tally, void>(aop::Pattern("Tally.drain"),
                                 aop::order::kOptimisation, aop::Scope::any(),
                                 [](auto& inv) { return inv.proceed(); })
      .mark_initiates({"Tally.bump"});
  ctx.attach(bridge);

  const an::Report report = an::analyze_effects(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kStaticLockOrderCycle), 1u)
      << report.table();
  const auto it = std::find_if(
      report.findings().begin(), report.findings().end(), [](const auto& f) {
        return f.kind == an::FindingKind::kStaticLockOrderCycle;
      });
  EXPECT_NE(it->subject.find("SyncA"), std::string::npos);
  EXPECT_NE(it->subject.find("SyncB"), std::string::npos);
  EXPECT_EQ(it->severity, an::Severity::kError);
  ctx.quiesce();
}

TEST(EffectAnalysis, OneWayInitiationIsNoCycle) {
  aop::Context ctx;
  ctx.attach(monitor_on("SyncA", "Tally.bump"));
  ctx.attach(monitor_on("SyncB", "Tally.drain"));
  auto bridge = std::make_shared<aop::Aspect>("Bridge");
  bridge
      ->around_call<Tally, void>(aop::Pattern("Tally.bump"),
                                 aop::order::kOptimisation, aop::Scope::any(),
                                 [](auto& inv) { return inv.proceed(); })
      .mark_initiates({"Tally.drain"});
  ctx.attach(bridge);
  const an::Report report = an::analyze_effects(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kStaticLockOrderCycle), 0u)
      << report.table();
  ctx.quiesce();
}

TEST(EffectAnalysis, InitiatorOutsideTheMonitorAddsNoEdge) {
  // The bridge nests OUTSIDE the monitor (lower order): its cross call
  // happens before the monitor is acquired, so no edge and no cycle even
  // with both declarations present.
  aop::Context ctx;
  ctx.attach(monitor_on("SyncA", "Tally.bump"));
  ctx.attach(monitor_on("SyncB", "Tally.drain"));
  auto bridge = std::make_shared<aop::Aspect>("Bridge");
  bridge
      ->around_call<Tally, void>(aop::Pattern("Tally.bump"),
                                 aop::order::kPartitionSplit, aop::Scope::any(),
                                 [](auto& inv) { return inv.proceed(); })
      .mark_initiates({"Tally.drain"});
  bridge
      ->around_call<Tally, void>(aop::Pattern("Tally.drain"),
                                 aop::order::kPartitionSplit, aop::Scope::any(),
                                 [](auto& inv) { return inv.proceed(); })
      .mark_initiates({"Tally.bump"});
  ctx.attach(bridge);
  const an::Report report = an::analyze_effects(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kStaticLockOrderCycle), 0u)
      << report.table();
  ctx.quiesce();
}

// --- plug/unplug residue --------------------------------------------------

TEST(EffectAnalysis, UnplugLeavesNoResidue) {
  const std::size_t registry_before = aop::EffectRegistry::global().size();
  aop::Context ctx;
  auto conc = spawner_on("Conc", "Tally.bump");
  ctx.attach(conc);
  const an::Report while_plugged = an::analyze_effects(ctx);
  EXPECT_GE(while_plugged.size(), 1u);

  ctx.detach("Conc");
  const an::Report after = an::analyze_effects(ctx);
  EXPECT_TRUE(after.empty()) << after.table();
  // The declared effect sets are immutable facts about the class — the
  // weave plan coming and going must not grow or shrink them.
  EXPECT_EQ(aop::EffectRegistry::global().size(), registry_before);
  ctx.quiesce();
}
