// The dynamic half of apar-analyze: LockOrderAspect builds a lock-order
// graph from SyncRegistry acquisitions, flags cycles and blocking waits
// under a monitor, and — like every aspect in this codebase — leaves zero
// residue once unplugged.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "../aop/fixtures.hpp"
#include "apar/analysis/lock_order_aspect.hpp"
#include "apar/aop/aop.hpp"
#include "apar/concurrency/future.hpp"
#include "apar/concurrency/sync_observer.hpp"
#include "apar/concurrency/sync_registry.hpp"

namespace an = apar::analysis;
namespace aop = apar::aop;
namespace acc = apar::concurrency;
using apar::test::Worker;

// Tests that script a deliberate ABBA acquisition order are exactly what
// TSan's lock-order-inversion detector exists to flag; under sanitizers
// they skip — the point of these tests is that the *aspect* catches the
// hazard without instrumentation.
#ifdef APAR_SANITIZED
#define APAR_SKIP_DELIBERATE_INVERSION() \
  GTEST_SKIP() << "deliberate lock-order inversion; TSan reports it directly"
#else
#define APAR_SKIP_DELIBERATE_INVERSION() (void)0
#endif

namespace {

std::size_t count_kind(const an::Report& report, an::FindingKind kind) {
  return static_cast<std::size_t>(
      std::count_if(report.findings().begin(), report.findings().end(),
                    [&](const an::Finding& f) { return f.kind == kind; }));
}

/// Attach a fresh LockOrderAspect to a fresh context; both live for the
/// test body's scope, and detach runs even on early ASSERT exits.
struct Plugged {
  aop::Context ctx;
  std::shared_ptr<an::LockOrderAspect> aspect =
      std::make_shared<an::LockOrderAspect>();
  Plugged() { ctx.attach(aspect); }
  ~Plugged() { ctx.detach(aspect->name()); }
};

}  // namespace

TEST(LockOrderAspect, ConsistentOrderReportsNothing) {
  Plugged plugged;
  acc::SyncRegistry monitors;
  int a = 0, b = 0;
  for (int i = 0; i < 3; ++i) {
    auto first = monitors.acquire(&a);
    auto second = monitors.acquire(&b);
  }
  EXPECT_EQ(plugged.aspect->acquisitions(), 6u);
  EXPECT_EQ(plugged.aspect->edges(), 1u);  // a -> b, recorded once
  EXPECT_TRUE(plugged.aspect->report().empty());
}

TEST(LockOrderAspect, AbbaOrderIsACycle) {
  APAR_SKIP_DELIBERATE_INVERSION();
  Plugged plugged;
  acc::SyncRegistry monitors;
  int a = 0, b = 0;
  {
    auto first = monitors.acquire(&a);
    auto second = monitors.acquire(&b);
  }
  {
    auto first = monitors.acquire(&b);
    auto second = monitors.acquire(&a);
  }
  const an::Report report = plugged.aspect->report();
  ASSERT_EQ(count_kind(report, an::FindingKind::kLockOrderCycle), 1u)
      << report.table();
  const an::Finding& f = report.findings().front();
  EXPECT_EQ(f.severity, an::Severity::kError);
  EXPECT_EQ(f.subject, "monitor#1 -> monitor#2 -> monitor#1");
}

TEST(LockOrderAspect, SameObjectInTwoRegistriesIsTwoMonitors) {
  // Two sync aspects guarding one object hold distinct locks: conflicting
  // nesting across their registries is a real ABBA, and must be seen as
  // two graph nodes even though the object address is shared.
  APAR_SKIP_DELIBERATE_INVERSION();
  Plugged plugged;
  acc::SyncRegistry registry_a, registry_b;
  int object = 0;
  {
    auto first = registry_a.acquire(&object);
    auto second = registry_b.acquire(&object);
  }
  {
    auto first = registry_b.acquire(&object);
    auto second = registry_a.acquire(&object);
  }
  const an::Report report = plugged.aspect->report();
  EXPECT_EQ(count_kind(report, an::FindingKind::kLockOrderCycle), 1u)
      << report.table();
}

TEST(LockOrderAspect, RecursiveReentryIsNotAnEdge) {
  Plugged plugged;
  acc::SyncRegistry monitors;
  int a = 0;
  auto outer = monitors.acquire(&a);
  auto inner = monitors.acquire(&a);
  EXPECT_EQ(plugged.aspect->acquisitions(), 2u);
  EXPECT_EQ(plugged.aspect->edges(), 0u);
  EXPECT_TRUE(plugged.aspect->report().empty());
}

TEST(LockOrderAspect, WaitUnderMonitorIsFlagged) {
  Plugged plugged;
  acc::SyncRegistry monitors;
  int a = 0;
  acc::Promise<int> promise;
  auto future = promise.future();
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    promise.set_value(7);
  });
  {
    auto guard = monitors.acquire(&a);
    EXPECT_EQ(future.get(), 7);  // blocks while holding the monitor
  }
  producer.join();
  EXPECT_GE(plugged.aspect->waits_with_monitor_held(), 1u);
  const an::Report report = plugged.aspect->report();
  EXPECT_EQ(count_kind(report, an::FindingKind::kWaitWithMonitorHeld), 1u)
      << report.table();
}

TEST(LockOrderAspect, WaitWithoutMonitorIsClean) {
  Plugged plugged;
  acc::Promise<int> promise;
  auto future = promise.future();
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    promise.set_value(7);
  });
  EXPECT_EQ(future.get(), 7);
  producer.join();
  EXPECT_EQ(plugged.aspect->waits_with_monitor_held(), 0u);
  EXPECT_TRUE(plugged.aspect->report().empty());
}

TEST(LockOrderAspect, ResetDropsObservations) {
  APAR_SKIP_DELIBERATE_INVERSION();
  Plugged plugged;
  acc::SyncRegistry monitors;
  int a = 0, b = 0;
  {
    auto first = monitors.acquire(&a);
    auto second = monitors.acquire(&b);
  }
  {
    auto first = monitors.acquire(&b);
    auto second = monitors.acquire(&a);
  }
  ASSERT_FALSE(plugged.aspect->report().empty());
  plugged.aspect->reset();
  EXPECT_EQ(plugged.aspect->acquisitions(), 0u);
  EXPECT_EQ(plugged.aspect->edges(), 0u);
  EXPECT_TRUE(plugged.aspect->report().empty());
}

// The unpluggability acceptance test — the mirror of
// ProfilingAspect.UnpluggedMeansZeroWrites: once detached, monitor traffic
// leaves no trace in the aspect and the observer slot is released.
TEST(LockOrderAspect, UnpluggedMeansZeroWrites) {
  APAR_SKIP_DELIBERATE_INVERSION();  // the post-detach traffic inverts b/a
  aop::Context ctx;
  auto aspect = std::make_shared<an::LockOrderAspect>();
  ctx.attach(aspect);
  acc::SyncRegistry monitors;
  int a = 0, b = 0;
  {
    auto first = monitors.acquire(&a);
    auto second = monitors.acquire(&b);
  }
  const std::size_t plugged_acquisitions = aspect->acquisitions();
  const std::size_t plugged_edges = aspect->edges();
  ASSERT_EQ(plugged_acquisitions, 2u);
  ASSERT_EQ(plugged_edges, 1u);

  // Unplug; the observer slot must be empty again and every subsequent
  // acquisition — including new objects and conflicting orders — must
  // leave the aspect's state frozen.
  ASSERT_NE(ctx.detach("LockOrder"), nullptr);
  EXPECT_EQ(acc::sync_observer(), nullptr);
  int c = 0;
  {
    auto first = monitors.acquire(&b);
    auto second = monitors.acquire(&a);
    auto third = monitors.acquire(&c);
  }
  EXPECT_EQ(aspect->acquisitions(), plugged_acquisitions);
  EXPECT_EQ(aspect->edges(), plugged_edges);
  EXPECT_TRUE(aspect->report().empty());
}

TEST(LockOrderAspect, DetachRestoresPreviousObserver) {
  // Stacked plugging: the inner aspect restores the outer one on detach,
  // so observers nest like the aspects they belong to.
  aop::Context ctx;
  auto outer = std::make_shared<an::LockOrderAspect>("OuterLockOrder");
  auto inner = std::make_shared<an::LockOrderAspect>("InnerLockOrder");
  ctx.attach(outer);
  ctx.attach(inner);
  EXPECT_EQ(acc::sync_observer(), inner.get());
  ctx.detach("InnerLockOrder");
  EXPECT_EQ(acc::sync_observer(), outer.get());
  ctx.detach("OuterLockOrder");
  EXPECT_EQ(acc::sync_observer(), nullptr);
}
