// Report container: severity gating, the table rendering and the JSON
// document apar-analyze emits for CI.
#include <gtest/gtest.h>

#include "apar/analysis/report.hpp"

namespace an = apar::analysis;

TEST(Severity, NamesRoundTrip) {
  EXPECT_EQ(an::severity_name(an::Severity::kInfo), "info");
  EXPECT_EQ(an::severity_name(an::Severity::kWarning), "warning");
  EXPECT_EQ(an::severity_name(an::Severity::kError), "error");
  EXPECT_EQ(an::parse_severity("info"), an::Severity::kInfo);
  EXPECT_EQ(an::parse_severity("warning"), an::Severity::kWarning);
  EXPECT_EQ(an::parse_severity("error"), an::Severity::kError);
  EXPECT_FALSE(an::parse_severity("loud").has_value());
}

TEST(Severity, KindNamesAreKebabCase) {
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kDeadPointcut),
            "dead-pointcut");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kOrderCollision),
            "order-collision");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kDoubleSynchronisation),
            "double-sync");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kDistributionHazard),
            "distribution-hazard");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kLockOrderCycle),
            "lock-order-cycle");
}

TEST(Report, CountAtLeastRespectsSeverityOrder) {
  an::Report report;
  report.add({an::FindingKind::kDeadPointcut, an::Severity::kInfo, "a", "d"});
  report.add(
      {an::FindingKind::kOrderCollision, an::Severity::kWarning, "b", "d"});
  report.add({an::FindingKind::kDoubleSynchronisation, an::Severity::kError,
              "c", "d"});
  EXPECT_EQ(report.size(), 3u);
  EXPECT_EQ(report.count_at_least(an::Severity::kInfo), 3u);
  EXPECT_EQ(report.count_at_least(an::Severity::kWarning), 2u);
  EXPECT_EQ(report.count_at_least(an::Severity::kError), 1u);
}

TEST(Report, MergeAppendsFindings) {
  an::Report a;
  a.add({an::FindingKind::kDeadPointcut, an::Severity::kWarning, "x", "d"});
  an::Report b;
  b.add({an::FindingKind::kLockOrderCycle, an::Severity::kError, "y", "d"});
  a.merge(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.findings()[1].subject, "y");
}

TEST(Report, TableListsEveryFinding) {
  an::Report report;
  report.add({an::FindingKind::kDeadPointcut, an::Severity::kWarning,
              "Audit/Ledger.depositt", "no woven signature matches"});
  const std::string table = report.table();
  EXPECT_NE(table.find("dead-pointcut"), std::string::npos);
  EXPECT_NE(table.find("Audit/Ledger.depositt"), std::string::npos);
  EXPECT_NE(table.find("warning"), std::string::npos);
}

TEST(Report, JsonEscapesAndCounts) {
  an::Report report;
  report.add({an::FindingKind::kDistributionHazard, an::Severity::kError,
              "subject \"quoted\"", "detail\nline"});
  const std::string json = report.json();
  EXPECT_NE(json.find("\"distribution-hazard\""), std::string::npos);
  EXPECT_NE(json.find("subject \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("detail\\nline"), std::string::npos);
  EXPECT_NE(json.find("\"error\": 1"), std::string::npos);
}

TEST(Report, EmptyReportIsCleanJson) {
  const an::Report report;
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.count_at_least(an::Severity::kInfo), 0u);
  EXPECT_NE(report.json().find("\"findings\": []"), std::string::npos);
}

TEST(Report, JsonCarriesSchemaVersion) {
  const an::Report report;
  EXPECT_NE(report.json().find("\"schema_version\": " +
                               std::to_string(an::kReportSchemaVersion)),
            std::string::npos);
  EXPECT_GE(an::kReportSchemaVersion, 2);
}

TEST(Report, RenderedOrderIsSeverityThenSubjectRegardlessOfInsertion) {
  // Analyzer passes run in arbitrary order and merge() concatenates;
  // consumers diff the JSON, so rendering must be deterministic: severity
  // descending, then subject, then kind name. findings() itself preserves
  // insertion order (merge/append semantics are part of the API).
  an::Report report;
  report.add({an::FindingKind::kDeadPointcut, an::Severity::kInfo, "zeta", "d"});
  report.add({an::FindingKind::kLockOrderCycle, an::Severity::kError, "beta",
              "d"});
  report.add({an::FindingKind::kOrderCollision, an::Severity::kWarning,
              "alpha", "d"});
  report.add({an::FindingKind::kDoubleSynchronisation, an::Severity::kError,
              "alpha", "d"});

  EXPECT_EQ(report.findings()[0].subject, "zeta");  // insertion order kept

  const auto sorted = report.sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].subject, "alpha");  // error before warning/info
  EXPECT_EQ(sorted[0].severity, an::Severity::kError);
  EXPECT_EQ(sorted[1].subject, "beta");
  EXPECT_EQ(sorted[2].subject, "alpha");  // the warning
  EXPECT_EQ(sorted[3].subject, "zeta");   // info last

  // Same findings inserted in a different order must render byte-identical.
  an::Report shuffled;
  shuffled.add({an::FindingKind::kDoubleSynchronisation, an::Severity::kError,
                "alpha", "d"});
  shuffled.add({an::FindingKind::kOrderCollision, an::Severity::kWarning,
                "alpha", "d"});
  shuffled.add({an::FindingKind::kDeadPointcut, an::Severity::kInfo, "zeta",
                "d"});
  shuffled.add({an::FindingKind::kLockOrderCycle, an::Severity::kError, "beta",
                "d"});
  EXPECT_EQ(report.json(), shuffled.json());
  EXPECT_EQ(report.table(), shuffled.table());
}

TEST(Report, GoldenJsonDocument) {
  // Machine-checked schema: tools/check_analysis.py validates this exact
  // shape, and CI consumers index .findings[] / .counts. Any change here
  // must bump kReportSchemaVersion.
  an::Report report;
  report.add({an::FindingKind::kUnsynchronizedSharedWrite,
              an::Severity::kError, "Ledger.balance", "race"});
  report.add({an::FindingKind::kUnknownEffects, an::Severity::kInfo,
              "Ledger.put", "undeclared"});
  const std::string expected =
      "{\"schema_version\": 2,\n"
      "  \"findings\": [\n"
      "    {\"severity\": \"error\", \"kind\": \"unsynchronized-shared-write\","
      " \"subject\": \"Ledger.balance\", \"detail\": \"race\"},\n"
      "    {\"severity\": \"info\", \"kind\": \"unknown-effects\","
      " \"subject\": \"Ledger.put\", \"detail\": \"undeclared\"}\n"
      "  ],\n"
      "  \"counts\": {\"info\": 1, \"warning\": 0, \"error\": 1}\n"
      "}\n";
  EXPECT_EQ(report.json(), expected);
}

TEST(Severity, EffectKindNamesAreKebabCase) {
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kUnsynchronizedSharedWrite),
            "unsynchronized-shared-write");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kRemoteDivergentWrite),
            "remote-divergent-write");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kCacheEffectConflict),
            "cache-effect-conflict");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kStaticLockOrderCycle),
            "static-lock-order-cycle");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kUnknownEffects),
            "unknown-effects");
}
