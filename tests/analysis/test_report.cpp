// Report container: severity gating, the table rendering and the JSON
// document apar-analyze emits for CI.
#include <gtest/gtest.h>

#include "apar/analysis/report.hpp"

namespace an = apar::analysis;

TEST(Severity, NamesRoundTrip) {
  EXPECT_EQ(an::severity_name(an::Severity::kInfo), "info");
  EXPECT_EQ(an::severity_name(an::Severity::kWarning), "warning");
  EXPECT_EQ(an::severity_name(an::Severity::kError), "error");
  EXPECT_EQ(an::parse_severity("info"), an::Severity::kInfo);
  EXPECT_EQ(an::parse_severity("warning"), an::Severity::kWarning);
  EXPECT_EQ(an::parse_severity("error"), an::Severity::kError);
  EXPECT_FALSE(an::parse_severity("loud").has_value());
}

TEST(Severity, KindNamesAreKebabCase) {
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kDeadPointcut),
            "dead-pointcut");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kOrderCollision),
            "order-collision");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kDoubleSynchronisation),
            "double-sync");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kDistributionHazard),
            "distribution-hazard");
  EXPECT_EQ(an::finding_kind_name(an::FindingKind::kLockOrderCycle),
            "lock-order-cycle");
}

TEST(Report, CountAtLeastRespectsSeverityOrder) {
  an::Report report;
  report.add({an::FindingKind::kDeadPointcut, an::Severity::kInfo, "a", "d"});
  report.add(
      {an::FindingKind::kOrderCollision, an::Severity::kWarning, "b", "d"});
  report.add({an::FindingKind::kDoubleSynchronisation, an::Severity::kError,
              "c", "d"});
  EXPECT_EQ(report.size(), 3u);
  EXPECT_EQ(report.count_at_least(an::Severity::kInfo), 3u);
  EXPECT_EQ(report.count_at_least(an::Severity::kWarning), 2u);
  EXPECT_EQ(report.count_at_least(an::Severity::kError), 1u);
}

TEST(Report, MergeAppendsFindings) {
  an::Report a;
  a.add({an::FindingKind::kDeadPointcut, an::Severity::kWarning, "x", "d"});
  an::Report b;
  b.add({an::FindingKind::kLockOrderCycle, an::Severity::kError, "y", "d"});
  a.merge(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.findings()[1].subject, "y");
}

TEST(Report, TableListsEveryFinding) {
  an::Report report;
  report.add({an::FindingKind::kDeadPointcut, an::Severity::kWarning,
              "Audit/Ledger.depositt", "no woven signature matches"});
  const std::string table = report.table();
  EXPECT_NE(table.find("dead-pointcut"), std::string::npos);
  EXPECT_NE(table.find("Audit/Ledger.depositt"), std::string::npos);
  EXPECT_NE(table.find("warning"), std::string::npos);
}

TEST(Report, JsonEscapesAndCounts) {
  an::Report report;
  report.add({an::FindingKind::kDistributionHazard, an::Severity::kError,
              "subject \"quoted\"", "detail\nline"});
  const std::string json = report.json();
  EXPECT_NE(json.find("\"distribution-hazard\""), std::string::npos);
  EXPECT_NE(json.find("subject \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("detail\\nline"), std::string::npos);
  EXPECT_NE(json.find("\"error\": 1"), std::string::npos);
}

TEST(Report, EmptyReportIsCleanJson) {
  const an::Report report;
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.count_at_least(an::Severity::kInfo), 0u);
  EXPECT_NE(report.json().find("\"findings\": []"), std::string::npos);
}
