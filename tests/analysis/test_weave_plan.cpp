// Static weave-plan verification: every finding class the analyzer knows,
// exercised with small hand-built compositions, plus the "all shipped
// compositions are clean" sweep over the Table-1 version matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "../aop/fixtures.hpp"
#include "apar/analysis/report.hpp"
#include "apar/analysis/weave_plan.hpp"
#include "apar/serial/wire_types.hpp"
#include "apar/sieve/versions.hpp"
#include "apar/strategies/concurrency_aspect.hpp"

namespace an = apar::analysis;
namespace aop = apar::aop;
namespace sieve = apar::sieve;
namespace strategies = apar::strategies;
using apar::test::Worker;

namespace {

std::size_t count_kind(const an::Report& report, an::FindingKind kind) {
  return static_cast<std::size_t>(
      std::count_if(report.findings().begin(), report.findings().end(),
                    [&](const an::Finding& f) { return f.kind == kind; }));
}

std::shared_ptr<aop::Aspect> passthrough_on(std::string name,
                                            const char* pattern,
                                            int order = aop::order::kDefault) {
  auto aspect = std::make_shared<aop::Aspect>(std::move(name));
  aspect->around_call<Worker, void, std::vector<int>&>(
      aop::Pattern(pattern), order, aop::Scope::any(),
      [](auto& inv) { return inv.proceed(); });
  return aspect;
}

}  // namespace

TEST(WeavePlan, CleanContextHasNoFindings) {
  aop::Context ctx;
  ctx.attach(passthrough_on("Logging", "Worker.process"));
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_TRUE(report.empty()) << report.table();
}

TEST(WeavePlan, TypoPointcutIsDead) {
  aop::Context ctx;
  ctx.attach(passthrough_on("Audit", "Worker.proces"));  // typo: one 's'
  const an::Report report = an::analyze_weave_plan(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kDeadPointcut), 1u)
      << report.table();
  const an::Finding& f = report.findings().front();
  EXPECT_EQ(f.severity, an::Severity::kWarning);
  EXPECT_EQ(f.subject, "Audit/Worker.proces");
}

TEST(WeavePlan, WildcardPointcutIsLive) {
  aop::Context ctx;
  ctx.attach(passthrough_on("Audit", "Worker.pro*"));
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kDeadPointcut), 0u)
      << report.table();
}

TEST(WeavePlan, EqualOrderAcrossAspectsCollides) {
  aop::Context ctx;
  ctx.attach(passthrough_on("First", "Worker.process", 350));
  ctx.attach(passthrough_on("Second", "Worker.process", 350));
  const an::Report report = an::analyze_weave_plan(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kOrderCollision), 1u)
      << report.table();
  EXPECT_EQ(report.findings().front().subject, "First ~ Second");
}

TEST(WeavePlan, DistinctOrdersDoNotCollide) {
  aop::Context ctx;
  ctx.attach(passthrough_on("First", "Worker.process", 300));
  ctx.attach(passthrough_on("Second", "Worker.process", 400));
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kOrderCollision), 0u)
      << report.table();
}

TEST(WeavePlan, EqualOrderWithinOneAspectIsFine) {
  // One aspect layering two advice at the same order is deliberate (the
  // aspect author controls registration order); only cross-aspect equal
  // orders depend on plug sequence.
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("Solo");
  for (int i = 0; i < 2; ++i)
    aspect->around_call<Worker, void, std::vector<int>&>(
        aop::Pattern("Worker.process"), 350, aop::Scope::any(),
        [](auto& inv) { return inv.proceed(); });
  ctx.attach(aspect);
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kOrderCollision), 0u)
      << report.table();
}

TEST(WeavePlan, CollisionReportedOncePerPair) {
  // The same pair colliding on a wildcard that covers several join points
  // must yield one finding, not one per matched signature.
  aop::Context ctx;
  ctx.attach(passthrough_on("First", "Worker.*", 350));
  ctx.attach(passthrough_on("Second", "Worker.*", 350));
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kOrderCollision), 1u)
      << report.table();
}

TEST(WeavePlan, TwoSyncAspectsOnOneJoinPointIsDoubleSync) {
  aop::Context ctx;
  auto sync_a = std::make_shared<strategies::ConcurrencyAspect<Worker>>("SyncA");
  sync_a->guarded_method<&Worker::process>();
  auto sync_b = std::make_shared<strategies::ConcurrencyAspect<Worker>>("SyncB");
  sync_b->guarded_method<&Worker::process>();
  ctx.attach(sync_a);
  ctx.attach(sync_b);
  const an::Report report = an::analyze_weave_plan(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kDoubleSynchronisation), 1u)
      << report.table();
  const auto& findings = report.findings();
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const an::Finding& f) {
                                 return f.kind ==
                                        an::FindingKind::kDoubleSynchronisation;
                               });
  ASSERT_NE(it, findings.end());
  EXPECT_EQ(it->severity, an::Severity::kError);
  EXPECT_EQ(it->subject, "Worker.process");
  // The same pair also collides on order (both guard at kConcurrencySync).
  EXPECT_EQ(count_kind(report, an::FindingKind::kOrderCollision), 1u);
}

TEST(WeavePlan, SingleSyncAspectIsNotDoubleSync) {
  aop::Context ctx;
  auto sync = std::make_shared<strategies::ConcurrencyAspect<Worker>>("Sync");
  sync->guarded_method<&Worker::process>().guarded_method<&Worker::compute>();
  ctx.attach(sync);
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_TRUE(report.empty()) << report.table();
}

TEST(WeavePlan, UnserializableWireArgIsDistributionHazard) {
  aop::Context ctx;
  auto dist = passthrough_on("Dist", "Worker.process", 500);
  // Simulate what DistributionAspect records for a non-marshallable
  // argument type without spinning up a cluster. Against a simulated
  // middleware the hazard is advisory (warning): the call only throws if
  // it actually dispatches remotely.
  dist->advice().back()->mark_distributes(
      {aop::WireArg{"test::Handle", false}});
  ctx.attach(dist);
  const an::Report report = an::analyze_weave_plan(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kDistributionHazard), 1u)
      << report.table();
  EXPECT_EQ(report.findings().front().severity, an::Severity::kWarning);
}

TEST(WeavePlan, WireMandatoryUnserializableArgIsError) {
  aop::Context ctx;
  auto dist = passthrough_on("Dist", "Worker.process", 500);
  // What DistributionAspect records when its middleware reports
  // wire_transport() == true (TCP): encoding is a precondition for the
  // call leaving the process, so the same hazard escalates to an error.
  dist->advice().back()->mark_distributes(
      {aop::WireArg{"test::Handle", false}}, /*wire_mandatory=*/true);
  ctx.attach(dist);
  const an::Report report = an::analyze_weave_plan(ctx);
  ASSERT_EQ(count_kind(report, an::FindingKind::kDistributionHazard), 1u)
      << report.table();
  EXPECT_EQ(report.findings().front().severity, an::Severity::kError);
}

TEST(WeavePlan, TypeRegistryOverrideSilencesHazard) {
  // A later translation unit can register the type as serializable out of
  // band; the analyzer must consult the registry before flagging.
  apar::serial::TypeRegistry::global().note("test::LateBlessed", true);
  aop::Context ctx;
  auto dist = passthrough_on("Dist", "Worker.process", 500);
  dist->advice().back()->mark_distributes(
      {aop::WireArg{"test::LateBlessed", false}});
  ctx.attach(dist);
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_EQ(count_kind(report, an::FindingKind::kDistributionHazard), 0u)
      << report.table();
}

TEST(WeavePlan, SerializableWireArgsAreClean) {
  aop::Context ctx;
  auto dist = passthrough_on("Dist", "Worker.process", 500);
  dist->advice().back()->mark_distributes(
      {aop::WireArg{"vector<int>", true}, aop::WireArg{"long long", true}});
  ctx.attach(dist);
  const an::Report report = an::analyze_weave_plan(ctx);
  EXPECT_TRUE(report.empty()) << report.table();
}

// The acceptance sweep: every shipped Table-1 composition must analyze
// clean — the same configurations apar-analyze runs in CI.
TEST(WeavePlan, VersionMatrixCompositionsAreClean) {
  std::vector<sieve::Version> versions{sieve::Version::kSequential};
  for (const sieve::Version v : sieve::extended_versions())
    versions.push_back(v);
  for (const sieve::Version version : versions) {
    sieve::SieveConfig config;
    config.max = 2'000;
    config.filters = 2;
    config.pack_size = 500;
    config.nodes = 2;
    config.node_executors = 1;
    config.loopback_costs = true;
    sieve::SieveHarness harness(version, config);
    const an::Report report = an::analyze_weave_plan(harness.context());
    EXPECT_TRUE(report.empty())
        << sieve::version_name(version) << ":\n" << report.table();
  }
}
