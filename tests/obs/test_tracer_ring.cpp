// The Tracer's bounded ring: capacity enforcement with an EXACT dropped
// counter (an observability tool that silently lies about loss is worse
// than none), plus the span-identity features layered on TraceContext —
// id-based pairing, open-span accounting, and the Chrome exporter's
// hex id args.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "apar/obs/trace_context.hpp"
#include "apar/obs/tracer.hpp"

namespace obs = apar::obs;
using Phase = obs::TraceEvent::Phase;

namespace {

obs::TraceEvent at(long long us, const char* signature, Phase phase,
                   obs::TraceContext ctx = {}) {
  obs::TraceEvent e;
  e.when = std::chrono::steady_clock::time_point{} +
           std::chrono::microseconds(us);
  e.thread = std::this_thread::get_id();
  e.signature = signature;
  e.phase = phase;
  e.ctx = ctx;
  return e;
}

}  // namespace

TEST(TracerRing, CapacityBoundsMemoryAndCountsDropsExactly) {
  obs::Tracer tracer(4);
  EXPECT_EQ(tracer.capacity(), 4u);
  for (int i = 0; i < 10; ++i)
    tracer.record(at(i, i % 2 == 0 ? "A.f" : "A.g",
                     i % 2 == 0 ? Phase::kEnter : Phase::kExit));
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
  // The ring keeps the NEWEST events — the oldest were evicted.
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().when.time_since_epoch().count(),
            std::chrono::steady_clock::time_point(
                std::chrono::microseconds(6)).time_since_epoch().count());
}

TEST(TracerRing, DroppedCountSurfacesInSummary) {
  obs::Tracer tracer(2);
  for (int i = 0; i < 5; ++i) tracer.record(at(i, "A.f", Phase::kEnter));
  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("dropped 3"), std::string::npos) << summary;
}

TEST(TracerRing, TakeEventsDrainsButDroppedIsCumulative) {
  obs::Tracer tracer(2);
  for (int i = 0; i < 3; ++i) tracer.record(at(i, "A.f", Phase::kEnter));
  EXPECT_EQ(tracer.take_events().size(), 2u);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 1u);
  tracer.record(at(10, "A.g", Phase::kEnter));
  tracer.record(at(11, "A.g", Phase::kExit));
  tracer.record(at(12, "A.h", Phase::kEnter));
  EXPECT_EQ(tracer.dropped_events(), 2u);  // 1 old + 1 new eviction
}

TEST(TracerRing, SetCapacityEvictsAndCounts) {
  obs::Tracer tracer;  // default capacity is large
  for (int i = 0; i < 8; ++i) tracer.record(at(i, "A.f", Phase::kEnter));
  tracer.set_capacity(3);
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.dropped_events(), 5u);
}

TEST(TracerRing, ClearEmptiesWithoutTouchingDropCount) {
  obs::Tracer tracer(2);
  for (int i = 0; i < 3; ++i) tracer.record(at(i, "A.f", Phase::kEnter));
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 1u);
}

// --- span identity ----------------------------------------------------------

TEST(TracerSpans, ContextIdsPairSameNamedSiblingsExactly) {
  // Two same-signature spans, interleaved; signature-based pairing would
  // nest them LIFO and get both durations wrong. Ids disambiguate.
  obs::TraceContext a{1, 10, 0};
  obs::TraceContext b{1, 20, 0};
  obs::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter, a));
  tracer.record(at(5, "A.f", Phase::kEnter, b));
  tracer.record(at(7, "A.f", Phase::kExit, a));
  tracer.record(at(50, "A.f", Phase::kExit, b));
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].span_id, 10u);
  EXPECT_EQ(spans[0].duration.count(), 7);
  EXPECT_EQ(spans[1].span_id, 20u);
  EXPECT_EQ(spans[1].duration.count(), 45);
}

TEST(TracerSpans, SpansCarryTraceIdentity) {
  obs::TraceContext ctx{0xaa, 0xbb, 0xcc};
  obs::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter, ctx));
  tracer.record(at(9, "A.f", Phase::kExit, ctx));
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 0xaau);
  EXPECT_EQ(spans[0].span_id, 0xbbu);
  EXPECT_EQ(spans[0].parent_span_id, 0xccu);
}

TEST(TracerSpans, OpenSpansCountsUnmatchedEnters) {
  obs::Tracer tracer;
  EXPECT_EQ(tracer.open_spans(), 0u);
  tracer.record(at(0, "A.f", Phase::kEnter));
  tracer.record(at(1, "A.g", Phase::kEnter));
  EXPECT_EQ(tracer.open_spans(), 2u);
  tracer.record(at(2, "A.g", Phase::kExit));
  EXPECT_EQ(tracer.open_spans(), 1u);
  tracer.record(at(3, "A.f", Phase::kError));  // errors CLOSE spans
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(TracerSpans, LateRecordedEventsSortByTimestamp) {
  // The server records both serve-span boundaries after dispatch, so they
  // arrive out of order relative to inner spans. Pairing sorts by `when`.
  obs::TraceContext outer{1, 2, 0};
  obs::TraceContext inner{1, 3, 2};
  obs::Tracer tracer;
  tracer.record(at(10, "inner", Phase::kEnter, inner));
  tracer.record(at(20, "inner", Phase::kExit, inner));
  tracer.record(at(0, "serve.call", Phase::kEnter, outer));
  tracer.record(at(30, "serve.call", Phase::kExit, outer));
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].signature, "serve.call");
  EXPECT_EQ(spans[0].duration.count(), 30);
  EXPECT_EQ(spans[1].signature, "inner");
}

TEST(ChromeTrace, SpanIdsExportAsHexStringArgs) {
  obs::TraceContext ctx{0x0102030405060708ULL, 0x1112131415161718ULL,
                        0x2122232425262728ULL};
  obs::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter, ctx));
  tracer.record(at(9, "A.f", Phase::kExit, ctx));
  const std::string json = tracer.chrome_trace_json();
  // Hex STRINGS, not numbers: 64-bit ids do not survive double-precision
  // JSON readers (Python's json included).
  EXPECT_NE(json.find("\"trace_id\":\"0102030405060708\""),
            std::string::npos) << json;
  EXPECT_NE(json.find("\"span_id\":\"1112131415161718\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":\"2122232425262728\""),
            std::string::npos);
}

TEST(ChromeTrace, RootSpanOmitsParentArg) {
  obs::TraceContext root{0xaa, 0xbb, 0};
  obs::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter, root));
  tracer.record(at(1, "A.f", Phase::kExit, root));
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"span_id\""), std::string::npos);
  EXPECT_EQ(json.find("\"parent_span_id\""), std::string::npos);
}

TEST(ChromeTrace, ProcessNameMetadataPrepended) {
  obs::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter));
  tracer.record(at(1, "A.f", Phase::kExit));
  const std::string json = tracer.chrome_trace_json(42, "sieve-server");
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":42,"
                      "\"tid\":0,\"args\":{\"name\":\"sieve-server\"}}"),
            std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":42"), std::string::npos);
}
