// Tracer span matching and the Chrome trace_event exporter, pinned with
// synthetic fixed-timestamp events so the JSON shape is a golden value.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "apar/aop/trace.hpp"

namespace aop = apar::aop;

namespace {

aop::TraceEvent at(long long us, const char* signature,
                   aop::TraceEvent::Phase phase,
                   const void* target = nullptr) {
  aop::TraceEvent e;
  e.when = std::chrono::steady_clock::time_point{} +
           std::chrono::microseconds(us);
  e.thread = std::this_thread::get_id();
  e.signature = signature;
  e.target = target;
  e.phase = phase;
  return e;
}

using Phase = aop::TraceEvent::Phase;

}  // namespace

TEST(TracerSpans, PairsNestedEnterExit) {
  aop::Tracer tracer;
  tracer.record(at(100, "A.outer", Phase::kEnter));
  tracer.record(at(110, "A.inner", Phase::kEnter));
  tracer.record(at(150, "A.inner", Phase::kExit));
  tracer.record(at(200, "A.outer", Phase::kExit));
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Start-ordered: outer first.
  EXPECT_EQ(spans[0].signature, "A.outer");
  EXPECT_EQ(spans[0].duration.count(), 100);
  EXPECT_FALSE(spans[0].error);
  EXPECT_EQ(spans[1].signature, "A.inner");
  EXPECT_EQ(spans[1].duration.count(), 40);
}

TEST(TracerSpans, RecursiveSameSignatureClosesInnermost) {
  aop::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter));
  tracer.record(at(10, "A.f", Phase::kEnter));
  tracer.record(at(20, "A.f", Phase::kExit));
  tracer.record(at(50, "A.f", Phase::kExit));
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].duration.count(), 50);  // outer call
  EXPECT_EQ(spans[1].duration.count(), 10);  // inner call
}

TEST(TracerSpans, ErrorClosesSpanAndFlagsIt) {
  aop::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter));
  tracer.record(at(30, "A.f", Phase::kError));
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].error);
  EXPECT_EQ(spans[0].duration.count(), 30);
}

TEST(TracerSpans, UnmatchedEnterOmitted) {
  aop::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter));
  tracer.record(at(5, "A.g", Phase::kEnter));
  tracer.record(at(9, "A.g", Phase::kExit));
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].signature, "A.g");
}

TEST(ChromeTrace, GoldenSingleThreadShape) {
  aop::Tracer tracer;
  tracer.record(at(100, "A.outer", Phase::kEnter));
  tracer.record(at(110, "A.inner", Phase::kEnter));
  tracer.record(at(150, "A.inner", Phase::kExit));
  tracer.record(at(200, "A.outer", Phase::kExit));
  const std::string expected =
      "[{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"T1\"}},"
      "{\"name\":\"A.outer\",\"cat\":\"apar\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":100,\"pid\":0,\"tid\":1},"
      "{\"name\":\"A.inner\",\"cat\":\"apar\",\"ph\":\"X\",\"ts\":10,"
      "\"dur\":40,\"pid\":0,\"tid\":1}]";
  EXPECT_EQ(tracer.chrome_trace_json(), expected);
}

TEST(ChromeTrace, ErrorSpanCarriesArgs) {
  aop::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter));
  tracer.record(at(30, "A.f", Phase::kError));
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"args\":{\"error\":true}"), std::string::npos);
}

TEST(ChromeTrace, EscapesSignatureCharacters) {
  aop::Tracer tracer;
  tracer.record(at(0, "A.\"quoted\"", Phase::kEnter));
  tracer.record(at(1, "A.\"quoted\"", Phase::kExit));
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("A.\\\"quoted\\\""), std::string::npos);
}

TEST(ChromeTrace, EmptyTracerIsEmptyArray) {
  aop::Tracer tracer;
  EXPECT_EQ(tracer.chrome_trace_json(), "[]");
}

TEST(ChromeTrace, SecondThreadGetsOwnTid) {
  aop::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter));
  tracer.record(at(10, "A.f", Phase::kExit));
  std::thread other([&] {
    tracer.record(at(5, "A.g", Phase::kEnter));
    tracer.record(at(8, "A.g", Phase::kExit));
  });
  other.join();
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"T2\"}"), std::string::npos);
}

TEST(ChromeTrace, WriteChromeTraceRoundTrips) {
  aop::Tracer tracer;
  tracer.record(at(0, "A.f", Phase::kEnter));
  tracer.record(at(10, "A.f", Phase::kExit));
  const std::string path =
      testing::TempDir() + "apar_trace_export_test.json";
  tracer.write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string contents = buffer.str();
  // Trailing newline from the writer.
  ASSERT_FALSE(contents.empty());
  EXPECT_EQ(contents.back(), '\n');
  contents.pop_back();
  EXPECT_EQ(contents, tracer.chrome_trace_json());
  std::remove(path.c_str());
}

TEST(ChromeTrace, WriteToUnwritablePathThrows) {
  aop::Tracer tracer;
  EXPECT_THROW(tracer.write_chrome_trace("/nonexistent-dir/trace.json"),
               std::runtime_error);
}
