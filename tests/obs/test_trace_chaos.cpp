// Chaos runs through the fault-injecting middleware with the trace
// aspect plugged: dropped replies, duplicated deliveries and crashed
// nodes must never leave open spans or children parented to spans that
// do not exist. Exceptions unwinding through woven advice are exactly
// where a naive tracer leaks enters — these tests pin that they close
// as kError instead.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "../strategies/fixtures.hpp"
#include "apar/aop/trace.hpp"
#include "apar/cluster/fault_injection.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/obs/trace_context.hpp"
#include "apar/strategies/distribution_aspect.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace as = apar::serial;
namespace obs = apar::obs;
namespace st = apar::strategies;
using apar::test::SlowStage;

namespace {

using Dist = st::DistributionAspect<SlowStage, long long, long long>;

struct TracingOn {
  TracingOn() { obs::set_tracing_enabled(true); }
  ~TracingOn() { obs::set_tracing_enabled(false); }
};

/// Simulated two-node cluster behind a fault decorator, with the trace
/// aspect (order 50) outside distribution (order 500) — every ctx.call
/// opens a span that the injected fault then tries to break.
struct ChaosRig {
  explicit ChaosRig(ac::FaultInjectingMiddleware::Options fopts) {
    ac::Cluster::Options copts;
    copts.nodes = 2;
    cluster = std::make_unique<ac::Cluster>(copts);
    if (fopts.crash_on_call > 0) fopts.cluster = cluster.get();
    cluster->registry()
        .bind<SlowStage>("SlowStage")
        .ctor<long long, long long>()
        .method<&SlowStage::query>("query");
    inner = std::make_unique<ac::RmiMiddleware>(*cluster,
                                                ac::CostModel::loopback());
    faulty = std::make_unique<ac::FaultInjectingMiddleware>(*inner, fopts);

    tracer = std::make_shared<aop::Tracer>();
    auto trace = std::make_shared<aop::TraceAspect<SlowStage>>("Trace",
                                                               tracer);
    trace->trace_method<&SlowStage::query>();
    ctx.attach(trace);
    auto dist = std::make_shared<Dist>("Distribution", *cluster, *faulty);
    dist->distribute_method<&SlowStage::query>();
    ctx.attach(dist);
  }

  std::unique_ptr<ac::Cluster> cluster;
  std::unique_ptr<ac::RmiMiddleware> inner;
  std::unique_ptr<ac::FaultInjectingMiddleware> faulty;
  std::shared_ptr<aop::Tracer> tracer;
  aop::Context ctx;
};

/// The invariant every chaos schedule must preserve: no span left open,
/// every parent id resolves (to a recorded span or the ambient root).
void expect_no_leaks(const aop::Tracer& tracer,
                     const obs::TraceContext& root) {
  EXPECT_EQ(tracer.open_spans(), 0u);
  const auto spans = tracer.spans();
  std::unordered_set<std::uint64_t> ids{root.span_id};
  for (const auto& s : spans) ids.insert(s.span_id);
  for (const auto& s : spans) {
    if (s.parent_span_id != 0) {
      EXPECT_TRUE(ids.count(s.parent_span_id))
          << s.signature << " parented to unknown span " << s.parent_span_id;
    }
    if (root.valid() && s.trace_id != 0) {
      EXPECT_EQ(s.trace_id, root.trace_id) << s.signature;
    }
  }
}

}  // namespace

TEST(TraceChaos, DroppedRepliesCloseSpansAsErrors) {
  TracingOn tracing;
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = 0x7A01;
  fopts.drop_rate = 0.4;
  ChaosRig rig(fopts);

  obs::SpanScope root;
  auto ref = rig.ctx.create<SlowStage>(1LL, 0LL);
  int failures = 0;
  for (int i = 0; i < 50; ++i) {
    try {
      (void)rig.ctx.call<&SlowStage::query>(ref, 1LL);
    } catch (const ac::rpc::RpcError&) {
      ++failures;
    }
  }
  ASSERT_GT(failures, 0) << "40% drop rate injected nothing";

  const auto spans = rig.tracer->spans();
  ASSERT_EQ(spans.size(), 50u);  // every call spanned, failed or not
  int error_spans = 0;
  for (const auto& s : spans) error_spans += s.error ? 1 : 0;
  EXPECT_EQ(error_spans, failures);
  expect_no_leaks(*rig.tracer, root.context());
}

TEST(TraceChaos, DuplicatedDeliveriesKeepParentingConsistent) {
  TracingOn tracing;
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = 0x7A02;
  fopts.duplicate_rate = 0.5;
  ChaosRig rig(fopts);

  obs::SpanScope root;
  auto ref = rig.ctx.create<SlowStage>(2LL, 0LL);
  for (int i = 0; i < 40; ++i)
    EXPECT_EQ(rig.ctx.call<&SlowStage::query>(ref, 1LL), 3LL);
  EXPECT_GT(rig.faulty->fault_stats().duplicated.load(), 0u);

  // At-least-once delivery duplicates the WIRE operation, not the traced
  // join point: still exactly one closed span per logical call.
  const auto spans = rig.tracer->spans();
  ASSERT_EQ(spans.size(), 40u);
  for (const auto& s : spans) {
    EXPECT_FALSE(s.error);
    EXPECT_EQ(s.parent_span_id, root.context().span_id);
  }
  expect_no_leaks(*rig.tracer, root.context());
}

TEST(TraceChaos, CrashedNodeClosesSpansNotLeaksThem) {
  TracingOn tracing;
  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = 0x7A03;
  fopts.crash_on_call = 5;  // the 5th operation crashes the target node
  ChaosRig rig(fopts);

  obs::SpanScope root;
  auto ref = rig.ctx.create<SlowStage>(3LL, 0LL);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      (void)rig.ctx.call<&SlowStage::query>(ref, 1LL);
    } catch (const ac::rpc::RpcError&) {
      ++failures;  // calls into the dead node fail cleanly from here on
    }
  }
  EXPECT_GE(failures, 1);
  const auto spans = rig.tracer->spans();
  ASSERT_EQ(spans.size(), 10u);
  expect_no_leaks(*rig.tracer, root.context());
}
