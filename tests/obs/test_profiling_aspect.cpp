// The profiling aspect: plug it to time join points into a registry,
// unplug it and not a single write reaches the registry — the paper's
// unpluggability claim applied to observability.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "../aop/fixtures.hpp"
#include "apar/obs/profiling_aspect.hpp"

namespace aop = apar::aop;
namespace obs = apar::obs;
using apar::test::Worker;

namespace {

std::shared_ptr<obs::ProfilingAspect<Worker>> make_profiler(
    obs::MetricsRegistry& registry) {
  auto profiler =
      std::make_shared<obs::ProfilingAspect<Worker>>("Profiling", registry);
  profiler->profile_method<&Worker::process>()
      .profile_method<&Worker::compute>()
      .template profile_new<int>();
  return profiler;
}

std::uint64_t calls(obs::MetricsRegistry& registry, const char* signature) {
  return registry.counter("profile.calls", {{"signature", signature}})
      ->value();
}

}  // namespace

TEST(ProfilingAspect, RecordsLatencyAndCalls) {
  obs::MetricsRegistry registry;
  aop::Context ctx;
  ctx.attach(make_profiler(registry));
  auto w = ctx.create<Worker>(1);
  std::vector<int> pack{1, 2, 3};
  ctx.call<&Worker::process>(w, pack);
  ctx.call<&Worker::process>(w, pack);
  const int doubled = ctx.call<&Worker::compute>(w, 5);
  EXPECT_EQ(doubled, 11);

  EXPECT_EQ(calls(registry, "Worker.new"), 1u);
  EXPECT_EQ(calls(registry, "Worker.process"), 2u);
  EXPECT_EQ(calls(registry, "Worker.compute"), 1u);
  auto latency = registry.histogram("profile.latency_us",
                                    {{"signature", "Worker.process"}});
  EXPECT_EQ(latency->count(), 2u);
  EXPECT_GE(latency->max(), 0.0);
  EXPECT_EQ(registry
                .counter("profile.errors", {{"signature", "Worker.process"}})
                ->value(),
            0u);
}

TEST(ProfilingAspect, UnpluggedMeansZeroWrites) {
  obs::MetricsRegistry registry;
  aop::Context ctx;
  ctx.attach(make_profiler(registry));
  auto w = ctx.create<Worker>(1);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  const std::uint64_t after_plugged = calls(registry, "Worker.process");
  ASSERT_EQ(after_plugged, 1u);

  // Unplug; every subsequent execution must leave the registry untouched.
  ASSERT_NE(ctx.detach("Profiling"), nullptr);
  ctx.call<&Worker::process>(w, pack);
  ctx.call<&Worker::process>(w, pack);
  auto w2 = ctx.create<Worker>(2);
  (void)w2;
  EXPECT_EQ(calls(registry, "Worker.process"), after_plugged);
  EXPECT_EQ(calls(registry, "Worker.new"), 1u);
  EXPECT_EQ(registry
                .histogram("profile.latency_us",
                           {{"signature", "Worker.process"}})
                ->count(),
            after_plugged);
}

TEST(ProfilingAspect, ErrorsCountedAndRethrown) {
  obs::MetricsRegistry registry;
  aop::Context ctx;
  ctx.attach(make_profiler(registry));
  auto veto = std::make_shared<aop::Aspect>("veto");
  veto->around_method<&Worker::process>(
      aop::order::kDefault, aop::Scope::any(),
      [](auto&) -> void { throw std::runtime_error("boom"); });
  ctx.attach(veto);
  auto w = ctx.create<Worker>(1);
  std::vector<int> pack{1};
  EXPECT_THROW(ctx.call<&Worker::process>(w, pack), std::runtime_error);
  EXPECT_EQ(calls(registry, "Worker.process"), 1u);
  EXPECT_EQ(registry
                .counter("profile.errors", {{"signature", "Worker.process"}})
                ->value(),
            1u);
  // The latency histogram still saw the failed execution.
  EXPECT_EQ(registry
                .histogram("profile.latency_us",
                           {{"signature", "Worker.process"}})
                ->count(),
            1u);
}

TEST(ProfilingAspect, IgnoresMetricsEnabledGate) {
  // Plugging the aspect is the opt-in; the ambient APAR_METRICS gate must
  // not silence it.
  obs::set_metrics_enabled(false);
  obs::MetricsRegistry registry;
  aop::Context ctx;
  ctx.attach(make_profiler(registry));
  auto w = ctx.create<Worker>(3);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(calls(registry, "Worker.process"), 1u);
}
