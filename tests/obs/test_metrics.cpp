// The metrics registry: named counters/gauges/histograms with labels,
// exact under concurrency, renderable as a table and as JSON.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "apar/obs/metrics.hpp"

namespace obs = apar::obs;

TEST(Counter, AddsAndReads) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndDelta) {
  obs::Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Histogram, RecordsIntoBuckets) {
  obs::Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);   // <= 1
  h.record(5.0);   // <= 10
  h.record(50.0);  // <= 100
  h.record(500.0); // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  EXPECT_NEAR(h.sum(), 555.5, 1e-9);
  EXPECT_NEAR(h.mean(), 555.5 / 4.0, 1e-9);
  const auto buckets = h.bucket_counts();  // cumulative
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 3u);
  EXPECT_EQ(buckets[3], 4u);
}

TEST(Histogram, PercentileInterpolates) {
  obs::Histogram h({10.0, 20.0});
  for (int i = 0; i < 100; ++i) h.record(5.0);
  // All observations in the first bucket: p50 lands inside (0, 10].
  const double p50 = h.percentile(50.0);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 10.0);
  EXPECT_GE(h.percentile(100.0), p50);
  obs::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.percentile(99.0), 0.0);
}

TEST(Histogram, NegativeValuesClampToZero) {
  obs::Histogram h({1.0});
  h.record(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(MetricsRegistry, SameNameAndLabelsSameInstrument) {
  obs::MetricsRegistry reg;
  auto a = reg.counter("hits", {{"k", "v"}});
  auto b = reg.counter("hits", {{"k", "v"}});
  EXPECT_EQ(a.get(), b.get());
  a->add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries) {
  obs::MetricsRegistry reg;
  auto a = reg.counter("hits", {{"a", "1"}, {"b", "2"}});
  auto b = reg.counter("hits", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a.get(), b.get());
}

TEST(MetricsRegistry, DistinctLabelsDistinctSeries) {
  obs::MetricsRegistry reg;
  auto a = reg.counter("hits", {{"k", "1"}});
  auto b = reg.counter("hits", {{"k", "2"}});
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
}

TEST(MetricsRegistry, ClearKeepsLiveProbesValid) {
  obs::MetricsRegistry reg;
  auto c = reg.counter("x");
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  c->add(1);  // must not crash: instrument outlives its registry entry
  EXPECT_EQ(c->value(), 1u);
}

TEST(MetricsRegistry, SnapshotCarriesHistogramStats) {
  obs::MetricsRegistry reg;
  auto h = reg.histogram("lat", {{"m", "RMI"}});
  h->record(3.0);
  h->record(7.0);
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  const auto& s = snaps[0];
  EXPECT_EQ(s.kind, obs::MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(s.name, "lat");
  EXPECT_EQ(s.count, 2u);
  EXPECT_NEAR(s.sum, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

// The empty-histogram contract: percentile() of a histogram with zero
// observations is DEFINED as 0.0 for every pct (there is no sample to
// interpolate toward, and 0 is the additive identity the dashboards
// already render as "no data"). Pinned so a refactor cannot turn this
// into a divide-by-zero or a NaN.
TEST(Histogram, EmptyHistogramDefinesZeroForAllPercentiles) {
  obs::Histogram empty({1.0, 10.0, 100.0});
  for (const double pct : {0.0, 50.0, 95.0, 99.0, 99.9, 100.0})
    EXPECT_DOUBLE_EQ(empty.percentile(pct), 0.0) << "pct=" << pct;
  obs::MetricsRegistry reg;  // the snapshot path on an empty histogram
  reg.histogram("lat");
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_DOUBLE_EQ(snaps[0].p50, 0.0);
  EXPECT_DOUBLE_EQ(snaps[0].p999, 0.0);
}

TEST(MetricsRegistry, SnapshotCarriesTailPercentile) {
  obs::MetricsRegistry reg;
  auto h = reg.histogram("lat", {}, {1.0, 10.0, 100.0, 1000.0});
  for (int i = 0; i < 999; ++i) h->record(5.0);
  h->record(500.0);  // the 1-in-1000 outlier p99 smooths over
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_LE(snaps[0].p99, 10.0);    // bulk bucket
  EXPECT_GT(snaps[0].p999, 100.0);  // tail bucket: the outlier is visible
  EXPECT_GE(snaps[0].p999, snaps[0].p99);
  const std::string table = reg.table().str();
  EXPECT_NE(table.find("p999"), std::string::npos);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
}

TEST(MetricsRegistry, TableAndJsonRender) {
  obs::MetricsRegistry reg;
  reg.counter("hits", {{"middleware", "MPP"}})->add(5);
  reg.gauge("depth")->set(2);
  reg.histogram("lat")->record(4.0);
  const std::string table = reg.table().str();
  EXPECT_NE(table.find("hits"), std::string::npos);
  EXPECT_NE(table.find("middleware=MPP"), std::string::npos);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"name\":\"hits\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentRecordingIsExact) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  auto counter = reg.counter("total");
  auto hist = reg.histogram("work", {}, {1.0, 2.0, 4.0});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->add(1);
        hist->record(static_cast<double>(t % 4));  // 0,1,2,3
      }
    });
  }
  for (auto& th : threads) th.join();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(counter->value(), kTotal);
  EXPECT_EQ(hist->count(), kTotal);
  // Fixed-point sum: every recorded value is integral, so the sum is exact.
  // Two threads each of residue 0,1,2,3 -> mean 1.5.
  EXPECT_DOUBLE_EQ(hist->sum(), kTotal * 1.5);
  const auto buckets = hist->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], kTotal / 2);      // 0 and 1
  EXPECT_EQ(buckets[1], 3 * kTotal / 4);  // + 2
  EXPECT_EQ(buckets[2], kTotal);          // + 3
  EXPECT_EQ(buckets[3], kTotal);
}

TEST(MetricsEnabled, TestOverrideRoundTrips) {
  obs::set_metrics_enabled(true);
  EXPECT_TRUE(obs::metrics_enabled());
  obs::set_metrics_enabled(false);
  EXPECT_FALSE(obs::metrics_enabled());
}
