// TraceContext: id generation, RAII scopes, and causal propagation
// through the work-stealing pool — the in-process half of the tentpole.
// The wire half lives in tests/net/test_tcp_trace.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_set>
#include <vector>

#include "apar/concurrency/thread_pool.hpp"
#include "apar/obs/trace_context.hpp"
#include "apar/obs/tracer.hpp"

namespace obs = apar::obs;
namespace concurrency = apar::concurrency;

namespace {

/// Tests toggle the process-wide switch; always restore it.
struct TracingOn {
  TracingOn() { obs::set_tracing_enabled(true); }
  ~TracingOn() { obs::set_tracing_enabled(false); }
};

}  // namespace

TEST(TraceContext, DefaultIsInvalid) {
  obs::TraceContext ctx;
  EXPECT_FALSE(ctx.valid());
  EXPECT_EQ(ctx.trace_id, 0u);
  EXPECT_EQ(ctx.span_id, 0u);
  EXPECT_EQ(ctx.parent_span_id, 0u);
}

TEST(TraceContext, IdsAreNonzeroAndDistinct) {
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t id = obs::next_span_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
}

TEST(TraceContext, IdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::vector<std::vector<std::uint64_t>> batches(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&batches, t] {
      batches[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i)
        batches[t].push_back(obs::next_trace_id());
    });
  }
  for (auto& th : threads) th.join();
  std::unordered_set<std::uint64_t> seen;
  for (const auto& batch : batches)
    for (const std::uint64_t id : batch)
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  EXPECT_EQ(seen.size(), std::size_t{kThreads} * kPerThread);
}

TEST(TraceContext, ChildOfValidParentStaysInTrace) {
  obs::TraceContext parent;
  parent.trace_id = obs::next_trace_id();
  parent.span_id = obs::next_span_id();
  const obs::TraceContext child = obs::TraceContext::child_of(parent);
  EXPECT_TRUE(child.valid());
  EXPECT_EQ(child.trace_id, parent.trace_id);
  EXPECT_NE(child.span_id, parent.span_id);
  EXPECT_EQ(child.parent_span_id, parent.span_id);
}

TEST(TraceContext, ChildOfInvalidParentStartsNewRootTrace) {
  const obs::TraceContext child =
      obs::TraceContext::child_of(obs::TraceContext{});
  EXPECT_TRUE(child.valid());
  EXPECT_EQ(child.parent_span_id, 0u);
}

TEST(TraceContext, SpanScopeInstallsChildAndRestores) {
  EXPECT_FALSE(obs::current_context().valid());
  {
    obs::SpanScope outer;
    const obs::TraceContext o = outer.context();
    EXPECT_TRUE(o.valid());
    EXPECT_EQ(o.parent_span_id, 0u);  // no ambient context: a root span
    EXPECT_EQ(obs::current_context(), o);
    {
      obs::SpanScope inner;
      EXPECT_EQ(inner.context().trace_id, o.trace_id);
      EXPECT_EQ(inner.context().parent_span_id, o.span_id);
      EXPECT_EQ(obs::current_context(), inner.context());
    }
    EXPECT_EQ(obs::current_context(), o);
  }
  EXPECT_FALSE(obs::current_context().valid());
}

TEST(TraceContext, SpanScopeAcceptsExplicitRemoteParent) {
  obs::TraceContext remote;
  remote.trace_id = 0xaaaa;
  remote.span_id = 0xbbbb;
  obs::SpanScope span(remote);
  EXPECT_EQ(span.context().trace_id, 0xaaaau);
  EXPECT_EQ(span.context().parent_span_id, 0xbbbbu);
  EXPECT_NE(span.context().span_id, 0xbbbbu);
}

TEST(TraceContext, ContextScopeInstallsVerbatimAndShields) {
  obs::TraceContext captured;
  captured.trace_id = 7;
  captured.span_id = 9;
  captured.parent_span_id = 3;
  {
    obs::ContextScope restore(captured);
    EXPECT_EQ(obs::current_context(), captured);
    {
      // An invalid context shields against leaked ambient state.
      obs::ContextScope shield{obs::TraceContext{}};
      EXPECT_FALSE(obs::current_context().valid());
    }
    EXPECT_EQ(obs::current_context(), captured);
  }
  EXPECT_FALSE(obs::current_context().valid());
}

TEST(TraceContext, SetTracingEnabledOverridesEnvironment) {
  const bool before = obs::tracing_enabled();
  obs::set_tracing_enabled(true);
  EXPECT_TRUE(obs::tracing_enabled());
  obs::set_tracing_enabled(false);
  EXPECT_FALSE(obs::tracing_enabled());
  obs::set_tracing_enabled(before);
}

// --- propagation through the pool ------------------------------------------

TEST(TracePropagation, TaskResumesSubmitterContext) {
  TracingOn tracing;
  concurrency::ThreadPool pool(2);
  obs::SpanScope submitting;
  const obs::TraceContext expected = submitting.context();
  const obs::TraceContext seen =
      pool.submit([] { return obs::current_context(); }).get();
  EXPECT_EQ(seen, expected);
}

TEST(TracePropagation, SpansOpenedInTasksParentToSubmitter) {
  TracingOn tracing;
  concurrency::ThreadPool pool(2);
  obs::SpanScope submitting;
  const obs::TraceContext task_span =
      pool.submit([] {
            obs::SpanScope inner;
            return inner.context();
          })
          .get();
  EXPECT_EQ(task_span.trace_id, submitting.context().trace_id);
  EXPECT_EQ(task_span.parent_span_id, submitting.context().span_id);
}

TEST(TracePropagation, ContextSurvivesFanOutAcrossWorkers) {
  TracingOn tracing;
  concurrency::ThreadPool pool(4);
  obs::SpanScope submitting;
  const obs::TraceContext expected = submitting.context();
  constexpr int kTasks = 64;
  std::atomic<int> matches{0};
  std::vector<concurrency::Future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&matches, expected] {
      if (obs::current_context() == expected)
        matches.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(matches.load(), kTasks);
}

TEST(TracePropagation, QueueWaitSpanIsChildOfSubmitter) {
  TracingOn tracing;
  (void)obs::Tracer::global()->take_events();  // isolate from other tests
  obs::TraceContext submitted;
  {
    concurrency::ThreadPool pool(1);
    obs::SpanScope submitting;
    submitted = submitting.context();
    pool.submit([] {}).get();
  }
  const auto events = obs::Tracer::global()->take_events();
  const auto spans = obs::Tracer::spans_of(events);
  bool found = false;
  for (const auto& s : spans) {
    if (s.signature != "threadpool.queue_wait") continue;
    found = true;
    EXPECT_EQ(s.trace_id, submitted.trace_id);
    EXPECT_EQ(s.parent_span_id, submitted.span_id);
  }
  EXPECT_TRUE(found) << "no threadpool.queue_wait span recorded";
}

TEST(TracePropagation, TracingOffCapturesNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  concurrency::ThreadPool pool(2);
  obs::SpanScope submitting;  // propagation machinery itself is always on
  const obs::TraceContext seen =
      pool.submit([] { return obs::current_context(); }).get();
  // With tracing off make_node skips the capture: the task runs without
  // ambient context, so no span-recording work can trigger downstream.
  EXPECT_FALSE(seen.valid());
}
