// Substrate instrumentation end to end: with the metrics gate on, thread
// pools, work queues, middlewares, nodes and the fault injector all feed
// non-zero series into the global registry; with it off, nothing does.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../cluster/fixtures.hpp"
#include "apar/cluster/fault_injection.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/concurrency/thread_pool.hpp"
#include "apar/concurrency/work_queue.hpp"
#include "apar/obs/metrics.hpp"
#include "apar/sieve/versions.hpp"
#include "apar/sieve/workload.hpp"

namespace cl = apar::cluster;
namespace cc = apar::concurrency;
namespace obs = apar::obs;
namespace se = apar::serial;
namespace sv = apar::sieve;
using apar::test::register_counter;

namespace {

/// Turns the gate on for the test body and always restores "off" (the
/// suite-wide default other test binaries assume).
struct MetricsOn {
  MetricsOn() { obs::set_metrics_enabled(true); }
  ~MetricsOn() { obs::set_metrics_enabled(false); }
};

std::uint64_t counter_value(const char* name, obs::Labels labels = {}) {
  return obs::MetricsRegistry::global().counter(name, std::move(labels))
      ->value();
}

sv::SieveConfig small_config(std::size_t filters) {
  sv::SieveConfig cfg;
  cfg.max = 20'000;
  cfg.filters = filters;
  cfg.pack_size = 2'000;
  cfg.ns_per_op = 0.0;
  cfg.nodes = 2;
  cfg.node_executors = 2;
  return cfg;
}

}  // namespace

TEST(SubstrateMetrics, ThreadPoolFeedsRegistry) {
  MetricsOn on;
  auto& reg = obs::MetricsRegistry::global();
  const auto tasks0 = counter_value("threadpool.tasks");
  const auto wait0 = reg.histogram("threadpool.wait_us")->count();
  {
    cc::ThreadPool pool(2);
    EXPECT_EQ(reg.gauge("threadpool.workers")->value(), 2);
    for (int i = 0; i < 10; ++i) pool.post([] {});
    pool.drain();
  }
  EXPECT_EQ(counter_value("threadpool.tasks"), tasks0 + 10);
  EXPECT_EQ(reg.histogram("threadpool.wait_us")->count(), wait0 + 10);
  EXPECT_EQ(reg.gauge("threadpool.workers")->value(), 0);
  EXPECT_EQ(reg.gauge("threadpool.queue_depth")->value(), 0);
}

TEST(SubstrateMetrics, ThreadPoolSilentWhenDisabled) {
  obs::set_metrics_enabled(false);
  const auto tasks0 = counter_value("threadpool.tasks");
  cc::ThreadPool pool(2);
  for (int i = 0; i < 5; ++i) pool.post([] {});
  pool.drain();
  EXPECT_EQ(counter_value("threadpool.tasks"), tasks0);
}

TEST(SubstrateMetrics, WorkQueueDepthAndThroughput) {
  MetricsOn on;
  auto& reg = obs::MetricsRegistry::global();
  cc::WorkQueue<int> queue;
  queue.enable_metrics("test.queue");
  const obs::Labels labels{{"queue", "test.queue"}};
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(reg.gauge("workqueue.depth", labels)->value(), 2);
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.try_pop().value(), 2);
  EXPECT_EQ(reg.gauge("workqueue.depth", labels)->value(), 0);
  EXPECT_EQ(counter_value("workqueue.pushed", {{"queue", "test.queue"}}), 2u);
  EXPECT_EQ(counter_value("workqueue.popped", {{"queue", "test.queue"}}), 2u);
}

TEST(SubstrateMetrics, WorkQueueBatchOpsKeepCountsExact) {
  MetricsOn on;
  auto& reg = obs::MetricsRegistry::global();
  cc::WorkQueue<int> queue;
  queue.enable_metrics("batch.queue");
  const obs::Labels labels{{"queue", "batch.queue"}};
  const auto pushed0 = counter_value("workqueue.pushed", labels);
  const auto popped0 = counter_value("workqueue.popped", labels);
  std::vector<int> batch{1, 2, 3, 4, 5};
  queue.push_batch(batch);
  EXPECT_EQ(reg.gauge("workqueue.depth", labels)->value(), 5);
  EXPECT_EQ(counter_value("workqueue.pushed", labels), pushed0 + 5);
  EXPECT_EQ(queue.pop_batch(3).size(), 3u);
  EXPECT_EQ(reg.gauge("workqueue.depth", labels)->value(), 2);
  EXPECT_EQ(queue.pop_batch(10).size(), 2u);
  EXPECT_EQ(reg.gauge("workqueue.depth", labels)->value(), 0);
  EXPECT_EQ(counter_value("workqueue.popped", labels), popped0 + 5);
}

TEST(SubstrateMetrics, SchedulerStealAndOverflowSeries) {
  MetricsOn on;
  const auto steals0 = counter_value("threadpool.steals");
  const auto overflow0 = counter_value("threadpool.overflow");
  std::uint64_t steals_seen = 0;
  std::uint64_t overflows_seen = 0;
  {
    cc::ThreadPool pool(4);
    // Flood one worker's own deque past its capacity from inside a task:
    // the excess overflows, and idle workers steal from the hoarder.
    pool.post([&pool] {
      for (int i = 0; i < 2000; ++i) pool.post([] {});
    });
    pool.drain();
    steals_seen = pool.steals();
    overflows_seen = pool.overflows();
  }
  // The registry counters aggregate exactly what the pool itself counted.
  EXPECT_EQ(counter_value("threadpool.steals"), steals0 + steals_seen);
  EXPECT_EQ(counter_value("threadpool.overflow"), overflow0 + overflows_seen);
}

TEST(SubstrateMetrics, SieveRunFeedsMiddlewareAndNodeSeries) {
  MetricsOn on;
  auto& reg = obs::MetricsRegistry::global();
  const auto invoke0 =
      reg.histogram("middleware.invoke_us",
                    {{"method", "process"}, {"middleware", "MPP"}})
          ->count();
  sv::SieveHarness harness(sv::Version::kFarmMpp, small_config(2));
  const auto result = harness.run();
  EXPECT_EQ(result.primes, sv::count_primes_up_to(20'000));

  // Per-method middleware latency + payload histograms moved...
  const obs::Labels mpp_process{{"method", "process"}, {"middleware", "MPP"}};
  EXPECT_GT(reg.histogram("middleware.invoke_us", mpp_process)->count(),
            invoke0);
  EXPECT_GT(reg.histogram("middleware.payload_bytes", mpp_process,
                          obs::Histogram::bytes_bounds())
                ->count(),
            0u);
  // ...creations were timed under "new"...
  EXPECT_GT(reg.histogram("middleware.invoke_us",
                          {{"method", "new"}, {"middleware", "MPP"}})
                ->count(),
            0u);
  // ...and the serving nodes recorded handle latencies.
  EXPECT_GT(reg.histogram("node.handle_us", {{"node", "1"}})->count(), 0u);
  EXPECT_GT(counter_value("node.handled", {{"node", "1"}}), 0u);
}

TEST(SubstrateMetrics, FaultInjectorCountsIntoRegistry) {
  MetricsOn on;
  cl::Cluster cluster({2, 1});
  register_counter(cluster.registry());
  cl::MppMiddleware mpp(cluster, cl::CostModel::loopback());
  cl::FaultInjectingMiddleware::Options options;
  options.seed = 7;
  options.drop_rate = 1.0;  // every op drops, deterministically
  cl::FaultInjectingMiddleware faulty(mpp, options);

  auto handle =
      mpp.create(0, "Counter", se::encode(mpp.wire_format(), 0LL));
  const obs::Labels drop_labels{{"kind", "drop"},
                                {"middleware", std::string(faulty.name())}};
  const auto dropped0 = counter_value("faults.injected", drop_labels);
  EXPECT_THROW(
      faulty.invoke(handle, "get", se::encode(faulty.wire_format())),
      cl::rpc::RpcError);
  EXPECT_EQ(counter_value("faults.injected", drop_labels), dropped0 + 1);
  EXPECT_EQ(faulty.fault_stats().dropped.load(), 1u);
  cluster.shutdown();
}

TEST(HybridMiddleware, StatsAggregateControlAndFastBytes) {
  // Satellite regression: hybrid stats() used to report only the control
  // backend, silently dropping every fast-path byte.
  cl::Cluster cluster({2, 1});
  register_counter(cluster.registry());
  cl::RmiMiddleware rmi(cluster, cl::CostModel::loopback());
  cl::MppMiddleware mpp(cluster, cl::CostModel::loopback());
  cl::HybridMiddleware hybrid(rmi, mpp, {"add"});

  auto handle =
      hybrid.create(0, "Counter", se::encode(hybrid.wire_format(), 5LL));

  // Fast-path call: the payload must be encoded with the ROUTED
  // middleware's wire format.
  auto& routed = hybrid.route_for("add");
  ASSERT_EQ(routed.name(), "MPP");
  hybrid.invoke(handle, "add", se::encode(routed.wire_format(), 3LL));

  const auto& agg = hybrid.stats();
  const auto& fast = mpp.stats();
  EXPECT_GT(fast.bytes_sent.load(), 0u);
  EXPECT_EQ(agg.creates.load(), 1u);
  EXPECT_EQ(agg.sync_calls.load(), 1u);
  EXPECT_EQ(agg.bytes_sent.load(),
            rmi.stats().bytes_sent.load() + fast.bytes_sent.load());
  EXPECT_EQ(agg.bytes_received.load(),
            rmi.stats().bytes_received.load() + fast.bytes_received.load());
  cluster.shutdown();
}
