// Event-driven server mode (src/net/reactor): protocol equivalence with
// thread-per-connection, incremental decode (1-byte trickle), pipelined
// ordering, backpressure, slow-reader eviction, connection limits, idle
// timeouts, graceful drain, chaos composition — on both poller backends.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "apar/cluster/fault_injection.hpp"
#include "apar/cluster/rpc.hpp"
#include "apar/net/error.hpp"
#include "apar/serial/archive.hpp"
#include "net_fixtures.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;
namespace net = apar::net;
using apar::test::Counter;
using apar::test::TcpRig;

namespace {

/// Extra server-side classes for reactor behaviours the fixtures' Counter
/// cannot exercise: controllable handler latency and big replies.
class Sleeper {
 public:
  Sleeper() = default;
  long long nap(long long ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return ms;
  }
};

class Blob {
 public:
  Blob() = default;
  [[nodiscard]] std::string make(long long n) const {
    return std::string(static_cast<std::size_t>(n), 'x');
  }
};

net::TcpServer::Options reactor_options() {
  net::TcpServer::Options opts;
  opts.mode = net::TcpServer::Mode::kReactor;
  return opts;
}

/// Rig with the reactor-specific classes registered alongside Counter.
struct ReactorRig {
  explicit ReactorRig(net::TcpServer::Options opts = reactor_options()) {
    apar::test::register_counter(registry);
    registry.bind<Sleeper>("Sleeper").ctor<>().method<&Sleeper::nap>("nap");
    registry.bind<Blob>("Blob").ctor<>().method<&Blob::make>("make");
    server = std::make_unique<net::TcpServer>(registry, opts);
    net::TcpMiddleware::Options mw;
    mw.endpoints = {{"127.0.0.1", server->port()}};
    middleware = std::make_unique<net::TcpMiddleware>(mw);
  }

  [[nodiscard]] net::Endpoint endpoint() const {
    return {"127.0.0.1", server->port()};
  }

  ac::rpc::Registry registry;
  std::unique_ptr<net::TcpServer> server;
  std::unique_ptr<net::TcpMiddleware> middleware;
};

// --- raw-frame helpers ------------------------------------------------------

std::vector<std::byte> encode_frame(net::FrameHeader header,
                                    const std::vector<std::byte>& payload) {
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  const auto bytes = net::encode_header(header);
  std::vector<std::byte> out(bytes.begin(), bytes.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::byte> telemetry_frame(std::uint64_t request_id) {
  net::FrameHeader header;
  header.op = net::FrameHeader::Op::kTelemetry;
  header.request_id = request_id;
  return encode_frame(header, {std::byte{0}});
}

std::vector<std::byte> call_frame(std::uint64_t request_id, std::uint64_t oid,
                                  const std::string& method,
                                  const std::vector<std::byte>& args) {
  net::FrameHeader header;
  header.op = net::FrameHeader::Op::kCall;
  header.request_id = request_id;
  std::vector<std::byte> payload;
  net::put_u64(payload, oid);
  net::put_string(payload, method);
  payload.insert(payload.end(), args.begin(), args.end());
  return encode_frame(header, payload);
}

struct RawReply {
  net::FrameHeader header;
  std::vector<std::byte> payload;
};

RawReply recv_reply(net::Socket& socket, net::Deadline deadline) {
  std::array<std::byte, net::FrameHeader::kSize> bytes;
  net::recv_exact(socket, bytes.data(), bytes.size(), deadline);
  RawReply reply;
  reply.header = net::decode_header(bytes.data(), bytes.size());
  reply.payload.resize(reply.header.payload_len);
  if (reply.header.payload_len > 0)
    net::recv_exact(socket, reply.payload.data(), reply.payload.size(),
                    deadline);
  return reply;
}

/// Client socket with a tiny receive buffer (set before connect so the
/// advertised window stays small): lets tests stall the server's writes
/// with modest payloads.
net::Socket dial_small_rcvbuf(const net::Endpoint& endpoint, int rcvbuf) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return net::Socket{};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(endpoint.port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return net::Socket{};
  }
  return net::Socket(fd);
}

}  // namespace

// --- protocol equivalence on both poller backends ---------------------------

class ReactorBackends : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(Poller, ReactorBackends, ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "poll_fallback" : "native";
                         });

TEST_P(ReactorBackends, RoundTripCreateInvokeLookupTelemetry) {
  APAR_REQUIRE_LOOPBACK();
  auto opts = reactor_options();
  opts.reactor.force_poll = GetParam();
  ReactorRig rig(opts);
  auto& mw = *rig.middleware;

  const auto handle = mw.create(0, "Counter", as::encode(mw.wire_format(), 3LL));
  mw.invoke(handle, "add", as::encode(mw.wire_format(), 4LL));
  const auto [value] = as::decode<long long>(
      mw.invoke(handle, "get", as::encode(mw.wire_format())),
      mw.wire_format());
  EXPECT_EQ(value, 7);

  mw.bind_name("counter", handle);
  const auto resolved = mw.lookup("counter");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, handle);

  const std::string telemetry = mw.telemetry(0);
  EXPECT_NE(telemetry.find("\"server\""), std::string::npos);

  const auto stats = rig.server->stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.frames_in, 6u);
  EXPECT_EQ(stats.frames_out, 6u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// --- mode parity ------------------------------------------------------------

TEST(Reactor, ServesIdenticalBytesToThreadPerConnection) {
  APAR_REQUIRE_LOOPBACK();
  // Same dispatcher label on both sides so error strings (which embed it)
  // compare byte-for-byte too.
  net::TcpServer::Options thread_opts;
  thread_opts.label = "parity";
  auto reactor_opts = reactor_options();
  reactor_opts.label = "parity";

  apar::test::TcpRig baseline(as::Format::kCompact, thread_opts);
  apar::test::TcpRig reactor(as::Format::kCompact, reactor_opts);

  auto run = [](apar::test::TcpRig& rig) {
    auto& mw = *rig.middleware;
    std::vector<std::vector<std::byte>> replies;
    const auto handle =
        mw.create(0, "Counter", as::encode(mw.wire_format(), 10LL));
    mw.invoke(handle, "add", as::encode(mw.wire_format(), 32LL));
    replies.push_back(mw.invoke(handle, "get", as::encode(mw.wire_format())));
    replies.push_back(mw.invoke(handle, "greet",
                                as::encode(mw.wire_format(),
                                           std::string("reactor"))));
    std::vector<long long> pack{1, 2, 3};
    replies.push_back(mw.invoke(handle, "absorb",
                                as::encode(mw.wire_format(), pack)));
    try {
      mw.invoke(handle, "no_such_method", as::encode(mw.wire_format()));
    } catch (const ac::rpc::RpcError& e) {
      const std::string what = e.what();
      replies.emplace_back();
      for (const char c : what)
        replies.back().push_back(static_cast<std::byte>(c));
    }
    return replies;
  };

  const auto a = run(baseline);
  const auto b = run(reactor);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "reply " << i << " differs between modes";
}

// --- incremental decode -----------------------------------------------------

TEST(Reactor, DecodesOneByteTrickle) {
  APAR_REQUIRE_LOOPBACK();
  ReactorRig rig;
  net::Socket socket = net::dial(
      rig.endpoint(), net::deadline_after(std::chrono::milliseconds(1000)));

  const auto frame = telemetry_frame(/*request_id=*/77);
  for (const std::byte b : frame) {
    net::send_all(socket, &b, 1,
                  net::deadline_after(std::chrono::milliseconds(500)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const RawReply reply = recv_reply(
      socket, net::deadline_after(std::chrono::milliseconds(2000)));
  EXPECT_EQ(reply.header.op, net::FrameHeader::Op::kReplyOk);
  EXPECT_EQ(reply.header.request_id, 77u);
  EXPECT_GT(reply.payload.size(), 0u);
}

// --- pipelining -------------------------------------------------------------

TEST(Reactor, PipelinedRepliesKeepRequestOrder) {
  APAR_REQUIRE_LOOPBACK();
  auto opts = reactor_options();
  opts.workers = 4;  // plenty of room for out-of-order completion
  ReactorRig rig(opts);
  auto& mw = *rig.middleware;
  const auto sleeper = mw.create(0, "Sleeper", as::encode(mw.wire_format()));

  // Decreasing naps: later requests finish FIRST on the pool, so only the
  // reactor's in-order flush can explain ordered replies.
  net::Socket socket = net::dial(
      rig.endpoint(), net::deadline_after(std::chrono::milliseconds(1000)));
  constexpr int kRequests = 6;
  std::vector<std::byte> burst;
  for (int i = 0; i < kRequests; ++i) {
    const long long nap_ms = 10 * (kRequests - 1 - i);
    const auto frame =
        call_frame(100 + static_cast<std::uint64_t>(i), sleeper.object, "nap",
                   as::encode(mw.wire_format(), nap_ms));
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  net::send_all(socket, burst.data(), burst.size(),
                net::deadline_after(std::chrono::milliseconds(1000)));

  const auto deadline = net::deadline_after(std::chrono::milliseconds(5000));
  for (int i = 0; i < kRequests; ++i) {
    const RawReply reply = recv_reply(socket, deadline);
    EXPECT_EQ(reply.header.op, net::FrameHeader::Op::kReplyOk);
    EXPECT_EQ(reply.header.request_id, 100u + static_cast<std::uint64_t>(i))
        << "reply " << i << " out of order";
    // Call replies carry the copy-restored args before the result.
    const auto [arg, value] =
        as::decode<long long, long long>(reply.payload, mw.wire_format());
    EXPECT_EQ(arg, value);
    EXPECT_EQ(value, 10 * (kRequests - 1 - i));
  }
}

// --- backpressure -----------------------------------------------------------

TEST(Reactor, InflightCapPausesReadsAndRecovers) {
  APAR_REQUIRE_LOOPBACK();
  auto opts = reactor_options();
  opts.workers = 2;
  opts.reactor.max_inflight = 3;
  ReactorRig rig(opts);
  auto& mw = *rig.middleware;
  const auto sleeper = mw.create(0, "Sleeper", as::encode(mw.wire_format()));

  net::Socket socket = net::dial(
      rig.endpoint(), net::deadline_after(std::chrono::milliseconds(1000)));
  constexpr int kRequests = 12;
  std::vector<std::byte> burst;
  for (int i = 0; i < kRequests; ++i) {
    const auto frame =
        call_frame(static_cast<std::uint64_t>(i), sleeper.object, "nap",
                   as::encode(mw.wire_format(), 15LL));
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  net::send_all(socket, burst.data(), burst.size(),
                net::deadline_after(std::chrono::milliseconds(1000)));

  const auto deadline = net::deadline_after(std::chrono::milliseconds(10000));
  for (int i = 0; i < kRequests; ++i) {
    const RawReply reply = recv_reply(socket, deadline);
    EXPECT_EQ(reply.header.request_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(reply.header.op, net::FrameHeader::Op::kReplyOk);
  }
  // 12 pipelined requests against a 3-deep inflight cap must have paused
  // reads at least once — and every reply still arrived, in order.
  EXPECT_GE(rig.server->stats().backpressure_pauses, 1u);
}

TEST(Reactor, OutboundQueueCapPausesReads) {
  APAR_REQUIRE_LOOPBACK();
  auto opts = reactor_options();
  opts.reactor.max_outbound_bytes = 16 * 1024;
  opts.reactor.sndbuf_bytes = 8 * 1024;
  ReactorRig rig(opts);
  auto& mw = *rig.middleware;
  const auto blob = mw.create(0, "Blob", as::encode(mw.wire_format()));

  net::Socket socket = dial_small_rcvbuf(rig.endpoint(), 4 * 1024);
  ASSERT_TRUE(socket.valid());
  constexpr int kRequests = 8;
  constexpr long long kBlob = 64 * 1024;
  std::vector<std::byte> burst;
  for (int i = 0; i < kRequests; ++i) {
    const auto frame =
        call_frame(static_cast<std::uint64_t>(i), blob.object, "make",
                   as::encode(mw.wire_format(), kBlob));
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  net::send_all(socket, burst.data(), burst.size(),
                net::deadline_after(std::chrono::milliseconds(2000)));

  // Read slowly enough that the server's outbound queue passes the cap at
  // least once, but keep draining so every reply eventually lands.
  const auto deadline = net::deadline_after(std::chrono::milliseconds(20000));
  for (int i = 0; i < kRequests; ++i) {
    const RawReply reply = recv_reply(socket, deadline);
    EXPECT_EQ(reply.header.request_id, static_cast<std::uint64_t>(i));
    const auto [arg, text] =
        as::decode<long long, std::string>(reply.payload, mw.wire_format());
    EXPECT_EQ(arg, kBlob);
    EXPECT_EQ(text.size(), static_cast<std::size_t>(kBlob));
  }
  EXPECT_GE(rig.server->stats().backpressure_pauses, 1u);
}

// --- eviction and limits ----------------------------------------------------

TEST(Reactor, EvictsSlowReader) {
  APAR_REQUIRE_LOOPBACK();
  auto opts = reactor_options();
  opts.reactor.sndbuf_bytes = 8 * 1024;
  opts.reactor.write_stall_timeout = std::chrono::milliseconds(300);
  ReactorRig rig(opts);
  auto& mw = *rig.middleware;
  const auto blob = mw.create(0, "Blob", as::encode(mw.wire_format()));

  net::Socket socket = dial_small_rcvbuf(rig.endpoint(), 4 * 1024);
  ASSERT_TRUE(socket.valid());
  const auto frame = call_frame(1, blob.object, "make",
                                as::encode(mw.wire_format(), 512LL * 1024));
  net::send_all(socket, frame.data(), frame.size(),
                net::deadline_after(std::chrono::milliseconds(1000)));

  // Never read: the 512 KiB reply cannot fit the tiny windows, the write
  // stalls, and the stall timeout evicts us.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rig.server->stats().slow_closed == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(rig.server->stats().slow_closed, 1u);
}

TEST(Reactor, RejectsConnectionsOverTheLimit) {
  APAR_REQUIRE_LOOPBACK();
  auto opts = reactor_options();
  opts.reactor.max_connections = 2;
  ReactorRig rig(opts);

  const auto deadline = net::deadline_after(std::chrono::milliseconds(2000));
  net::Socket first = net::dial(rig.endpoint(), deadline);
  net::Socket second = net::dial(rig.endpoint(), deadline);
  // Prove both are genuinely being served before dialing the third.
  for (net::Socket* s : {&first, &second}) {
    const auto frame = telemetry_frame(9);
    net::send_all(*s, frame.data(), frame.size(), deadline);
    EXPECT_EQ(recv_reply(*s, deadline).header.op,
              net::FrameHeader::Op::kReplyOk);
  }

  net::Socket third = net::dial(rig.endpoint(), deadline);
  // The TCP handshake succeeds (backlog), but the reactor closes it on
  // accept: the first read reports EOF.
  std::array<std::byte, 1> byte;
  EXPECT_THROW(
      net::recv_exact(third, byte.data(), 1,
                      net::deadline_after(std::chrono::milliseconds(2000))),
      net::NetError);
  EXPECT_EQ(rig.server->stats().rejected, 1u);
  EXPECT_EQ(rig.server->open_connections(), 2u);
}

TEST(Reactor, ClosesIdleConnections) {
  APAR_REQUIRE_LOOPBACK();
  auto opts = reactor_options();
  opts.reactor.idle_timeout = std::chrono::milliseconds(150);
  ReactorRig rig(opts);

  const auto deadline = net::deadline_after(std::chrono::milliseconds(2000));
  net::Socket socket = net::dial(rig.endpoint(), deadline);
  const auto frame = telemetry_frame(5);
  net::send_all(socket, frame.data(), frame.size(), deadline);
  EXPECT_EQ(recv_reply(socket, deadline).header.op,
            net::FrameHeader::Op::kReplyOk);

  // Go quiet; the idle sweep must close us.
  std::array<std::byte, 1> byte;
  EXPECT_THROW(
      net::recv_exact(socket, byte.data(), 1,
                      net::deadline_after(std::chrono::milliseconds(3000))),
      net::NetError);
  EXPECT_GE(rig.server->stats().idle_closed, 1u);
}

// --- shutdown ---------------------------------------------------------------

TEST(Reactor, GracefulDrainFlushesInflightReplies) {
  APAR_REQUIRE_LOOPBACK();
  ReactorRig rig;
  auto& mw = *rig.middleware;
  const auto sleeper = mw.create(0, "Sleeper", as::encode(mw.wire_format()));

  net::Socket socket = net::dial(
      rig.endpoint(), net::deadline_after(std::chrono::milliseconds(1000)));
  const auto frame = call_frame(42, sleeper.object, "nap",
                                as::encode(mw.wire_format(), 150LL));
  net::send_all(socket, frame.data(), frame.size(),
                net::deadline_after(std::chrono::milliseconds(1000)));
  // Give the reactor a beat to read and dispatch the request, then stop:
  // the drain must let the in-flight nap finish and flush its reply.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rig.server->stop();

  const RawReply reply = recv_reply(
      socket, net::deadline_after(std::chrono::milliseconds(2000)));
  EXPECT_EQ(reply.header.op, net::FrameHeader::Op::kReplyOk);
  EXPECT_EQ(reply.header.request_id, 42u);
}

// --- many clients, few workers ----------------------------------------------

TEST(Reactor, ServesManyMoreClientsThanWorkers) {
  APAR_REQUIRE_LOOPBACK();
  auto opts = reactor_options();
  opts.workers = 4;
  ReactorRig rig(opts);
  auto& mw = *rig.middleware;

  // 16 concurrent closed-loop clients on 4 workers: impossible in
  // thread-per-connection mode (12 would starve in the accept queue).
  constexpr int kThreads = 16;
  constexpr int kCallsPerThread = 25;
  std::vector<ac::RemoteHandle> handles;
  for (int t = 0; t < kThreads; ++t)
    handles.push_back(
        mw.create(0, "Counter", as::encode(mw.wire_format(), 0LL)));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i)
        mw.invoke(handles[t], "add", as::encode(mw.wire_format(), 1LL));
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    const auto [value] = as::decode<long long>(
        mw.invoke(handles[t], "get", as::encode(mw.wire_format())),
        mw.wire_format());
    EXPECT_EQ(value, kCallsPerThread);
  }

  // Byte parity both directions, exactly like the thread-mode hammer test.
  const auto counters = mw.net_counters();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (rig.server->stats().bytes_out < counters.wire_bytes_received &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto server = rig.server->stats();
  EXPECT_EQ(counters.wire_bytes_sent, server.bytes_in);
  EXPECT_EQ(counters.wire_bytes_received, server.bytes_out);
  EXPECT_EQ(counters.frames_sent, server.frames_in);
  EXPECT_EQ(counters.frames_received, server.frames_out);
}

// --- chaos composition ------------------------------------------------------

TEST(Reactor, ChaosDropRetriesLookupLikeThreadMode) {
  APAR_REQUIRE_LOOPBACK();
  auto opts = reactor_options();
  opts.chaos_drop_frames = 2;  // server eats the first two requests
  ReactorRig rig(opts);
  auto& mw = *rig.middleware;

  // Lookups retry through reconnects, so the chaos is invisible except in
  // the counters — byte-identical behaviour to thread mode.
  EXPECT_FALSE(mw.lookup("nobody").has_value());
  EXPECT_EQ(rig.server->stats().chaos_dropped, 2u);
  EXPECT_GE(mw.net_counters().retries, 2u);
}

TEST(Reactor, FaultInjectionComposesOverReactor) {
  APAR_REQUIRE_LOOPBACK();
  ReactorRig rig;
  auto& tcp = *rig.middleware;

  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = 42;
  fopts.drop_rate = 0.3;
  ac::FaultInjectingMiddleware faulty(tcp, fopts);

  const auto handle =
      faulty.create(0, "Counter", as::encode(faulty.wire_format(), 0LL));
  int delivered = 0;
  for (int i = 0; i < 30; ++i) {
    try {
      faulty.invoke(handle, "add", as::encode(faulty.wire_format(), 1LL));
      ++delivered;
    } catch (const ac::rpc::RpcError&) {
      // Injected drop — decided by the decorator, not the socket.
    }
  }
  const auto [value] = as::decode<long long>(
      faulty.invoke(handle, "get", as::encode(faulty.wire_format())),
      faulty.wire_format());
  EXPECT_EQ(value, delivered);
  EXPECT_GT(faulty.fault_stats().dropped.load(), 0u);
}
