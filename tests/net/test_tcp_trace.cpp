// Distributed tracing over the real wire: client wire spans, server
// serve spans joined through the frame's trace trailer, the kTelemetry
// endpoint, and chaos runs (dropped frames, killed servers) that must
// never leave open or mis-parented spans behind. Client and server share
// one process here, so BOTH halves of every trace land in
// Tracer::global() — the golden-structure assertions read it directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "apar/net/error.hpp"
#include "apar/obs/trace_context.hpp"
#include "apar/obs/tracer.hpp"
#include "net_fixtures.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;
namespace net = apar::net;
namespace obs = apar::obs;
using apar::test::TcpRig;

namespace {

struct TracingOn {
  TracingOn() {
    obs::set_tracing_enabled(true);
    (void)obs::Tracer::global()->take_events();  // isolate this test
  }
  ~TracingOn() { obs::set_tracing_enabled(false); }
};

std::vector<obs::TraceSpan> drain_spans() {
  return obs::Tracer::spans_of(obs::Tracer::global()->take_events());
}

std::vector<obs::TraceSpan> named(const std::vector<obs::TraceSpan>& spans,
                                  const std::string& signature) {
  std::vector<obs::TraceSpan> out;
  for (const auto& s : spans)
    if (s.signature == signature) out.push_back(s);
  return out;
}

/// The chaos invariant: nothing left open, and every recorded parent id
/// resolves to a recorded span or to the test's own root scope.
void expect_consistent(const std::vector<obs::TraceSpan>& spans,
                       const obs::TraceContext& root) {
  std::unordered_set<std::uint64_t> ids{root.span_id};
  for (const auto& s : spans) ids.insert(s.span_id);
  for (const auto& s : spans) {
    if (s.parent_span_id != 0) {
      EXPECT_TRUE(ids.count(s.parent_span_id))
          << s.signature << " parented to unknown span";
    }
    if (s.trace_id != 0) {
      EXPECT_EQ(s.trace_id, root.trace_id) << s.signature;
    }
  }
}

}  // namespace

TEST(TcpTrace, ServeSpansParentToClientWireSpans) {
  APAR_REQUIRE_LOOPBACK();
  TracingOn tracing;
  TcpRig rig;
  auto& mw = *rig.middleware;

  obs::SpanScope root;
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 10LL));
  mw.invoke(handle, "add", as::encode(mw.wire_format(), 5LL));
  const auto reply = mw.invoke(handle, "get", as::encode(mw.wire_format()));
  const auto [value] = as::decode<long long>(reply, mw.wire_format());
  EXPECT_EQ(value, 15);

  EXPECT_EQ(obs::Tracer::global()->open_spans(), 0u);
  const auto spans = drain_spans();
  const auto wire_create = named(spans, "net.create");
  const auto wire_calls = named(spans, "net.call");
  ASSERT_EQ(wire_create.size(), 1u);
  ASSERT_EQ(wire_calls.size(), 2u);
  // Client side: every wire span is a child of the root scope.
  for (const auto& s : {wire_create[0], wire_calls[0], wire_calls[1]}) {
    EXPECT_EQ(s.trace_id, root.context().trace_id);
    EXPECT_EQ(s.parent_span_id, root.context().span_id);
    EXPECT_FALSE(s.error);
  }
  // Server side: each serve span joined the SAME trace, parented to the
  // wire span that carried its request — the golden structure the merged
  // two-process demo asserts again from the outside.
  const auto serve_create = named(spans, "serve.create");
  const auto serve_add = named(spans, "serve.add");
  const auto serve_get = named(spans, "serve.get");
  ASSERT_EQ(serve_create.size(), 1u);
  ASSERT_EQ(serve_add.size(), 1u);
  ASSERT_EQ(serve_get.size(), 1u);
  EXPECT_EQ(serve_create[0].parent_span_id, wire_create[0].span_id);
  std::unordered_set<std::uint64_t> call_ids{wire_calls[0].span_id,
                                             wire_calls[1].span_id};
  EXPECT_TRUE(call_ids.count(serve_add[0].parent_span_id));
  EXPECT_TRUE(call_ids.count(serve_get[0].parent_span_id));
  EXPECT_NE(serve_add[0].parent_span_id, serve_get[0].parent_span_id);
  for (const auto& s : {serve_create[0], serve_add[0], serve_get[0]})
    EXPECT_EQ(s.trace_id, root.context().trace_id);
  expect_consistent(spans, root.context());
}

TEST(TcpTrace, TracingOffSendsLegacyFramesAndRecordsNothing) {
  APAR_REQUIRE_LOOPBACK();
  ASSERT_FALSE(obs::tracing_enabled());
  (void)obs::Tracer::global()->take_events();
  TcpRig rig;
  auto& mw = *rig.middleware;
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 1LL));
  mw.invoke(handle, "add", as::encode(mw.wire_format(), 2LL));
  // Untraced peers interoperate because nothing was added to the frames:
  // the calls above just worked, and no span was recorded anywhere.
  EXPECT_EQ(obs::Tracer::global()->size(), 0u);
}

TEST(TcpTrace, TelemetryOpReturnsMetricsJson) {
  APAR_REQUIRE_LOOPBACK();
  TcpRig rig;
  auto& mw = *rig.middleware;
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 1LL));
  mw.invoke(handle, "get", as::encode(mw.wire_format()));

  const std::string plain = mw.telemetry(0);
  EXPECT_NE(plain.find("\"node\":\""), std::string::npos) << plain;
  EXPECT_NE(plain.find("\"pid\":"), std::string::npos);
  EXPECT_NE(plain.find("\"uptime_us\":"), std::string::npos);
  EXPECT_NE(plain.find("\"server\":{\"accepted\":"), std::string::npos);
  EXPECT_NE(plain.find("\"metrics\":{"), std::string::npos);
  EXPECT_EQ(plain.find("\"trace\""), std::string::npos);  // not asked for

  const std::string with_trace = mw.telemetry(0, /*include_trace=*/true);
  EXPECT_NE(with_trace.find("\"trace\":{\"tag\":\""), std::string::npos);
  EXPECT_NE(with_trace.find("\"dropped\":"), std::string::npos);
  EXPECT_NE(with_trace.find("\"events\":["), std::string::npos);
}

TEST(TcpTrace, TelemetryFlushDrainsTheTraceBuffer) {
  APAR_REQUIRE_LOOPBACK();
  TracingOn tracing;
  TcpRig rig;
  auto& mw = *rig.middleware;
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 1LL));
  mw.invoke(handle, "add", as::encode(mw.wire_format(), 1LL));

  const std::string first =
      mw.telemetry(0, /*include_trace=*/true, /*flush_trace=*/true);
  EXPECT_NE(first.find("serve.add"), std::string::npos) << first;
  const std::string second =
      mw.telemetry(0, /*include_trace=*/true, /*flush_trace=*/true);
  // The first flush drained serve.add; it must not be reported twice.
  EXPECT_EQ(second.find("serve.add"), std::string::npos) << second;
}

TEST(TcpTrace, ChaosDroppedFrameLeavesNoOpenSpans) {
  APAR_REQUIRE_LOOPBACK();
  TracingOn tracing;
  net::TcpServer::Options sopts;
  sopts.chaos_drop_frames = 1;  // "lose" the first request entirely
  TcpRig rig(as::Format::kCompact, sopts);
  auto& mw = *rig.middleware;

  obs::SpanScope root;
  EXPECT_THROW(mw.create(0, "Counter", as::encode(mw.wire_format(), 1LL)),
               net::NetError);
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 1LL));
  mw.invoke(handle, "add", as::encode(mw.wire_format(), 1LL));

  EXPECT_EQ(obs::Tracer::global()->open_spans(), 0u);
  const auto spans = drain_spans();
  const auto creates = named(spans, "net.create");
  ASSERT_EQ(creates.size(), 2u);
  // The dropped exchange closed its wire span WITH the error flag — the
  // trace tells the truth about the lost request instead of leaking it.
  EXPECT_TRUE(creates[0].error != creates[1].error);
  expect_consistent(spans, root.context());
}

TEST(TcpTrace, KillAndRestartLeavesNoOpenSpans) {
  APAR_REQUIRE_LOOPBACK();
  TracingOn tracing;
  ac::rpc::Registry registry;
  apar::test::register_counter(registry);
  auto server = std::make_unique<net::TcpServer>(registry);
  const std::uint16_t port = server->port();
  net::TcpMiddleware::Options mopts;
  mopts.endpoints = {{"127.0.0.1", port}};
  net::TcpMiddleware mw(mopts);

  obs::SpanScope root;
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 1LL));
  server.reset();  // kill: joins workers, so all serve spans are recorded
  EXPECT_THROW(mw.invoke(handle, "get", as::encode(mw.wire_format())),
               net::NetError);

  net::TcpServer::Options sopts;
  sopts.port = port;
  server = std::make_unique<net::TcpServer>(registry, sopts);
  server->name_server().bind("PS1", {0, 11});
  const auto resolved = mw.lookup("PS1");  // reconnects through the pool
  ASSERT_TRUE(resolved.has_value());

  EXPECT_EQ(obs::Tracer::global()->open_spans(), 0u);
  const auto spans = drain_spans();
  const auto calls = named(spans, "net.call");
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_TRUE(calls[0].error);  // the call into the dead server
  const auto lookups = named(spans, "net.lookup");
  ASSERT_GE(lookups.size(), 1u);
  EXPECT_FALSE(lookups.back().error);
  expect_consistent(spans, root.context());
}
