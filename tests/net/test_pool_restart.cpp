// ConnectionPool stale-era eviction: a server drained or restarted
// mid-burst leaves the pool full of half-open connections that still pass
// the idle_and_healthy() poll (nothing readable yet). The first failed
// exchange on a REUSED connection must evict the whole idle bucket for
// that endpoint so the next call dials the new server era immediately,
// instead of burning one io_deadline per stale socket.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "apar/net/error.hpp"
#include "apar/serial/archive.hpp"
#include "net_fixtures.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;
namespace net = apar::net;

TEST(ConnectionPoolRestart, EvictsStaleSiblingsAfterServerRestart) {
  APAR_REQUIRE_LOOPBACK();
  // A fake "old era" server: accepts connections and holds the accepted
  // ends open without ever replying, exactly like a drained process whose
  // sockets linger, or a restart the client has not noticed yet.
  auto fake = std::make_unique<net::Listener>(0);
  const std::uint16_t port = fake->port();
  const net::Endpoint ep{"127.0.0.1", port};

  std::vector<net::Socket> held;   // server ends, kept open for the test
  std::vector<net::Socket> stale;  // client ends, to be pooled
  for (int i = 0; i < 3; ++i) {
    stale.push_back(
        net::dial(ep, net::deadline_after(std::chrono::milliseconds(1000))));
    net::Socket server_end = fake->accept(std::chrono::milliseconds(1000));
    ASSERT_TRUE(server_end.valid());
    held.push_back(std::move(server_end));
  }

  net::TcpMiddleware::Options mopts;
  mopts.endpoints = {ep};
  mopts.io_deadline = std::chrono::milliseconds(300);
  net::TcpMiddleware mw(mopts);
  for (auto& s : stale) mw.pool().give_back(ep, std::move(s));
  ASSERT_EQ(mw.pool().idle_count(ep), 3u);

  // The restart: the old listener goes away and a real reactor-mode
  // server comes up on the SAME port. The held old-era sockets stay open,
  // so every pooled connection still looks healthy to the poll validator.
  fake->close();
  ac::rpc::Registry registry;
  apar::test::register_counter(registry);
  net::TcpServer::Options sopts;
  sopts.port = port;
  sopts.mode = net::TcpServer::Mode::kReactor;
  net::TcpServer server(registry, sopts);

  // First call rides a stale connection: the dead era never answers and
  // the io deadline expires...
  EXPECT_THROW(mw.create(0, "Counter", as::encode(mw.wire_format(), 0LL)),
               net::NetError);
  // ...which must evict the remaining same-era idle siblings.
  EXPECT_EQ(mw.pool().idle_count(ep), 0u);
  EXPECT_EQ(mw.pool().stats().evictions, 2u);

  // The very next call dials the new era and succeeds; without the
  // eviction it would pop another healthy-looking stale socket and time
  // out again, once per sibling.
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 5LL));
  const auto [value] = as::decode<long long>(
      mw.invoke(handle, "get", as::encode(mw.wire_format())),
      mw.wire_format());
  EXPECT_EQ(value, 5);
  EXPECT_EQ(mw.pool().stats().dials, 1u);  // exactly one fresh dial
}
