// Concurrent clients, client/server byte parity, and composition: the
// distribution aspect, the fault-injection decorator and the hybrid
// router all run over real sockets unchanged.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "../strategies/fixtures.hpp"
#include "apar/cluster/fault_injection.hpp"
#include "apar/cluster/rpc.hpp"
#include "apar/strategies/distribution_aspect.hpp"
#include "net_fixtures.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace as = apar::serial;
namespace net = apar::net;
namespace st = apar::strategies;
using apar::test::SlowStage;
using apar::test::TcpRig;

TEST(TcpConcurrency, HammerFromManyThreadsAndByteParity) {
  APAR_REQUIRE_LOOPBACK();
  net::TcpServer::Options sopts;
  sopts.workers = 4;
  TcpRig rig(as::Format::kCompact, sopts);
  auto& mw = *rig.middleware;

  // The server is thread-per-connection with `workers` handlers, so keep
  // client threads <= workers.
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 50;
  std::vector<ac::RemoteHandle> handles;
  for (int t = 0; t < kThreads; ++t)
    handles.push_back(
        mw.create(0, "Counter", as::encode(mw.wire_format(), 0LL)));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i)
        mw.invoke(handles[t], "add", as::encode(mw.wire_format(), 1LL));
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    const auto [value] = as::decode<long long>(
        mw.invoke(handles[t], "get", as::encode(mw.wire_format())),
        mw.wire_format());
    EXPECT_EQ(value, kCallsPerThread);
  }

  // Everything the client put on the wire arrived, and vice versa —
  // headers included. This is the both-directions accounting check made
  // literal by a real transport. The server increments its counters
  // AFTER send() returns, so a client can observe a reply a beat before
  // the handler thread's fetch_add lands — give the stats a moment to
  // settle before comparing.
  const auto counters = mw.net_counters();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (rig.server->stats().bytes_out < counters.wire_bytes_received &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto server = rig.server->stats();
  EXPECT_EQ(counters.wire_bytes_sent, server.bytes_in);
  EXPECT_EQ(counters.wire_bytes_received, server.bytes_out);
  EXPECT_EQ(counters.frames_sent, server.frames_in);
  EXPECT_EQ(counters.frames_received, server.frames_out);
}

namespace {

void register_slow_stage(ac::rpc::Registry& registry) {
  registry.bind<SlowStage>("SlowStage")
      .ctor<long long, long long>()
      .method<&SlowStage::filter>("filter")
      .method<&SlowStage::process>("process")
      .method<&SlowStage::collect>("collect")
      .method<&SlowStage::take_results>("take_results");
}

}  // namespace

TEST(TcpConcurrency, DistributionAspectRunsOverSockets) {
  APAR_REQUIRE_LOOPBACK();
  ac::rpc::Registry registry;
  register_slow_stage(registry);
  net::TcpServer server(registry);

  net::TcpMiddleware::Options mopts;
  mopts.endpoints = {{"127.0.0.1", server.port()}};
  net::TcpMiddleware mw(mopts);
  net::TcpFabric fabric(mw);

  using Dist = st::DistributionAspect<SlowStage, long long, long long>;
  aop::Context ctx;
  auto dist = std::make_shared<Dist>("Distribution", fabric, mw);
  dist->distribute_method<&SlowStage::filter>()
      .distribute_method<&SlowStage::process>(/*allow_one_way=*/true)
      .distribute_method<&SlowStage::take_results>();
  ctx.attach(dist);

  auto ref = ctx.create<SlowStage>(5LL, 0LL);
  EXPECT_TRUE(ref.is_remote());
  std::vector<long long> pack{1, 2, 3};
  ctx.call<&SlowStage::process>(ref, pack);
  ctx.quiesce();
  auto results = ctx.call<&SlowStage::take_results>(ref);
  EXPECT_EQ(results, (std::vector<long long>{6, 7, 8}));

  // The object genuinely lives behind the socket, not in this process.
  EXPECT_EQ(server.dispatcher().object_count(), 1u);
  EXPECT_EQ(dist->placed(), 1u);
  // Name registration travelled the wire too (Figure 14's bind+lookup).
  EXPECT_EQ(server.name_server().size(), 1u);
  EXPECT_GE(mw.stats().lookups.load(), 1u);
}

TEST(TcpConcurrency, FaultInjectionComposesOverTcp) {
  APAR_REQUIRE_LOOPBACK();
  TcpRig rig;
  auto& tcp = *rig.middleware;

  ac::FaultInjectingMiddleware::Options fopts;
  fopts.seed = 42;
  fopts.drop_rate = 0.3;
  ac::FaultInjectingMiddleware faulty(tcp, fopts);

  const auto handle =
      faulty.create(0, "Counter", as::encode(faulty.wire_format(), 0LL));
  int delivered = 0;
  for (int i = 0; i < 30; ++i) {
    try {
      faulty.invoke(handle, "add", as::encode(faulty.wire_format(), 1LL));
      ++delivered;
    } catch (const ac::rpc::RpcError&) {
      // Injected drop — decided by the decorator, not the socket.
    }
  }
  const auto [value] = as::decode<long long>(
      faulty.invoke(handle, "get", as::encode(faulty.wire_format())),
      faulty.wire_format());
  // Dropped calls were never forwarded: server state counts exactly the
  // delivered ones.
  EXPECT_EQ(value, delivered);
  EXPECT_GT(faulty.fault_stats().dropped.load(), 0u);
  EXPECT_TRUE(faulty.wire_transport());
}

TEST(TcpConcurrency, HybridRoutesAcrossTwoTcpBackendsWithStatParity) {
  APAR_REQUIRE_LOOPBACK();
  TcpRig rig;  // shared server

  net::TcpMiddleware::Options verbose_opts;
  verbose_opts.endpoints = {{"127.0.0.1", rig.server->port()}};
  verbose_opts.format = as::Format::kVerbose;
  verbose_opts.name = "TCP-verbose";
  net::TcpMiddleware control(verbose_opts);

  net::TcpMiddleware::Options compact_opts;
  compact_opts.endpoints = {{"127.0.0.1", rig.server->port()}};
  compact_opts.format = as::Format::kCompact;
  compact_opts.name = "TCP-compact";
  net::TcpMiddleware fast(compact_opts);

  ac::HybridMiddleware hybrid(control, fast, {"add"});
  EXPECT_TRUE(hybrid.wire_transport());

  const auto handle = hybrid.create(
      0, "Counter", as::encode(hybrid.wire_format(), 0LL));
  for (int i = 0; i < 5; ++i) {
    auto& routed = hybrid.route_for("add");
    hybrid.invoke(handle, "add", as::encode(routed.wire_format(), 2LL));
  }
  const auto [value] = as::decode<long long>(
      hybrid.invoke(handle, "get", as::encode(hybrid.wire_format())),
      hybrid.wire_format());
  EXPECT_EQ(value, 10);

  // Fast-path traffic went compact, control traffic verbose.
  EXPECT_EQ(fast.stats().sync_calls.load(), 5u);
  EXPECT_EQ(control.stats().sync_calls.load(), 1u);
  EXPECT_EQ(control.stats().creates.load(), 1u);

  // Satellite check: the hybrid aggregate equals the per-backend sum on
  // EVERY field (Snapshot-based aggregation cannot drop a counter).
  const auto expected =
      control.stats().snapshot() + fast.stats().snapshot();
  EXPECT_EQ(hybrid.stats().snapshot(), expected);
}
