#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "../cluster/fixtures.hpp"
#include "apar/net/tcp_middleware.hpp"
#include "apar/net/tcp_server.hpp"

// Sandboxes without network namespaces cannot open loopback sockets; every
// socket-touching test skips there instead of failing.
#define APAR_REQUIRE_LOOPBACK()                                  \
  do {                                                           \
    if (!apar::net::loopback_available())                        \
      GTEST_SKIP() << "loopback TCP unavailable in this sandbox"; \
  } while (0)

namespace apar::test {

/// One loopback server hosting Counter plus a client middleware wired to
/// it — the standard two-ended rig for transport tests.
struct TcpRig {
  explicit TcpRig(serial::Format format = serial::Format::kCompact,
                  net::TcpServer::Options server_options = {}) {
    register_counter(registry);
    server = std::make_unique<net::TcpServer>(registry, server_options);
    net::TcpMiddleware::Options mw;
    mw.endpoints = {{"127.0.0.1", server->port()}};
    mw.format = format;
    middleware = std::make_unique<net::TcpMiddleware>(mw);
  }

  cluster::rpc::Registry registry;
  std::unique_ptr<net::TcpServer> server;
  std::unique_ptr<net::TcpMiddleware> middleware;
};

}  // namespace apar::test
