// End-to-end transport behaviour over real loopback sockets: round trips
// in both wire formats, name service, error propagation, deadlines,
// retry-after-drop and server kill/restart.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "apar/cluster/rpc.hpp"
#include "apar/net/error.hpp"
#include "net_fixtures.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;
namespace net = apar::net;
using apar::test::TcpRig;

class TcpRoundTrip : public ::testing::TestWithParam<as::Format> {};

INSTANTIATE_TEST_SUITE_P(Formats, TcpRoundTrip,
                         ::testing::Values(as::Format::kCompact,
                                           as::Format::kVerbose),
                         [](const auto& info) {
                           return info.param == as::Format::kCompact
                                      ? "compact"
                                      : "verbose";
                         });

TEST_P(TcpRoundTrip, CreateInvokeAndCopyRestore) {
  APAR_REQUIRE_LOOPBACK();
  TcpRig rig(GetParam());
  auto& mw = *rig.middleware;

  const auto handle = mw.create(0, "Counter", as::encode(GetParam(), 10LL));
  EXPECT_EQ(handle.node, 0u);
  mw.invoke(handle, "add", as::encode(GetParam(), 5LL));
  const auto reply = mw.invoke(handle, "get", as::encode(GetParam()));
  const auto [value] = as::decode<long long>(reply, GetParam());
  EXPECT_EQ(value, 15);

  // Copy-restore: the server mutates the pack and echoes it back.
  const std::vector<long long> pack{5, 6, 7};
  const auto absorbed =
      mw.invoke(handle, "absorb", as::encode(GetParam(), pack));
  const auto [restored] =
      as::decode<std::vector<long long>>(absorbed, GetParam());
  EXPECT_EQ(restored, (std::vector<long long>{0, 0, 0}));

  EXPECT_EQ(rig.server->dispatcher().object_count(), 1u);
  EXPECT_EQ(mw.stats().sync_calls.load(), 3u);
  EXPECT_GT(mw.stats().bytes_sent.load(), 0u);
  EXPECT_GT(mw.stats().bytes_received.load(), 0u);
}

TEST(TcpTransport, OneWayIsAckedAndExecuted) {
  APAR_REQUIRE_LOOPBACK();
  TcpRig rig;
  auto& mw = *rig.middleware;
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 0LL));
  mw.invoke_one_way(handle, "add", as::encode(mw.wire_format(), 42LL));
  // The ack already ordered the side effect before this sync call.
  const auto [value] = as::decode<long long>(
      mw.invoke(handle, "get", as::encode(mw.wire_format())),
      mw.wire_format());
  EXPECT_EQ(value, 42);
  EXPECT_EQ(mw.stats().one_way_calls.load(), 1u);
}

TEST(TcpTransport, BindAndLookupThroughRegistryServer) {
  APAR_REQUIRE_LOOPBACK();
  TcpRig rig;
  auto& mw = *rig.middleware;
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 1LL));
  mw.bind_name("PS1", handle);
  const auto resolved = mw.lookup("PS1");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, handle);
  EXPECT_FALSE(mw.lookup("unbound").has_value());
  EXPECT_EQ(mw.stats().lookups.load(), 2u);
}

TEST(TcpTransport, ServerSideFailureSurfacesAsRpcError) {
  APAR_REQUIRE_LOOPBACK();
  TcpRig rig;
  auto& mw = *rig.middleware;
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 0LL));
  try {
    mw.invoke(handle, "no_such_method", as::encode(mw.wire_format()));
    FAIL() << "expected RpcError";
  } catch (const ac::rpc::RpcError& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_method"),
              std::string::npos);
  }
  // Unknown object ids carry the server's dispatcher label.
  try {
    mw.invoke({0, 999}, "get", as::encode(mw.wire_format()));
    FAIL() << "expected RpcError";
  } catch (const ac::rpc::RpcError& e) {
    EXPECT_NE(std::string(e.what()).find("no object 999"), std::string::npos);
  }
  // The connection survives application errors: no reconnect happened.
  EXPECT_EQ(mw.net_counters().connects, 1u);
  EXPECT_EQ(mw.net_counters().reconnects, 0u);
}

TEST(TcpTransport, ConnectionPoolReusesOneConnection) {
  APAR_REQUIRE_LOOPBACK();
  TcpRig rig;
  auto& mw = *rig.middleware;
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 0LL));
  for (int i = 0; i < 10; ++i)
    mw.invoke(handle, "add", as::encode(mw.wire_format(), 1LL));
  EXPECT_EQ(mw.net_counters().connects, 1u);
  EXPECT_EQ(mw.pool().stats().reuses, 10u);
}

TEST(TcpTransport, StalledServerHitsClientDeadlineNotAHang) {
  APAR_REQUIRE_LOOPBACK();
  net::TcpServer::Options sopts;
  sopts.chaos_stall_frames = 1;
  sopts.chaos_stall_ms = std::chrono::milliseconds(2000);
  TcpRig rig(as::Format::kCompact, sopts);

  net::TcpMiddleware::Options mopts;
  mopts.endpoints = {{"127.0.0.1", rig.server->port()}};
  mopts.io_deadline = std::chrono::milliseconds(150);
  net::TcpMiddleware fast_deadline(mopts);

  const auto started = std::chrono::steady_clock::now();
  try {
    fast_deadline.create(0, "Counter",
                         as::encode(mopts.format, 0LL));
    FAIL() << "expected NetError{kTimeout}";
  } catch (const net::NetError& e) {
    EXPECT_EQ(e.kind(), net::NetError::Kind::kTimeout);
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  // The deadline bounded the wait: well under the server's 2s stall.
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));
}

TEST(TcpTransport, LookupRetriesThroughDroppedReplies) {
  APAR_REQUIRE_LOOPBACK();
  net::TcpServer::Options sopts;
  sopts.chaos_drop_frames = 2;  // server eats the first two requests
  TcpRig rig(as::Format::kCompact, sopts);
  auto& mw = *rig.middleware;

  // Looking up an unbound name still proves the retry loop: the call
  // must SUCCEED (returning nullopt) despite two lost replies.
  EXPECT_FALSE(mw.lookup("PS1").has_value());
  EXPECT_EQ(mw.net_counters().retries, 2u);
  // Each dropped reply killed a connection, so two reconnect dials.
  EXPECT_EQ(mw.net_counters().connects, 3u);
  EXPECT_EQ(mw.net_counters().reconnects, 2u);
  EXPECT_EQ(rig.server->stats().chaos_dropped, 2u);
}

TEST(TcpTransport, NonIdempotentCallsDoNotRetry) {
  APAR_REQUIRE_LOOPBACK();
  net::TcpServer::Options sopts;
  sopts.chaos_drop_frames = 1;
  TcpRig rig(as::Format::kCompact, sopts);
  auto& mw = *rig.middleware;
  // The dropped create surfaces as NetError{kClosed}: executing it twice
  // behind the caller's back could double-place an object.
  try {
    mw.create(0, "Counter", as::encode(mw.wire_format(), 0LL));
    FAIL() << "expected NetError";
  } catch (const net::NetError& e) {
    EXPECT_EQ(e.kind(), net::NetError::Kind::kClosed);
  }
  EXPECT_EQ(mw.net_counters().retries, 0u);
}

TEST(TcpTransport, KilledServerSurfacesAsNetErrorWithinDeadline) {
  APAR_REQUIRE_LOOPBACK();
  TcpRig rig;
  auto& mw = *rig.middleware;
  const auto handle =
      mw.create(0, "Counter", as::encode(mw.wire_format(), 3LL));
  rig.server->stop();

  const auto started = std::chrono::steady_clock::now();
  try {
    mw.invoke(handle, "get", as::encode(mw.wire_format()));
    FAIL() << "expected NetError";
  } catch (const net::NetError& e) {
    // kClosed when the pooled connection's death is seen mid-exchange,
    // kConnect when the pool discarded it and the redial was refused.
    EXPECT_NE(e.kind(), net::NetError::Kind::kProtocol);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - started,
            std::chrono::seconds(3));
}

TEST(TcpTransport, ReconnectsToRestartedServer) {
  APAR_REQUIRE_LOOPBACK();
  apar::cluster::rpc::Registry registry;
  apar::test::register_counter(registry);
  auto server = std::make_unique<net::TcpServer>(registry);
  const std::uint16_t port = server->port();

  net::TcpMiddleware::Options mopts;
  mopts.endpoints = {{"127.0.0.1", port}};
  net::TcpMiddleware mw(mopts);
  EXPECT_FALSE(mw.lookup("PS1").has_value());

  // Kill and restart on the same port: the pooled connection is now
  // stale. The idempotent lookup reconnects and succeeds by itself.
  server.reset();
  net::TcpServer::Options sopts;
  sopts.port = port;
  server = std::make_unique<net::TcpServer>(registry, sopts);
  server->name_server().bind("PS1", {0, 11});

  const auto resolved = mw.lookup("PS1");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->object, 11u);
  EXPECT_GE(mw.net_counters().reconnects, 1u);
}
