// Frame codec: golden byte layouts (pinned so the wire format cannot
// drift silently), rejection of corrupt/truncated headers, and envelope
// round-trips. No sockets involved.
#include <gtest/gtest.h>

#include <vector>

#include "apar/net/error.hpp"
#include "apar/net/frame.hpp"

namespace net = apar::net;
namespace serial = apar::serial;
using net::FrameHeader;

namespace {

std::vector<std::byte> bytes_of(const std::array<std::byte, 18>& a) {
  return {a.begin(), a.end()};
}

std::vector<std::byte> golden(std::initializer_list<unsigned> values) {
  std::vector<std::byte> out;
  for (unsigned v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

}  // namespace

TEST(Frame, GoldenHeaderCompact) {
  FrameHeader h;
  h.format = serial::Format::kCompact;
  h.op = FrameHeader::Op::kCall;
  h.payload_len = 0x0102;
  h.request_id = 0x1122334455667788ULL;
  // magic "AP" LE, version 1, format 0, op 2, flags 0, len LE, id LE.
  EXPECT_EQ(bytes_of(net::encode_header(h)),
            golden({0x41, 0x50, 0x01, 0x00, 0x02, 0x00,
                    0x02, 0x01, 0x00, 0x00,
                    0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11}));
}

TEST(Frame, GoldenHeaderVerbose) {
  FrameHeader h;
  h.format = serial::Format::kVerbose;
  h.op = FrameHeader::Op::kLookup;
  h.payload_len = 7;
  h.request_id = 1;
  EXPECT_EQ(bytes_of(net::encode_header(h)),
            golden({0x41, 0x50, 0x01, 0x01, 0x04, 0x00,
                    0x07, 0x00, 0x00, 0x00,
                    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}));
}

TEST(Frame, HeaderRoundTripsAllOps) {
  for (auto op : {FrameHeader::Op::kCreate, FrameHeader::Op::kCall,
                  FrameHeader::Op::kOneWay, FrameHeader::Op::kLookup,
                  FrameHeader::Op::kBind, FrameHeader::Op::kReplyOk,
                  FrameHeader::Op::kReplyError}) {
    for (auto format : {serial::Format::kCompact, serial::Format::kVerbose}) {
      FrameHeader h;
      h.format = format;
      h.op = op;
      h.payload_len = 12345;
      h.request_id = 987654321;
      const auto encoded = net::encode_header(h);
      const FrameHeader back =
          net::decode_header(encoded.data(), encoded.size());
      EXPECT_EQ(back.format, format);
      EXPECT_EQ(back.op, op);
      EXPECT_EQ(back.payload_len, h.payload_len);
      EXPECT_EQ(back.request_id, h.request_id);
    }
  }
}

TEST(Frame, RejectsTruncatedHeader) {
  const auto encoded = net::encode_header(FrameHeader{});
  try {
    net::decode_header(encoded.data(), 10);
    FAIL() << "expected NetError";
  } catch (const net::NetError& e) {
    EXPECT_EQ(e.kind(), net::NetError::Kind::kProtocol);
  }
}

TEST(Frame, RejectsCorruptMagicVersionOpFormatFlagsAndOversize) {
  const auto expect_protocol_error = [](std::array<std::byte, 18> bytes) {
    try {
      net::decode_header(bytes.data(), bytes.size());
      FAIL() << "expected NetError{kProtocol}";
    } catch (const net::NetError& e) {
      EXPECT_EQ(e.kind(), net::NetError::Kind::kProtocol);
    }
  };
  auto base = net::encode_header(FrameHeader{});

  auto bad = base;
  bad[0] = static_cast<std::byte>(0xde);  // magic
  expect_protocol_error(bad);

  bad = base;
  bad[2] = static_cast<std::byte>(99);  // version
  expect_protocol_error(bad);

  bad = base;
  bad[3] = static_cast<std::byte>(7);  // unknown format
  expect_protocol_error(bad);

  bad = base;
  bad[4] = static_cast<std::byte>(0);  // op below range
  expect_protocol_error(bad);

  bad = base;
  bad[5] = static_cast<std::byte>(0x02);  // reserved flags (bit 0 is taken)
  expect_protocol_error(bad);

  FrameHeader big;
  big.payload_len = FrameHeader::kMaxPayload + 1;
  expect_protocol_error(net::encode_header(big));
}

// The trace-context flag is PART of the wire format now: a flagged call
// frame must keep this exact layout (legacy header + flags bit 0 + the
// 16-byte id trailer as the LAST payload bytes) or traced and untraced
// builds stop interoperating.
TEST(Frame, GoldenHeaderWithTraceFlag) {
  FrameHeader h;
  h.format = serial::Format::kCompact;
  h.op = FrameHeader::Op::kCall;
  h.flags = FrameHeader::kFlagTraceContext;
  h.payload_len = 0x0102 + FrameHeader::kTraceContextSize;
  h.request_id = 0x1122334455667788ULL;
  EXPECT_EQ(bytes_of(net::encode_header(h)),
            golden({0x41, 0x50, 0x01, 0x00, 0x02, 0x01,
                    0x12, 0x01, 0x00, 0x00,
                    0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11}));
  const FrameHeader back = net::decode_header(net::encode_header(h).data(),
                                              FrameHeader::kSize);
  EXPECT_EQ(back.flags, FrameHeader::kFlagTraceContext);
}

TEST(Frame, GoldenTraceTrailer) {
  std::vector<std::byte> payload;
  net::put_u16(payload, 0xaabb);  // pre-existing envelope content
  apar::obs::TraceContext ctx;
  ctx.trace_id = 0x0102030405060708ULL;
  ctx.span_id = 0x1112131415161718ULL;
  net::append_trace_context(payload, ctx);
  EXPECT_EQ(payload,
            golden({0xbb, 0xaa,
                    0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
                    0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11}));

  const auto back = net::read_trace_context(payload.data(), payload.size());
  EXPECT_EQ(back.trace_id, ctx.trace_id);
  EXPECT_EQ(back.span_id, ctx.span_id);
  EXPECT_EQ(back.parent_span_id, 0u);  // the wire ships 16 bytes, not 24
}

TEST(Frame, TraceTrailerRejectsShortPayload) {
  std::vector<std::byte> payload;
  net::put_u64(payload, 1);  // 8 bytes: too short for a 16-byte trailer
  try {
    (void)net::read_trace_context(payload.data(), payload.size());
    FAIL() << "expected NetError";
  } catch (const net::NetError& e) {
    EXPECT_EQ(e.kind(), net::NetError::Kind::kProtocol);
  }
}

// An UNflagged frame is byte-identical to the pre-trace wire format —
// the golden headers above prove it (flags byte 0, no trailer). A legacy
// peer that never sets the flag therefore keeps working unchanged; this
// pins the inverse: decoding a legacy header yields flags == 0.
TEST(Frame, LegacyFramesCarryNoTraceContext) {
  FrameHeader h;
  h.op = FrameHeader::Op::kCall;
  const auto encoded = net::encode_header(h);
  const FrameHeader back = net::decode_header(encoded.data(), encoded.size());
  EXPECT_EQ(back.flags, 0);
  EXPECT_FALSE(back.flags & FrameHeader::kFlagTraceContext);
}

TEST(Frame, HeaderRoundTripsTelemetryOp) {
  FrameHeader h;
  h.op = FrameHeader::Op::kTelemetry;
  const auto encoded = net::encode_header(h);
  EXPECT_EQ(net::decode_header(encoded.data(), encoded.size()).op,
            FrameHeader::Op::kTelemetry);
  EXPECT_EQ(net::op_name(FrameHeader::Op::kTelemetry), "telemetry");
}

TEST(Frame, EnvelopeRoundTrip) {
  std::vector<std::byte> buf;
  net::put_u64(buf, 0xdeadbeefcafef00dULL);
  net::put_string(buf, "PrimeFilter.filter");
  net::put_u32(buf, 42);
  net::put_u16(buf, 7);

  net::EnvelopeReader env(buf);
  EXPECT_EQ(env.u64(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(env.string(), "PrimeFilter.filter");
  EXPECT_EQ(env.u32(), 42u);
  EXPECT_EQ(env.u16(), 7u);
  EXPECT_EQ(env.rest_size(), 0u);
}

TEST(Frame, EnvelopeRejectsTruncation) {
  std::vector<std::byte> buf;
  net::put_string(buf, "abc");
  buf.pop_back();  // cut the last string byte
  net::EnvelopeReader env(buf);
  try {
    (void)env.string();
    FAIL() << "expected NetError";
  } catch (const net::NetError& e) {
    EXPECT_EQ(e.kind(), net::NetError::Kind::kProtocol);
  }
}

TEST(Frame, EnvelopeExposesArgumentTail) {
  std::vector<std::byte> buf;
  net::put_u64(buf, 5);
  net::put_string(buf, "m");
  const auto args = serial::encode(serial::Format::kCompact, 123LL);
  buf.insert(buf.end(), args.begin(), args.end());

  net::EnvelopeReader env(buf);
  (void)env.u64();
  (void)env.string();
  serial::Reader reader(env.rest_data(), env.rest_size(),
                        serial::Format::kCompact);
  long long v = 0;
  reader.value(v);
  EXPECT_EQ(v, 123);
}
