// Frame codec: golden byte layouts (pinned so the wire format cannot
// drift silently), rejection of corrupt/truncated headers, and envelope
// round-trips. No sockets involved.
#include <gtest/gtest.h>

#include <vector>

#include "apar/net/error.hpp"
#include "apar/net/frame.hpp"

namespace net = apar::net;
namespace serial = apar::serial;
using net::FrameHeader;

namespace {

std::vector<std::byte> bytes_of(const std::array<std::byte, 18>& a) {
  return {a.begin(), a.end()};
}

std::vector<std::byte> golden(std::initializer_list<unsigned> values) {
  std::vector<std::byte> out;
  for (unsigned v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

}  // namespace

TEST(Frame, GoldenHeaderCompact) {
  FrameHeader h;
  h.format = serial::Format::kCompact;
  h.op = FrameHeader::Op::kCall;
  h.payload_len = 0x0102;
  h.request_id = 0x1122334455667788ULL;
  // magic "AP" LE, version 1, format 0, op 2, flags 0, len LE, id LE.
  EXPECT_EQ(bytes_of(net::encode_header(h)),
            golden({0x41, 0x50, 0x01, 0x00, 0x02, 0x00,
                    0x02, 0x01, 0x00, 0x00,
                    0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11}));
}

TEST(Frame, GoldenHeaderVerbose) {
  FrameHeader h;
  h.format = serial::Format::kVerbose;
  h.op = FrameHeader::Op::kLookup;
  h.payload_len = 7;
  h.request_id = 1;
  EXPECT_EQ(bytes_of(net::encode_header(h)),
            golden({0x41, 0x50, 0x01, 0x01, 0x04, 0x00,
                    0x07, 0x00, 0x00, 0x00,
                    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}));
}

TEST(Frame, HeaderRoundTripsAllOps) {
  for (auto op : {FrameHeader::Op::kCreate, FrameHeader::Op::kCall,
                  FrameHeader::Op::kOneWay, FrameHeader::Op::kLookup,
                  FrameHeader::Op::kBind, FrameHeader::Op::kReplyOk,
                  FrameHeader::Op::kReplyError}) {
    for (auto format : {serial::Format::kCompact, serial::Format::kVerbose}) {
      FrameHeader h;
      h.format = format;
      h.op = op;
      h.payload_len = 12345;
      h.request_id = 987654321;
      const auto encoded = net::encode_header(h);
      const FrameHeader back =
          net::decode_header(encoded.data(), encoded.size());
      EXPECT_EQ(back.format, format);
      EXPECT_EQ(back.op, op);
      EXPECT_EQ(back.payload_len, h.payload_len);
      EXPECT_EQ(back.request_id, h.request_id);
    }
  }
}

TEST(Frame, RejectsTruncatedHeader) {
  const auto encoded = net::encode_header(FrameHeader{});
  try {
    net::decode_header(encoded.data(), 10);
    FAIL() << "expected NetError";
  } catch (const net::NetError& e) {
    EXPECT_EQ(e.kind(), net::NetError::Kind::kProtocol);
  }
}

TEST(Frame, RejectsCorruptMagicVersionOpFormatFlagsAndOversize) {
  const auto expect_protocol_error = [](std::array<std::byte, 18> bytes) {
    try {
      net::decode_header(bytes.data(), bytes.size());
      FAIL() << "expected NetError{kProtocol}";
    } catch (const net::NetError& e) {
      EXPECT_EQ(e.kind(), net::NetError::Kind::kProtocol);
    }
  };
  auto base = net::encode_header(FrameHeader{});

  auto bad = base;
  bad[0] = static_cast<std::byte>(0xde);  // magic
  expect_protocol_error(bad);

  bad = base;
  bad[2] = static_cast<std::byte>(99);  // version
  expect_protocol_error(bad);

  bad = base;
  bad[3] = static_cast<std::byte>(7);  // unknown format
  expect_protocol_error(bad);

  bad = base;
  bad[4] = static_cast<std::byte>(0);  // op below range
  expect_protocol_error(bad);

  bad = base;
  bad[5] = static_cast<std::byte>(1);  // reserved flags
  expect_protocol_error(bad);

  FrameHeader big;
  big.payload_len = FrameHeader::kMaxPayload + 1;
  expect_protocol_error(net::encode_header(big));
}

TEST(Frame, EnvelopeRoundTrip) {
  std::vector<std::byte> buf;
  net::put_u64(buf, 0xdeadbeefcafef00dULL);
  net::put_string(buf, "PrimeFilter.filter");
  net::put_u32(buf, 42);
  net::put_u16(buf, 7);

  net::EnvelopeReader env(buf);
  EXPECT_EQ(env.u64(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(env.string(), "PrimeFilter.filter");
  EXPECT_EQ(env.u32(), 42u);
  EXPECT_EQ(env.u16(), 7u);
  EXPECT_EQ(env.rest_size(), 0u);
}

TEST(Frame, EnvelopeRejectsTruncation) {
  std::vector<std::byte> buf;
  net::put_string(buf, "abc");
  buf.pop_back();  // cut the last string byte
  net::EnvelopeReader env(buf);
  try {
    (void)env.string();
    FAIL() << "expected NetError";
  } catch (const net::NetError& e) {
    EXPECT_EQ(e.kind(), net::NetError::Kind::kProtocol);
  }
}

TEST(Frame, EnvelopeExposesArgumentTail) {
  std::vector<std::byte> buf;
  net::put_u64(buf, 5);
  net::put_string(buf, "m");
  const auto args = serial::encode(serial::Format::kCompact, 123LL);
  buf.insert(buf.end(), args.begin(), args.end());

  net::EnvelopeReader env(buf);
  (void)env.u64();
  (void)env.string();
  serial::Reader reader(env.rest_data(), env.rest_size(),
                        serial::Format::kCompact);
  long long v = 0;
  reader.value(v);
  EXPECT_EQ(v, 123);
}
