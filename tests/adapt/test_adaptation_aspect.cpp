// AdaptationAspect: the autonomic concern as a pluggable aspect — plug it
// and the control loop runs; unplug it and the loop stops with zero
// residue on the call path. Its advice is a pass-through whose value is
// the analysis metadata (mark_adapts + mark_online_resizable), and its
// knobs actuate real substrate: a workers knob wired to
// ThreadPool::resize moves live workers.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "../aop/fixtures.hpp"
#include "apar/adapt/adaptation_aspect.hpp"
#include "apar/concurrency/thread_pool.hpp"

namespace adapt = apar::adapt;
namespace aop = apar::aop;
using apar::test::Worker;

namespace {

TEST(AdaptationAspect, PlugStartsAndUnplugStopsTheControlLoop) {
  aop::Context ctx;
  auto tuner = std::make_shared<adapt::AdaptationAspect<Worker>>();
  tuner->adapt_method<&Worker::process>({"workers"});
  EXPECT_FALSE(tuner->controller().running());
  ctx.attach(tuner);
  EXPECT_TRUE(tuner->controller().running());
  ctx.detach(tuner->name());
  EXPECT_FALSE(tuner->controller().running());
}

TEST(AdaptationAspect, AdviceIsPassThroughAndCarriesTheMarks) {
  aop::Context ctx;
  auto tuner = std::make_shared<adapt::AdaptationAspect<Worker>>();
  tuner->adapt_method<&Worker::process>({"workers", "grain"});
  ctx.attach(tuner);

  // Functionally invisible: the advised call behaves exactly as unwoven.
  auto w = ctx.create<Worker>(3);
  std::vector<int> pack{1, 2, 3};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(pack, (std::vector<int>{4, 5, 6}));

  // The analyzer-facing self-description.
  ASSERT_EQ(tuner->advice().size(), 1u);
  const aop::AdviceBase& advice = *tuner->advice()[0];
  EXPECT_TRUE(advice.adapts());
  EXPECT_EQ(advice.adapt_knobs(),
            (std::vector<std::string>{"workers", "grain"}));
  EXPECT_TRUE(advice.spawns_concurrency());
  EXPECT_TRUE(advice.online_resizable());

  ctx.detach(tuner->name());
  // Zero residue: the call path is back to the unwoven one.
  std::vector<int> again{0};
  ctx.call<&Worker::process>(w, again);
  EXPECT_EQ(again, (std::vector<int>{3}));
}

TEST(AdaptationAspect, WorkersKnobActuatesALivePool) {
  apar::concurrency::ThreadPool pool(2, 4);
  auto tuner = std::make_shared<adapt::AdaptationAspect<Worker>>();
  tuner->adapt_method<&Worker::process>({"workers"});
  tuner->controller().set_workers_knob(adapt::Knob(
      "workers", 1, static_cast<std::int64_t>(pool.max_size()),
      static_cast<std::int64_t>(pool.size()),
      [&pool](std::int64_t v) {
        pool.resize(static_cast<std::size_t>(v));
      }));

  // Drive the decision logic directly (deterministic): pressure grows the
  // live pool by one worker.
  adapt::Signals s;
  s.valid = true;
  s.interval_s = 0.2;
  s.throughput = 100.0;
  s.queue_wait_p95_us = 5000.0;
  auto d = tuner->controller().tick(s);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], adapt::Decision::kGrowWorkers);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.resizes(), 1u);

  // And the pool still runs work after the actuation.
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) pool.post([&ran] { ++ran; });
  pool.drain();
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
