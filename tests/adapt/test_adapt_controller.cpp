// AdaptationController decision logic, driven with synthetic Signals —
// tick() touches no clock and no registry, so every damping mechanism is
// testable deterministically: additive increase, threshold-gated decrease
// (patience + exploratory probe), cooldown windows, and the hill-climb
// verification that reverts an actuation which did not pay and locks out
// that direction.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apar/adapt/controller.hpp"
#include "apar/obs/metrics.hpp"

namespace adapt = apar::adapt;
namespace obs = apar::obs;
using adapt::Decision;

namespace {

adapt::Signals busy(double queue_wait_us, double throughput) {
  adapt::Signals s;
  s.valid = true;
  s.interval_s = 0.2;
  s.throughput = throughput;
  s.queue_wait_p95_us = queue_wait_us;
  s.run_mean_us = 100.0;
  return s;
}

/// Controller over a private registry with a workers knob wired to a
/// recording actuator.
struct Rig {
  obs::MetricsRegistry registry;
  adapt::AdaptationController controller;
  std::vector<std::int64_t> applied;

  explicit Rig(adapt::AdaptationController::Config cfg = {})
      : controller(cfg, registry) {
    controller.set_workers_knob(adapt::Knob(
        "workers", 1, 4, 2, [this](std::int64_t v) { applied.push_back(v); }));
  }
};

TEST(AdaptController, InvalidSignalsHold) {
  Rig rig;
  adapt::Signals s;  // valid = false
  EXPECT_TRUE(rig.controller.tick(s).empty());
  EXPECT_EQ(rig.controller.ticks(), 1u);
  EXPECT_EQ(rig.controller.decisions(), 0u);
  EXPECT_TRUE(rig.applied.empty());
}

TEST(AdaptController, PressureGrowsExactlyOneWorkerThenCoolsDown) {
  Rig rig;
  auto d = rig.controller.tick(busy(/*queue_wait=*/2000, /*thpt=*/100));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kGrowWorkers);
  EXPECT_EQ(rig.controller.workers(), 3);
  EXPECT_EQ(rig.applied, (std::vector<std::int64_t>{3}));
  // Sustained pressure during the cooldown must NOT stack further grows.
  EXPECT_TRUE(rig.controller.tick(busy(2000, 100)).empty());
  EXPECT_EQ(rig.controller.workers(), 3);
  EXPECT_EQ(rig.controller.last_decision(), Decision::kGrowWorkers);
}

TEST(AdaptController, GrowThatPaysSticks) {
  adapt::AdaptationController::Config cfg;
  cfg.cooldown_ticks = 1;
  Rig rig(cfg);
  rig.controller.tick(busy(2000, 100));  // grow at baseline 100/s
  ASSERT_EQ(rig.controller.workers(), 3);
  // Cooldown expires with throughput up 50% — well past min_gain.
  auto d = rig.controller.tick(busy(2000, 150));
  for (Decision x : d) EXPECT_NE(x, Decision::kRevertGrow);
  EXPECT_EQ(rig.controller.workers(), 3);
  EXPECT_EQ(rig.controller.reverts(), 0u);
}

TEST(AdaptController, GrowThatDoesNotPayIsRevertedAndLockedOut) {
  adapt::AdaptationController::Config cfg;
  cfg.cooldown_ticks = 1;
  cfg.backoff_ticks = 3;
  Rig rig(cfg);
  rig.controller.tick(busy(2000, 100));  // grow, baseline 100/s
  ASSERT_EQ(rig.controller.workers(), 3);
  // Throughput unchanged: the extra worker did not pay. Hill-climb takes
  // it back.
  auto d = rig.controller.tick(busy(2000, 100));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kRevertGrow);
  EXPECT_EQ(rig.controller.workers(), 2);
  EXPECT_EQ(rig.controller.reverts(), 1u);
  // Growth stays locked out under continued pressure for backoff_ticks
  // (the first tick after the revert is still cooldown).
  for (int i = 0; i < 3; ++i) {
    for (Decision x : rig.controller.tick(busy(2000, 100)))
      EXPECT_NE(x, Decision::kGrowWorkers) << "tick " << i;
  }
  EXPECT_EQ(rig.controller.workers(), 2);
}

TEST(AdaptController, ShrinkNeedsConsecutiveIdleWindows) {
  adapt::AdaptationController::Config cfg;
  cfg.shrink_patience = 3;
  Rig rig(cfg);
  EXPECT_TRUE(rig.controller.tick(busy(/*idle*/ 10, 100)).empty());
  EXPECT_TRUE(rig.controller.tick(busy(10, 100)).empty());
  // One noisy non-idle window resets the streak.
  EXPECT_TRUE(rig.controller.tick(busy(200, 100)).empty());
  EXPECT_TRUE(rig.controller.tick(busy(10, 100)).empty());
  EXPECT_TRUE(rig.controller.tick(busy(10, 100)).empty());
  auto d = rig.controller.tick(busy(10, 100));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kShrinkWorkers);
  EXPECT_EQ(rig.controller.workers(), 1);
}

TEST(AdaptController, ProbeShrinkAfterStableStretchRevertsOnLoss) {
  adapt::AdaptationController::Config cfg;
  cfg.cooldown_ticks = 1;
  cfg.probe_ticks = 4;
  Rig rig(cfg);
  // Saturated-host shape: queue waits in the middle band (never idle, not
  // pressured) — after probe_ticks stable windows the controller tries a
  // worker fewer anyway.
  std::vector<Decision> d;
  for (int i = 0; i < 6 && d.empty(); ++i)
    d = rig.controller.tick(busy(/*mid-band*/ 200, 100));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kShrinkWorkers);
  ASSERT_EQ(rig.controller.workers(), 1);
  // The probe cost 20% throughput (> max_loss): verification restores it.
  d = rig.controller.tick(busy(200, 80));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kRevertShrink);
  EXPECT_EQ(rig.controller.workers(), 2);
  EXPECT_EQ(rig.controller.reverts(), 1u);
}

TEST(AdaptController, GrainBandsCoarsenAndRefineMultiplicatively) {
  adapt::AdaptationController::Config cfg;
  cfg.cooldown_ticks = 0;
  obs::MetricsRegistry registry;
  adapt::AdaptationController c(cfg, registry);
  c.set_grain_knob(adapt::Knob("grain", 1, 64, 8, [](std::int64_t) {}));

  adapt::Signals s = busy(200, 100);
  s.run_mean_us = 5.0;  // envelope-dominated: coarsen
  auto d = c.tick(s);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kGrainCoarsen);
  EXPECT_EQ(c.grain(), 16);

  s.run_mean_us = 5000.0;  // tail-heavy: refine
  d = c.tick(s);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kGrainRefine);
  EXPECT_EQ(c.grain(), 8);

  s.run_mean_us = 500.0;  // inside the band: hold
  EXPECT_TRUE(c.tick(s).empty());
  EXPECT_EQ(c.grain(), 8);
}

TEST(AdaptController, FeederDepthFollowsQueueWaitBands) {
  adapt::AdaptationController::Config cfg;
  cfg.cooldown_ticks = 0;
  obs::MetricsRegistry registry;
  adapt::AdaptationController c(cfg, registry);
  c.set_feeder_knob(adapt::Knob("feeder", 1, 16, 2, [](std::int64_t) {}));

  auto d = c.tick(busy(/*deep*/ 1000, 100));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kFeederDeepen);
  EXPECT_EQ(c.feeder_depth(), 4);
  d = c.tick(busy(/*shallow*/ 10, 100));
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kFeederShallow);
  EXPECT_EQ(c.feeder_depth(), 2);
}

TEST(AdaptController, RoutingHysteresisNeverFlapsInsideTheBand) {
  adapt::AdaptationController::Config cfg;
  cfg.cooldown_ticks = 0;
  obs::MetricsRegistry registry;
  adapt::AdaptationController c(cfg, registry);
  c.set_routing_knob(adapt::Knob("routing", 0, 1, 0, [](std::int64_t) {}));

  adapt::Signals s = busy(200, 100);
  s.rtt_p95_us = 5000.0;  // above promote threshold
  auto d = c.tick(s);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kPromoteFast);
  EXPECT_EQ(c.routing(), 1);
  // Anywhere inside [demote, promote) holds the plane steady.
  s.rtt_p95_us = 1000.0;
  EXPECT_TRUE(c.tick(s).empty());
  EXPECT_EQ(c.routing(), 1);
  s.rtt_p95_us = 100.0;  // below demote
  d = c.tick(s);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], Decision::kDemoteFast);
  EXPECT_EQ(c.routing(), 0);
  // No RTT signal at all (no net phase): hold.
  s.rtt_p95_us = 0.0;
  EXPECT_TRUE(c.tick(s).empty());
}

TEST(AdaptController, UnwiredKnobsNeverDecide) {
  obs::MetricsRegistry registry;
  adapt::AdaptationController c(adapt::AdaptationController::Config{},
                                registry);
  adapt::Signals s = busy(100'000, 100);
  s.run_mean_us = 1.0;
  s.rtt_p95_us = 100'000.0;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(c.tick(s).empty());
  EXPECT_EQ(c.decisions(), 0u);
}

TEST(AdaptController, PublishesAdaptGauges) {
  obs::MetricsRegistry registry;
  adapt::AdaptationController c(adapt::AdaptationController::Config{},
                                registry);
  c.set_workers_knob(adapt::Knob("workers", 1, 4, 2, [](std::int64_t) {}));
  c.tick(busy(2000, 100));
  EXPECT_EQ(registry.gauge("adapt.workers")->value(), 3);
  EXPECT_EQ(registry.gauge("adapt.last_decision")->value(),
            static_cast<int>(Decision::kGrowWorkers));
  EXPECT_EQ(registry.counter("adapt.ticks")->value(), 1u);
  EXPECT_EQ(registry.counter("adapt.decisions")->value(), 1u);
}

TEST(AdaptController, DecisionNamesAreStable) {
  EXPECT_EQ(adapt::decision_name(Decision::kNone), "none");
  EXPECT_EQ(adapt::decision_name(Decision::kGrowWorkers), "grow-workers");
  EXPECT_EQ(adapt::decision_name(Decision::kRevertShrink), "revert-shrink");
  EXPECT_EQ(adapt::decision_name(Decision::kPromoteFast), "promote-fast");
}

}  // namespace
