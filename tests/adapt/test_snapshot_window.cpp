// SnapshotWindow: windowed registry deltas — counter rates, current gauge
// levels, and histogram percentiles reconstructed from cumulative bucket
// diffs. The controller's whole view of the world goes through this class,
// so the isolation property (samples from BEFORE the window never leak
// into its percentiles) is what keeps adaptation reactive after hours of
// accumulated history.
#include <gtest/gtest.h>

#include <thread>

#include "apar/obs/metrics.hpp"
#include "apar/obs/snapshot_window.hpp"

namespace obs = apar::obs;

namespace {

TEST(SnapshotWindow, NotReadyUntilTwoCaptures) {
  obs::MetricsRegistry registry;
  auto c = registry.counter("w.count");
  c->add(5);
  obs::SnapshotWindow window;
  EXPECT_FALSE(window.ready());
  EXPECT_EQ(window.counter_delta("w.count"), 0u);
  EXPECT_EQ(window.seconds(), 0.0);
  window.advance(registry);
  EXPECT_FALSE(window.ready());  // primed, but no delta yet
  window.advance(registry);
  EXPECT_TRUE(window.ready());
  EXPECT_EQ(window.counter_delta("w.count"), 0u);  // nothing in-window
}

TEST(SnapshotWindow, CounterDeltaSeesOnlyTheWindow) {
  obs::MetricsRegistry registry;
  auto c = registry.counter("w.count");
  c->add(1000);  // pre-window history
  obs::SnapshotWindow window;
  window.advance(registry);
  c->add(42);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  window.advance(registry);
  EXPECT_EQ(window.counter_delta("w.count"), 42u);
  EXPECT_GT(window.seconds(), 0.0);
  EXPECT_GT(window.counter_rate("w.count"), 0.0);
  // Next window starts empty again.
  window.advance(registry);
  EXPECT_EQ(window.counter_delta("w.count"), 0u);
  // Absent names are zero, not an error.
  EXPECT_EQ(window.counter_delta("w.never"), 0u);
  EXPECT_EQ(window.counter_rate("w.never"), 0.0);
}

TEST(SnapshotWindow, GaugeReportsLatestLevel) {
  obs::MetricsRegistry registry;
  auto g = registry.gauge("w.level");
  obs::SnapshotWindow window;
  window.advance(registry);
  g->set(7);
  window.advance(registry);
  ASSERT_TRUE(window.gauge_value("w.level").has_value());
  EXPECT_EQ(*window.gauge_value("w.level"), 7);
  EXPECT_FALSE(window.gauge_value("w.absent").has_value());
}

TEST(SnapshotWindow, HistogramPercentilesComeFromTheWindowOnly) {
  obs::MetricsRegistry registry;
  auto h = registry.histogram("w.lat_us");
  // Heavy pre-window history in a LOW bucket: if the window leaked
  // cumulative state, p95 below would be dragged toward these.
  for (int i = 0; i < 10'000; ++i) h->record(5.0);

  obs::SnapshotWindow window;
  window.advance(registry);
  for (int i = 0; i < 100; ++i) h->record(900.0);
  window.advance(registry);

  const obs::HistogramWindow w = window.histogram_window("w.lat_us");
  EXPECT_EQ(w.count, 100u);
  EXPECT_NEAR(w.sum, 100 * 900.0, 1.0);
  EXPECT_NEAR(w.mean, 900.0, 1.0);
  // All in-window samples sit in one bucket well above the pre-window
  // noise; interpolated percentiles must land in that bucket, not at 5us.
  EXPECT_GT(w.p50, 100.0);
  EXPECT_GT(w.p95, 100.0);
  EXPECT_GE(w.p99, w.p50);
}

TEST(SnapshotWindow, EmptyHistogramWindowIsZero) {
  obs::MetricsRegistry registry;
  auto h = registry.histogram("w.lat_us");
  h->record(50.0);  // history only
  obs::SnapshotWindow window;
  window.advance(registry);
  window.advance(registry);
  const obs::HistogramWindow w = window.histogram_window("w.lat_us");
  EXPECT_EQ(w.count, 0u);
  EXPECT_EQ(w.mean, 0.0);
  EXPECT_EQ(w.p95, 0.0);
  // Absent histograms behave the same.
  EXPECT_EQ(window.histogram_window("w.absent").count, 0u);
}

}  // namespace
