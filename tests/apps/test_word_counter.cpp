// WordCounter: Stage<std::string> — the same partition aspects as the
// sieve, but with strings (and maps of strings) crossing the simulated
// wire. Exercises the serialization substrate's non-arithmetic paths
// end-to-end.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "apar/apps/word_counter.hpp"
#include "apar/cluster/middleware.hpp"
#include "apar/common/rng.hpp"
#include "apar/strategies/strategies.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace st = apar::strategies;
using apar::apps::WordCounter;
namespace wc = apar::apps::wc;

namespace {

std::vector<std::string> corpus(std::size_t n, std::uint64_t seed) {
  static const std::vector<std::string> base{
      "The",   "quick,", "Brown", "fox!",  "jumps", "over", "the",
      "LAZY",  "dog.",   "a",     "it",    "Prime", "sieve", "ASPECT",
      "weave", "par;",   "of",    "and",   "Farm",  "pipeline"};
  apar::common::Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(base[rng.uniform(0, base.size() - 1)]);
  return out;
}

std::map<std::string, long long> sequential_counts(
    const std::vector<std::string>& text) {
  WordCounter all(wc::kAll);
  auto data = text;
  all.process(data);
  return all.counts();
}

void register_word_counter(ac::rpc::Registry& registry) {
  registry.bind<WordCounter>("WordCounter")
      .ctor<long long, double>()
      .method<&WordCounter::filter>("filter")
      .method<&WordCounter::process>("process")
      .method<&WordCounter::collect>("collect")
      .method<&WordCounter::take_results>("take_results")
      .method<&WordCounter::counts>("counts");
}

}  // namespace

TEST(WordCounter, NormalisationStepsComposeInOrder) {
  WordCounter lower(wc::kLowercase), strip(wc::kStripPunct),
      drop(wc::kDropShort), all(wc::kAll);
  std::vector<std::string> staged{"Quick,", "A", "fox!"};
  auto direct = staged;
  lower.filter(staged);
  strip.filter(staged);
  drop.filter(staged);
  all.filter(direct);
  EXPECT_EQ(staged, direct);
  EXPECT_EQ(direct, (std::vector<std::string>{"quick", "fox"}));
}

TEST(WordCounter, CountsAccumulate) {
  WordCounter counter(wc::kAll);
  std::vector<std::string> a{"Dog", "dog.", "CAT"};
  counter.process(a);
  std::vector<std::string> b{"dog"};
  counter.process(b);
  const auto counts = counter.counts();
  EXPECT_EQ(counts.at("dog"), 3);
  EXPECT_EQ(counts.at("cat"), 1);
  EXPECT_EQ(counter.tokens_seen(), 4u);
}

TEST(WordCounter, FarmedCountingMatchesSequential) {
  const auto text = corpus(2'000, 7);
  const auto expected = sequential_counts(text);

  aop::Context ctx;
  using Farm = st::FarmAspect<WordCounter, std::string, long long, double>;
  Farm::Options opts;
  opts.duplicates = 3;
  opts.pack_size = 64;
  auto farm = std::make_shared<Farm>(opts);
  ctx.attach(farm);
  auto conc = std::make_shared<st::ConcurrencyAspect<WordCounter>>(
      "Concurrency");
  conc->async_method<&WordCounter::process>();
  ctx.attach(conc);

  auto first = ctx.create<WordCounter>(wc::kAll, 0.0);
  auto data = text;
  ctx.call<&WordCounter::process>(first, data);
  ctx.quiesce();

  std::map<std::string, long long> merged;
  for (const auto& w : farm->workers())
    for (const auto& [token, n] : w.local()->counts()) merged[token] += n;
  EXPECT_EQ(merged, expected);
}

TEST(WordCounter, PipelinedNormalisationMatchesSequential) {
  const auto text = corpus(1'000, 9);
  const auto expected = sequential_counts(text);

  aop::Context ctx;
  using Pipe = st::PipelineAspect<WordCounter, std::string, long long, double>;
  Pipe::Options opts;
  opts.duplicates = 3;  // lowercase | strip | drop, one bit per stage
  opts.pack_size = 50;
  opts.ctor_args = [](std::size_t i, std::size_t,
                      const std::tuple<long long, double>& orig) {
    return std::make_tuple(1LL << i, std::get<1>(orig));
  };
  auto pipe = std::make_shared<Pipe>(opts);
  ctx.attach(pipe);

  auto first = ctx.create<WordCounter>(wc::kAll, 0.0);
  auto data = text;
  ctx.call<&WordCounter::process>(first, data);
  ctx.quiesce();

  // Counting happens at the pipeline exit (the last stage's collect).
  EXPECT_EQ(pipe->stages().back().local()->counts(), expected);
}

TEST(WordCounter, DistributedFarmMovesStringsOverTheWire) {
  const auto text = corpus(1'500, 11);
  const auto expected = sequential_counts(text);

  ac::Cluster cluster(ac::Cluster::Options{3, 2});
  register_word_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());

  aop::Context ctx;
  using Farm = st::FarmAspect<WordCounter, std::string, long long, double>;
  Farm::Options opts;
  opts.duplicates = 3;
  opts.pack_size = 100;
  auto farm = std::make_shared<Farm>(opts);
  ctx.attach(farm);
  auto conc = std::make_shared<st::ConcurrencyAspect<WordCounter>>(
      "Concurrency");
  conc->async_method<&WordCounter::process>();
  ctx.attach(conc);

  using Dist = st::DistributionAspect<WordCounter, long long, double>;
  auto dist = std::make_shared<Dist>("Distribution", cluster, rmi);
  dist->distribute_method<&WordCounter::process>()
      .distribute_method<&WordCounter::counts>()
      .distribute_method<&WordCounter::take_results>();
  ctx.attach(dist);

  auto first = ctx.create<WordCounter>(wc::kAll, 0.0);
  EXPECT_TRUE(first.is_remote());
  auto data = text;
  ctx.call<&WordCounter::process>(first, data);
  ctx.quiesce();

  // Merge per-worker counts fetched THROUGH the middleware: maps of
  // strings serialized back.
  std::map<std::string, long long> merged;
  for (auto& w : farm->workers()) {
    const auto counts = ctx.call<&WordCounter::counts>(w);
    for (const auto& [token, n] : counts) merged[token] += n;
  }
  EXPECT_EQ(merged, expected);
  EXPECT_GT(rmi.stats().bytes_sent.load(), 0u);
  ctx.detach("Distribution");
  ctx.quiesce();
}
