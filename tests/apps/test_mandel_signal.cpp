#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "apar/apps/mandel_worker.hpp"
#include "apar/apps/signal_stage.hpp"
#include "apar/strategies/farm_aspect.hpp"

namespace aop = apar::aop;
namespace st = apar::strategies;
using apar::apps::MandelWorker;
using apar::apps::SignalStage;
namespace sig = apar::apps::signal;

TEST(MandelWorker, DeterministicChecksum) {
  MandelWorker a(32, 16, 100), b(32, 16, 100);
  std::vector<long long> rows(16);
  std::iota(rows.begin(), rows.end(), 0);
  auto rows2 = rows;
  a.process(rows);
  b.process(rows2);
  EXPECT_EQ(a.checksum(), b.checksum());
  EXPECT_GT(a.iterations(), 0u);
}

TEST(MandelWorker, ChecksumIsOrderIndependent) {
  MandelWorker forward(32, 16, 100), backward(32, 16, 100);
  std::vector<long long> rows(16);
  std::iota(rows.begin(), rows.end(), 0);
  auto reversed = rows;
  std::reverse(reversed.begin(), reversed.end());
  forward.process(rows);
  backward.process(reversed);
  EXPECT_EQ(forward.checksum(), backward.checksum());
}

TEST(MandelWorker, MiddleRowsCostMoreThanEdgeRows) {
  MandelWorker edge(64, 64, 500), middle(64, 64, 500);
  std::vector<long long> edge_rows{0, 1};
  std::vector<long long> middle_rows{31, 32};
  edge.process(edge_rows);
  middle.process(middle_rows);
  EXPECT_GT(middle.iterations(), 2 * edge.iterations());
}

TEST(MandelWorker, OutOfRangeRowsIgnored) {
  MandelWorker w(16, 16, 50);
  std::vector<long long> rows{-1, 100};
  w.process(rows);
  EXPECT_EQ(w.iterations(), 0u);
}

TEST(MandelWorker, FarmedRenderingMatchesSequentialChecksum) {
  // The farm splits rows across workers; the combined per-pixel checksum
  // must equal the single-worker render.
  MandelWorker reference(48, 24, 200);
  std::vector<long long> all_rows(24);
  std::iota(all_rows.begin(), all_rows.end(), 0);
  auto ref_rows = all_rows;
  reference.process(ref_rows);

  aop::Context ctx;
  using Farm = st::FarmAspect<MandelWorker, long long, long long, long long,
                              long long, double>;
  Farm::Options opts;
  opts.duplicates = 3;
  opts.pack_size = 4;
  auto farm = std::make_shared<Farm>(opts);
  ctx.attach(farm);
  auto first = ctx.create<MandelWorker>(48LL, 24LL, 200LL, 0.0);
  auto rows = all_rows;
  ctx.call<&MandelWorker::process>(first, rows);
  ctx.quiesce();

  std::uint64_t combined = 0;
  std::uint64_t iterations = 0;
  for (const auto& w : farm->workers()) {
    combined += w.local()->checksum();
    iterations += w.local()->iterations();
  }
  EXPECT_EQ(combined, reference.checksum());
  EXPECT_EQ(iterations, reference.iterations());
  auto done = farm->gather_results(ctx);
  std::sort(done.begin(), done.end());
  EXPECT_EQ(done, all_rows);
}

TEST(SignalStage, TransformsAreOrderedAndComposable) {
  SignalStage gain(sig::kGain), clip(sig::kClip), quant(sig::kQuantize);
  SignalStage all(sig::kAll);
  std::vector<long long> staged{400, -500, 10};
  std::vector<long long> direct = staged;
  gain.filter(staged);
  clip.filter(staged);
  quant.filter(staged);
  all.filter(direct);
  EXPECT_EQ(staged, direct);
  EXPECT_EQ(direct, (std::vector<long long>{1000, -1000, 24}));
}

TEST(SignalStage, MaskControlsWhichTransformsApply) {
  SignalStage gain_only(sig::kGain);
  std::vector<long long> pack{400};
  gain_only.filter(pack);
  EXPECT_EQ(pack, (std::vector<long long>{1200}));  // no clip
}

TEST(SignalStage, ProcessRetainsResults) {
  SignalStage all(sig::kAll);
  std::vector<long long> pack{1, 2};
  all.process(pack);
  EXPECT_EQ(all.take_results().size(), 2u);
}
