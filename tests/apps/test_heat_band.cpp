#include <gtest/gtest.h>

#include "apar/apps/heat_band.hpp"

using apar::apps::HeatBand;

TEST(HeatBand, StartsCold) {
  HeatBand band(4, 4, 0, 4, 0.0);
  for (double v : band.snapshot()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(band.residual(), 0.0);
}

TEST(HeatBand, HeatFlowsInFromTheHotTopEdge) {
  HeatBand band(4, 4, 0, 4, 0.0);
  band.step();
  const auto cells = band.snapshot();
  // After one sweep only the top row is warm (0.25 * 1.0 from the halo).
  EXPECT_DOUBLE_EQ(cells[0], 0.25);
  EXPECT_DOUBLE_EQ(cells[5], 0.0);  // second row untouched yet
  EXPECT_GT(band.residual(), 0.0);
}

TEST(HeatBand, InteriorBandHasColdDefaultHalos) {
  HeatBand band(4, 4, /*row_offset=*/2, /*total_rows=*/8, 0.0);
  band.step();
  for (double v : band.snapshot()) EXPECT_EQ(v, 0.0);
}

TEST(HeatBand, ConvergesTowardLinearProfile) {
  HeatBand band(8, 3, 0, 8, 0.0);
  band.run(2000);
  const auto cells = band.snapshot();
  // Steady state: temperature decreases monotonically away from the hot
  // edge (middle column, away from the cold side walls).
  for (long long r = 1; r < 8; ++r)
    EXPECT_LT(cells[static_cast<std::size_t>(r * 3 + 1)],
              cells[static_cast<std::size_t>((r - 1) * 3 + 1)]);
  EXPECT_LT(band.residual(), 1e-4);
}

TEST(HeatBand, HaloSettersFeedNextStep) {
  HeatBand band(2, 2, 4, 8, 0.0);  // interior band: cold halos
  band.set_halo_above({1.0, 1.0});
  band.step();
  const auto cells = band.snapshot();
  EXPECT_DOUBLE_EQ(cells[0], 0.25);
  EXPECT_DOUBLE_EQ(cells[1], 0.25);
  EXPECT_DOUBLE_EQ(cells[2], 0.0);
}

TEST(HeatBand, TopAndBottomRowAccessors) {
  HeatBand band(3, 2, 0, 3, 0.0);
  band.step();
  const auto top = band.top_row();
  const auto bottom = band.bottom_row();
  ASSERT_EQ(top.size(), 2u);
  ASSERT_EQ(bottom.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0], 0.25);
  EXPECT_DOUBLE_EQ(bottom[0], 0.0);
}

TEST(HeatBand, RunEqualsRepeatedSteps) {
  HeatBand a(5, 5, 0, 5, 0.0), b(5, 5, 0, 5, 0.0);
  a.run(10);
  for (int i = 0; i < 10; ++i) b.step();
  EXPECT_EQ(a.snapshot(), b.snapshot());
}
