#include <gtest/gtest.h>

#include <stdexcept>

#include "apar/common/stopwatch.hpp"
#include "fixtures.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;
using apar::test::Counter;
using apar::test::register_counter;

TEST(NodeEdge, RouteToUnknownNodeThrows) {
  ac::Cluster cluster(ac::Cluster::Options{2, 1});
  ac::Message msg;
  msg.dst = 99;
  EXPECT_THROW(cluster.route(std::move(msg)), std::out_of_range);
}

TEST(NodeEdge, ExecutedCallsCountCreatesAndCalls) {
  ac::Cluster cluster(ac::Cluster::Options{1, 2});
  register_counter(cluster.registry());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  const auto h = mpp.create(0, "Counter", as::encode(mpp.wire_format(), 0LL));
  mpp.invoke(h, "add", as::encode(mpp.wire_format(), 1LL));
  mpp.invoke(h, "get", as::encode(mpp.wire_format()));
  EXPECT_EQ(cluster.node(0).executed_calls(), 3u);
}

TEST(NodeEdge, ObjectAccessorExposesHostedInstance) {
  ac::Cluster cluster(ac::Cluster::Options{1, 1});
  register_counter(cluster.registry());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  const auto h = mpp.create(0, "Counter", as::encode(mpp.wire_format(), 9LL));
  auto instance = cluster.node(0).object(h.object);
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(static_cast<Counter*>(instance.get())->get(), 9);
  EXPECT_EQ(cluster.node(0).object(424242), nullptr);
}

TEST(NodeEdge, ShutdownIsIdempotent) {
  ac::Cluster cluster(ac::Cluster::Options{1, 1});
  cluster.node(0).shutdown();
  EXPECT_NO_THROW(cluster.node(0).shutdown());
  EXPECT_NO_THROW(cluster.shutdown());
}

TEST(NodeEdge, CrashAfterShutdownIsHarmless) {
  ac::Cluster cluster(ac::Cluster::Options{1, 1});
  cluster.node(0).shutdown();
  EXPECT_NO_THROW(cluster.node(0).crash());
}

TEST(NodeEdge, ZeroNodesClampedToOne) {
  ac::Cluster cluster(ac::Cluster::Options{0, 0});
  EXPECT_EQ(cluster.size(), 1u);
}

TEST(CostModelEdge, MessageCostScalesWithBytes) {
  const auto rmi = ac::CostModel::rmi();
  EXPECT_GT(rmi.message_cost_us(1 << 20), rmi.message_cost_us(1024));
  EXPECT_DOUBLE_EQ(ac::CostModel::loopback().message_cost_us(1 << 20), 0.0);
}

TEST(CostModelEdge, ChargeZeroReturnsInstantly) {
  apar::common::Stopwatch sw;
  ac::charge_us(0.0);
  ac::charge_us(-5.0);
  EXPECT_LT(sw.millis(), 5.0);
}
