#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fixtures.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;
using apar::test::Counter;
using apar::test::register_counter;

namespace {
ac::Cluster::Options small_cluster() {
  ac::Cluster::Options o;
  o.nodes = 3;
  o.executors_per_node = 2;
  return o;
}
}  // namespace

/// Middleware-parameterized end-to-end tests: everything must behave
/// identically (modulo cost) over RMI-like and MPP-like transports.
class MiddlewareEndToEnd : public ::testing::TestWithParam<const char*> {
 protected:
  MiddlewareEndToEnd() : cluster_(small_cluster()) {
    register_counter(cluster_.registry());
    if (std::string_view(GetParam()) == "rmi")
      mw_ = std::make_unique<ac::RmiMiddleware>(cluster_,
                                                ac::CostModel::loopback());
    else
      mw_ = std::make_unique<ac::MppMiddleware>(cluster_,
                                                ac::CostModel::loopback());
  }

  ac::Cluster cluster_;
  std::unique_ptr<ac::Middleware> mw_;
};

INSTANTIATE_TEST_SUITE_P(Middlewares, MiddlewareEndToEnd,
                         ::testing::Values("rmi", "mpp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST_P(MiddlewareEndToEnd, CreateAndInvoke) {
  const auto handle =
      mw_->create(1, "Counter", as::encode(mw_->wire_format(), 10LL));
  EXPECT_EQ(handle.node, 1u);
  mw_->invoke(handle, "add", as::encode(mw_->wire_format(), 5LL));
  const auto reply =
      mw_->invoke(handle, "get", as::encode(mw_->wire_format()));
  const auto [value] = as::decode<long long>(reply, mw_->wire_format());
  EXPECT_EQ(value, 15);
}

TEST_P(MiddlewareEndToEnd, CopyRestoreThroughTheWire) {
  const auto handle =
      mw_->create(0, "Counter", as::encode(mw_->wire_format(), 0LL));
  const std::vector<long long> pack{5, 6, 7};
  const auto reply =
      mw_->invoke(handle, "absorb", as::encode(mw_->wire_format(), pack));
  const auto [restored] =
      as::decode<std::vector<long long>>(reply, mw_->wire_format());
  EXPECT_EQ(restored, (std::vector<long long>{0, 0, 0}));
}

TEST_P(MiddlewareEndToEnd, ObjectsAreIndependent) {
  const auto a = mw_->create(0, "Counter", as::encode(mw_->wire_format(), 1LL));
  const auto b = mw_->create(0, "Counter", as::encode(mw_->wire_format(), 2LL));
  EXPECT_NE(a.object, b.object);
  mw_->invoke(a, "add", as::encode(mw_->wire_format(), 10LL));
  const auto [va] = as::decode<long long>(
      mw_->invoke(a, "get", as::encode(mw_->wire_format())),
      mw_->wire_format());
  const auto [vb] = as::decode<long long>(
      mw_->invoke(b, "get", as::encode(mw_->wire_format())),
      mw_->wire_format());
  EXPECT_EQ(va, 11);
  EXPECT_EQ(vb, 2);
}

TEST_P(MiddlewareEndToEnd, UnknownClassErrorPropagates) {
  EXPECT_THROW(mw_->create(0, "Nope", as::encode(mw_->wire_format())),
               ac::rpc::RpcError);
}

TEST_P(MiddlewareEndToEnd, UnknownObjectErrorPropagates) {
  ac::RemoteHandle bogus{0, 999};
  EXPECT_THROW(mw_->invoke(bogus, "get", as::encode(mw_->wire_format())),
               ac::rpc::RpcError);
}

TEST_P(MiddlewareEndToEnd, UnknownMethodErrorPropagates) {
  const auto handle =
      mw_->create(0, "Counter", as::encode(mw_->wire_format(), 0LL));
  EXPECT_THROW(mw_->invoke(handle, "nope", as::encode(mw_->wire_format())),
               ac::rpc::RpcError);
}

TEST_P(MiddlewareEndToEnd, OneWayCallsEventuallyExecute) {
  const auto handle =
      mw_->create(2, "Counter", as::encode(mw_->wire_format(), 0LL));
  for (int i = 0; i < 20; ++i)
    mw_->invoke_one_way(handle, "add", as::encode(mw_->wire_format(), 1LL));
  cluster_.drain();
  const auto [value] = as::decode<long long>(
      mw_->invoke(handle, "get", as::encode(mw_->wire_format())),
      mw_->wire_format());
  EXPECT_EQ(value, 20);
}

TEST_P(MiddlewareEndToEnd, ConcurrentCallsToOneObjectStayConsistent) {
  // Node-side per-object monitors must serialize execution even when many
  // client threads hammer the same object.
  const auto handle =
      mw_->create(0, "Counter", as::encode(mw_->wire_format(), 0LL));
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t)
    clients.emplace_back([&] {
      for (int i = 0; i < 50; ++i)
        mw_->invoke(handle, "add", as::encode(mw_->wire_format(), 1LL));
    });
  for (auto& t : clients) t.join();
  const auto [value] = as::decode<long long>(
      mw_->invoke(handle, "get", as::encode(mw_->wire_format())),
      mw_->wire_format());
  EXPECT_EQ(value, 200);
}

TEST_P(MiddlewareEndToEnd, StatsCountTraffic) {
  const auto handle =
      mw_->create(0, "Counter", as::encode(mw_->wire_format(), 0LL));
  mw_->invoke(handle, "get", as::encode(mw_->wire_format()));
  const auto& stats = mw_->stats();
  EXPECT_EQ(stats.creates.load(), 1u);
  EXPECT_GE(stats.sync_calls.load(), 1u);
}

TEST(MiddlewareProperties, RmiHasNoOneWay) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  EXPECT_FALSE(rmi.supports_one_way());
  EXPECT_EQ(rmi.wire_format(), as::Format::kVerbose);

  const auto handle = rmi.create(0, "Counter", as::encode(rmi.wire_format(), 0LL));
  rmi.invoke_one_way(handle, "add", as::encode(rmi.wire_format(), 3LL));
  // Degraded to synchronous: nothing pending, effect already visible.
  EXPECT_EQ(cluster.one_way_pending(), 0u);
  const auto [value] = as::decode<long long>(
      rmi.invoke(handle, "get", as::encode(rmi.wire_format())),
      rmi.wire_format());
  EXPECT_EQ(value, 3);
}

TEST(MiddlewareProperties, MppSupportsOneWayAndCompactFormat) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  EXPECT_TRUE(mpp.supports_one_way());
  EXPECT_EQ(mpp.wire_format(), as::Format::kCompact);
}

TEST(MiddlewareProperties, MppPerMessageCostBelowRmi) {
  const auto rmi = ac::CostModel::rmi();
  const auto mpp = ac::CostModel::mpp();
  for (std::size_t bytes : {0u, 1024u, 100u * 1024u}) {
    EXPECT_LT(mpp.message_cost_us(bytes) + mpp.handshake_us,
              rmi.message_cost_us(bytes) + rmi.handshake_us)
        << "at " << bytes << " bytes";
  }
}

TEST(MiddlewareProperties, LookupGoesThroughNameServer) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  EXPECT_FALSE(rmi.lookup("PS1").has_value());
  cluster.name_server().bind("PS1", ac::RemoteHandle{1, 7});
  const auto found = rmi.lookup("PS1");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->node, 1u);
  EXPECT_EQ(found->object, 7u);
  EXPECT_EQ(rmi.stats().lookups.load(), 2u);
}

TEST(NameServer, BindLookupUnbind) {
  ac::NameServer ns;
  EXPECT_EQ(ns.size(), 0u);
  ns.bind("a", {0, 1});
  ns.bind("b", {1, 2});
  EXPECT_EQ(ns.size(), 2u);
  EXPECT_EQ(ns.lookup("a")->object, 1u);
  ns.bind("a", {2, 9});  // rebind
  EXPECT_EQ(ns.lookup("a")->node, 2u);
  ns.unbind("a");
  EXPECT_FALSE(ns.lookup("a").has_value());
  EXPECT_EQ(ns.names(), std::vector<std::string>{"b"});
}

TEST(ClusterLifecycle, ShutdownRefusesNewWork) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  const auto handle =
      mpp.create(0, "Counter", as::encode(mpp.wire_format(), 0LL));
  cluster.shutdown();
  EXPECT_THROW(mpp.invoke(handle, "get", as::encode(mpp.wire_format())),
               ac::rpc::RpcError);
}

TEST(ClusterLifecycle, DrainOnIdleClusterReturnsImmediately) {
  ac::Cluster cluster(small_cluster());
  EXPECT_NO_THROW(cluster.drain());
  EXPECT_EQ(cluster.one_way_pending(), 0u);
}

TEST(ClusterLifecycle, OneWayErrorSurfacesInDrain) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  ac::RemoteHandle bogus{0, 12345};
  mpp.invoke_one_way(bogus, "add", as::encode(mpp.wire_format(), 1LL));
  EXPECT_THROW(cluster.drain(), ac::rpc::RpcError);
  // The error is consumed; a second drain is clean.
  EXPECT_NO_THROW(cluster.drain());
}

TEST(ClusterLifecycle, NodeObjectCountTracksCreates) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  EXPECT_EQ(cluster.node(1).object_count(), 0u);
  mpp.create(1, "Counter", as::encode(mpp.wire_format(), 0LL));
  mpp.create(1, "Counter", as::encode(mpp.wire_format(), 0LL));
  EXPECT_EQ(cluster.node(1).object_count(), 2u);
  EXPECT_EQ(cluster.node(1).executed_calls(), 2u);
}
