#pragma once

#include <numeric>
#include <string>
#include <vector>

#include "apar/cluster/cluster.hpp"
#include "apar/cluster/middleware.hpp"

namespace apar::test {

/// A small distributable class for cluster tests.
class Counter {
 public:
  Counter() = default;
  explicit Counter(long long start) : value_(start) {}

  void add(long long delta) { value_ += delta; }
  [[nodiscard]] long long get() const { return value_; }

  /// Mutates its argument in place (exercises copy-restore replies) and
  /// accumulates the sum (exercises server-side state).
  void absorb(std::vector<long long>& pack) {
    value_ += std::accumulate(pack.begin(), pack.end(), 0LL);
    for (auto& v : pack) v = 0;
  }

  [[nodiscard]] std::string greet(const std::string& who) const {
    return "hello " + who;
  }

 private:
  long long value_ = 0;
};

/// Register Counter with a cluster's RPC registry.
inline void register_counter(apar::cluster::rpc::Registry& registry) {
  registry.bind<Counter>("Counter")
      .ctor<long long>()
      .method<&Counter::add>("add")
      .method<&Counter::get>("get")
      .method<&Counter::absorb>("absorb")
      .method<&Counter::greet>("greet");
}

}  // namespace apar::test
