#include <gtest/gtest.h>

#include "fixtures.hpp"

namespace as = apar::serial;
namespace rpc = apar::cluster::rpc;
using apar::test::Counter;
using apar::test::register_counter;

class RpcRegistry : public ::testing::TestWithParam<as::Format> {
 protected:
  RpcRegistry() { register_counter(registry_); }
  rpc::Registry registry_;
};

INSTANTIATE_TEST_SUITE_P(Formats, RpcRegistry,
                         ::testing::Values(as::Format::kCompact,
                                           as::Format::kVerbose),
                         [](const auto& info) {
                           return info.param == as::Format::kCompact
                                      ? "Compact"
                                      : "Verbose";
                         });

TEST_P(RpcRegistry, ConstructFromMarshalledArgs) {
  const auto& cls = registry_.find("Counter");
  auto args = as::encode(GetParam(), 42LL);
  as::Reader in(args, GetParam());
  auto instance = cls.construct(in);
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(static_cast<Counter*>(instance.get())->get(), 42);
}

TEST_P(RpcRegistry, InvokeVoidMethodRepliesWithCopyRestoredArgs) {
  const auto& cls = registry_.find("Counter");
  Counter counter(0);
  auto args = as::encode(GetParam(), 7LL);
  as::Reader in(args, GetParam());
  as::Writer out(GetParam());
  cls.method("add").invoke(&counter, in, out);
  EXPECT_EQ(counter.get(), 7);
  // Reply carries the (unmutated) argument back.
  const auto [echoed] = as::decode<long long>(out.bytes(), GetParam());
  EXPECT_EQ(echoed, 7);
}

TEST_P(RpcRegistry, InvokeReturnsResultAfterArgs) {
  const auto& cls = registry_.find("Counter");
  Counter counter(5);
  auto args = as::encode(GetParam());
  as::Reader in(args, GetParam());
  as::Writer out(GetParam());
  cls.method("get").invoke(&counter, in, out);
  const auto [result] = as::decode<long long>(out.bytes(), GetParam());
  EXPECT_EQ(result, 5);
}

TEST_P(RpcRegistry, MutatedReferenceArgsTravelBack) {
  const auto& cls = registry_.find("Counter");
  Counter counter(0);
  const std::vector<long long> pack{1, 2, 3};
  auto args = as::encode(GetParam(), pack);
  as::Reader in(args, GetParam());
  as::Writer out(GetParam());
  cls.method("absorb").invoke(&counter, in, out);
  EXPECT_EQ(counter.get(), 6);
  const auto [restored] =
      as::decode<std::vector<long long>>(out.bytes(), GetParam());
  EXPECT_EQ(restored, (std::vector<long long>{0, 0, 0}));
}

TEST_P(RpcRegistry, StringArgsAndResult) {
  const auto& cls = registry_.find("Counter");
  Counter counter(0);
  auto args = as::encode(GetParam(), std::string("world"));
  as::Reader in(args, GetParam());
  as::Writer out(GetParam());
  cls.method("greet").invoke(&counter, in, out);
  const auto [echoed, result] =
      as::decode<std::string, std::string>(out.bytes(), GetParam());
  EXPECT_EQ(echoed, "world");
  EXPECT_EQ(result, "hello world");
}

TEST(RpcRegistryErrors, UnknownClassThrows) {
  rpc::Registry registry;
  EXPECT_THROW(registry.find("Nope"), rpc::RpcError);
  EXPECT_FALSE(registry.contains("Nope"));
}

TEST(RpcRegistryErrors, UnknownMethodThrows) {
  rpc::Registry registry;
  register_counter(registry);
  EXPECT_THROW(registry.find("Counter").method("nope"), rpc::RpcError);
}

TEST(RpcRegistryErrors, MalformedArgsThrow) {
  rpc::Registry registry;
  register_counter(registry);
  const auto& cls = registry.find("Counter");
  std::vector<std::byte> garbage{std::byte{1}};
  as::Reader in(garbage, as::Format::kCompact);
  Counter counter(0);
  as::Writer out(as::Format::kCompact);
  EXPECT_THROW(cls.method("add").invoke(&counter, in, out), as::SerialError);
}

TEST(RpcRegistryErrors, SizeCountsClasses) {
  rpc::Registry registry;
  EXPECT_EQ(registry.size(), 0u);
  register_counter(registry);
  EXPECT_EQ(registry.size(), 1u);
}
