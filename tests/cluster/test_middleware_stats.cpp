// MiddlewareStats accounting invariants: snapshot/aggregate symmetry and
// both-direction byte counting across the simulated middlewares.
#include <gtest/gtest.h>

#include <memory>

#include "fixtures.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;
using apar::test::register_counter;

namespace {

ac::Cluster::Options small_cluster() {
  ac::Cluster::Options o;
  o.nodes = 2;
  o.executors_per_node = 2;
  return o;
}

}  // namespace

TEST(MiddlewareStats, SnapshotArithmeticCoversEveryField) {
  ac::MiddlewareStats::Snapshot a;
  a.creates = 1;
  a.sync_calls = 2;
  a.one_way_calls = 3;
  a.bytes_sent = 4;
  a.bytes_received = 5;
  a.lookups = 6;
  ac::MiddlewareStats::Snapshot b = a;
  b += a;
  EXPECT_EQ(b.creates, 2u);
  EXPECT_EQ(b.sync_calls, 4u);
  EXPECT_EQ(b.one_way_calls, 6u);
  EXPECT_EQ(b.bytes_sent, 8u);
  EXPECT_EQ(b.bytes_received, 10u);
  EXPECT_EQ(b.lookups, 12u);
  EXPECT_EQ(a + a, b);

  // store() mirrors snapshot(): writing a snapshot into live counters and
  // reading it back is the identity.
  ac::MiddlewareStats stats;
  stats.store(b);
  EXPECT_EQ(stats.snapshot(), b);
}

TEST(MiddlewareStats, SyncCallsCountBothDirections) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());

  const auto handle =
      rmi.create(0, "Counter", as::encode(rmi.wire_format(), 0LL));
  const auto request = as::encode(rmi.wire_format(), 7LL);
  const auto reply = rmi.invoke(handle, "add", request);

  const auto s = rmi.stats().snapshot();
  EXPECT_EQ(s.creates, 1u);
  EXPECT_EQ(s.sync_calls, 1u);
  // Request payloads went out; the create ack and the copy-restore reply
  // came back. Both directions must move, and the reply direction must
  // account exactly the payloads the caller saw.
  EXPECT_GT(s.bytes_sent, 0u);
  EXPECT_GT(s.bytes_received, 0u);
  EXPECT_GE(s.bytes_received, reply.size());
}

TEST(MiddlewareStats, DegradedOneWayStillCountsReplyBytes) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  // RMI has no one-way support: invoke_one_way degrades to a synchronous
  // call whose reply is discarded — but the reply bytes still crossed the
  // wire and must be accounted.
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  const auto handle =
      rmi.create(0, "Counter", as::encode(rmi.wire_format(), 0LL));
  const auto after_create = rmi.stats().snapshot();
  rmi.invoke_one_way(handle, "add", as::encode(rmi.wire_format(), 1LL));
  const auto after_call = rmi.stats().snapshot();
  EXPECT_GT(after_call.bytes_received, after_create.bytes_received);
  EXPECT_EQ(after_call.sync_calls, after_create.sync_calls + 1);
}

TEST(MiddlewareStats, HybridAggregateEqualsBackendSumOnEveryField) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  ac::HybridMiddleware hybrid(rmi, mpp, {"add"});

  const auto handle =
      hybrid.create(0, "Counter", as::encode(hybrid.wire_format(), 0LL));
  cluster.name_server().bind("PS1", handle);
  (void)hybrid.lookup("PS1");
  for (int i = 0; i < 3; ++i) {
    auto& routed = hybrid.route_for("add");
    hybrid.invoke_one_way(handle, "add",
                          as::encode(routed.wire_format(), 1LL));
  }
  (void)hybrid.invoke(handle, "get", as::encode(hybrid.wire_format()));
  cluster.drain();

  const auto control = rmi.stats().snapshot();
  const auto fast = mpp.stats().snapshot();
  const auto aggregate = hybrid.stats().snapshot();
  EXPECT_EQ(aggregate, control + fast);
  // Sanity: the split actually exercised both backends.
  EXPECT_EQ(fast.one_way_calls, 3u);
  EXPECT_EQ(control.creates, 1u);
  EXPECT_EQ(control.sync_calls, 1u);
  EXPECT_EQ(control.lookups, 1u);
}
