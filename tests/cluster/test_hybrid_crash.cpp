#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "fixtures.hpp"

namespace ac = apar::cluster;
namespace as = apar::serial;
using apar::test::Counter;
using apar::test::register_counter;

namespace {
ac::Cluster::Options small_cluster() {
  ac::Cluster::Options o;
  o.nodes = 3;
  o.executors_per_node = 2;
  return o;
}

/// Holds its executor long enough for a crash to land mid-call.
class Sleeper {
 public:
  explicit Sleeper(long long) {}
  long long nap(long long ms) {
    started().store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return ms;
  }
  static std::atomic<bool>& started() {
    static std::atomic<bool> flag{false};
    return flag;
  }
};

void register_sleeper(ac::rpc::Registry& registry) {
  registry.bind<Sleeper>("Sleeper").ctor<long long>().method<&Sleeper::nap>(
      "nap");
}
}  // namespace

TEST(HybridMiddleware, RoutesFastMethodsToFastBackend) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  ac::HybridMiddleware hybrid(rmi, mpp, {"add"});

  EXPECT_EQ(&hybrid.route_for("add"), &mpp);
  EXPECT_EQ(&hybrid.route_for("get"), &rmi);
  EXPECT_EQ(&hybrid.route_for("new"), &rmi);
  EXPECT_NE(hybrid.name().find("Hybrid"), std::string_view::npos);
}

TEST(HybridMiddleware, SplitsTrafficAcrossBackends) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  ac::HybridMiddleware hybrid(rmi, mpp, {"add"});

  // Create via control (RMI); note the routed backend defines the format.
  const auto handle =
      hybrid.create(0, "Counter", as::encode(rmi.wire_format(), 0LL));
  EXPECT_EQ(rmi.stats().creates.load(), 1u);
  EXPECT_EQ(mpp.stats().creates.load(), 0u);

  // Fast-path method goes over MPP one-way.
  auto& fast = hybrid.route_for("add");
  fast.invoke_one_way(handle, "add", as::encode(fast.wire_format(), 5LL));
  cluster.drain();
  EXPECT_EQ(mpp.stats().one_way_calls.load(), 1u);
  EXPECT_EQ(rmi.stats().one_way_calls.load(), 0u);

  // Control method over RMI; the object state reflects both paths.
  auto& slow = hybrid.route_for("get");
  const auto reply =
      slow.invoke(handle, "get", as::encode(slow.wire_format()));
  const auto [value] = as::decode<long long>(reply, slow.wire_format());
  EXPECT_EQ(value, 5);
  EXPECT_GE(rmi.stats().sync_calls.load(), 1u);
}

TEST(NodeCrash, QueuedSyncRequestsFailLoudly) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  const auto handle =
      rmi.create(1, "Counter", as::encode(rmi.wire_format(), 0LL));
  cluster.node(1).crash();
  EXPECT_TRUE(cluster.node(1).crashed());
  EXPECT_THROW(rmi.invoke(handle, "get", as::encode(rmi.wire_format())),
               ac::rpc::RpcError);
}

TEST(NodeCrash, OneWayToCrashedNodeSurfacesAtDrain) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  const auto handle =
      mpp.create(2, "Counter", as::encode(mpp.wire_format(), 0LL));
  cluster.node(2).crash();
  mpp.invoke_one_way(handle, "add", as::encode(mpp.wire_format(), 1LL));
  EXPECT_THROW(cluster.drain(), ac::rpc::RpcError);
  EXPECT_NO_THROW(cluster.drain());  // error consumed
}

TEST(NodeCrash, CrashDoesNotHangPendingCounters) {
  // Even if one-ways were queued before the crash, drain() must return.
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::MppMiddleware mpp(cluster, ac::CostModel::loopback());
  const auto handle =
      mpp.create(0, "Counter", as::encode(mpp.wire_format(), 0LL));
  for (int i = 0; i < 5; ++i)
    mpp.invoke_one_way(handle, "add", as::encode(mpp.wire_format(), 1LL));
  cluster.node(0).crash();
  // Either everything executed before the crash (no throw) or the dropped
  // remainder is reported; in both cases drain terminates.
  try {
    cluster.drain();
  } catch (const ac::rpc::RpcError&) {
  }
  EXPECT_EQ(cluster.one_way_pending(), 0u);
}

TEST(NodeCrash, CrashRacingInFlightCallErrorsTheCallerNotHangs) {
  // The call is already executing on the node when crash() lands from
  // another thread. The caller must get an error reply — the produced
  // result was "lost in the crash" — and must never block forever.
  ac::Cluster cluster(small_cluster());
  register_sleeper(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  const auto handle =
      rmi.create(0, "Sleeper", as::encode(rmi.wire_format(), 0LL));

  Sleeper::started().store(false);
  std::atomic<bool> got_error{false};
  std::thread caller([&] {
    try {
      rmi.invoke(handle, "nap", as::encode(rmi.wire_format(), 100LL));
    } catch (const ac::rpc::RpcError&) {
      got_error = true;
    }
  });
  while (!Sleeper::started().load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  cluster.node(0).crash();  // races the in-flight nap()
  caller.join();
  EXPECT_TRUE(got_error.load());
  EXPECT_TRUE(cluster.node(0).crashed());
}

TEST(NodeCrash, OtherNodesKeepWorking) {
  ac::Cluster cluster(small_cluster());
  register_counter(cluster.registry());
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  const auto ok =
      rmi.create(0, "Counter", as::encode(rmi.wire_format(), 7LL));
  cluster.node(1).crash();
  const auto reply = rmi.invoke(ok, "get", as::encode(rmi.wire_format()));
  const auto [value] = as::decode<long long>(reply, rmi.wire_format());
  EXPECT_EQ(value, 7);
}
