// The trace aspect: the paper's interaction diagrams (Figures 6/7/11)
// reconstructed from a live woven run — and with it, observability-based
// checks of the methodology's structural claims.
#include <gtest/gtest.h>

#include <memory>

#include "apar/aop/trace.hpp"
#include "fixtures.hpp"

namespace aop = apar::aop;
using apar::test::Worker;

namespace {

std::shared_ptr<aop::TraceAspect<Worker>> make_trace(
    std::shared_ptr<aop::Tracer> tracer) {
  auto trace = std::make_shared<aop::TraceAspect<Worker>>(tracer);
  trace->trace_method<&Worker::process>()
      .trace_method<&Worker::compute>()
      .template trace_new<int>();
  return trace;
}

}  // namespace

TEST(TraceAspect, RecordsEnterAndExit) {
  auto tracer = std::make_shared<aop::Tracer>();
  aop::Context ctx;
  ctx.attach(make_trace(tracer));
  auto w = ctx.create<Worker>(1);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(tracer->calls("Worker.new"), 1u);
  EXPECT_EQ(tracer->calls("Worker.process"), 1u);
  EXPECT_EQ(tracer->size(), 4u);  // 2 events per traced join point
}

TEST(TraceAspect, ErrorPhaseOnThrow) {
  auto tracer = std::make_shared<aop::Tracer>();
  aop::Context ctx;
  ctx.attach(make_trace(tracer));
  auto veto = std::make_shared<aop::Aspect>("veto");
  veto->around_method<&Worker::process>(
      aop::order::kDefault, aop::Scope::any(),
      [](auto&) -> void { throw std::runtime_error("x"); });
  ctx.attach(veto);
  auto w = ctx.create<Worker>(1);
  std::vector<int> pack{1};
  EXPECT_THROW(ctx.call<&Worker::process>(w, pack), std::runtime_error);
  const auto events = tracer->events();
  EXPECT_EQ(events.back().phase, aop::TraceEvent::Phase::kError);
}

TEST(TraceAspect, SequentialRunUsesOneThread) {
  auto tracer = std::make_shared<aop::Tracer>();
  aop::Context ctx;
  ctx.attach(make_trace(tracer));
  auto w = ctx.create<Worker>(1);
  std::vector<int> pack{1};
  for (int i = 0; i < 5; ++i) ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(tracer->thread_count(), 1u);
}

TEST(TraceAspect, ConcurrencyAspectShowsUpAsManyThreads) {
  // The observable difference between Figure 6 (sequential) and Figure 11
  // (woven with concurrency): the same core calls now run on new threads.
  auto tracer = std::make_shared<aop::Tracer>();
  aop::Context ctx;
  // Trace INSIDE the async boundary so events carry the worker threads.
  auto trace = std::make_shared<aop::TraceAspect<Worker>>(
      "Trace", tracer, aop::order::kConcurrencyAsync + 10);
  trace->trace_method<&Worker::process>();
  ctx.attach(trace);

  auto async = std::make_shared<aop::Aspect>("async");
  async->around_method<&Worker::process>(
      aop::order::kConcurrencyAsync, aop::Scope::any(), [](auto& inv) {
        auto k = inv.continuation();
        inv.context().tasks().spawn(k);
      });
  ctx.attach(async);

  auto w = ctx.create<Worker>(1);
  std::vector<int> pack{1};
  for (int i = 0; i < 8; ++i) ctx.call<&Worker::process>(w, pack);
  ctx.quiesce();
  EXPECT_EQ(tracer->calls("Worker.process"), 8u);
  EXPECT_GT(tracer->thread_count(), 1u);
}

TEST(TraceAspect, DiagramAndSummaryRender) {
  auto tracer = std::make_shared<aop::Tracer>();
  aop::Context ctx;
  ctx.attach(make_trace(tracer));
  auto a = ctx.create<Worker>(1);
  auto b = ctx.create<Worker>(2);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(a, pack);
  ctx.call<&Worker::process>(b, pack);
  ctx.call<&Worker::compute>(a, 1);

  const std::string diagram = tracer->interaction_diagram();
  EXPECT_NE(diagram.find("-> Worker.process"), std::string::npos);
  EXPECT_NE(diagram.find("<- Worker.process"), std::string::npos);
  EXPECT_NE(diagram.find("T1"), std::string::npos);

  const std::string summary = tracer->summary();
  EXPECT_NE(summary.find("Worker.process: 2 call(s) on 2 object(s)"),
            std::string::npos);
  EXPECT_NE(summary.find("Worker.compute: 1 call(s) on 1 object(s)"),
            std::string::npos);
  EXPECT_EQ(tracer->targets("Worker.process"), 2u);
}

TEST(TraceAspect, DiagramKeepsLongSignaturesIntact) {
  // Regression: the diagram used a 160-char snprintf line buffer, so long
  // signatures (and anything after them) were silently truncated.
  aop::Tracer tracer;
  const std::string long_sig =
      "VeryLongTemplateInstantiationName<WithNestedParameters, "
      "AndMoreParameters, AndEvenMoreParametersToPushWellPastTheOldLimit>."
      "a_method_name_that_is_itself_quite_long_for_good_measure";
  ASSERT_GT(long_sig.size(), 160u);
  aop::TraceEvent enter;
  enter.when = std::chrono::steady_clock::now();
  enter.thread = std::this_thread::get_id();
  enter.signature = long_sig;
  enter.phase = aop::TraceEvent::Phase::kEnter;
  aop::TraceEvent exit = enter;
  exit.when = enter.when + std::chrono::microseconds(5);
  exit.phase = aop::TraceEvent::Phase::kExit;
  tracer.record(enter);
  tracer.record(exit);

  const std::string diagram = tracer.interaction_diagram();
  EXPECT_NE(diagram.find("-> " + long_sig + "\n"), std::string::npos);
  EXPECT_NE(diagram.find("<- " + long_sig + "\n"), std::string::npos);
}

TEST(TraceAspect, UnplugRemovesEveryProbe) {
  auto tracer = std::make_shared<aop::Tracer>();
  aop::Context ctx;
  ctx.attach(make_trace(tracer));
  auto w = ctx.create<Worker>(1);
  ctx.detach("Trace");
  tracer->clear();
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(tracer->size(), 0u);
}

TEST(TraceAspect, ValueReturningMethodPassesResultThrough) {
  auto tracer = std::make_shared<aop::Tracer>();
  aop::Context ctx;
  ctx.attach(make_trace(tracer));
  auto w = ctx.create<Worker>(3);
  EXPECT_EQ(ctx.call<&Worker::compute>(w, 10), 23);
  EXPECT_EQ(tracer->calls("Worker.compute"), 1u);
}
