#include <gtest/gtest.h>

#include "apar/aop/aspect.hpp"
#include "apar/aop/signature.hpp"
#include "fixtures.hpp"

namespace aop = apar::aop;

TEST(Glob, ExactMatch) {
  EXPECT_TRUE(aop::Pattern::glob_match("filter", "filter"));
  EXPECT_FALSE(aop::Pattern::glob_match("filter", "filters"));
  EXPECT_FALSE(aop::Pattern::glob_match("filters", "filter"));
}

TEST(Glob, TrailingStar) {
  EXPECT_TRUE(aop::Pattern::glob_match("move*", "moveX"));
  EXPECT_TRUE(aop::Pattern::glob_match("move*", "move"));
  EXPECT_FALSE(aop::Pattern::glob_match("move*", "mov"));
}

TEST(Glob, LeadingStar) {
  EXPECT_TRUE(aop::Pattern::glob_match("*Filter", "PrimeFilter"));
  EXPECT_FALSE(aop::Pattern::glob_match("*Filter", "PrimeFilters"));
}

TEST(Glob, InnerStar) {
  EXPECT_TRUE(aop::Pattern::glob_match("get*Value", "getIntValue"));
  EXPECT_TRUE(aop::Pattern::glob_match("get*Value", "getValue"));
  EXPECT_FALSE(aop::Pattern::glob_match("get*Value", "getValues"));
}

TEST(Glob, MultipleStars) {
  EXPECT_TRUE(aop::Pattern::glob_match("*e*t*", "element"));
  EXPECT_TRUE(aop::Pattern::glob_match("**", "anything"));
  EXPECT_TRUE(aop::Pattern::glob_match("*", ""));
}

TEST(Glob, StarRequiresRemainingSuffix) {
  EXPECT_FALSE(aop::Pattern::glob_match("a*b", "a"));
  EXPECT_TRUE(aop::Pattern::glob_match("a*b", "ab"));
  EXPECT_TRUE(aop::Pattern::glob_match("a*b", "axxxb"));
  EXPECT_FALSE(aop::Pattern::glob_match("a*b", "axxxbc"));
}

TEST(Pattern, ParsesClassAndMethod) {
  const aop::Pattern p("PrimeFilter.filter");
  EXPECT_EQ(p.class_pattern(), "PrimeFilter");
  EXPECT_EQ(p.method_pattern(), "filter");
}

TEST(Pattern, ClassOnlyMatchesAnyMethod) {
  const aop::Pattern p("PrimeFilter");
  const aop::Signature sig{"PrimeFilter", "filter",
                           aop::JoinPointKind::kMethodCall};
  const aop::Signature ctor{"PrimeFilter", "new",
                            aop::JoinPointKind::kConstructorCall};
  EXPECT_TRUE(p.matches(sig));
  EXPECT_TRUE(p.matches(ctor));
}

TEST(Pattern, WildcardMethod) {
  const aop::Pattern p("Point.move*");
  EXPECT_TRUE(p.matches({"Point", "moveX", aop::JoinPointKind::kMethodCall}));
  EXPECT_TRUE(p.matches({"Point", "moveY", aop::JoinPointKind::kMethodCall}));
  EXPECT_FALSE(p.matches({"Point", "reset", aop::JoinPointKind::kMethodCall}));
  EXPECT_FALSE(
      p.matches({"Line", "moveX", aop::JoinPointKind::kMethodCall}));
}

TEST(Pattern, WildcardClass) {
  const aop::Pattern p("*.filter");
  EXPECT_TRUE(
      p.matches({"PrimeFilter", "filter", aop::JoinPointKind::kMethodCall}));
  EXPECT_TRUE(p.matches({"Other", "filter", aop::JoinPointKind::kMethodCall}));
}

TEST(Pattern, DefaultMatchesEverything) {
  const aop::Pattern p;
  EXPECT_TRUE(p.matches({"A", "b", aop::JoinPointKind::kMethodCall}));
  EXPECT_TRUE(p.matches({"C", "new", aop::JoinPointKind::kConstructorCall}));
}

TEST(Pattern, EmptySegmentsBecomeWildcards) {
  const aop::Pattern p(".");
  EXPECT_TRUE(p.matches({"A", "b", aop::JoinPointKind::kMethodCall}));
}

TEST(Signature, StrFormatsClassDotMethod) {
  const aop::Signature sig{"PrimeFilter", "filter",
                           aop::JoinPointKind::kMethodCall};
  EXPECT_EQ(sig.str(), "PrimeFilter.filter");
}

// --- wildcard edge cases ----------------------------------------------------

TEST(Pattern, EmptyTextParsesAsMatchEverything) {
  const aop::Pattern p("");
  EXPECT_EQ(p.class_pattern(), "*");
  EXPECT_EQ(p.method_pattern(), "*");
  EXPECT_TRUE(p.matches({"A", "b", aop::JoinPointKind::kMethodCall}));
}

TEST(Pattern, EmptyClassSegmentOnly) {
  const aop::Pattern p(".filter");
  EXPECT_EQ(p.class_pattern(), "*");
  EXPECT_TRUE(
      p.matches({"PrimeFilter", "filter", aop::JoinPointKind::kMethodCall}));
  EXPECT_FALSE(
      p.matches({"PrimeFilter", "process", aop::JoinPointKind::kMethodCall}));
}

TEST(Pattern, EmptyMethodSegmentOnly) {
  const aop::Pattern p("PrimeFilter.");
  EXPECT_EQ(p.method_pattern(), "*");
  EXPECT_TRUE(
      p.matches({"PrimeFilter", "filter", aop::JoinPointKind::kMethodCall}));
  EXPECT_FALSE(p.matches({"Other", "filter", aop::JoinPointKind::kMethodCall}));
}

TEST(Pattern, OnlyFirstDotSeparatesSegments) {
  // Later dots belong to the method segment; "a.b.c" is class "a",
  // method "b.c" — which can never match a real (dot-free) method name.
  const aop::Pattern p("a.b.c");
  EXPECT_EQ(p.class_pattern(), "a");
  EXPECT_EQ(p.method_pattern(), "b.c");
  EXPECT_FALSE(p.matches({"a", "b", aop::JoinPointKind::kMethodCall}));
}

TEST(Glob, DoubleStarBehavesLikeSingleStar) {
  // '**' is not a path-style recursive wildcard here: consecutive stars
  // collapse to one "match any run" wildcard within the segment.
  EXPECT_TRUE(aop::Pattern::glob_match("**", ""));
  EXPECT_TRUE(aop::Pattern::glob_match("a**b", "ab"));
  EXPECT_TRUE(aop::Pattern::glob_match("a**b", "aXYZb"));
  EXPECT_FALSE(aop::Pattern::glob_match("a**b", "aXbY"));
}

TEST(Glob, StarOnlyPatternsMatchEmptyAndAnything) {
  EXPECT_TRUE(aop::Pattern::glob_match("***", "x"));
  EXPECT_TRUE(aop::Pattern::glob_match("***", ""));
  EXPECT_FALSE(aop::Pattern::glob_match("*x*", ""));
}

TEST(Glob, EmptyPatternMatchesOnlyEmptyText) {
  EXPECT_TRUE(aop::Pattern::glob_match("", ""));
  EXPECT_FALSE(aop::Pattern::glob_match("", "a"));
}

TEST(Pattern, IgnoresJoinPointKindItself) {
  // Pattern matching is purely textual; kind discrimination happens at the
  // advice level (AdviceBase::matches), so "Point.new" as a *method* call
  // still matches textually.
  const aop::Pattern p("Point.new");
  EXPECT_TRUE(
      p.matches({"Point", "new", aop::JoinPointKind::kConstructorCall}));
  EXPECT_TRUE(p.matches({"Point", "new", aop::JoinPointKind::kMethodCall}));
}

TEST(AdviceKind, CtorAdviceDoesNotMatchMethodCalls) {
  // Even a match-everything pattern on constructor advice must not bleed
  // into method-call join points (and vice versa): kinds are disjoint.
  aop::Aspect aspect("KindCheck");
  auto& ctor_advice = aspect.around_new<apar::test::Point, int, int>(
      aop::order::kDefault, aop::Scope::any(),
      [](auto& inv) { return inv.proceed(); });
  auto& call_advice = aspect.around_call<apar::test::Point, void, int>(
      aop::Pattern("Point.*"), aop::order::kDefault, aop::Scope::any(),
      [](auto& inv) { return inv.proceed(); });

  const aop::Signature ctor{"Point", "new",
                            aop::JoinPointKind::kConstructorCall};
  const aop::Signature call{"Point", "moveX", aop::JoinPointKind::kMethodCall};
  EXPECT_TRUE(ctor_advice.matches(ctor));
  EXPECT_FALSE(ctor_advice.matches(call));
  EXPECT_TRUE(call_advice.matches(call));
  EXPECT_FALSE(call_advice.matches(ctor));
}
