#include <gtest/gtest.h>

#include "apar/aop/signature.hpp"

namespace aop = apar::aop;

TEST(Glob, ExactMatch) {
  EXPECT_TRUE(aop::Pattern::glob_match("filter", "filter"));
  EXPECT_FALSE(aop::Pattern::glob_match("filter", "filters"));
  EXPECT_FALSE(aop::Pattern::glob_match("filters", "filter"));
}

TEST(Glob, TrailingStar) {
  EXPECT_TRUE(aop::Pattern::glob_match("move*", "moveX"));
  EXPECT_TRUE(aop::Pattern::glob_match("move*", "move"));
  EXPECT_FALSE(aop::Pattern::glob_match("move*", "mov"));
}

TEST(Glob, LeadingStar) {
  EXPECT_TRUE(aop::Pattern::glob_match("*Filter", "PrimeFilter"));
  EXPECT_FALSE(aop::Pattern::glob_match("*Filter", "PrimeFilters"));
}

TEST(Glob, InnerStar) {
  EXPECT_TRUE(aop::Pattern::glob_match("get*Value", "getIntValue"));
  EXPECT_TRUE(aop::Pattern::glob_match("get*Value", "getValue"));
  EXPECT_FALSE(aop::Pattern::glob_match("get*Value", "getValues"));
}

TEST(Glob, MultipleStars) {
  EXPECT_TRUE(aop::Pattern::glob_match("*e*t*", "element"));
  EXPECT_TRUE(aop::Pattern::glob_match("**", "anything"));
  EXPECT_TRUE(aop::Pattern::glob_match("*", ""));
}

TEST(Glob, StarRequiresRemainingSuffix) {
  EXPECT_FALSE(aop::Pattern::glob_match("a*b", "a"));
  EXPECT_TRUE(aop::Pattern::glob_match("a*b", "ab"));
  EXPECT_TRUE(aop::Pattern::glob_match("a*b", "axxxb"));
  EXPECT_FALSE(aop::Pattern::glob_match("a*b", "axxxbc"));
}

TEST(Pattern, ParsesClassAndMethod) {
  const aop::Pattern p("PrimeFilter.filter");
  EXPECT_EQ(p.class_pattern(), "PrimeFilter");
  EXPECT_EQ(p.method_pattern(), "filter");
}

TEST(Pattern, ClassOnlyMatchesAnyMethod) {
  const aop::Pattern p("PrimeFilter");
  const aop::Signature sig{"PrimeFilter", "filter",
                           aop::JoinPointKind::kMethodCall};
  const aop::Signature ctor{"PrimeFilter", "new",
                            aop::JoinPointKind::kConstructorCall};
  EXPECT_TRUE(p.matches(sig));
  EXPECT_TRUE(p.matches(ctor));
}

TEST(Pattern, WildcardMethod) {
  const aop::Pattern p("Point.move*");
  EXPECT_TRUE(p.matches({"Point", "moveX", aop::JoinPointKind::kMethodCall}));
  EXPECT_TRUE(p.matches({"Point", "moveY", aop::JoinPointKind::kMethodCall}));
  EXPECT_FALSE(p.matches({"Point", "reset", aop::JoinPointKind::kMethodCall}));
  EXPECT_FALSE(
      p.matches({"Line", "moveX", aop::JoinPointKind::kMethodCall}));
}

TEST(Pattern, WildcardClass) {
  const aop::Pattern p("*.filter");
  EXPECT_TRUE(
      p.matches({"PrimeFilter", "filter", aop::JoinPointKind::kMethodCall}));
  EXPECT_TRUE(p.matches({"Other", "filter", aop::JoinPointKind::kMethodCall}));
}

TEST(Pattern, DefaultMatchesEverything) {
  const aop::Pattern p;
  EXPECT_TRUE(p.matches({"A", "b", aop::JoinPointKind::kMethodCall}));
  EXPECT_TRUE(p.matches({"C", "new", aop::JoinPointKind::kConstructorCall}));
}

TEST(Pattern, EmptySegmentsBecomeWildcards) {
  const aop::Pattern p(".");
  EXPECT_TRUE(p.matches({"A", "b", aop::JoinPointKind::kMethodCall}));
}

TEST(Signature, StrFormatsClassDotMethod) {
  const aop::Signature sig{"PrimeFilter", "filter",
                           aop::JoinPointKind::kMethodCall};
  EXPECT_EQ(sig.str(), "PrimeFilter.filter");
}
