#pragma once

#include <string>
#include <vector>

#include "apar/aop/aop.hpp"

namespace apar::test {

/// The paper's §3 running example.
class Point {
 public:
  Point() = default;
  Point(int x, int y) : x_(x), y_(y) {}

  void moveX(int delta) { x_ += delta; }
  void moveY(int delta) { y_ += delta; }
  [[nodiscard]] int x() const { return x_; }
  [[nodiscard]] int y() const { return y_; }

 private:
  int x_ = 0;
  int y_ = 0;
};

/// A small server class for call-split / routing tests: `process` mutates
/// the pack in place (like PrimeFilter::filter) and records what it saw.
class Worker {
 public:
  explicit Worker(int id) : id_(id) {}

  void process(std::vector<int>& pack) {
    for (int& v : pack) v += id_;
    packs_seen_.push_back(pack.size());
  }

  [[nodiscard]] int compute(int x) const { return x * 2 + id_; }

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::vector<std::size_t>& packs_seen() const {
    return packs_seen_;
  }

 private:
  int id_;
  std::vector<std::size_t> packs_seen_;
};

}  // namespace apar::test

APAR_CLASS_NAME(apar::test::Point, "Point");
APAR_METHOD_NAME(&apar::test::Point::moveX, "moveX");
APAR_METHOD_NAME(&apar::test::Point::moveY, "moveY");

APAR_CLASS_NAME(apar::test::Worker, "Worker");
APAR_METHOD_NAME(&apar::test::Worker::process, "process");
APAR_METHOD_NAME(&apar::test::Worker::compute, "compute");
