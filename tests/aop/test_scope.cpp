#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "fixtures.hpp"

namespace aop = apar::aop;
using apar::test::Worker;

TEST(Scope, CoreOnlyAdviceSkipsAspectMadeCalls) {
  // Paper block 2 vs block 3: the split advice must apply only to calls
  // from core functionality, or it would re-split its own calls forever.
  aop::Context ctx;
  std::atomic<int> split_entries{0};
  auto splitter = std::make_shared<aop::Aspect>("split");
  splitter->around_method<&Worker::process>(
      aop::order::kPartitionSplit, aop::Scope::core_only(),
      [&split_entries](auto& inv) {
        ++split_entries;
        auto& [pack] = inv.args();
        // Re-issue the call through the context: a NEW top-level call from
        // within aspect code. core_only must not intercept it again.
        std::vector<int> copy = pack;
        inv.context().template call<&Worker::process>(inv.target(), copy);
      });
  ctx.attach(splitter);
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(split_entries.load(), 1);
  EXPECT_EQ(w.local()->packs_seen().size(), 1u);
}

TEST(Scope, AnyScopedAdviceAppliesRecursively) {
  // Paper block 3 (forward): applies to aspect-made calls too, terminating
  // through its own data (the `next` map).
  aop::Context ctx;
  auto w1 = ctx.create<Worker>(1);
  auto w2 = ctx.create<Worker>(2);
  auto w3 = ctx.create<Worker>(3);
  std::map<const void*, aop::Ref<Worker>> next;
  next[w1.identity()] = w2;
  next[w2.identity()] = w3;

  auto forward = std::make_shared<aop::Aspect>("forward");
  forward->around_method<&Worker::process>(
      aop::order::kPartitionForward, aop::Scope::any(),
      [&next](auto& inv) {
        inv.proceed();
        auto it = next.find(inv.target().identity());
        if (it != next.end()) {
          auto& [pack] = inv.args();
          inv.context().template call<&Worker::process>(it->second, pack);
        }
      });
  ctx.attach(forward);

  std::vector<int> pack{0};
  ctx.call<&Worker::process>(w1, pack);
  // The call propagated down the whole chain, each stage mutating in place.
  EXPECT_EQ(w1.local()->packs_seen().size(), 1u);
  EXPECT_EQ(w2.local()->packs_seen().size(), 1u);
  EXPECT_EQ(w3.local()->packs_seen().size(), 1u);
  EXPECT_EQ(pack[0], 1 + 2 + 3);
}

TEST(Scope, WithinMatchesOnlyInsideNamedAspect) {
  aop::Context ctx;
  std::atomic<int> inside_calls{0};

  auto outer = std::make_shared<aop::Aspect>("outer");
  outer->around_method<&Worker::process>(
      100, aop::Scope::core_only(), [](auto& inv) {
        auto& [pack] = inv.args();
        std::vector<int> copy = pack;
        inv.context().template call<&Worker::process>(inv.target(), copy);
      });

  auto probe = std::make_shared<aop::Aspect>("probe");
  probe->around_method<&Worker::process>(
      200, aop::Scope::within("outer"), [&inside_calls](auto& inv) {
        ++inside_calls;
        inv.proceed();
      });

  ctx.attach(outer);
  ctx.attach(probe);
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  // probe fires only for the call initiated inside `outer`, not for the
  // original core call.
  EXPECT_EQ(inside_calls.load(), 1);
}

TEST(Scope, NotWithinExcludesOwnCalls) {
  aop::Context ctx;
  std::atomic<int> entries{0};
  auto aspect = std::make_shared<aop::Aspect>("selfguard");
  aspect->around_method<&Worker::process>(
      aop::order::kDefault, aop::Scope::not_within("selfguard"),
      [&entries](auto& inv) {
        ++entries;
        auto& [pack] = inv.args();
        std::vector<int> copy = pack;
        // Would recurse forever without the not_within scope.
        inv.context().template call<&Worker::process>(inv.target(), copy);
      });
  ctx.attach(aspect);
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(entries.load(), 1);
  EXPECT_EQ(w.local()->packs_seen().size(), 1u);
}

TEST(Scope, ScopeIsEvaluatedAtCallInitiation) {
  // An advice chain in flight keeps its initiation-time scoping even if it
  // proceeds through several advice frames.
  aop::Context ctx;
  std::vector<std::string> trace;
  auto a = std::make_shared<aop::Aspect>("A");
  a->around_method<&Worker::process>(100, aop::Scope::core_only(),
                                     [&trace](auto& inv) {
                                       trace.push_back("A");
                                       inv.proceed();
                                     });
  auto b = std::make_shared<aop::Aspect>("B");
  b->around_method<&Worker::process>(200, aop::Scope::core_only(),
                                     [&trace](auto& inv) {
                                       trace.push_back("B");
                                       inv.proceed();
                                     });
  ctx.attach(a);
  ctx.attach(b);
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  // B is core_only and the call was initiated in core, so B runs even
  // though by the time the chain reaches it, frame A is on the stack.
  EXPECT_EQ(trace, (std::vector<std::string>{"A", "B"}));
}

TEST(Scope, ContinuationPreservesInitiationScope) {
  // A detached (async) continuation must carry the aspect stack with it so
  // downstream within()-scoping still sees the spawning aspect.
  aop::Context ctx;
  std::atomic<int> within_hits{0};
  auto async = std::make_shared<aop::Aspect>("async");
  async->around_method<&Worker::process>(
      100, aop::Scope::core_only(), [](auto& inv) {
        auto k = inv.continuation();
        inv.context().tasks().spawn(k);
      });
  auto probe = std::make_shared<aop::Aspect>("probe");
  probe->around_method<&Worker::process>(
      200, aop::Scope::any(), [&within_hits](auto& inv) {
        ++within_hits;
        inv.proceed();
      });
  ctx.attach(async);
  ctx.attach(probe);
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  ctx.quiesce();
  EXPECT_EQ(within_hits.load(), 1);
  EXPECT_EQ(w.local()->packs_seen().size(), 1u);
}

TEST(Scope, CtorAdviceRespectsCoreOnly) {
  aop::Context ctx;
  std::atomic<int> duplications{0};
  auto dup = std::make_shared<aop::Aspect>("dup");
  dup->around_new<Worker, int>(
      aop::order::kPartitionSplit, aop::Scope::core_only(),
      [&duplications](aop::CtorInvocation<Worker, int>& inv) {
        ++duplications;
        // Creating more workers from aspect code must not re-trigger this
        // same core_only advice.
        auto extra = inv.context().create<Worker>(99);
        (void)extra;
        return inv.proceed();
      });
  ctx.attach(dup);
  auto w = ctx.create<Worker>(1);
  EXPECT_EQ(duplications.load(), 1);
  EXPECT_EQ(w.local()->id(), 1);
}
