#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fixtures.hpp"

namespace ct = apar::aop::ct;
using apar::test::Point;
using apar::test::Worker;

namespace {

std::vector<std::string>& trace() {
  static std::vector<std::string> t;
  return t;
}

template <char Tag>
struct Tracer {
  template <class Next, class T, class... A>
  static decltype(auto) around(Next&& next, T&, A&&... args) {
    trace().push_back(std::string{Tag} + ":before");
    if constexpr (std::is_void_v<decltype(next(std::forward<A>(args)...))>) {
      next(std::forward<A>(args)...);
      trace().push_back(std::string{Tag} + ":after");
    } else {
      decltype(auto) r = next(std::forward<A>(args)...);
      trace().push_back(std::string{Tag} + ":after");
      return r;
    }
  }
};

using TraceA = Tracer<'A'>;
using TraceB = Tracer<'B'>;

struct Doubler {
  template <class Next, class T, class... A>
  static auto around(Next&& next, T&, A&&... args) {
    return 2 * next(std::forward<A>(args)...);
  }
};

template <class Self>
struct Migratable {
  std::string last_migration;
  void migrate(const std::string& node) { last_migration = node; }
};

}  // namespace

TEST(StaticWeave, NoAspectsIsDirectCall) {
  ct::Woven<Worker> woven(3);
  EXPECT_EQ(woven.call<&Worker::compute>(10), 23);
}

TEST(StaticWeave, SingleAspectWraps) {
  trace().clear();
  ct::Woven<Worker, TraceA> woven(0);
  EXPECT_EQ(woven.call<&Worker::compute>(5), 10);
  EXPECT_EQ(trace(), (std::vector<std::string>{"A:before", "A:after"}));
}

TEST(StaticWeave, FirstListedAspectIsOutermost) {
  trace().clear();
  ct::Woven<Worker, TraceA, TraceB> woven(0);
  woven.call<&Worker::compute>(1);
  EXPECT_EQ(trace(), (std::vector<std::string>{"A:before", "B:before",
                                               "B:after", "A:after"}));
}

TEST(StaticWeave, AspectCanTransformResult) {
  ct::Woven<Worker, Doubler> woven(1);
  EXPECT_EQ(woven.call<&Worker::compute>(10), 42);  // 2 * (10*2+1)
}

TEST(StaticWeave, VoidMethodsSupported) {
  ct::Woven<Point, TraceA> woven(0, 0);
  trace().clear();
  woven.call<&Point::moveX>(4);
  EXPECT_EQ(woven.object().x(), 4);
  EXPECT_EQ(trace().size(), 2u);
}

TEST(StaticWeave, ReferenceArgumentsPassThrough) {
  ct::Woven<Worker, TraceA> woven(5);
  std::vector<int> pack{1, 2};
  woven.call<&Worker::process>(pack);
  EXPECT_EQ(pack, (std::vector<int>{6, 7}));
}

TEST(StaticWeave, IntroduceAddsMembers) {
  // The paper's static crosscutting (Figure 2): add migrate() to Point
  // without editing Point.
  ct::Introduce<Point, Migratable> p(1, 2);
  p.moveX(1);
  p.migrate("node-3");
  EXPECT_EQ(p.x(), 2);
  EXPECT_EQ(p.last_migration, "node-3");
}
