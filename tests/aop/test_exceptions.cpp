// Exception behaviour across woven call chains: errors thrown by core
// methods or advice must propagate through proceed() like ordinary calls,
// and asynchronous continuations must surface them at quiesce().
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>

#include "fixtures.hpp"

namespace aop = apar::aop;
using apar::test::Worker;

namespace {

class Throwy {
 public:
  explicit Throwy(bool armed) : armed_(armed) {}

  void touch(int x) {
    ++touches_;
    if (armed_) throw std::runtime_error("core method failed");
    value_ += x;
  }

  [[nodiscard]] int value() const { return value_; }
  [[nodiscard]] int touches() const { return touches_; }

 private:
  bool armed_;
  int value_ = 0;
  int touches_ = 0;
};

}  // namespace

APAR_CLASS_NAME(Throwy, "Throwy");
APAR_METHOD_NAME(&Throwy::touch, "touch");

TEST(AdviceExceptions, CoreExceptionPropagatesThroughAdvice) {
  aop::Context ctx;
  std::atomic<int> unwound{0};
  auto aspect = std::make_shared<aop::Aspect>("wrapper");
  aspect->around_method<&Throwy::touch>(
      aop::order::kDefault, aop::Scope::any(), [&unwound](auto& inv) {
        try {
          inv.proceed();
        } catch (...) {
          ++unwound;
          throw;  // advice sees it, rethrows
        }
      });
  ctx.attach(aspect);
  auto t = ctx.create<Throwy>(true);
  EXPECT_THROW(ctx.call<&Throwy::touch>(t, 1), std::runtime_error);
  EXPECT_EQ(unwound.load(), 1);
}

TEST(AdviceExceptions, AdviceExceptionReplacesCall) {
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("guard");
  aspect->around_method<&Throwy::touch>(
      aop::order::kDefault, aop::Scope::any(), [](auto&) -> void {
        throw std::logic_error("advice vetoed the call");
      });
  ctx.attach(aspect);
  auto t = ctx.create<Throwy>(false);
  EXPECT_THROW(ctx.call<&Throwy::touch>(t, 1), std::logic_error);
  EXPECT_EQ(t.local()->touches(), 0);  // the core method never ran
}

TEST(AdviceExceptions, AfterAdviceSkippedOnThrowLikeAfterReturning) {
  // after_method implements AspectJ's `after returning`: it must NOT run
  // when the call unwinds.
  aop::Context ctx;
  std::atomic<int> after_runs{0};
  auto aspect = std::make_shared<aop::Aspect>("after");
  aspect->after_method<&Throwy::touch>(aop::order::kDefault,
                                       aop::Scope::any(),
                                       [&](auto&) { ++after_runs; });
  ctx.attach(aspect);
  auto t = ctx.create<Throwy>(true);
  EXPECT_THROW(ctx.call<&Throwy::touch>(t, 1), std::runtime_error);
  EXPECT_EQ(after_runs.load(), 0);
}

TEST(AdviceExceptions, CtorAdviceExceptionPropagates) {
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("ctor-guard");
  aspect->around_new<Throwy, bool>(
      aop::order::kDefault, aop::Scope::any(),
      [](aop::CtorInvocation<Throwy, bool>&) -> aop::Ref<Throwy> {
        throw std::runtime_error("creation vetoed");
      });
  ctx.attach(aspect);
  EXPECT_THROW(ctx.create<Throwy>(false), std::runtime_error);
}

TEST(AdviceExceptions, AsyncContinuationErrorSurfacesAtQuiesce) {
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("async");
  aspect->around_method<&Throwy::touch>(
      aop::order::kConcurrencyAsync, aop::Scope::any(), [](auto& inv) {
        auto k = inv.continuation();
        inv.context().tasks().spawn(k);
      });
  ctx.attach(aspect);
  auto t = ctx.create<Throwy>(true);
  EXPECT_NO_THROW(ctx.call<&Throwy::touch>(t, 1));  // async: returns at once
  EXPECT_THROW(ctx.quiesce(), std::runtime_error);  // surfaces here
  EXPECT_NO_THROW(ctx.quiesce());                   // consumed
}

TEST(AdviceExceptions, SplitStopsAtFirstFailure) {
  // Multi-proceed runs downstream chains sequentially; a failure in pack 2
  // aborts pack 3 (exceptions are not swallowed by the split).
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("split");
  aspect->around_method<&Throwy::touch>(
      aop::order::kPartitionSplit, aop::Scope::core_only(), [](auto& inv) {
        inv.proceed_with(1);
        inv.proceed_with(2);  // will throw
        inv.proceed_with(3);  // never reached
      });
  ctx.attach(aspect);
  auto t = ctx.create<Throwy>(true);
  EXPECT_THROW(ctx.call<&Throwy::touch>(t, 0), std::runtime_error);
  EXPECT_EQ(t.local()->touches(), 1);
}

TEST(AdviceExceptions, CallFutureCapturesError) {
  aop::Context ctx;
  auto t = ctx.create<Throwy>(true);
  auto f = ctx.call_future<&Throwy::touch>(t, 1);
  EXPECT_THROW(f.get(), std::runtime_error);
  // call_future routed the error into the future; the task group saw a
  // clean task.
  EXPECT_NO_THROW(ctx.quiesce());
}

TEST(AdviceExceptions, ThrowingAdviceLeavesScopeStackBalanced) {
  // After an exception unwinds through advice frames, within-scoping must
  // still work (the thread-local stack may not leak frames).
  aop::Context ctx;
  auto thrower = std::make_shared<aop::Aspect>("thrower");
  thrower->around_method<&Worker::process>(
      aop::order::kDefault, aop::Scope::any(),
      [](auto&) -> void { throw std::runtime_error("x"); });
  ctx.attach(thrower);
  auto w = ctx.create<Worker>(1);
  std::vector<int> pack{1};
  EXPECT_THROW(ctx.call<&Worker::process>(w, pack), std::runtime_error);
  ctx.detach("thrower");

  // A core_only advice must now fire: if a frame leaked, the stack would
  // not be empty and core_only would reject the call.
  std::atomic<int> core_hits{0};
  auto probe = std::make_shared<aop::Aspect>("probe");
  probe->around_method<&Worker::process>(
      aop::order::kDefault, aop::Scope::core_only(), [&core_hits](auto& inv) {
        ++core_hits;
        inv.proceed();
      });
  ctx.attach(probe);
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(core_hits.load(), 1);
}
