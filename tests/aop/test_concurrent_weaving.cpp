// Thread-safety of the weaver itself: aspects plugged and unplugged while
// calls are in flight on other threads — the paper's "(un)plugged on the
// fly" claim under contention. Chains snapshot their advice (with
// keepalives), so a detach can never invalidate a running call.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "fixtures.hpp"

namespace aop = apar::aop;
using apar::test::Worker;

TEST(ConcurrentWeaving, PlugUnplugWhileCallsRun) {
  aop::Context ctx;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> advised{0};

  // One worker object per caller thread: Worker itself is not thread safe
  // and no sync aspect is plugged — isolation is the test's business.
  constexpr int kCallers = 3;
  std::vector<aop::Ref<Worker>> workers;
  for (int t = 0; t < kCallers; ++t) workers.push_back(ctx.create<Worker>(t));

  std::vector<std::uint64_t> calls(kCallers, 0);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      while (!stop) {
        std::vector<int> pack{1};
        ctx.call<&Worker::process>(workers[static_cast<size_t>(t)], pack);
        ++calls[static_cast<size_t>(t)];
      }
    });
  }

  // Churn: attach/detach an advice-bearing aspect as fast as possible.
  for (int round = 0; round < 200; ++round) {
    auto aspect = std::make_shared<aop::Aspect>("churn");
    aspect->before_method<&Worker::process>(
        aop::order::kDefault, aop::Scope::any(),
        [&advised](auto&) { ++advised; });
    ctx.attach(aspect);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    ctx.detach("churn");
  }
  stop = true;
  for (auto& t : callers) t.join();

  // Every call reached its object exactly once, churn notwithstanding.
  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(
        workers[static_cast<size_t>(t)].local()->packs_seen().size(),
        calls[static_cast<size_t>(t)])
        << "caller " << t;
    EXPECT_GT(calls[static_cast<size_t>(t)], 0u);
  }
}

TEST(ConcurrentWeaving, EnableDisableChurnIsSafe) {
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("toggle");
  std::atomic<std::uint64_t> advised{0};
  aspect->before_method<&Worker::process>(
      aop::order::kDefault, aop::Scope::any(),
      [&advised](auto&) { ++advised; });
  ctx.attach(aspect);
  auto w = ctx.create<Worker>(1);

  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop) {
      aspect->set_enabled(false);
      aspect->set_enabled(true);
    }
  });
  for (int i = 0; i < 5'000; ++i) {
    std::vector<int> pack{1};
    ctx.call<&Worker::process>(w, pack);
  }
  stop = true;
  toggler.join();
  EXPECT_EQ(w.local()->packs_seen().size(), 5'000u);
  EXPECT_LE(advised.load(), 5'000u);
}

TEST(ConcurrentWeaving, ManyContextsAreIndependent) {
  // Contexts share nothing but the thread-local scope stack; concurrent
  // use of independent contexts must not interfere.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&failures, t] {
      aop::Context ctx;
      auto aspect = std::make_shared<aop::Aspect>("local");
      std::atomic<int> hits{0};
      aspect->before_method<&Worker::process>(
          aop::order::kDefault, aop::Scope::any(), [&hits](auto&) { ++hits; });
      ctx.attach(aspect);
      auto w = ctx.create<Worker>(t);
      for (int i = 0; i < 500; ++i) {
        std::vector<int> pack{1};
        ctx.call<&Worker::process>(w, pack);
      }
      if (hits.load() != 500) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}
