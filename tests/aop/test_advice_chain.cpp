#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fixtures.hpp"

namespace aop = apar::aop;
using apar::test::Point;
using apar::test::Worker;

namespace {

/// Helper: attach a fresh aspect with one piece of around advice on
/// Worker::process.
template <class Fn>
std::shared_ptr<aop::Aspect> process_around(aop::Context& ctx,
                                            const std::string& name,
                                            int order, aop::Scope scope,
                                            Fn fn) {
  auto aspect = std::make_shared<aop::Aspect>(name);
  aspect->around_method<&Worker::process>(order, std::move(scope),
                                          std::move(fn));
  ctx.attach(aspect);
  return aspect;
}

}  // namespace

TEST(AdviceChain, AroundWrapsCall) {
  aop::Context ctx;
  std::vector<std::string> trace;
  process_around(ctx, "tracer", aop::order::kDefault, aop::Scope::any(),
                 [&](auto& inv) {
                   trace.push_back("before");
                   inv.proceed();
                   trace.push_back("after");
                 });
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(trace, (std::vector<std::string>{"before", "after"}));
  EXPECT_EQ(w.local()->packs_seen().size(), 1u);
}

TEST(AdviceChain, AroundCanReplaceCallEntirely) {
  aop::Context ctx;
  process_around(ctx, "replacer", aop::order::kDefault, aop::Scope::any(),
                 [](auto&) { /* never proceeds */ });
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_TRUE(w.local()->packs_seen().empty());
}

TEST(AdviceChain, OrderingLowRunsOutermost) {
  aop::Context ctx;
  std::vector<int> trace;
  process_around(ctx, "inner", 200, aop::Scope::any(), [&](auto& inv) {
    trace.push_back(200);
    inv.proceed();
  });
  process_around(ctx, "outer", 100, aop::Scope::any(), [&](auto& inv) {
    trace.push_back(100);
    inv.proceed();
  });
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(trace, (std::vector<int>{100, 200}));
}

TEST(AdviceChain, EqualOrderRunsInAttachOrder) {
  aop::Context ctx;
  std::vector<std::string> trace;
  process_around(ctx, "first", 100, aop::Scope::any(), [&](auto& inv) {
    trace.push_back("first");
    inv.proceed();
  });
  process_around(ctx, "second", 100, aop::Scope::any(), [&](auto& inv) {
    trace.push_back("second");
    inv.proceed();
  });
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(trace, (std::vector<std::string>{"first", "second"}));
}

TEST(AdviceChain, MultiProceedSplitsTheCall) {
  // The paper's method call split (§4.1 Figure 5): one core call becomes
  // several, each flowing through the rest of the chain independently.
  aop::Context ctx;
  process_around(ctx, "split", aop::order::kPartitionSplit,
                 aop::Scope::core_only(), [](auto& inv) {
                   auto& [pack] = inv.args();
                   const std::size_t half = pack.size() / 2;
                   std::vector<int> lo(pack.begin(),
                                       pack.begin() + static_cast<long>(half));
                   std::vector<int> hi(pack.begin() + static_cast<long>(half),
                                       pack.end());
                   inv.proceed_with(lo);
                   inv.proceed_with(hi);
                 });
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1, 2, 3, 4, 5, 6};
  ctx.call<&Worker::process>(w, pack);
  ASSERT_EQ(w.local()->packs_seen().size(), 2u);
  EXPECT_EQ(w.local()->packs_seen()[0], 3u);
  EXPECT_EQ(w.local()->packs_seen()[1], 3u);
}

TEST(AdviceChain, RetargetRoutesToAnotherObject) {
  // The farm's worker selection (§5.2): the call made to the "first"
  // object is redirected to a chosen worker.
  aop::Context ctx;
  auto w1 = ctx.create<Worker>(1);
  auto w2 = ctx.create<Worker>(2);
  process_around(ctx, "route", aop::order::kPartitionForward,
                 aop::Scope::any(), [w2](auto& inv) {
                   inv.retarget(w2);
                   inv.proceed();
                 });
  std::vector<int> pack{0};
  ctx.call<&Worker::process>(w1, pack);
  EXPECT_TRUE(w1.local()->packs_seen().empty());
  ASSERT_EQ(w2.local()->packs_seen().size(), 1u);
  EXPECT_EQ(pack[0], 2);  // mutated by worker 2 (id added in place)
}

TEST(AdviceChain, CtorAroundDuplicatesObjects) {
  // Object duplication (§4.1 Figure 4): one core `new` yields a set of
  // aspect-managed instances; the client receives the first.
  aop::Context ctx;
  std::vector<aop::Ref<Worker>> managed;
  auto aspect = std::make_shared<aop::Aspect>("duplication");
  aspect->around_new<Worker, int>(
      aop::order::kPartitionSplit, aop::Scope::core_only(),
      [&managed](aop::CtorInvocation<Worker, int>& inv) {
        aop::Ref<Worker> first;
        for (int i = 0; i < 3; ++i) {
          auto ref = inv.proceed_with(100 + i);
          if (!first.valid()) first = ref;
          managed.push_back(ref);
        }
        return first;
      });
  ctx.attach(aspect);
  auto ref = ctx.create<Worker>(0);
  ASSERT_EQ(managed.size(), 3u);
  EXPECT_EQ(ref.local()->id(), 100);  // client got the first duplicate
  EXPECT_EQ(managed[1].local()->id(), 101);
  EXPECT_EQ(managed[2].local()->id(), 102);
}

TEST(AdviceChain, CtorProceedPreservesOriginalArgs) {
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("dup2");
  std::vector<aop::Ref<Worker>> refs;
  aspect->around_new<Worker, int>(
      aop::order::kDefault, aop::Scope::any(),
      [&refs](aop::CtorInvocation<Worker, int>& inv) {
        refs.push_back(inv.proceed());
        refs.push_back(inv.proceed());  // same args, twice
        return refs.front();
      });
  ctx.attach(aspect);
  ctx.create<Worker>(7);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].local()->id(), 7);
  EXPECT_EQ(refs[1].local()->id(), 7);
  EXPECT_NE(refs[0].identity(), refs[1].identity());
}

TEST(AdviceChain, BeforeAndAfterSugar) {
  aop::Context ctx;
  std::vector<std::string> trace;
  auto aspect = std::make_shared<aop::Aspect>("sugar");
  aspect->before_method<&Worker::compute>(
      aop::order::kDefault, aop::Scope::any(),
      [&](auto&) { trace.push_back("before"); });
  aspect->after_method<&Worker::compute>(
      aop::order::kDefault, aop::Scope::any(),
      [&](auto&) { trace.push_back("after"); });
  ctx.attach(aspect);
  auto w = ctx.create<Worker>(0);
  EXPECT_EQ(ctx.call<&Worker::compute>(w, 5), 10);
  EXPECT_EQ(trace, (std::vector<std::string>{"before", "after"}));
}

TEST(AdviceChain, AroundCanRewriteResult) {
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("negate");
  aspect->around_method<&Worker::compute>(
      aop::order::kDefault, aop::Scope::any(),
      [](auto& inv) { return -inv.proceed(); });
  ctx.attach(aspect);
  auto w = ctx.create<Worker>(0);
  EXPECT_EQ(ctx.call<&Worker::compute>(w, 5), -10);
}

TEST(AdviceChain, WildcardPatternInterceptsMultipleMethods) {
  // The paper's logging aspect (Figure 3): `void Point.move*()`.
  aop::Context ctx;
  std::atomic<int> moves{0};
  auto aspect = std::make_shared<aop::Aspect>("logging");
  aspect->around_call<Point, void, int>(
      aop::Pattern("Point.move*"), aop::order::kDefault, aop::Scope::any(),
      [&moves](aop::CallInvocation<Point, void, int>& inv) {
        ++moves;
        inv.proceed();
      });
  ctx.attach(aspect);
  auto p = ctx.create<Point>(0, 0);
  ctx.call<&Point::moveX>(p, 10);
  ctx.call<&Point::moveY>(p, 5);
  EXPECT_EQ(moves.load(), 2);
  EXPECT_EQ(p.local()->x(), 10);
  EXPECT_EQ(p.local()->y(), 5);
}

TEST(AdviceChain, ContinuationRunsRestOfChainOnAnotherThread) {
  // The concurrency aspect's mechanism (Figure 12): around advice captures
  // proceed() as a closure and runs it on a new tracked thread.
  aop::Context ctx;
  std::atomic<int> advice_thread_ran{0};
  process_around(ctx, "async", aop::order::kConcurrencyAsync,
                 aop::Scope::any(), [&](auto& inv) {
                   auto k = inv.continuation();
                   inv.context().tasks().spawn([k, &advice_thread_ran] {
                     k();
                     ++advice_thread_ran;
                   });
                 });
  auto w = ctx.create<Worker>(1);
  std::vector<int> pack{1, 2, 3};
  ctx.call<&Worker::process>(w, pack);
  ctx.quiesce();
  EXPECT_EQ(advice_thread_ran.load(), 1);
  ASSERT_EQ(w.local()->packs_seen().size(), 1u);
  // Asynchronous calls copy arguments by value: the caller's pack must be
  // untouched even though Worker::process mutates its parameter.
  EXPECT_EQ(pack, (std::vector<int>{1, 2, 3}));
}

TEST(AdviceChain, ContinuationSeesDownstreamAdvice) {
  aop::Context ctx;
  std::vector<int> trace;
  std::mutex trace_mutex;
  process_around(ctx, "async", 100, aop::Scope::any(), [&](auto& inv) {
    auto k = inv.continuation();
    inv.context().tasks().spawn(k);
  });
  process_around(ctx, "downstream", 200, aop::Scope::any(), [&](auto& inv) {
    {
      std::lock_guard lock(trace_mutex);
      trace.push_back(1);
    }
    inv.proceed();
  });
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1};
  ctx.call<&Worker::process>(w, pack);
  ctx.quiesce();
  EXPECT_EQ(trace, (std::vector<int>{1}));
  EXPECT_EQ(w.local()->packs_seen().size(), 1u);
}

TEST(AdviceChain, SplitThenPerCallAdviceComposition) {
  // Composition of split (outer) and per-call advice (inner): the inner
  // advice must run once per split call — the structural core of Figure 11.
  aop::Context ctx;
  std::atomic<int> inner_calls{0};
  process_around(ctx, "split", 100, aop::Scope::core_only(), [](auto& inv) {
    auto& [pack] = inv.args();
    for (int v : pack) {
      std::vector<int> single{v};
      inv.proceed_with(single);
    }
  });
  process_around(ctx, "counter", 200, aop::Scope::any(), [&](auto& inv) {
    ++inner_calls;
    inv.proceed();
  });
  auto w = ctx.create<Worker>(0);
  std::vector<int> pack{1, 2, 3, 4};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(inner_calls.load(), 4);
  EXPECT_EQ(w.local()->packs_seen().size(), 4u);
}
