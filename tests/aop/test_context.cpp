#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "fixtures.hpp"

namespace aop = apar::aop;
using apar::test::Point;
using apar::test::Worker;

TEST(Context, CreateWithoutAspectsIsPlainConstruction) {
  aop::Context ctx;
  auto p = ctx.create<Point>(3, 4);
  ASSERT_TRUE(p.is_local());
  EXPECT_EQ(p.local()->x(), 3);
  EXPECT_EQ(p.local()->y(), 4);
}

TEST(Context, CallWithoutAspectsIsPlainDispatch) {
  aop::Context ctx;
  auto p = ctx.create<Point>(0, 0);
  ctx.call<&Point::moveX>(p, 10);
  ctx.call<&Point::moveY>(p, 5);
  EXPECT_EQ(p.local()->x(), 10);
  EXPECT_EQ(p.local()->y(), 5);
}

TEST(Context, CallReturnsValue) {
  aop::Context ctx;
  auto w = ctx.create<Worker>(1);
  EXPECT_EQ(ctx.call<&Worker::compute>(w, 10), 21);
}

TEST(Context, ReferenceArgumentsMutateInPlaceWhenSynchronous) {
  aop::Context ctx;
  auto w = ctx.create<Worker>(5);
  std::vector<int> pack{1, 2, 3};
  ctx.call<&Worker::process>(w, pack);
  EXPECT_EQ(pack, (std::vector<int>{6, 7, 8}));
}

TEST(Context, AttachDetachFind) {
  aop::Context ctx;
  auto aspect = std::make_shared<aop::Aspect>("logging");
  ctx.attach(aspect);
  EXPECT_EQ(ctx.find("logging"), aspect);
  EXPECT_EQ(ctx.attached(), std::vector<std::string>{"logging"});
  auto removed = ctx.detach("logging");
  EXPECT_EQ(removed, aspect);
  EXPECT_EQ(ctx.find("logging"), nullptr);
  EXPECT_TRUE(ctx.attached().empty());
}

TEST(Context, DetachUnknownReturnsNull) {
  aop::Context ctx;
  EXPECT_EQ(ctx.detach("nope"), nullptr);
}

TEST(Context, DuplicateAttachThrows) {
  aop::Context ctx;
  ctx.attach(std::make_shared<aop::Aspect>("a"));
  EXPECT_THROW(ctx.attach(std::make_shared<aop::Aspect>("a")),
               std::invalid_argument);
}

TEST(Context, NullAttachThrows) {
  aop::Context ctx;
  EXPECT_THROW(ctx.attach(nullptr), std::invalid_argument);
}

TEST(Context, EpochBumpsOnPlugUnplug) {
  aop::Context ctx;
  const auto e0 = ctx.epoch();
  ctx.attach(std::make_shared<aop::Aspect>("a"));
  const auto e1 = ctx.epoch();
  EXPECT_GT(e1, e0);
  ctx.detach("a");
  EXPECT_GT(ctx.epoch(), e1);
}

TEST(Context, AttachChangesCallSemanticsImmediately) {
  aop::Context ctx;
  auto p = ctx.create<Point>(0, 0);
  std::atomic<int> intercepted{0};

  auto logging = std::make_shared<aop::Aspect>("logging");
  logging->before_method<&Point::moveX>(
      aop::order::kDefault, aop::Scope::any(),
      [&](auto&) { ++intercepted; });

  ctx.call<&Point::moveX>(p, 1);
  EXPECT_EQ(intercepted.load(), 0);

  ctx.attach(logging);
  ctx.call<&Point::moveX>(p, 1);
  EXPECT_EQ(intercepted.load(), 1);

  ctx.detach("logging");
  ctx.call<&Point::moveX>(p, 1);
  EXPECT_EQ(intercepted.load(), 1);
  EXPECT_EQ(p.local()->x(), 3);  // all three calls reached the object
}

TEST(Context, DisabledAspectIsSkippedWithoutDetaching) {
  aop::Context ctx;
  auto p = ctx.create<Point>(0, 0);
  std::atomic<int> intercepted{0};
  auto aspect = std::make_shared<aop::Aspect>("toggle");
  aspect->before_method<&Point::moveX>(aop::order::kDefault,
                                       aop::Scope::any(),
                                       [&](auto&) { ++intercepted; });
  ctx.attach(aspect);
  aspect->set_enabled(false);
  ctx.call<&Point::moveX>(p, 1);
  EXPECT_EQ(intercepted.load(), 0);
  aspect->set_enabled(true);
  ctx.call<&Point::moveX>(p, 1);
  EXPECT_EQ(intercepted.load(), 1);
}

TEST(Context, CacheDisabledStillWeavesCorrectly) {
  aop::Context ctx;
  ctx.set_cache_enabled(false);
  auto p = ctx.create<Point>(0, 0);
  std::atomic<int> intercepted{0};
  auto aspect = std::make_shared<aop::Aspect>("nc");
  aspect->before_method<&Point::moveX>(aop::order::kDefault,
                                       aop::Scope::any(),
                                       [&](auto&) { ++intercepted; });
  ctx.attach(aspect);
  for (int i = 0; i < 10; ++i) ctx.call<&Point::moveX>(p, 1);
  EXPECT_EQ(intercepted.load(), 10);
  EXPECT_EQ(p.local()->x(), 10);
}

TEST(Context, AdviceChainCacheInvalidatedByPlugging) {
  // The advice-chain cache must never serve stale chains: a call weaves
  // the (cached) empty chain, then an aspect is attached and the very
  // next call must see it; detaching must hide it again.
  aop::Context ctx;
  auto p = ctx.create<Point>(0, 0);
  ctx.call<&Point::moveX>(p, 1);  // caches the empty chain

  std::atomic<int> hits{0};
  auto aspect = std::make_shared<aop::Aspect>("late");
  aspect->before_method<&Point::moveX>(aop::order::kDefault,
                                       aop::Scope::any(),
                                       [&](auto&) { ++hits; });
  ctx.attach(aspect);
  ctx.call<&Point::moveX>(p, 1);
  EXPECT_EQ(hits.load(), 1);

  ctx.detach("late");
  ctx.call<&Point::moveX>(p, 1);  // cached WITH advice — must re-resolve
  EXPECT_EQ(hits.load(), 1);
  EXPECT_EQ(p.local()->x(), 3);
}

TEST(Context, CacheSeparatesMethodsOfSameShape) {
  // moveX and moveY share the advice-record type (void(Point::*)(int));
  // the cache must still key them apart.
  aop::Context ctx;
  auto p = ctx.create<Point>(0, 0);
  std::atomic<int> x_hits{0};
  auto aspect = std::make_shared<aop::Aspect>("xonly");
  aspect->before_method<&Point::moveX>(aop::order::kDefault,
                                       aop::Scope::any(),
                                       [&](auto&) { ++x_hits; });
  ctx.attach(aspect);
  ctx.call<&Point::moveY>(p, 1);  // caches moveY's (empty) chain first
  ctx.call<&Point::moveX>(p, 1);
  ctx.call<&Point::moveY>(p, 1);
  EXPECT_EQ(x_hits.load(), 1);
  EXPECT_EQ(p.local()->x(), 1);
  EXPECT_EQ(p.local()->y(), 2);
}

TEST(Context, CallFutureDeliversResult) {
  aop::Context ctx;
  auto w = ctx.create<Worker>(3);
  auto f = ctx.call_future<&Worker::compute>(w, 100);
  EXPECT_EQ(f.get(), 203);
  ctx.quiesce();
}

TEST(Context, CallFutureVoid) {
  aop::Context ctx;
  auto p = ctx.create<Point>(0, 0);
  auto f = ctx.call_future<&Point::moveX>(p, 7);
  f.get();
  EXPECT_EQ(p.local()->x(), 7);
  ctx.quiesce();
}

TEST(Context, QuiesceOnEmptyContextReturns) {
  aop::Context ctx;
  EXPECT_NO_THROW(ctx.quiesce());
}

TEST(Ref, IdentityStableAcrossCopies) {
  aop::Context ctx;
  auto a = ctx.create<Point>(0, 0);
  auto b = a;
  EXPECT_EQ(a.identity(), b.identity());
  EXPECT_TRUE(a == b);
  auto c = ctx.create<Point>(0, 0);
  EXPECT_NE(a.identity(), c.identity());
}

TEST(Ref, InvalidRefBehaviour) {
  aop::Ref<Point> r;
  EXPECT_FALSE(r.valid());
  EXPECT_FALSE(r.is_local());
  EXPECT_FALSE(r.is_remote());
  EXPECT_EQ(r.local(), nullptr);
  EXPECT_THROW(r.local_or_throw(), aop::NotLocalError);
  EXPECT_EQ(r.describe(), "<null ref>");
}

namespace {
struct FakeBinding final : aop::RemoteBinding {
  [[nodiscard]] std::string describe() const override { return "node 2"; }
};
}  // namespace

TEST(Ref, RemoteRefThrowsOnLocalDispatch) {
  aop::Context ctx;
  auto remote = aop::Ref<Point>::make_remote(std::make_shared<FakeBinding>());
  EXPECT_TRUE(remote.is_remote());
  EXPECT_FALSE(remote.is_local());
  EXPECT_EQ(remote.describe(), "node 2");
  EXPECT_THROW(ctx.call<&Point::moveX>(remote, 1), aop::NotLocalError);
}
