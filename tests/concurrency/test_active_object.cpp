#include "apar/concurrency/active_object.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace acc = apar::concurrency;

TEST(ActiveObject, TasksRunInFifoOrder) {
  acc::ThreadPool pool(4);
  acc::ActiveObject active(pool);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i)
    active.enqueue([&order, i] { order.push_back(i); });  // no lock needed
  pool.drain();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ActiveObject, NeverRunsTwoTasksConcurrently) {
  acc::ThreadPool pool(4);
  acc::ActiveObject active(pool);
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  for (int i = 0; i < 200; ++i)
    active.enqueue([&] {
      if (++inside > 1) overlap = true;
      --inside;
    });
  pool.drain();
  EXPECT_FALSE(overlap.load());
}

TEST(ActiveObject, IndependentObjectsRunConcurrently) {
  acc::ThreadPool pool(4);
  acc::ActiveObject a(pool), b(pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    a.enqueue([&] { ++done; });
    b.enqueue([&] { ++done; });
  }
  pool.drain();
  EXPECT_EQ(done.load(), 100);
}

TEST(ActiveObject, EnqueueFromWithinTask) {
  acc::ThreadPool pool(2);
  acc::ActiveObject active(pool);
  std::atomic<int> count{0};
  active.enqueue([&] {
    ++count;
    active.enqueue([&] { ++count; });
  });
  pool.drain();
  EXPECT_EQ(count.load(), 2);
}
