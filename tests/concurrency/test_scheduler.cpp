// Scheduler-specific coverage for the work-stealing ThreadPool internals:
// recursive submission, bulk posting, steal-path accounting, shutdown and
// wake-up edge cases. Basic pool semantics live in test_thread_pool.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apar/concurrency/parallel_for.hpp"
#include "apar/concurrency/task.hpp"
#include "apar/concurrency/thread_pool.hpp"

namespace {

using apar::concurrency::parallel_for;
using apar::concurrency::Task;
using apar::concurrency::ThreadPool;

// --- Task envelope ---------------------------------------------------------

TEST(TaskEnvelope, SmallCallableIsStoredInline) {
  int x = 0;
  Task task([&x] { x = 42; });
  EXPECT_TRUE(task.is_inline());
  task();
  EXPECT_EQ(x, 42);
}

TEST(TaskEnvelope, LargeCallableFallsBackToHeap) {
  struct Big {
    char payload[128] = {};
  };
  int runs = 0;
  Task task([big = Big{}, &runs] {
    (void)big;
    ++runs;
  });
  EXPECT_FALSE(task.is_inline());
  task();
  EXPECT_EQ(runs, 1);
}

TEST(TaskEnvelope, HoldsMoveOnlyCallables) {
  auto flag = std::make_unique<int>(7);
  Task task([flag = std::move(flag)] { EXPECT_EQ(*flag, 7); });
  EXPECT_TRUE(task.is_inline());
  Task moved = std::move(task);
  EXPECT_FALSE(static_cast<bool>(task));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(moved));
  moved();
}

TEST(TaskEnvelope, MoveTransfersHeapCallableWithoutRunningIt) {
  struct Big {
    char payload[128] = {};
  };
  std::shared_ptr<int> counter = std::make_shared<int>(0);
  Task a([big = Big{}, counter] {
    (void)big;
    ++*counter;
  });
  Task b = std::move(a);
  Task c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 1);
}

TEST(TaskEnvelope, ResetDestroysCapturedState) {
  auto witness = std::make_shared<int>(1);
  std::weak_ptr<int> weak = witness;
  Task task([witness = std::move(witness)] {});
  EXPECT_FALSE(weak.expired());
  task.reset();
  EXPECT_TRUE(weak.expired());
  EXPECT_FALSE(static_cast<bool>(task));
}

// --- Recursive submission --------------------------------------------------

TEST(Scheduler, RecursiveSubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  // Each task posts two children until the tree bottoms out: 2^7 - 1 tasks,
  // most of them posted from worker threads (own-deque path).
  std::function<void(int)> node = [&](int depth) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (depth == 0) return;
    pool.post([&node, depth] { node(depth - 1); });
    pool.post([&node, depth] { node(depth - 1); });
  };
  pool.post([&node] { node(6); });
  pool.drain();
  EXPECT_EQ(ran.load(), 127);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(Scheduler, RecursiveParallelForFromWorkerDoesNotDeadlock) {
  // One worker: the nested parallel_for can only finish if the caller
  // help-executes its own chunks instead of blocking the sole worker.
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  auto outer = pool.submit([&] {
    parallel_for(pool, 0, 100, 10,
                 [&](std::size_t i) {
                   sum.fetch_add(static_cast<int>(i),
                                 std::memory_order_relaxed);
                 });
    return sum.load();
  });
  EXPECT_EQ(outer.get(), 4950);
}

TEST(Scheduler, DrainWaitsOutInFlightSteals) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    // Seed from a worker so the tasks land in ONE deque and the other
    // three workers must steal them while we drain.
    pool.post([&] {
      for (int i = 0; i < 64; ++i)
        pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
    pool.drain();
    ASSERT_EQ(ran.load(), 64) << "round " << round;
    ASSERT_EQ(pool.pending(), 0u);
  }
}

TEST(Scheduler, DestructorDuringActiveStealingRunsEveryAcceptedTask) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    {
      ThreadPool pool(4);
      pool.post([&] {
        // Posts racing the destructor may be rejected (that is the
        // documented shutdown contract) — but every ACCEPTED task must
        // still run before the destructor returns.
        for (int i = 0; i < 128; ++i) {
          try {
            pool.post(
                [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
            accepted.fetch_add(1, std::memory_order_relaxed);
          } catch (const std::runtime_error&) {
            break;  // pool is shutting down
          }
        }
      });
      // Destroy immediately: workers are mid-claim/mid-steal; the pool
      // must still drain everything that was accepted.
    }
    ASSERT_EQ(ran.load(), accepted.load()) << "round " << round;
  }
}

// --- Bulk submission -------------------------------------------------------

TEST(Scheduler, BulkPostRunsExactlyTheBatch) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::vector<Task> tasks;
  for (int i = 0; i < 257; ++i)
    tasks.emplace_back([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.bulk_post(tasks);
  pool.drain();
  EXPECT_EQ(ran.load(), 257);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(Scheduler, BulkPostFromWorkerSeedsOwnDeque) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.post([&] {
    std::vector<Task> tasks;
    for (int i = 0; i < 100; ++i)
      tasks.emplace_back(
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.bulk_post(tasks);
  });
  pool.drain();
  EXPECT_EQ(ran.load(), 100);
}

TEST(Scheduler, BulkPostEmptySpanIsANoOp) {
  ThreadPool pool(1);
  std::vector<Task> tasks;
  pool.bulk_post(tasks);
  pool.drain();
  EXPECT_EQ(pool.pending(), 0u);
}

// --- Failure accounting ----------------------------------------------------

TEST(Scheduler, TaskFailuresCountedOnStealPath) {
  ThreadPool pool(4);
  // Seed all failures into one worker's deque so most are claimed by
  // thieves; the counter must not care who ran the task.
  pool.post([&] {
    for (int i = 0; i < 32; ++i)
      pool.post([] { throw std::runtime_error("expected failure"); });
  });
  pool.drain();
  EXPECT_EQ(pool.task_failures(), 32u);
}

// --- Stealing and wake-up behaviour ---------------------------------------

TEST(Scheduler, StealsHappenWhenOneWorkerHoardsWork) {
  // A worker seeding its own deque while blocked means every other claim
  // MUST be a steal. Retry a few rounds: on a single-CPU host a round can
  // legitimately finish on the owner after it unblocks.
  ThreadPool pool(4);
  for (int round = 0; round < 50 && pool.steals() == 0; ++round) {
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> ran{0};
    pool.post([&] {
      for (int i = 0; i < 64; ++i)
        pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      std::unique_lock lock(mutex);
      cv.wait(lock, [&] { return release; });
    });
    while (ran.load(std::memory_order_relaxed) < 64 && pool.steals() == 0)
      std::this_thread::yield();
    {
      std::lock_guard lock(mutex);
      release = true;
    }
    cv.notify_all();
    pool.drain();
  }
  EXPECT_GT(pool.steals(), 0u);
}

TEST(Scheduler, WorkersWakeForTasksParkedInAnotherWorkersDeque) {
  // Regression for the wake-up accounting satellite: tasks sitting in a
  // blocked worker's deque (injection queue empty) must keep the other
  // workers awake — they may not sleep until deques are empty too.
  ThreadPool pool(2);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  pool.post([&] {
    // Runs on some worker; its 16 children land in this worker's deque.
    for (int i = 0; i < 16; ++i)
      pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  // The second worker must steal and run all 16 while the owner stays
  // blocked; generous deadline, normally instant.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (ran.load(std::memory_order_relaxed) < 16 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(ran.load(), 16);
  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();
  pool.drain();
}

TEST(Scheduler, PendingCountsTasksParkedInWorkerDeques) {
  ThreadPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool seeded = false;
  bool release = false;
  pool.post([&] {
    for (int i = 0; i < 5; ++i) pool.post([] {});
    {
      std::lock_guard lock(mutex);
      seeded = true;
    }
    cv.notify_all();
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return seeded; });
  }
  // The 5 children live in the (sole, blocked) worker's deque; pending()
  // must see them even though the injection queue is empty.
  EXPECT_EQ(pool.pending(), 5u);
  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();
  pool.drain();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(Scheduler, OverflowSpillsToInjectionQueueWithoutLosingTasks) {
  // A single worker floods its own bounded deque past capacity; the excess
  // must overflow to the injection queue and still run.
  ThreadPool pool(1);
  constexpr int kTasks = 3000;  // deque capacity is 1024
  std::atomic<int> ran{0};
  pool.post([&] {
    for (int i = 0; i < kTasks; ++i)
      pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  });
  pool.drain();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_GT(pool.overflows(), 0u);
}

TEST(Scheduler, WakesAfterLongIdlePeriod) {
  // Workers that went to sleep must wake for a task posted much later
  // (missed-wakeup regression).
  ThreadPool pool(2);
  pool.post([] {});
  pool.drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::atomic<bool> ran{false};
  pool.post([&] { ran.store(true, std::memory_order_release); });
  pool.drain();
  EXPECT_TRUE(ran.load(std::memory_order_acquire));
}

// --- try_execute_one -------------------------------------------------------

TEST(Scheduler, TryExecuteOneHelpsFromExternalThread) {
  ThreadPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> blocked{false};
  // Block the only worker, then queue work the external caller can help
  // with.
  pool.post([&] {
    blocked.store(true, std::memory_order_release);
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  // Wait until the WORKER owns the blocker; otherwise our try_execute_one
  // below could claim it and self-deadlock waiting for our own release.
  while (!blocked.load(std::memory_order_acquire)) std::this_thread::yield();
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i)
    pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  while (pool.try_execute_one()) {
  }
  EXPECT_EQ(ran.load(), 4);
  {
    std::lock_guard lock(mutex);
    release = true;
  }
  cv.notify_all();
  pool.drain();
}

TEST(Scheduler, TryExecuteOneReturnsFalseWhenIdle) {
  ThreadPool pool(2);
  pool.drain();
  EXPECT_FALSE(pool.try_execute_one());
}

// --- parallel_for ----------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN, 7,
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  int runs = 0;
  parallel_for(pool, 5, 5, 1, [&](std::size_t) { ++runs; });
  parallel_for(pool, 7, 3, 1, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
}

TEST(ParallelFor, AutoGrainCoversRange) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  parallel_for(pool, 0, 10000, 0, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

TEST(ParallelFor, SubRangeRespectsBounds) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::atomic<bool> out_of_range{false};
  parallel_for(pool, 100, 200, 9, [&](std::size_t i) {
    if (i < 100 || i >= 200) out_of_range.store(true);
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
  EXPECT_FALSE(out_of_range.load());
}

TEST(ParallelFor, RethrowsFirstExceptionAfterAllChunksFinish) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    parallel_for(pool, 0, 100, 5, [&](std::size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 42) throw std::runtime_error("boom at 42");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 42");
  }
  // No chunk is cancelled: every index still ran (the throwing chunk
  // stopped at its throw).
  EXPECT_GE(ran.load(), 95);
  pool.drain();
  EXPECT_EQ(pool.pending(), 0u);
}

// --- submit on the new scheduler -------------------------------------------

TEST(Scheduler, SubmitChainsFromWorkerThreads) {
  ThreadPool pool(2);
  auto outer = pool.submit([&] {
    auto inner = pool.submit([] { return std::string("nested"); });
    return inner.get() + " result";
  });
  EXPECT_EQ(outer.get(), "nested result");
}

TEST(Scheduler, ManyConcurrentSubmitsDeliverDistinctValues) {
  ThreadPool pool(4);
  constexpr int kN = 500;
  std::vector<apar::concurrency::Future<int>> futures;
  futures.reserve(kN);
  for (int i = 0; i < kN; ++i)
    futures.push_back(pool.submit([i] { return i * 3; }));
  for (int i = 0; i < kN; ++i) ASSERT_EQ(futures[i].get(), i * 3);
}

}  // namespace
