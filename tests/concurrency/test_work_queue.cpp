#include "apar/concurrency/work_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace acc = apar::concurrency;

TEST(WorkQueue, FifoSingleThread) {
  acc::WorkQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(WorkQueue, PopBlocksUntilPush) {
  acc::WorkQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(42);
  });
  EXPECT_EQ(q.pop(), 42);
  producer.join();
}

TEST(WorkQueue, CloseWakesConsumers) {
  acc::WorkQueue<int> q;
  std::atomic<int> nullopts{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i)
    consumers.emplace_back([&] {
      if (!q.pop().has_value()) ++nullopts;
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(nullopts.load(), 3);
}

TEST(WorkQueue, DrainsRemainingItemsAfterClose) {
  acc::WorkQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(WorkQueue, PushAfterCloseRefused) {
  acc::WorkQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.size(), 0u);
}

TEST(WorkQueue, TryPopNonBlocking) {
  acc::WorkQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(5);
  EXPECT_EQ(q.try_pop(), 5);
}

TEST(WorkQueue, EveryItemConsumedExactlyOnce) {
  acc::WorkQueue<int> q;
  constexpr int kItems = 1000;
  constexpr int kConsumers = 4;
  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        std::lock_guard lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
      }
    });
  for (int i = 0; i < kItems; ++i) q.push(i);
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), static_cast<size_t>(kItems));
}

TEST(WorkQueue, MoveOnlyPayload) {
  acc::WorkQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(7));
  auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 7);
}

TEST(WorkQueueBatch, PushBatchEnqueuesAllInOrder) {
  acc::WorkQueue<int> q;
  std::vector<int> batch{1, 2, 3, 4};
  EXPECT_EQ(q.push_batch(batch), 4u);
  EXPECT_TRUE(batch.empty());  // moved from on success
  EXPECT_EQ(q.size(), 4u);
  for (int expect = 1; expect <= 4; ++expect) EXPECT_EQ(q.pop(), expect);
}

TEST(WorkQueueBatch, PushBatchRefusedWhenClosedLeavesItemsIntact) {
  acc::WorkQueue<int> q;
  q.close();
  std::vector<int> batch{1, 2, 3};
  EXPECT_EQ(q.push_batch(batch), 0u);
  EXPECT_EQ(batch.size(), 3u);  // all-or-nothing: caller keeps the work
  EXPECT_EQ(q.size(), 0u);
}

TEST(WorkQueueBatch, PushBatchEmptyIsANoOp) {
  acc::WorkQueue<int> q;
  std::vector<int> batch;
  EXPECT_EQ(q.push_batch(batch), 0u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(WorkQueueBatch, PopBatchTakesUpToMax) {
  acc::WorkQueue<int> q;
  std::vector<int> batch{1, 2, 3, 4, 5};
  q.push_batch(batch);
  auto first = q.pop_batch(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0], 1);
  EXPECT_EQ(first[2], 3);
  auto rest = q.pop_batch(10);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[1], 5);
}

TEST(WorkQueueBatch, PopBatchReturnsEmptyWhenClosedAndDrained) {
  acc::WorkQueue<int> q;
  q.push(9);
  q.close();
  EXPECT_EQ(q.pop_batch(4).size(), 1u);
  EXPECT_TRUE(q.pop_batch(4).empty());
}

TEST(WorkQueueBatch, PushBatchWakesAllConsumers) {
  acc::WorkQueue<int> q;
  std::atomic<int> got{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c)
    consumers.emplace_back([&] {
      if (q.pop().has_value()) got.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<int> batch{1, 2, 3};
  q.push_batch(batch);
  for (auto& t : consumers) t.join();
  EXPECT_EQ(got.load(), 3);
}

TEST(WorkQueueBatch, BatchAndSingleInterleaveKeepEveryItem) {
  acc::WorkQueue<int> q;
  constexpr int kBatches = 50;
  constexpr int kPerBatch = 20;
  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c)
    consumers.emplace_back([&] {
      for (;;) {
        auto items = q.pop_batch(7);
        if (items.empty()) return;
        std::lock_guard lock(seen_mutex);
        for (int item : items)
          EXPECT_TRUE(seen.insert(item).second) << "duplicate " << item;
      }
    });
  for (int b = 0; b < kBatches; ++b) {
    std::vector<int> batch;
    for (int i = 0; i < kPerBatch; ++i) batch.push_back(b * kPerBatch + i);
    q.push_batch(batch);
  }
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), static_cast<size_t>(kBatches * kPerBatch));
}
