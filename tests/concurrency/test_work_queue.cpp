#include "apar/concurrency/work_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace acc = apar::concurrency;

TEST(WorkQueue, FifoSingleThread) {
  acc::WorkQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(WorkQueue, PopBlocksUntilPush) {
  acc::WorkQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(42);
  });
  EXPECT_EQ(q.pop(), 42);
  producer.join();
}

TEST(WorkQueue, CloseWakesConsumers) {
  acc::WorkQueue<int> q;
  std::atomic<int> nullopts{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i)
    consumers.emplace_back([&] {
      if (!q.pop().has_value()) ++nullopts;
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(nullopts.load(), 3);
}

TEST(WorkQueue, DrainsRemainingItemsAfterClose) {
  acc::WorkQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(WorkQueue, PushAfterCloseRefused) {
  acc::WorkQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.size(), 0u);
}

TEST(WorkQueue, TryPopNonBlocking) {
  acc::WorkQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(5);
  EXPECT_EQ(q.try_pop(), 5);
}

TEST(WorkQueue, EveryItemConsumedExactlyOnce) {
  acc::WorkQueue<int> q;
  constexpr int kItems = 1000;
  constexpr int kConsumers = 4;
  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        std::lock_guard lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
      }
    });
  for (int i = 0; i < kItems; ++i) q.push(i);
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), static_cast<size_t>(kItems));
}

TEST(WorkQueue, MoveOnlyPayload) {
  acc::WorkQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(7));
  auto item = q.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 7);
}
