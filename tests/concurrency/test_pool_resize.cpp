// Unit rules for ThreadPool's online resize: clamping, grow/shrink
// semantics, cooperative retirement draining queued work back through the
// injection queue (exactly-once), slot reuse after a shrink, and the
// from-a-worker guard. The randomized in-flight interleavings live in
// test_resize_stress.cpp (`ctest -L scheduler`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "apar/concurrency/parallel_for.hpp"
#include "apar/concurrency/task.hpp"
#include "apar/concurrency/thread_pool.hpp"

namespace {

using apar::concurrency::parallel_for;
using apar::concurrency::Task;
using apar::concurrency::ThreadPool;

TEST(PoolResize, DefaultCapacityLeavesRoomToGrow) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_GE(pool.max_size(), 8u);  // max(2*threads, 8)
  ThreadPool wide(6);
  EXPECT_EQ(wide.max_size(), 12u);
}

TEST(PoolResize, ResizeClampsToBounds) {
  ThreadPool pool(2, 4);
  EXPECT_EQ(pool.max_size(), 4u);
  EXPECT_EQ(pool.resize(0), 1u);    // floor: one worker always remains
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.resize(100), 4u);  // ceiling: slot capacity
  EXPECT_EQ(pool.size(), 4u);
}

TEST(PoolResize, NoopResizeDoesNotCountAsAResize) {
  ThreadPool pool(3, 6);
  EXPECT_EQ(pool.resizes(), 0u);
  EXPECT_EQ(pool.resize(3), 3u);
  EXPECT_EQ(pool.resizes(), 0u);
  EXPECT_EQ(pool.resize(5), 5u);
  EXPECT_EQ(pool.resize(2), 2u);
  EXPECT_EQ(pool.resizes(), 2u);
}

TEST(PoolResize, GrownWorkersActuallyRunTasks) {
  ThreadPool pool(1, 8);
  ASSERT_EQ(pool.resize(4), 4u);
  // Park 3 tasks on a latch; with one worker this could never reach 3
  // concurrent holders, with 4 it must.
  std::atomic<int> holders{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 3; ++i) {
    pool.post([&] {
      holders.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (holders.load() < 3 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(holders.load(), 3);
  release.store(true);
  pool.drain();
}

TEST(PoolResize, ShrinkDrainsRetiredDequesExactlyOnce) {
  ThreadPool pool(4, 4);
  std::atomic<std::uint64_t> ran{0};
  constexpr std::uint64_t kTasks = 2000;
  // Gate the workers so deques fill up, then shrink while the backlog is
  // queued: the retiring workers must push their deques back through the
  // injection queue without dropping or duplicating anything.
  std::atomic<bool> gate{true};
  for (int i = 0; i < 4; ++i)
    pool.post([&] {
      while (gate.load()) std::this_thread::yield();
    });
  for (std::uint64_t i = 0; i < kTasks; ++i)
    pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(pool.resize(1), 1u);
  gate.store(false);
  pool.drain();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(PoolResize, GrowReusesRetiredSlots) {
  ThreadPool pool(4, 4);
  std::atomic<std::uint64_t> ran{0};
  for (int cycle = 0; cycle < 5; ++cycle) {
    ASSERT_EQ(pool.resize(1), 1u);
    ASSERT_EQ(pool.resize(4), 4u);  // rejoins the retired threads' slots
    for (int i = 0; i < 200; ++i)
      pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.drain();
  }
  EXPECT_EQ(ran.load(), 5u * 200u);
}

TEST(PoolResize, ResizeFromAPoolTaskThrows) {
  ThreadPool pool(2, 4);
  auto threw = pool.submit([&pool] {
    try {
      pool.resize(3);
      return false;
    } catch (const std::logic_error&) {
      return true;
    }
  });
  EXPECT_TRUE(threw.get());
  EXPECT_EQ(pool.size(), 2u);  // the rejected call changed nothing
}

TEST(PoolResize, ParallelForSpansAResize) {
  ThreadPool pool(2, 6);
  std::atomic<std::uint64_t> hits{0};
  std::thread resizer([&pool] {
    for (std::size_t n : {4u, 1u, 6u, 2u}) {
      pool.resize(n);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int round = 0; round < 20; ++round) {
    parallel_for(pool, 0, 500, 16,
                 [&](std::size_t) {
                   hits.fetch_add(1, std::memory_order_relaxed);
                 });
  }
  resizer.join();
  pool.drain();
  EXPECT_EQ(hits.load(), 20u * 500u);
}

TEST(PoolResize, BulkPostSurvivesConcurrentShrink) {
  ThreadPool pool(4, 4);
  std::atomic<std::uint64_t> ran{0};
  constexpr std::size_t kBatches = 50;
  constexpr std::size_t kBatch = 64;
  std::thread producer([&] {
    for (std::size_t b = 0; b < kBatches; ++b) {
      std::vector<Task> tasks;
      tasks.reserve(kBatch);
      for (std::size_t i = 0; i < kBatch; ++i)
        tasks.emplace_back(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      pool.bulk_post(tasks);
    }
  });
  for (int i = 0; i < 10; ++i) {
    pool.resize(1);
    pool.resize(4);
  }
  producer.join();
  pool.drain();
  EXPECT_EQ(ran.load(), kBatches * kBatch);
}

}  // namespace
