#include "apar/concurrency/future.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

namespace acc = apar::concurrency;

TEST(Future, GetBlocksUntilValueDelivered) {
  acc::Promise<int> p;
  auto f = p.future();
  EXPECT_FALSE(f.ready());
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    p.set_value(5);
  });
  EXPECT_EQ(f.get(), 5);  // ABCL semantics: touching the future blocks
  EXPECT_TRUE(f.ready());
  producer.join();
}

TEST(Future, MultipleGetsReturnSameValue) {
  acc::Promise<std::string> p;
  auto f = p.future();
  p.set_value(std::string("x"));
  EXPECT_EQ(f.get(), "x");
  EXPECT_EQ(f.get(), "x");
}

TEST(Future, CopiesShareState) {
  acc::Promise<int> p;
  auto f1 = p.future();
  auto f2 = f1;
  p.set_value(9);
  EXPECT_EQ(f1.get(), 9);
  EXPECT_EQ(f2.get(), 9);
}

TEST(Future, ExceptionPropagates) {
  acc::Promise<int> p;
  auto f = p.future();
  p.set_exception(std::make_exception_ptr(std::runtime_error("err")));
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Future, BrokenPromiseDetected) {
  acc::Future<int> f;
  {
    acc::Promise<int> p;
    f = p.future();
  }
  EXPECT_TRUE(f.ready());
  EXPECT_THROW(f.get(), acc::BrokenPromise);
}

TEST(Future, VoidSpecialization) {
  acc::Promise<void> p;
  auto f = p.future();
  EXPECT_FALSE(f.ready());
  p.set_value();
  EXPECT_NO_THROW(f.get());
}

TEST(Future, VoidExceptionPropagates) {
  acc::Promise<void> p;
  auto f = p.future();
  p.set_exception(std::make_exception_ptr(std::logic_error("bad")));
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(Future, OnReadyFiresAfterDelivery) {
  acc::Promise<int> p;
  auto f = p.future();
  std::atomic<int> seen{0};
  f.on_ready([&] { seen = 1; });
  EXPECT_EQ(seen.load(), 0);
  p.set_value(1);
  EXPECT_EQ(seen.load(), 1);
}

TEST(Future, OnReadyFiresImmediatelyIfAlreadyReady) {
  acc::Promise<int> p;
  auto f = p.future();
  p.set_value(3);
  std::atomic<int> seen{0};
  f.on_ready([&] { seen = 1; });
  EXPECT_EQ(seen.load(), 1);
}

TEST(Future, OnReadyFiresOnBrokenPromise) {
  std::atomic<int> seen{0};
  {
    acc::Promise<int> p;
    auto f = p.future();
    f.on_ready([&] { seen = 1; });
  }
  EXPECT_EQ(seen.load(), 1);
}

TEST(Future, DoubleDeliveryThrows) {
  acc::Promise<int> p;
  p.set_value(1);
  EXPECT_THROW(p.set_value(2), std::logic_error);
}

TEST(Future, DefaultConstructedIsInvalid) {
  acc::Future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_THROW(f.get(), std::logic_error);
}

TEST(Future, WaitAllCollects) {
  std::vector<acc::Promise<int>> promises(3);
  std::vector<acc::Future<int>> futures;
  for (auto& p : promises) futures.push_back(p.future());
  std::thread t([&] {
    for (int i = 0; i < 3; ++i) promises[static_cast<size_t>(i)].set_value(i);
  });
  acc::wait_all(futures);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i);
  t.join();
}
