#include "apar/concurrency/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace acc = apar::concurrency;

TEST(CyclicBarrier, AllPartiesProceedTogether) {
  constexpr std::size_t kParties = 4;
  acc::CyclicBarrier barrier(kParties);
  std::atomic<int> before{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParties; ++t)
    threads.emplace_back([&] {
      ++before;
      barrier.arrive_and_wait();
      if (before.load() != static_cast<int>(kParties)) violation = true;
    });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
}

TEST(CyclicBarrier, ReusableAcrossGenerations) {
  constexpr std::size_t kParties = 3;
  constexpr std::size_t kIterations = 50;
  acc::CyclicBarrier barrier(kParties);
  std::atomic<long> total{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kParties; ++t)
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kIterations; ++i) {
        ++total;
        const std::size_t gen = barrier.arrive_and_wait();
        EXPECT_EQ(gen, i);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), static_cast<long>(kParties * kIterations));
  EXPECT_EQ(barrier.generation(), kIterations);
}

TEST(CyclicBarrier, SinglePartyNeverBlocks) {
  acc::CyclicBarrier barrier(1);
  EXPECT_EQ(barrier.arrive_and_wait(), 0u);
  EXPECT_EQ(barrier.arrive_and_wait(), 1u);
}

TEST(CyclicBarrier, ZeroPartiesClampedToOne) {
  acc::CyclicBarrier barrier(0);
  EXPECT_EQ(barrier.parties(), 1u);
}

TEST(ParallelismLimiter, CapsConcurrency) {
  acc::ParallelismLimiter limiter(2);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      auto permit = limiter.permit();
      const int now = ++inside;
      int expected = peak.load();
      while (expected < now && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      --inside;
    });
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
}

TEST(ParallelismLimiter, PermitMoveTransfersOwnership) {
  acc::ParallelismLimiter limiter(1);
  {
    auto p1 = limiter.permit();
    auto p2 = std::move(p1);
    // p1 must not release on destruction; p2 holds the permit until scope
    // end. If double-released, the next permit() would not block when it
    // should — checked indirectly by CapsConcurrency.
  }
  auto p3 = limiter.permit();  // must not deadlock
  EXPECT_EQ(limiter.limit(), 1u);
}
