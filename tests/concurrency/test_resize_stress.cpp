// Seeded stress for ONLINE POOL RESIZE (`ctest -L scheduler`): randomized
// producer mixes (post / bulk_post / submit / parallel_for, external and
// worker-recursive) racing a resizer thread that walks the worker count
// up and down the whole [1, max] range. Exactly-once is asserted by
// counting; designed to run under APAR_SANITIZE=thread|address via
// tools/run_stress.sh, where a retirement that drops a deque entry or
// double-runs a drained task fails loudly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "apar/common/rng.hpp"
#include "apar/concurrency/parallel_for.hpp"
#include "apar/concurrency/task.hpp"
#include "apar/concurrency/thread_pool.hpp"
#include "../stress/stress_common.hpp"

namespace {

using apar::common::Rng;
using apar::concurrency::parallel_for;
using apar::concurrency::Task;
using apar::concurrency::ThreadPool;

TEST(StressResize, ResizeStormKeepsEveryTaskExactlyOnce) {
  const std::uint64_t seed = apar::test::announce_stress_seed(0x2E512EULL);
  ThreadPool pool(2, 6);
  constexpr int kProducers = 3;
  constexpr int kOpsPerProducer = 300;
  std::atomic<std::uint64_t> ran{0};
  std::atomic<std::uint64_t> posted{0};
  std::atomic<bool> stop_resizing{false};

  std::thread resizer([&] {
    Rng rng(seed ^ 0xA5A5A5A5ULL);
    while (!stop_resizing.load(std::memory_order_acquire)) {
      pool.resize(rng.uniform(1, 6));
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.uniform(50, 500)));
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(seed + static_cast<std::uint64_t>(p) * 7919);
      for (int op = 0; op < kOpsPerProducer; ++op) {
        switch (rng.uniform(0, 3)) {
          case 0:  // single external post
            posted.fetch_add(1, std::memory_order_relaxed);
            pool.post(
                [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
            break;
          case 1: {  // bulk post — seeds whole deques that a retirement
                     // may have to drain back out
            const std::size_t n = rng.uniform(1, 32);
            std::vector<Task> tasks;
            tasks.reserve(n);
            for (std::size_t i = 0; i < n; ++i)
              tasks.emplace_back(
                  [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
            posted.fetch_add(n, std::memory_order_relaxed);
            pool.bulk_post(tasks);
            break;
          }
          case 2: {  // worker-recursive posts land in the worker's own
                     // deque — the exact structure retirement must move
            const std::size_t n = rng.uniform(0, 8);
            posted.fetch_add(n + 1, std::memory_order_relaxed);
            pool.post([&pool, &ran, n] {
              ran.fetch_add(1, std::memory_order_relaxed);
              for (std::size_t i = 0; i < n; ++i)
                pool.post([&ran] {
                  ran.fetch_add(1, std::memory_order_relaxed);
                });
            });
            break;
          }
          default:  // submit: the future must deliver across a resize
            posted.fetch_add(1, std::memory_order_relaxed);
            if (pool.submit([&ran] {
                      ran.fetch_add(1, std::memory_order_relaxed);
                      return 23;
                    })
                    .get() != 23)
              ADD_FAILURE() << "submit returned wrong value";
            break;
        }
        if (op % 64 == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  stop_resizing.store(true, std::memory_order_release);
  resizer.join();
  pool.drain();
  EXPECT_EQ(ran.load(), posted.load());
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(StressResize, ParallelForUnderContinuousResize) {
  const std::uint64_t seed = apar::test::announce_stress_seed(0x9A12A11ULL);
  ThreadPool pool(3, 6);
  std::atomic<bool> stop_resizing{false};
  std::thread resizer([&] {
    Rng rng(seed ^ 0x5EED5EEDULL);
    while (!stop_resizing.load(std::memory_order_acquire)) {
      pool.resize(rng.uniform(1, 6));
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.uniform(100, 1000)));
    }
  });
  Rng rng(seed);
  for (int round = 0; round < 15; ++round) {
    const std::size_t n = rng.uniform(100, 2000);
    const std::size_t grain = rng.uniform(1, 64);
    std::atomic<std::uint64_t> hits{0};
    parallel_for(pool, 0, n, grain, [&](std::size_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(hits.load(), n) << "round " << round;
  }
  stop_resizing.store(true, std::memory_order_release);
  resizer.join();
  pool.drain();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(StressResize, TeardownRacesAFinalShrink) {
  const std::uint64_t seed = apar::test::announce_stress_seed(0x7E42DULL);
  Rng rng(seed);
  for (int round = 0; round < 25; ++round) {
    std::atomic<std::uint64_t> ran{0};
    std::uint64_t accepted = 0;
    {
      ThreadPool pool(4, 4);
      const std::size_t fan = rng.uniform(16, 128);
      for (std::size_t i = 0; i < fan; ++i) {
        pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        ++accepted;
      }
      pool.resize(rng.uniform(1, 4));
      // Destructor must join retiring AND live workers and still run every
      // accepted task.
    }
    ASSERT_EQ(ran.load(), accepted) << "round " << round;
  }
}

}  // namespace
