#include "apar/concurrency/sync_registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace acc = apar::concurrency;

TEST(SyncRegistry, MutualExclusionPerObject) {
  acc::SyncRegistry registry;
  int object = 0;
  long long unprotected = 0;  // intentionally non-atomic
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        auto guard = registry.acquire(&object);
        ++unprotected;
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(unprotected, 40000);
}

TEST(SyncRegistry, DistinctObjectsDoNotBlockEachOther) {
  acc::SyncRegistry registry;
  int a = 0, b = 0;
  auto ga = registry.acquire(&a);
  // If a and b shared a monitor this would deadlock (single thread).
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    auto gb = registry.acquire(&b);
    acquired = true;
  });
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(SyncRegistry, ReentrantOnSameThread) {
  acc::SyncRegistry registry;
  int object = 0;
  auto outer = registry.acquire(&object);
  // Recursive monitors: nested advice on the same target must not deadlock.
  EXPECT_NO_THROW({ auto inner = registry.acquire(&object); });
}

TEST(SyncRegistry, SizeTracksEntries) {
  acc::SyncRegistry registry;
  int a = 0, b = 0;
  EXPECT_EQ(registry.size(), 0u);
  { auto g = registry.acquire(&a); }
  { auto g = registry.acquire(&b); }
  EXPECT_EQ(registry.size(), 2u);
  registry.forget(&a);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(SyncRegistry, ForgetUnknownIsHarmless) {
  acc::SyncRegistry registry;
  int a = 0;
  EXPECT_FALSE(registry.forget(&a));
}

TEST(SyncRegistry, ForgetIdleEntryRemovesImmediately) {
  acc::SyncRegistry registry;
  int a = 0;
  { auto g = registry.acquire(&a); }
  EXPECT_TRUE(registry.forget(&a));
  EXPECT_EQ(registry.size(), 0u);
}

// Regression: forget() used to erase the map entry unconditionally, which
// destroys a recursive_mutex that is still locked — undefined behaviour.
// Removal of a held monitor must be deferred until the last guard drops.
TEST(SyncRegistry, ForgetWhileHeldDefersDestruction) {
  acc::SyncRegistry registry;
  int a = 0;
  {
    auto guard = registry.acquire(&a);
    EXPECT_FALSE(registry.forget(&a));  // deferred, not destroyed
    EXPECT_EQ(registry.size(), 1u);     // entry still alive (doomed)
    // The monitor must still function: a contender blocks and then gets in.
    std::atomic<bool> contender_in{false};
    std::thread t([&] {
      auto g2 = registry.acquire(&a);
      contender_in = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(contender_in.load());  // still excluded by our hold
    // Releasing our guard lets the contender in; when both guards are gone
    // the deferred forget finally erases the entry.
    {
      auto release_ours = std::move(guard);
    }
    t.join();
    EXPECT_TRUE(contender_in.load());
  }
  EXPECT_EQ(registry.size(), 0u);
}

TEST(SyncRegistry, ReacquireAfterDeferredForgetGetsFreshEntry) {
  acc::SyncRegistry registry;
  int a = 0;
  {
    auto guard = registry.acquire(&a);
    registry.forget(&a);
  }
  // The doomed entry is gone; the address maps to a brand-new monitor.
  EXPECT_EQ(registry.size(), 0u);
  { auto guard = registry.acquire(&a); }
  EXPECT_EQ(registry.size(), 1u);
}

TEST(SyncRegistry, ManyObjectsAcrossShards) {
  acc::SyncRegistry registry(4);
  std::vector<int> objects(100);
  std::vector<std::thread> threads;
  std::atomic<int> total{0};
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (auto& obj : objects) {
        auto guard = registry.acquire(&obj);
        ++total;
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 400);
  EXPECT_EQ(registry.size(), 100u);
}
