#include "apar/concurrency/steal_deque.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace {

using apar::concurrency::StealDeque;

TEST(StealDeque, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(StealDeque<int>(1).capacity(), 2u);
  EXPECT_EQ(StealDeque<int>(2).capacity(), 2u);
  EXPECT_EQ(StealDeque<int>(3).capacity(), 4u);
  EXPECT_EQ(StealDeque<int>(100).capacity(), 128u);
  EXPECT_EQ(StealDeque<int>(256).capacity(), 256u);
}

TEST(StealDeque, OwnerPopIsLifo) {
  StealDeque<int> deque(8);
  int values[3] = {1, 2, 3};
  for (int& v : values) ASSERT_TRUE(deque.push(&v));
  EXPECT_EQ(deque.pop(), &values[2]);
  EXPECT_EQ(deque.pop(), &values[1]);
  EXPECT_EQ(deque.pop(), &values[0]);
  EXPECT_EQ(deque.pop(), nullptr);
}

TEST(StealDeque, StealIsFifo) {
  StealDeque<int> deque(8);
  int values[3] = {1, 2, 3};
  for (int& v : values) ASSERT_TRUE(deque.push(&v));
  EXPECT_EQ(deque.steal(), &values[0]);
  EXPECT_EQ(deque.steal(), &values[1]);
  EXPECT_EQ(deque.steal(), &values[2]);
  EXPECT_EQ(deque.steal(), nullptr);
}

TEST(StealDeque, PushRefusesWhenFull) {
  StealDeque<int> deque(4);
  int values[5] = {};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(deque.push(&values[i]));
  EXPECT_FALSE(deque.push(&values[4]));
  // Draining one element makes room again.
  EXPECT_NE(deque.steal(), nullptr);
  EXPECT_TRUE(deque.push(&values[4]));
}

TEST(StealDeque, SizeEstimateTracksContents) {
  StealDeque<int> deque(8);
  EXPECT_TRUE(deque.empty());
  int v = 0;
  deque.push(&v);
  EXPECT_EQ(deque.size_estimate(), 1u);
  deque.pop();
  EXPECT_TRUE(deque.empty());
}

TEST(StealDeque, RingReusesSlotsAcrossManyCycles) {
  StealDeque<int> deque(4);
  int v = 0;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    ASSERT_TRUE(deque.push(&v));
    ASSERT_EQ(deque.pop(), &v);
  }
  EXPECT_TRUE(deque.empty());
}

// Owner pops while thieves steal: every element is claimed exactly once.
TEST(StealDeque, ConcurrentOwnerAndThievesClaimEachElementOnce) {
  constexpr std::size_t kItems = 20000;
  constexpr int kThieves = 3;
  StealDeque<std::size_t> deque(256);
  std::vector<std::size_t> items(kItems);
  for (std::size_t i = 0; i < kItems; ++i) items[i] = i;

  std::vector<std::atomic<int>> claims(kItems);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (std::size_t* item = deque.steal())
          claims[*item].fetch_add(1, std::memory_order_relaxed);
        else
          std::this_thread::yield();
      }
      // Final sweep after the owner finished producing.
      while (std::size_t* item = deque.steal())
        claims[*item].fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Owner: interleave pushes with occasional pops, overflow-spinning when
  // the bounded ring is full.
  std::size_t produced = 0;
  while (produced < kItems) {
    if (deque.push(&items[produced])) {
      ++produced;
    } else if (std::size_t* item = deque.pop()) {
      claims[*item].fetch_add(1, std::memory_order_relaxed);
    }
    if (produced % 64 == 0) {
      if (std::size_t* item = deque.pop())
        claims[*item].fetch_add(1, std::memory_order_relaxed);
    }
  }
  while (std::size_t* item = deque.pop())
    claims[*item].fetch_add(1, std::memory_order_relaxed);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  for (std::size_t i = 0; i < kItems; ++i)
    ASSERT_EQ(claims[i].load(), 1) << "item " << i;
}

}  // namespace
