#include "apar/concurrency/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace acc = apar::concurrency;

TEST(ThreadPool, RunsPostedTasks) {
  acc::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.post([&] { ++count; });
  pool.drain();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  acc::ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitVoid) {
  acc::ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto f = pool.submit([&] { ran = true; });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, SubmitPropagatesException) {
  acc::ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  acc::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    acc::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.post([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, TasksRunConcurrently) {
  acc::ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 4; ++i)
    pool.post([&] {
      const int now = ++inside;
      int expected = peak.load();
      while (expected < now &&
             !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      --inside;
    });
  pool.drain();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, DrainWaitsForRunningTasks) {
  acc::ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.post([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done = true;
  });
  pool.drain();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPool, PostDuringShutdownRunsOrThrowsCleanly) {
  // Regression: worker tasks that post() while the pool is being destroyed
  // race the stopping flag. Every such post must either be accepted (and
  // then actually run — the destructor drains the queue) or throw; it must
  // never deadlock the destructor or leak the task. The old code let the
  // rejection escape the worker thread, which is std::terminate.
  std::atomic<int> ran{0};
  std::atomic<int> rejected{0};
  {
    acc::ThreadPool pool(4);
    for (int i = 0; i < 64; ++i)
      pool.post([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        try {
          pool.post([&] { ++ran; });
        } catch (const std::runtime_error&) {
          ++rejected;
        }
      });
  }  // destructor races the re-posts
  EXPECT_EQ(ran.load() + rejected.load(), 64);
}

TEST(ThreadPool, TaskExceptionIsCountedNotFatal) {
  acc::ThreadPool pool(2);
  pool.post([] { throw std::runtime_error("escaped"); });
  pool.drain();
  EXPECT_EQ(pool.task_failures(), 1u);
  // The worker survived; the pool keeps serving.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
  EXPECT_EQ(pool.task_failures(), 1u);
}

TEST(ThreadPool, PendingReportsQueueDepth) {
  acc::ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.post([&] {
    while (!release) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  // Give the worker time to pick up the blocker, then stack tasks behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 5; ++i) pool.post([] {});
  EXPECT_GE(pool.pending(), 4u);
  release = true;
  pool.drain();
  EXPECT_EQ(pool.pending(), 0u);
}
