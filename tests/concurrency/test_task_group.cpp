#include "apar/concurrency/task_group.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "apar/concurrency/thread_pool.hpp"

namespace acc = apar::concurrency;

TEST(TaskGroup, WaitJoinsSpawnedThreads) {
  acc::TaskGroup group;
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i)
    group.spawn([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++count;
    });
  group.wait();
  EXPECT_EQ(count.load(), 20);
  EXPECT_EQ(group.outstanding(), 0u);
}

TEST(TaskGroup, TasksMaySpawnTasks) {
  acc::TaskGroup group;
  std::atomic<int> count{0};
  group.spawn([&] {
    ++count;
    group.spawn([&] {
      ++count;
      group.spawn([&] { ++count; });
    });
  });
  group.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(TaskGroup, WaitRethrowsFirstException) {
  acc::TaskGroup group;
  group.spawn([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, ReusableAfterWait) {
  acc::TaskGroup group;
  std::atomic<int> count{0};
  group.spawn([&] { ++count; });
  group.wait();
  group.spawn([&] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(TaskGroup, ErrorClearedAfterRethrow) {
  acc::TaskGroup group;
  group.spawn([] { throw std::runtime_error("once"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  group.spawn([] {});
  EXPECT_NO_THROW(group.wait());
}

TEST(TaskGroup, RunOnPoolIsTracked) {
  acc::ThreadPool pool(2);
  acc::TaskGroup group;
  std::atomic<int> count{0};
  for (int i = 0; i < 30; ++i)
    group.run_on(pool, [&] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 30);
}

TEST(TaskGroup, RunOnPropagatesException) {
  acc::ThreadPool pool(1);
  acc::TaskGroup group;
  group.run_on(pool, [] { throw std::logic_error("pool task failed"); });
  EXPECT_THROW(group.wait(), std::logic_error);
}

TEST(TaskGroup, ManualEnterLeave) {
  acc::TaskGroup group;
  group.enter();
  EXPECT_EQ(group.outstanding(), 1u);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    group.leave();
  });
  group.wait();
  EXPECT_EQ(group.outstanding(), 0u);
  t.join();
}

TEST(TaskGroup, ManualLeaveWithError) {
  acc::TaskGroup group;
  group.enter();
  group.leave(std::make_exception_ptr(std::runtime_error("manual")));
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, WaitOnEmptyGroupReturnsImmediately) {
  acc::TaskGroup group;
  EXPECT_NO_THROW(group.wait());
}

TEST(TaskGroup, DestructorJoinsOutstandingWork) {
  std::atomic<int> count{0};
  {
    acc::TaskGroup group;
    for (int i = 0; i < 5; ++i)
      group.spawn([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ++count;
      });
  }
  EXPECT_EQ(count.load(), 5);
}

TEST(TaskGroupBatch, BatchScopeDefersAndFlushesRunOn) {
  acc::ThreadPool pool(2);
  acc::TaskGroup group;
  std::atomic<int> ran{0};
  {
    acc::TaskGroup::BatchScope batch(group);
    for (int i = 0; i < 10; ++i)
      group.run_on(pool, [&] { ran.fetch_add(1, std::memory_order_relaxed); });
    // Accounting is live even while the tasks are still batched.
    EXPECT_EQ(group.outstanding(), 10u);
  }
  group.wait();
  EXPECT_EQ(ran.load(), 10);
}

TEST(TaskGroupBatch, ExplicitFlushSubmitsEarly) {
  acc::ThreadPool pool(2);
  acc::TaskGroup group;
  std::atomic<int> ran{0};
  acc::TaskGroup::BatchScope batch(group);
  for (int i = 0; i < 4; ++i)
    group.run_on(pool, [&] { ran.fetch_add(1, std::memory_order_relaxed); });
  batch.flush();
  group.wait();  // must not deadlock: flush() already submitted the batch
  EXPECT_EQ(ran.load(), 4);
}

TEST(TaskGroupBatch, DifferentGroupBypassesTheScope) {
  acc::ThreadPool pool(2);
  acc::TaskGroup batched;
  acc::TaskGroup direct;
  std::atomic<int> ran{0};
  {
    acc::TaskGroup::BatchScope batch(batched);
    // run_on against a DIFFERENT group must not be captured by the scope.
    direct.run_on(pool, [&] { ran.fetch_add(1, std::memory_order_relaxed); });
    direct.wait();  // completes while the scope is still open
    EXPECT_EQ(ran.load(), 1);
  }
  batched.wait();
}

TEST(TaskGroupBatch, ExceptionsInsideBatchedTasksStillPropagate) {
  acc::ThreadPool pool(2);
  acc::TaskGroup group;
  {
    acc::TaskGroup::BatchScope batch(group);
    group.run_on(pool, [] { throw std::runtime_error("batched boom"); });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroupBatch, FlushRunsInlineWhenPoolIsShuttingDown) {
  // A batch flushed against a pool that is shutting down must run its
  // tasks inline instead of losing them (bulk_post is all-or-nothing).
  // Arrange that from inside a worker task, which keeps running while the
  // destructor drains: once post() starts throwing, the pool is stopping.
  acc::TaskGroup group;
  std::atomic<int> ran{0};
  std::atomic<bool> entered{false};
  {
    acc::ThreadPool pool(1);
    pool.post([&] {
      entered.store(true, std::memory_order_release);
      for (;;) {
        try {
          pool.post([] {});
        } catch (const std::runtime_error&) {
          break;  // shutdown observed
        }
        std::this_thread::yield();
      }
      acc::TaskGroup::BatchScope batch(group);
      group.run_on(pool,
                   [&] { ran.fetch_add(1, std::memory_order_relaxed); });
      group.run_on(pool,
                   [&] { ran.fetch_add(1, std::memory_order_relaxed); });
      // Scope closes here: bulk_post throws (stopping) and the batch runs
      // inline on this worker thread.
    });
    while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  group.wait();
  EXPECT_EQ(ran.load(), 2);
}
