// The paper's central workflow (§1, §7): develop a sequential core, then
// INCREMENTALLY plug partition -> concurrency -> distribution, verifying at
// every stage that the application still computes the same thing — and that
// any stage can be unplugged again "on the fly".
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>

#include "apar/cluster/middleware.hpp"
#include "apar/sieve/prime_filter.hpp"
#include "apar/sieve/workload.hpp"
#include "apar/strategies/strategies.hpp"

namespace aop = apar::aop;
namespace ac = apar::cluster;
namespace st = apar::strategies;
namespace sv = apar::sieve;
using sv::PrimeFilter;

namespace {

constexpr long long kMax = 20'000;

using Farm = st::FarmAspect<PrimeFilter, long long, long long, long long,
                            double>;
using Conc = st::ConcurrencyAspect<PrimeFilter>;
using Dist =
    st::DistributionAspect<PrimeFilter, long long, long long, double>;

/// The application's core functionality: identical at every increment.
long long run_core(aop::Context& ctx,
                   std::function<std::vector<long long>(aop::Context&)>
                       gather = nullptr) {
  auto candidates = sv::odd_candidates(kMax);
  auto p = ctx.create<PrimeFilter>(2LL, sv::isqrt(kMax), 0.0);
  ctx.call<&PrimeFilter::process>(p, candidates);
  ctx.quiesce();
  auto survivors =
      gather ? gather(ctx) : ctx.call<&PrimeFilter::take_results>(p);
  return sv::count_primes_up_to(sv::isqrt(kMax)) +
         static_cast<long long>(survivors.size());
}

std::shared_ptr<Farm> make_farm() {
  Farm::Options opts;
  opts.duplicates = 3;
  opts.pack_size = 1'500;
  return std::make_shared<Farm>("Partition", opts);
}

std::shared_ptr<Conc> make_conc() {
  auto conc = std::make_shared<Conc>("Concurrency");
  conc->async_method<&PrimeFilter::process>()
      .async_method<&PrimeFilter::filter>()
      .guarded_method<&PrimeFilter::collect>();
  return conc;
}

}  // namespace

TEST(IncrementalDevelopment, EachPluggingStepPreservesTheResult) {
  const long long expected = sv::count_primes_up_to(kMax);

  aop::Context ctx;

  // Stage 0: pure sequential core.
  EXPECT_EQ(run_core(ctx), expected);

  // Stage 1: plug the partition module. Still single-threaded.
  auto farm = make_farm();
  ctx.attach(farm);
  auto gather = [farm](aop::Context& c) { return farm->gather_results(c); };
  EXPECT_EQ(run_core(ctx, gather), expected);

  // Stage 2: plug concurrency. Now parallel on shared memory.
  ctx.attach(make_conc());
  EXPECT_EQ(run_core(ctx, gather), expected);

  // Stage 3: plug distribution. Now the farm spans simulated nodes.
  ac::Cluster::Options copts;
  copts.nodes = 3;
  copts.executors_per_node = 2;
  ac::Cluster cluster(copts);
  cluster.registry()
      .bind<PrimeFilter>("PrimeFilter")
      .ctor<long long, long long, double>()
      .method<&PrimeFilter::filter>("filter")
      .method<&PrimeFilter::process>("process")
      .method<&PrimeFilter::collect>("collect")
      .method<&PrimeFilter::take_results>("take_results");
  ac::RmiMiddleware rmi(cluster, ac::CostModel::loopback());
  auto dist = std::make_shared<Dist>("Distribution", cluster, rmi);
  dist->distribute_method<&PrimeFilter::filter>()
      .distribute_method<&PrimeFilter::process>(true)
      .distribute_method<&PrimeFilter::collect>(true)
      .distribute_method<&PrimeFilter::take_results>();
  ctx.attach(dist);
  EXPECT_EQ(run_core(ctx, gather), expected);
  EXPECT_GT(rmi.stats().sync_calls.load(), 0u);

  // Unplug everything, inner-first: back to the sequential core.
  ctx.detach("Distribution");
  ctx.detach("Concurrency");
  ctx.detach("Partition");
  EXPECT_EQ(run_core(ctx), expected);
}

TEST(IncrementalDevelopment, DebuggingByUnpluggingConcurrencyOnly) {
  // Paper §4.2: "it is possible to (un)plug concurrency for debugging" —
  // partition stays in, execution is deterministic single-threaded.
  const long long expected = sv::count_primes_up_to(kMax);
  aop::Context ctx;
  auto farm = make_farm();
  auto conc = make_conc();
  ctx.attach(farm);
  ctx.attach(conc);
  auto gather = [farm](aop::Context& c) { return farm->gather_results(c); };
  EXPECT_EQ(run_core(ctx, gather), expected);

  conc->set_enabled(false);  // unplug concurrency on the fly
  EXPECT_EQ(run_core(ctx, gather), expected);

  conc->set_enabled(true);
  EXPECT_EQ(run_core(ctx, gather), expected);
}

TEST(IncrementalDevelopment, SwapPipelineForFarmWithoutTouchingCore) {
  // Paper §7: "exchanging a pipeline by a farm partition".
  const long long expected = sv::count_primes_up_to(kMax);
  aop::Context ctx;

  using Pipe = st::PipelineAspect<PrimeFilter, long long, long long,
                                  long long, double>;
  Pipe::Options popts;
  popts.duplicates = 3;
  popts.pack_size = 1'500;
  popts.ctor_args = [](std::size_t i, std::size_t k,
                       const std::tuple<long long, long long, double>& orig) {
    const auto ranges = sv::balanced_prime_ranges(kMax, k);
    return std::make_tuple(ranges[i].first, ranges[i].second,
                           std::get<2>(orig));
  };
  auto pipe = std::make_shared<Pipe>("Partition", popts);
  ctx.attach(pipe);
  EXPECT_EQ(run_core(ctx, [pipe](aop::Context& c) {
              return pipe->gather_results(c);
            }),
            expected);

  ctx.detach("Partition");
  auto farm = make_farm();
  ctx.attach(farm);
  EXPECT_EQ(run_core(ctx, [farm](aop::Context& c) {
              return farm->gather_results(c);
            }),
            expected);
}

TEST(IncrementalDevelopment, MiddlewareSwapIsOneAspectConstructorArgument) {
  // Paper §4.3: "easier to switch among underlying middleware
  // implementations" — RMI vs MPP differ only in the middleware object
  // handed to the distribution aspect.
  const long long expected = sv::count_primes_up_to(kMax);
  for (const bool use_mpp : {false, true}) {
    aop::Context ctx;
    ctx.attach(make_farm());
    auto farm = std::static_pointer_cast<Farm>(ctx.find("Partition"));
    ctx.attach(make_conc());

    ac::Cluster cluster(ac::Cluster::Options{3, 2});
    cluster.registry()
        .bind<PrimeFilter>("PrimeFilter")
        .ctor<long long, long long, double>()
        .method<&PrimeFilter::filter>("filter")
        .method<&PrimeFilter::process>("process")
        .method<&PrimeFilter::collect>("collect")
        .method<&PrimeFilter::take_results>("take_results");
    std::unique_ptr<ac::Middleware> mw;
    if (use_mpp)
      mw = std::make_unique<ac::MppMiddleware>(cluster,
                                               ac::CostModel::loopback());
    else
      mw = std::make_unique<ac::RmiMiddleware>(cluster,
                                               ac::CostModel::loopback());
    auto dist = std::make_shared<Dist>("Distribution", cluster, *mw);
    dist->distribute_method<&PrimeFilter::filter>()
        .distribute_method<&PrimeFilter::process>(true)
        .distribute_method<&PrimeFilter::collect>(true)
        .distribute_method<&PrimeFilter::take_results>();
    ctx.attach(dist);

    EXPECT_EQ(run_core(ctx, [farm](aop::Context& c) {
                return farm->gather_results(c);
              }),
              expected)
        << (use_mpp ? "MPP" : "RMI");

    // The context must release the distribution aspect (and quiesce) before
    // the cluster goes away.
    ctx.detach("Distribution");
    ctx.quiesce();
  }
}
