#include "apar/analysis/report.hpp"

#include <algorithm>

#include "apar/common/json.hpp"
#include "apar/common/table.hpp"

namespace apar::analysis {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::optional<Severity> parse_severity(std::string_view text) {
  if (text == "info") return Severity::kInfo;
  if (text == "warning") return Severity::kWarning;
  if (text == "error") return Severity::kError;
  return std::nullopt;
}

std::string_view finding_kind_name(FindingKind kind) {
  switch (kind) {
    case FindingKind::kDeadPointcut: return "dead-pointcut";
    case FindingKind::kOrderCollision: return "order-collision";
    case FindingKind::kDoubleSynchronisation: return "double-sync";
    case FindingKind::kDistributionHazard: return "distribution-hazard";
    case FindingKind::kLockOrderCycle: return "lock-order-cycle";
    case FindingKind::kWaitWithMonitorHeld: return "wait-with-monitor";
    case FindingKind::kEmptySignatureTable: return "empty-signature-table";
    case FindingKind::kCacheNonIdempotent: return "cache-non-idempotent";
    case FindingKind::kCacheUnserializable: return "cache-unserializable";
    case FindingKind::kUnsynchronizedSharedWrite:
      return "unsynchronized-shared-write";
    case FindingKind::kRemoteDivergentWrite: return "remote-divergent-write";
    case FindingKind::kCacheEffectConflict: return "cache-effect-conflict";
    case FindingKind::kStaticLockOrderCycle: return "static-lock-order-cycle";
    case FindingKind::kUnknownEffects: return "unknown-effects";
    case FindingKind::kAdaptationUnsafeResize:
      return "adaptation-unsafe-resize";
  }
  return "?";
}

void Report::merge(const Report& other) {
  findings_.insert(findings_.end(), other.findings_.begin(),
                   other.findings_.end());
}

std::size_t Report::count_at_least(Severity threshold) const {
  std::size_t n = 0;
  for (const Finding& f : findings_)
    if (f.severity >= threshold) ++n;
  return n;
}

std::vector<Finding> Report::sorted() const {
  std::vector<Finding> out = findings_;
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.severity != b.severity)
                       return a.severity > b.severity;
                     if (a.subject != b.subject) return a.subject < b.subject;
                     const auto ka = finding_kind_name(a.kind);
                     const auto kb = finding_kind_name(b.kind);
                     if (ka != kb) return ka < kb;
                     return a.detail < b.detail;
                   });
  return out;
}

std::string Report::table(int indent) const {
  common::Table table({"severity", "kind", "subject", "detail"});
  for (const Finding& f : sorted()) {
    table.add_row({std::string(severity_name(f.severity)),
                   std::string(finding_kind_name(f.kind)), f.subject,
                   f.detail});
  }
  return table.str(indent);
}

std::string Report::json() const {
  std::size_t infos = 0, warnings = 0, errors = 0;
  std::string out = "{\"schema_version\": " +
                    std::to_string(kReportSchemaVersion) +
                    ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : sorted()) {
    switch (f.severity) {
      case Severity::kInfo: ++infos; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kError: ++errors; break;
    }
    if (!first) out += ",";
    first = false;
    out += "\n    {\"severity\": \"";
    out += severity_name(f.severity);
    out += "\", \"kind\": \"";
    out += finding_kind_name(f.kind);
    out += "\", \"subject\": \"";
    out += common::json_escape(f.subject);
    out += "\", \"detail\": \"";
    out += common::json_escape(f.detail);
    out += "\"}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"counts\": {\"info\": " + common::json_number(double(infos)) +
         ", \"warning\": " + common::json_number(double(warnings)) +
         ", \"error\": " + common::json_number(double(errors)) + "}\n}\n";
  return out;
}

}  // namespace apar::analysis
