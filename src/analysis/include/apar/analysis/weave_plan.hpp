#pragma once

#include "apar/analysis/report.hpp"
#include "apar/aop/context.hpp"

namespace apar::analysis {

/// Static weave-plan verification (the tool's "compile-time" half): checks
/// the aspects plugged into `context` against the process-wide
/// SignatureRegistry — the table every APAR_CLASS_NAME / APAR_METHOD_NAME
/// registration and every ct::Woven call feeds — without executing any
/// join point.
///
/// Reported findings:
///   dead-pointcut          pattern matches zero registered signatures
///   order-collision        two aspects, equal order(), same join point
///   double-sync            two monitor-acquiring advice on one join point
///   distribution-hazard    distribution advice over non-wire-serializable
///                          argument types (cross-checked against the
///                          serial::TypeRegistry)
///   empty-signature-table  nothing ever self-registered (vacuous analysis)
[[nodiscard]] Report analyze_weave_plan(const aop::Context& context);

}  // namespace apar::analysis
