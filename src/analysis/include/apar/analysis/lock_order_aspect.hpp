#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apar/analysis/report.hpp"
#include "apar/aop/aspect.hpp"
#include "apar/concurrency/sync_observer.hpp"

namespace apar::analysis {

/// Pluggable dynamic concurrency analysis — the Eraser-style runtime half
/// of apar-analyze, sibling of ProfilingAspect (order 40) and TraceAspect
/// (order 50): plug it and every SyncRegistry monitor acquisition feeds a
/// process-wide lock-order graph; unplug it and the only trace left on the
/// acquire path is the sync-observer slot's single atomic pointer load.
///
/// Two hazard classes are recorded while plugged and reported on demand:
///
///   lock-order-cycle    the order graph has a cycle (e.g. thread 1 took
///                       monitor A then B while thread 2 took B then A) —
///                       a potential deadlock even if this run got lucky;
///   wait-with-monitor   a thread blocked on Future::get while holding at
///                       least one monitor, so the producer can deadlock
///                       against it.
///
/// Monitors are anonymous (keyed by object address); reports label them
/// "monitor#N" in first-observed order, which is stable for seeded tests.
class LockOrderAspect : public aop::Aspect, public concurrency::SyncObserver {
 public:
  /// Where this aspect sits in the canonical order table: between
  /// ProfilingAspect (40) and TraceAspect (50). It registers no call
  /// advice itself — plugging installs the sync observer — but compositions
  /// that wrap it in ordering-sensitive tooling should use this constant.
  static constexpr int kOrder = 45;

  explicit LockOrderAspect(std::string name = "LockOrder");
  ~LockOrderAspect() override;

  /// Plugging installs this instance as the process sync observer;
  /// unplugging restores the previous one.
  void on_attach(aop::Context&) override;
  void on_detach(aop::Context&) override;

  // --- concurrency::SyncObserver ----------------------------------------
  void on_acquired(const concurrency::SyncRegistry* registry,
                   const void* object) override;
  void on_released(const concurrency::SyncRegistry* registry,
                   const void* object) override;
  void on_blocking_wait() override;

  // --- results -----------------------------------------------------------

  /// Findings derived from everything observed since construction (or the
  /// last reset()): one lock-order-cycle finding per distinct cycle, one
  /// wait-with-monitor finding summarising blocking waits under monitors.
  [[nodiscard]] Report report() const;

  /// Observation counters (diagnostics / tests).
  [[nodiscard]] std::size_t acquisitions() const;
  [[nodiscard]] std::size_t edges() const;
  [[nodiscard]] std::size_t waits_with_monitor_held() const;

  /// Drop all recorded observations.
  void reset();

 private:
  /// A monitor's identity: two SyncRegistry instances guarding the same
  /// object hold distinct locks, so the node key is the (registry, object)
  /// pair.
  using Monitor = std::pair<const concurrency::SyncRegistry*, const void*>;

  /// Monitor node id, assigned in first-observed order.
  std::size_t node_id_locked(const Monitor& monitor);

  mutable std::mutex mutex_;
  std::map<Monitor, std::size_t> nodes_;
  std::set<std::pair<std::size_t, std::size_t>> edges_;
  std::map<std::thread::id, std::vector<Monitor>> held_;
  std::size_t acquisitions_ = 0;
  std::size_t waits_with_monitor_ = 0;
  concurrency::SyncObserver* previous_ = nullptr;
};

}  // namespace apar::analysis
