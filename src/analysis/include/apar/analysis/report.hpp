#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace apar::analysis {

/// How bad a finding is. The apar-analyze CLI exits non-zero when any
/// finding at or above its --threshold severity is present.
enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

[[nodiscard]] std::string_view severity_name(Severity severity);

/// Parse "info" / "warning" / "error" (case-sensitive); nullopt otherwise.
[[nodiscard]] std::optional<Severity> parse_severity(std::string_view text);

/// The classes of weave-plan and lock-order defects the analyzers report.
enum class FindingKind {
  /// A plugged pointcut pattern matches no join point the weave layer has
  /// ever registered — the advice can never run (typo'd class/method name,
  /// or a composition missing its core classes).
  kDeadPointcut,
  /// Two aspects registered advice with equal order() matching the same
  /// join point: their relative nesting depends on attach order, which is
  /// almost never intended.
  kOrderCollision,
  /// Two monitor-acquiring advice records wrap the same join point — the
  /// call takes two per-object monitors from two registries, a classic
  /// deadlock ingredient.
  kDoubleSynchronisation,
  /// A distribution advice would marshal an argument (or result) type that
  /// src/serial cannot put on the wire: the call works locally but throws
  /// the moment the target is remote.
  kDistributionHazard,
  /// The dynamic lock-order graph contains a cycle (e.g. ABBA): threads
  /// acquired the same monitors in opposite orders at least once.
  kLockOrderCycle,
  /// A thread blocked on Future::get while holding at least one monitor —
  /// the producer may need that monitor to deliver the value.
  kWaitWithMonitorHeld,
  /// The signature table is empty: nothing self-registered, so dead-
  /// pointcut analysis is vacuous (usually an un-woven binary).
  kEmptySignatureTable,
  /// A caching advice memoizes a method nobody declared idempotent
  /// (APAR_METHOD_IDEMPOTENT): replaying a recorded effect may diverge
  /// from re-execution. Escalated to an error when the join point is also
  /// distributed over a real wire transport — there the cache silently
  /// swallows remote state transitions.
  kCacheNonIdempotent,
  /// A caching advice would record an effect (argument or result type)
  /// that src/serial cannot encode: the advice degrades to pass-through
  /// and the cache never fires. Escalated to an error over a real wire
  /// transport, where the cache was presumably meant to save round-trips.
  kCacheUnserializable,
  /// Two signatures that run concurrently under this weave plan touch the
  /// same declared state cell, at least one of them writing it, and no
  /// single aspect's monitor advice covers both — the write is visible to
  /// another thread with no common lock.
  kUnsynchronizedSharedWrite,
  /// A write effect rides a distribution advice to remote nodes while
  /// another signature touching the same state cell stays local (or rides
  /// a different middleware): the remote copy and the local copy diverge
  /// silently. Error on wire transports, warning on the simulation.
  kRemoteDivergentWrite,
  /// A caching advice memoizes a signature with a declared write effect on
  /// a state cell the class did not declare idempotent-safe
  /// (APAR_STATE_IDEMPOTENT): replaying the recorded effect skips the
  /// write.
  kCacheEffectConflict,
  /// The *static* may-acquire graph — built from monitor nesting on shared
  /// join points and mark_initiates bridge declarations, without running
  /// the program — contains a cycle: the compile-time shadow of
  /// kLockOrderCycle.
  kStaticLockOrderCycle,
  /// A signature runs concurrently under this weave plan but declared no
  /// effects at all: the race analysis cannot vouch for it either way.
  /// Always informational, never escalated.
  kUnknownEffects,
  /// An adaptation advice (mark_adapts) actuates runtime parallelism knobs
  /// behind a signature whose concurrency-spawning advice did not declare
  /// mark_online_resizable(): resizing that aspect's fan-out mid-flight
  /// can orphan accepted work or run it twice. Always an error — the
  /// controller WILL actuate at runtime.
  kAdaptationUnsafeResize,
};

[[nodiscard]] std::string_view finding_kind_name(FindingKind kind);

/// One defect: what it is, how bad, which weave element it concerns
/// ("Aspect/pattern", "monitor#1 -> monitor#2 -> monitor#1") and a
/// human-readable explanation.
struct Finding {
  FindingKind kind;
  Severity severity = Severity::kWarning;
  std::string subject;
  std::string detail;
};

/// Version stamp of the JSON documents Report::json() (and the
/// apar-analyze envelope around it) emit. Bump on any shape change so CI
/// consumers (tools/check_analysis.py) can refuse documents they do not
/// understand. Version 2 added this field plus the deterministic
/// severity-then-subject finding order.
inline constexpr int kReportSchemaVersion = 2;

/// Ordered collection of findings with the two renderings apar-analyze
/// emits: an aligned text table (common::Table) and a JSON document for CI
/// artifacts. findings() preserves insertion order (analyzers append pass
/// by pass); both renderings sort most-severe-first, then by subject, so
/// the output is deterministic regardless of pass order.
class Report {
 public:
  void add(Finding finding) { findings_.push_back(std::move(finding)); }
  void merge(const Report& other);

  [[nodiscard]] const std::vector<Finding>& findings() const {
    return findings_;
  }
  [[nodiscard]] bool empty() const { return findings_.empty(); }
  [[nodiscard]] std::size_t size() const { return findings_.size(); }

  /// Findings at or above `threshold` — the CLI's exit-code criterion.
  [[nodiscard]] std::size_t count_at_least(Severity threshold) const;

  /// Findings in rendering order: severity descending, then subject, then
  /// kind name, then detail (a total order, so ties cannot flip between
  /// runs).
  [[nodiscard]] std::vector<Finding> sorted() const;

  /// Aligned text table (severity, kind, subject, detail).
  [[nodiscard]] std::string table(int indent = 0) const;

  /// JSON document: {"schema_version": N, "findings": [...],
  /// "counts": {...}}.
  [[nodiscard]] std::string json() const;

 private:
  std::vector<Finding> findings_;
};

}  // namespace apar::analysis
