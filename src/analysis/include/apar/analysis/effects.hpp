#pragma once

#include "apar/analysis/report.hpp"
#include "apar/aop/context.hpp"

namespace apar::analysis {

/// Static shared-state / interference verification (the effect-system
/// pass): crosses the declared effect sets in the aop::EffectRegistry
/// (APAR_METHOD_READS / APAR_METHOD_WRITES) with the concurrency,
/// synchronisation, distribution and caching metadata of the advice
/// plugged into `context`, without executing any join point.
///
/// Concurrency model: a signature is a race candidate iff an advice marked
/// mark_spawns_concurrency() matches it and at least one such spawner is
/// not object-confined. Everything else is assumed to run on the
/// initiating thread in program phases separated from the spawned work by
/// Context::quiesce() — the discipline every shipped composition follows.
/// State cells are per class and per instance, so confined concurrency
/// (dynamic-farm worker loops, one object per thread) cannot race on them.
///
/// Reported findings:
///   unsynchronized-shared-write  two concurrent signatures touch one
///                                state cell, at least one writing, and no
///                                single aspect's monitor advice covers
///                                both (ERROR)
///   remote-divergent-write       a written state cell is only partially
///                                covered by one distribution aspect:
///                                remote and local copies diverge (ERROR
///                                on wire transports, warning on the
///                                simulation)
///   cache-effect-conflict        a cached signature writes a state cell
///                                not declared APAR_STATE_IDEMPOTENT
///                                (warning; ERROR over a mandatory wire)
///   static-lock-order-cycle      the may-acquire graph built from monitor
///                                nesting and mark_initiates declarations
///                                has a cycle (ERROR)
///   unknown-effects              a concurrent signature declared no
///                                effects; the analysis cannot vouch for
///                                it (info, never escalated)
[[nodiscard]] Report analyze_effects(const aop::Context& context);

}  // namespace apar::analysis
