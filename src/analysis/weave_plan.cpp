#include "apar/analysis/weave_plan.hpp"

#include <map>
#include <set>
#include <string>
#include <typeindex>
#include <vector>

#include "apar/aop/static_weave.hpp"
#include "apar/serial/wire_types.hpp"

namespace apar::analysis {

namespace {

/// One advice record with its owner and concrete invocation type. Only
/// advice of the same dynamic type ever co-occur in one chain (the weaver
/// filters with dynamic_cast), so collision and double-sync checks compare
/// within typeid groups.
struct Rec {
  const aop::Aspect* aspect;
  const aop::AdviceBase* advice;
  std::type_index type;
};

}  // namespace

Report analyze_weave_plan(const aop::Context& context) {
  Report report;

  const std::vector<aop::Signature> signatures =
      aop::SignatureRegistry::global().snapshot();
  if (signatures.empty()) {
    report.add({FindingKind::kEmptySignatureTable, Severity::kInfo, "<weave>",
                "no join-point signatures registered; dead-pointcut "
                "analysis is vacuous"});
  }

  std::vector<Rec> records;
  const auto aspects = context.aspects();
  for (const auto& aspect : aspects) {
    for (const auto& adv : aspect->advice()) {
      records.push_back(
          {aspect.get(), adv.get(), std::type_index(typeid(*adv))});
    }
  }

  // --- dead pointcuts ----------------------------------------------------
  for (const Rec& r : records) {
    if (signatures.empty()) break;
    bool live = false;
    for (const aop::Signature& sig : signatures) {
      if (r.advice->matches(sig)) {
        live = true;
        break;
      }
    }
    if (!live) {
      report.add({FindingKind::kDeadPointcut, Severity::kWarning,
                  r.aspect->name() + "/" + r.advice->pattern().str(),
                  "pattern matches none of " +
                      std::to_string(signatures.size()) +
                      " registered join points; this advice can never run"});
    }
  }

  // --- per-join-point checks: order collisions, double synchronisation ---
  std::set<std::string> reported;
  for (const aop::Signature& sig : signatures) {
    std::map<std::type_index, std::vector<const Rec*>> groups;
    for (const Rec& r : records)
      if (r.advice->matches(sig)) groups[r.type].push_back(&r);

    for (const auto& [type, group] : groups) {
      (void)type;
      for (std::size_t i = 0; i < group.size(); ++i) {
        for (std::size_t j = i + 1; j < group.size(); ++j) {
          const Rec& a = *group[i];
          const Rec& b = *group[j];
          if (a.aspect != b.aspect &&
              a.advice->order() == b.advice->order()) {
            // Equal order across aspects: stable_sort falls back to attach
            // order, so the nesting silently depends on plug sequence.
            const std::string key = "collision|" + a.aspect->name() + "|" +
                                    b.aspect->name() + "|" +
                                    std::to_string(a.advice->order()) + "|" +
                                    a.advice->pattern().str() + "|" +
                                    b.advice->pattern().str();
            if (reported.insert(key).second) {
              report.add({FindingKind::kOrderCollision, Severity::kWarning,
                          a.aspect->name() + " ~ " + b.aspect->name(),
                          "both register advice at order " +
                              std::to_string(a.advice->order()) +
                              " matching " + sig.str() +
                              "; nesting depends on attach order"});
            }
          }
        }
      }

      std::vector<const Rec*> monitors;
      for (const Rec* r : group)
        if (r->advice->acquires_monitor()) monitors.push_back(r);
      if (monitors.size() >= 2) {
        std::string who;
        std::string key = "double-sync|" + sig.str();
        for (const Rec* r : monitors) {
          if (!who.empty()) who += " + ";
          who += r->aspect->name();
          key += "|" + r->aspect->name();
        }
        if (reported.insert(key).second) {
          report.add({FindingKind::kDoubleSynchronisation, Severity::kError,
                      sig.str(),
                      who + " each take a per-object monitor around this "
                            "join point: nested locks from independent "
                            "registries risk deadlock"});
        }
      }
    }
  }

  // --- distribution hazards ----------------------------------------------
  for (const Rec& r : records) {
    if (!r.advice->distributes()) continue;
    for (const aop::WireArg& arg : r.advice->wire_args()) {
      bool ok = arg.serializable;
      if (!ok) {
        // A type may have been registered serializable out of band (e.g. a
        // later translation unit noted an ADL hook the registering one
        // could not see).
        ok = serial::TypeRegistry::global()
                 .serializable(arg.type_name)
                 .value_or(false);
      }
      if (!ok) {
        // Against a simulated middleware an unencodable argument is
        // advisory — the call still throws, but only if it actually goes
        // remote. When the advice targets a real wire transport (TCP),
        // encodability is a precondition for the call leaving the process
        // at all, so the hazard is an error.
        const bool mandatory = r.advice->wire_mandatory();
        report.add({FindingKind::kDistributionHazard,
                    mandatory ? Severity::kError : Severity::kWarning,
                    r.aspect->name() + "/" + r.advice->pattern().str(),
                    "argument type '" + arg.type_name +
                        "' is not wire-serializable: " +
                        (mandatory
                             ? "the target middleware is a real wire "
                               "transport, so remote dispatch is impossible"
                             : "the call works locally but throws on "
                               "remote dispatch")});
      }
    }
  }

  // --- cache safety -------------------------------------------------------
  // A caching advice replays a recorded effect instead of executing the
  // body. Two declared-contract violations are statically visible from the
  // mark_caches metadata: memoizing a method nobody declared idempotent,
  // and memoizing an effect the serial layer cannot record. Both escalate
  // from warning to error when the same join point is also carried by a
  // wire-mandatory distribution advice — over a real transport the cache
  // either swallows remote state transitions or silently never fires.
  for (const Rec& r : records) {
    if (!r.advice->caches()) continue;

    bool over_wire = false;
    for (const aop::Signature& sig : signatures) {
      if (!r.advice->matches(sig)) continue;
      for (const Rec& other : records) {
        if (other.advice->distributes() && other.advice->wire_mandatory() &&
            other.advice->matches(sig)) {
          over_wire = true;
          break;
        }
      }
      if (over_wire) break;
    }
    const Severity severity = over_wire ? Severity::kError : Severity::kWarning;
    const std::string subject =
        r.aspect->name() + "/" + r.advice->pattern().str();

    if (!r.advice->cache_idempotent()) {
      report.add({FindingKind::kCacheNonIdempotent, severity, subject,
                  std::string("memoized method is not declared idempotent "
                              "(APAR_METHOD_IDEMPOTENT): replaying a recorded "
                              "effect may diverge from re-execution") +
                      (over_wire ? "; the join point is distributed over a "
                                   "real wire transport, so hits also skip "
                                   "remote state transitions"
                                 : "")});
    }

    for (const aop::WireArg& arg : r.advice->cache_args()) {
      bool ok = arg.serializable;
      if (!ok) {
        ok = serial::TypeRegistry::global()
                 .serializable(arg.type_name)
                 .value_or(false);
      }
      if (!ok) {
        report.add({FindingKind::kCacheUnserializable, severity, subject,
                    "effect type '" + arg.type_name +
                        "' is not wire-serializable: the caching advice "
                        "degrades to pass-through and never fires" +
                        (over_wire ? "; over a real wire transport every "
                                     "call still pays the round-trip the "
                                     "cache was meant to save"
                                   : "")});
      }
    }
  }

  // --- adaptation safety --------------------------------------------------
  // A mark_adapts advice means an autonomic controller WILL retune the
  // parallelism behind its matched signatures while the application runs
  // (pool resize, grain, feeder depth). That is only sound when every
  // concurrency-spawning advice on the same signature declared
  // mark_online_resizable() — i.e. its fan-out tolerates a degree change
  // between tasks without losing or re-running accepted work. A spawner
  // without the mark (a farm whose workers hold per-thread state sized at
  // plug time, say) can orphan or double-run work the moment the
  // controller actuates, so the combination is an error outright: unlike a
  // latent hazard, the controller is guaranteed to pull the trigger.
  for (const aop::Signature& sig : signatures) {
    std::vector<const Rec*> adapters;
    std::vector<const Rec*> unsafe_spawners;
    for (const Rec& r : records) {
      if (!r.advice->matches(sig)) continue;
      if (r.advice->adapts()) {
        adapters.push_back(&r);
      } else if (r.advice->spawns_concurrency() &&
                 !r.advice->online_resizable()) {
        unsafe_spawners.push_back(&r);
      }
    }
    if (adapters.empty()) continue;
    for (const Rec* a : adapters) {
      for (const Rec* s : unsafe_spawners) {
        const std::string key = "adapt-unsafe|" + sig.str() + "|" +
                                a->aspect->name() + "|" + s->aspect->name();
        if (!reported.insert(key).second) continue;
        std::string knobs;
        for (const std::string& k : a->advice->adapt_knobs()) {
          if (!knobs.empty()) knobs += ", ";
          knobs += k;
        }
        report.add(
            {FindingKind::kAdaptationUnsafeResize, Severity::kError, sig.str(),
             a->aspect->name() + " adapts {" + knobs + "} behind this join "
                 "point, but " + s->aspect->name() +
                 "'s concurrency-spawning advice does not declare "
                 "mark_online_resizable(): an online resize can orphan or "
                 "double-run its in-flight work"});
      }
    }
  }

  return report;
}

}  // namespace apar::analysis
