#include "apar/analysis/effects.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "apar/aop/effects.hpp"
#include "apar/aop/static_weave.hpp"

namespace apar::analysis {

namespace {

/// One advice record with its owner and attach position. The attach index
/// breaks order() ties exactly like the weaver's stable_sort does, so the
/// static nesting judgement matches what would actually run.
struct Rec {
  const aop::Aspect* aspect;
  const aop::AdviceBase* advice;
  std::size_t attach_index;
};

/// Whether advice `a` nests outside advice `b` on a shared join point.
bool outer_than(const Rec& a, const Rec& b) {
  if (a.advice->order() != b.advice->order())
    return a.advice->order() < b.advice->order();
  return a.attach_index < b.attach_index;
}

/// Everything the effect passes need to know about one registered
/// signature under the current weave plan.
struct SigInfo {
  aop::Signature sig;
  std::vector<aop::Effect> effects;
  bool in_play = false;     ///< matched by at least one advice record
  bool concurrent = false;  ///< matched by a mark_spawns_concurrency advice
  bool unconfined = false;  ///< ... by one that is not object-confined
  std::vector<const Rec*> monitors;
  std::vector<const Rec*> distributors;
  std::vector<const Rec*> cachers;
  std::vector<const Rec*> initiators;  ///< advice with mark_initiates
};

/// How one signature touches one state cell (reads and writes folded).
struct Touch {
  const SigInfo* s = nullptr;
  bool reads = false;
  bool writes = false;

  [[nodiscard]] std::string_view verb() const {
    if (reads && writes) return "reads+writes";
    return writes ? "writes" : "reads";
  }
};

/// Two signatures share a monitor iff one aspect registered
/// monitor-acquiring advice matching both: shipped aspects keep exactly
/// one SyncRegistry per instance, so "same aspect" means "same per-object
/// monitor".
bool monitor_covers_both(const SigInfo& a, const SigInfo& b) {
  for (const Rec* m : a.monitors)
    for (const Rec* n : b.monitors)
      if (m->aspect == n->aspect) return true;
  return false;
}

}  // namespace

Report analyze_effects(const aop::Context& context) {
  Report report;
  const aop::EffectRegistry& effreg = aop::EffectRegistry::global();

  const std::vector<aop::Signature> signatures =
      aop::SignatureRegistry::global().snapshot();

  std::vector<Rec> records;
  const auto aspects = context.aspects();
  for (const auto& aspect : aspects) {
    for (const auto& adv : aspect->advice()) {
      records.push_back({aspect.get(), adv.get(), records.size()});
    }
  }

  std::vector<SigInfo> infos;
  infos.reserve(signatures.size());
  for (const aop::Signature& sig : signatures) {
    SigInfo info;
    info.sig = sig;
    info.effects = effreg.effects(sig);
    for (const Rec& r : records) {
      if (!r.advice->matches(sig)) continue;
      info.in_play = true;
      if (r.advice->spawns_concurrency()) {
        info.concurrent = true;
        if (!r.advice->spawn_confined_to_target()) info.unconfined = true;
      }
      if (r.advice->acquires_monitor()) info.monitors.push_back(&r);
      if (r.advice->distributes()) info.distributors.push_back(&r);
      if (r.advice->caches()) info.cachers.push_back(&r);
      if (!r.advice->initiates().empty()) info.initiators.push_back(&r);
    }
    infos.push_back(std::move(info));
  }

  // --- unknown effects ----------------------------------------------------
  // A signature some spawning advice makes concurrent, with no declared
  // effect set at all: the race analysis can neither clear nor convict it.
  // Deliberately informational — unannotated code must never gate.
  for (const SigInfo& s : infos) {
    if (!s.concurrent || !s.effects.empty()) continue;
    report.add({FindingKind::kUnknownEffects, Severity::kInfo, s.sig.str(),
                "signature runs concurrently under this weave plan but "
                "declares no effects (APAR_METHOD_READS/WRITES): the race "
                "analysis cannot vouch for it"});
  }

  // --- state-cell index ---------------------------------------------------
  // Cells are (class, state): state names are scoped per class, and only
  // signatures the plan actually advises participate — the registry is
  // process-wide, but a composition is judged on its own footprint.
  std::map<std::pair<std::string_view, std::string_view>, std::vector<Touch>>
      cells;
  for (const SigInfo& s : infos) {
    if (!s.in_play) continue;
    std::map<std::string_view, Touch> per_state;
    for (const aop::Effect& e : s.effects) {
      Touch& t = per_state[e.state];
      t.s = &s;
      if (e.kind == aop::EffectKind::kWrite)
        t.writes = true;
      else
        t.reads = true;
    }
    for (const auto& [state, touch] : per_state)
      cells[{s.sig.class_name, state}].push_back(touch);
  }

  // --- (a) unsynchronized shared writes -----------------------------------
  for (const auto& [cell, touches] : cells) {
    const std::string cell_name =
        std::string(cell.first) + "." + std::string(cell.second);
    for (std::size_t i = 0; i < touches.size(); ++i) {
      // j == i is the self-pair: an unconfined fan-out runs a signature
      // concurrently with itself, so a writer needs a monitor even when no
      // other signature touches the cell.
      for (std::size_t j = i; j < touches.size(); ++j) {
        const Touch& a = touches[i];
        const Touch& b = touches[j];
        if (!a.writes && !b.writes) continue;
        if (!a.s->unconfined || !b.s->unconfined) continue;
        if (monitor_covers_both(*a.s, *b.s)) continue;
        const std::string detail =
            i == j ? std::string(a.s->sig.method_name) + " (" +
                         std::string(a.verb()) + " '" +
                         std::string(cell.second) +
                         "') fans out concurrently with itself and no "
                         "monitor advice guards it"
                   : std::string(a.s->sig.method_name) + " (" +
                         std::string(a.verb()) + ") runs concurrently with " +
                         std::string(b.s->sig.method_name) + " (" +
                         std::string(b.verb()) +
                         ") on '" + std::string(cell.second) +
                         "' and no single aspect's monitor advice covers "
                         "both join points";
        report.add({FindingKind::kUnsynchronizedSharedWrite, Severity::kError,
                    cell_name, detail});
      }
    }
  }

  // --- (b) remote divergent writes ----------------------------------------
  // A written cell must ride the wire wholesale or not at all: when one
  // toucher is dispatched remotely by a distribution aspect and another
  // toucher of the same cell is not, the remote instance's copy and the
  // local copy evolve independently — no exception, no wrong answer today,
  // just silent divergence.
  std::set<std::string> reported;
  for (const auto& [cell, touches] : cells) {
    bool any_write = false;
    for (const Touch& t : touches) any_write = any_write || t.writes;
    if (!any_write) continue;
    const std::string cell_name =
        std::string(cell.first) + "." + std::string(cell.second);
    for (const Touch& a : touches) {
      for (const Rec* d : a.s->distributors) {
        for (const Touch& b : touches) {
          if (b.s == a.s) continue;
          if (!a.writes && !b.writes) continue;
          bool same_aspect = false;
          for (const Rec* e : b.s->distributors)
            same_aspect = same_aspect || e->aspect == d->aspect;
          if (same_aspect) continue;
          const bool mandatory = d->advice->wire_mandatory();
          const std::string key = "rdw|" + d->aspect->name() + "|" +
                                  cell_name + "|" + b.s->sig.str();
          if (!reported.insert(key).second) continue;
          report.add(
              {FindingKind::kRemoteDivergentWrite,
               mandatory ? Severity::kError : Severity::kWarning, cell_name,
               std::string(a.s->sig.method_name) + " (" +
                   std::string(a.verb()) + ") is distributed by " +
                   d->aspect->name() + " but " +
                   std::string(b.s->sig.method_name) +
                   " touching the same cell dispatches locally: remote and "
                   "local copies of '" + std::string(cell.second) +
                   "' diverge silently" +
                   (mandatory
                        ? "; the target middleware is a real wire "
                          "transport, so the divergence is unconditional"
                        : " whenever the target lands on a remote node")});
        }
      }
    }
  }

  // --- (c) cache/effect conflicts -----------------------------------------
  // Replaying a memoized effect skips the body — and with it every
  // declared write. That is sound only for cells the class declared
  // idempotent-safe (APAR_STATE_IDEMPOTENT: fully overwritten before any
  // read). Mirrors the cache-safety escalation: over a mandatory wire the
  // skipped write would also have been a remote state transition.
  for (const SigInfo& s : infos) {
    if (s.cachers.empty()) continue;
    bool over_wire = false;
    for (const Rec* d : s.distributors)
      over_wire = over_wire || d->advice->wire_mandatory();
    for (const aop::Effect& e : s.effects) {
      if (e.kind != aop::EffectKind::kWrite) continue;
      if (effreg.state_idempotent(s.sig.class_name, e.state)) continue;
      for (const Rec* c : s.cachers) {
        report.add(
            {FindingKind::kCacheEffectConflict,
             over_wire ? Severity::kError : Severity::kWarning,
             c->aspect->name() + "/" + s.sig.str(),
             "cached signature writes '" + std::string(e.state) +
                 "', which " + std::string(s.sig.class_name) +
                 " does not declare idempotent-safe "
                 "(APAR_STATE_IDEMPOTENT): a cache hit silently skips the "
                 "write" +
                 (over_wire ? "; over a real wire transport it also skips "
                              "the remote state transition"
                            : "")});
      }
    }
  }

  // --- (d) static lock-order cycles ---------------------------------------
  // The compile-time shadow of the dynamic LockOrderAspect: nodes are the
  // monitor-owning aspects (one SyncRegistry each), and an edge A -> B
  // means a monitor of A can still be held when a monitor of B is
  // acquired. Two sources, both read off the weave plan: nested monitor
  // advice on one join point (the double-sync shape), and bridge advice
  // that declares via mark_initiates which signatures its body calls while
  // the original join point — and any monitor outside the bridge — is
  // still on the stack.
  std::set<std::pair<const aop::Aspect*, const aop::Aspect*>> edges;
  for (const SigInfo& s : infos) {
    for (const Rec* m : s.monitors) {
      for (const Rec* n : s.monitors) {
        if (m->aspect != n->aspect && outer_than(*m, *n))
          edges.insert({m->aspect, n->aspect});
      }
      for (const Rec* x : s.initiators) {
        if (!outer_than(*m, *x)) continue;  // monitor not held around x
        for (const aop::Pattern& p : x->advice->initiates()) {
          for (const SigInfo& t : infos) {
            if (t.sig.kind != aop::JoinPointKind::kMethodCall) continue;
            if (!p.matches(t.sig)) continue;
            for (const Rec* n : t.monitors) {
              if (n->aspect != m->aspect)
                edges.insert({m->aspect, n->aspect});
            }
          }
        }
      }
    }
  }

  std::map<const aop::Aspect*, std::size_t> ids;
  std::vector<const aop::Aspect*> nodes;
  for (const auto& [from, to] : edges) {
    for (const aop::Aspect* a : {from, to}) {
      if (ids.try_emplace(a, nodes.size()).second) nodes.push_back(a);
    }
  }
  std::map<std::size_t, std::vector<std::size_t>> adj;
  for (const auto& [from, to] : edges) adj[ids[from]].push_back(ids[to]);

  // DFS with normalised (smallest-node-first) cycles, exactly like the
  // dynamic pass, so the same loop found from different roots dedups.
  std::set<std::vector<std::size_t>> cycles;
  std::map<std::size_t, int> color;
  std::vector<std::size_t> path;
  const std::function<void(std::size_t)> dfs = [&](std::size_t u) {
    color[u] = 1;
    path.push_back(u);
    for (const std::size_t v : adj[u]) {
      if (color[v] == 1) {
        auto it = std::find(path.begin(), path.end(), v);
        std::vector<std::size_t> cycle(it, path.end());
        auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        cycles.insert(std::move(cycle));
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    color[u] = 2;
    path.pop_back();
  };
  for (const auto& [node, _] : adj)
    if (color[node] == 0) dfs(node);

  for (const auto& cycle : cycles) {
    std::string subject;
    for (const std::size_t n : cycle) subject += nodes[n]->name() + " -> ";
    subject += nodes[cycle.front()]->name();
    report.add({FindingKind::kStaticLockOrderCycle, Severity::kError, subject,
                "monitors of these aspects can be acquired in a cycle "
                "(derived from monitor nesting and mark_initiates "
                "declarations, without running the program): potential "
                "deadlock (ABBA)"});
  }

  return report;
}

}  // namespace apar::analysis
