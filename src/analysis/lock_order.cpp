#include "apar/analysis/lock_order_aspect.hpp"

#include <algorithm>
#include <functional>

namespace apar::analysis {

LockOrderAspect::LockOrderAspect(std::string name) : Aspect(std::move(name)) {}

LockOrderAspect::~LockOrderAspect() {
  // Defensive: if the aspect dies while still installed (detach not run),
  // clear the slot rather than leave a dangling observer.
  if (concurrency::sync_observer() == this)
    concurrency::set_sync_observer(previous_);
}

void LockOrderAspect::on_attach(aop::Context&) {
  previous_ = concurrency::set_sync_observer(this);
}

void LockOrderAspect::on_detach(aop::Context&) {
  concurrency::set_sync_observer(previous_);
  previous_ = nullptr;
}

std::size_t LockOrderAspect::node_id_locked(const Monitor& monitor) {
  auto [it, inserted] = nodes_.try_emplace(monitor, nodes_.size() + 1);
  (void)inserted;
  return it->second;
}

void LockOrderAspect::on_acquired(const concurrency::SyncRegistry* registry,
                                  const void* object) {
  const Monitor monitor{registry, object};
  std::lock_guard lock(mutex_);
  ++acquisitions_;
  auto& stack = held_[std::this_thread::get_id()];
  const std::size_t to = node_id_locked(monitor);
  for (const Monitor& held : stack) {
    if (held == monitor) continue;  // recursive re-entry: no new ordering
    edges_.insert({node_id_locked(held), to});
  }
  stack.push_back(monitor);
}

void LockOrderAspect::on_released(const concurrency::SyncRegistry* registry,
                                  const void* object) {
  const Monitor monitor{registry, object};
  std::lock_guard lock(mutex_);
  auto it = held_.find(std::this_thread::get_id());
  if (it == held_.end()) return;
  auto& stack = it->second;
  // Pop the innermost hold of this monitor (guards release LIFO, but be
  // tolerant of out-of-order destruction of moved guards).
  for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
    if (*rit == monitor) {
      stack.erase(std::next(rit).base());
      break;
    }
  }
  if (stack.empty()) held_.erase(it);
}

void LockOrderAspect::on_blocking_wait() {
  std::lock_guard lock(mutex_);
  auto it = held_.find(std::this_thread::get_id());
  if (it != held_.end() && !it->second.empty()) ++waits_with_monitor_;
}

std::size_t LockOrderAspect::acquisitions() const {
  std::lock_guard lock(mutex_);
  return acquisitions_;
}

std::size_t LockOrderAspect::edges() const {
  std::lock_guard lock(mutex_);
  return edges_.size();
}

std::size_t LockOrderAspect::waits_with_monitor_held() const {
  std::lock_guard lock(mutex_);
  return waits_with_monitor_;
}

void LockOrderAspect::reset() {
  std::lock_guard lock(mutex_);
  nodes_.clear();
  edges_.clear();
  held_.clear();
  acquisitions_ = 0;
  waits_with_monitor_ = 0;
}

Report LockOrderAspect::report() const {
  std::lock_guard lock(mutex_);
  Report report;

  // --- cycles in the order graph (DFS over the observed edges) ----------
  std::map<std::size_t, std::vector<std::size_t>> adj;
  for (const auto& [from, to] : edges_) adj[from].push_back(to);

  // Normalised cycles (rotated so the smallest node leads) to dedup the
  // same loop discovered from different DFS roots.
  std::set<std::vector<std::size_t>> cycles;
  std::map<std::size_t, int> color;  // 0 unseen, 1 on path, 2 done
  std::vector<std::size_t> path;

  const std::function<void(std::size_t)> dfs = [&](std::size_t u) {
    color[u] = 1;
    path.push_back(u);
    for (const std::size_t v : adj[u]) {
      if (color[v] == 1) {
        auto it = std::find(path.begin(), path.end(), v);
        std::vector<std::size_t> cycle(it, path.end());
        auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        cycles.insert(std::move(cycle));
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    color[u] = 2;
    path.pop_back();
  };
  for (const auto& [node, _] : adj)
    if (color[node] == 0) dfs(node);

  for (const auto& cycle : cycles) {
    std::string subject;
    for (const std::size_t n : cycle)
      subject += "monitor#" + std::to_string(n) + " -> ";
    subject += "monitor#" + std::to_string(cycle.front());
    report.add({FindingKind::kLockOrderCycle, Severity::kError, subject,
                "threads acquired these monitors in conflicting orders: "
                "potential deadlock (ABBA) even if this run completed"});
  }

  // --- blocking waits under a monitor ------------------------------------
  if (waits_with_monitor_ > 0) {
    report.add({FindingKind::kWaitWithMonitorHeld, Severity::kWarning,
                "Future::get",
                std::to_string(waits_with_monitor_) +
                    " blocking wait(s) entered while holding a monitor; "
                    "the producer may need that monitor to deliver"});
  }

  return report;
}

}  // namespace apar::analysis
