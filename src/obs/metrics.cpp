#include "apar/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "apar/common/json.hpp"

namespace apar::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument("Histogram bounds must strictly increase");
  }
  min_bits_.store(std::bit_cast<std::uint64_t>(
                      std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(std::bit_cast<std::uint64_t>(
                      -std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
}

void Histogram::record(double value) {
  if (value < 0.0) value = 0.0;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Fixed-point (value * 1000) accumulation keeps concurrent sums exact —
  // the registry concurrency test asserts totals to the last unit.
  sum_nanos_.fetch_add(static_cast<std::uint64_t>(value * 1000.0 + 0.5),
                       std::memory_order_relaxed);
  std::uint64_t cur = min_bits_.load(std::memory_order_relaxed);
  while (value < std::bit_cast<double>(cur) &&
         !min_bits_.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(value),
                                          std::memory_order_relaxed)) {
  }
  cur = max_bits_.load(std::memory_order_relaxed);
  while (value > std::bit_cast<double>(cur) &&
         !max_bits_.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(value),
                                          std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) /
         1000.0;
}

double Histogram::min() const {
  if (count() == 0) return 0.0;
  return std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  if (count() == 0) return 0.0;
  return std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::mean() const {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> cumulative(buckets_.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    acc += buckets_[i].load(std::memory_order_relaxed);
    cumulative[i] = acc;
  }
  return cumulative;
}

double Histogram::percentile(double pct) const {
  // Empty histogram: every percentile is 0.0 by contract, decided up
  // front — not an accident of zero-filled cumulative buckets.
  if (count() == 0) return 0.0;
  const auto cumulative = bucket_counts();
  const std::uint64_t total = cumulative.back();
  // count_ and the buckets are bumped by separate relaxed atomics, so a
  // racing reader can see count() > 0 before any bucket increment lands.
  if (total == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const double rank = pct / 100.0 * static_cast<double>(total);
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (static_cast<double>(cumulative[i]) < rank) continue;
    if (i == bounds_.size()) return max();  // +Inf bucket
    const double hi = std::min(bounds_[i], max());
    const double lo = i == 0 ? std::min(min(), hi) : bounds_[i - 1];
    const std::uint64_t below = i == 0 ? 0 : cumulative[i - 1];
    const std::uint64_t in_bucket = cumulative[i] - below;
    if (in_bucket == 0) return hi;
    const double frac = (rank - static_cast<double>(below)) /
                        static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max();
}

std::vector<double> Histogram::latency_us_bounds() {
  return {1,    2,    5,    10,   20,   50,   100,  200,
          500,  1e3,  2e3,  5e3,  1e4,  2e4,  5e4,  1e5,
          2e5,  5e5,  1e6,  2e6,  5e6,  1e7};
}

std::vector<double> Histogram::bytes_bounds() {
  return {16,     64,      256,     1024,     4096,    16384,
          65536,  262144,  1048576, 4194304,  16777216};
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

Labels normalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string metric_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  key += '{';
  for (const auto& [k, v] : labels) {
    key += k;
    key += '=';
    key += v;
    key += ',';
  }
  key += '}';
  return key;
}

std::string labels_str(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace

std::shared_ptr<Counter> MetricsRegistry::counter(std::string_view name,
                                                  Labels labels) {
  labels = normalize(std::move(labels));
  std::lock_guard lock(mutex_);
  auto& e = entries_[metric_key(name, labels)];
  if (!e.counter) {
    if (e.gauge || e.histogram)
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered with another type");
    e.kind = MetricSnapshot::Kind::kCounter;
    e.name = std::string(name);
    e.labels = labels;
    e.counter = std::make_shared<Counter>();
  }
  return e.counter;
}

std::shared_ptr<Gauge> MetricsRegistry::gauge(std::string_view name,
                                              Labels labels) {
  labels = normalize(std::move(labels));
  std::lock_guard lock(mutex_);
  auto& e = entries_[metric_key(name, labels)];
  if (!e.gauge) {
    if (e.counter || e.histogram)
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered with another type");
    e.kind = MetricSnapshot::Kind::kGauge;
    e.name = std::string(name);
    e.labels = labels;
    e.gauge = std::make_shared<Gauge>();
  }
  return e.gauge;
}

std::shared_ptr<Histogram> MetricsRegistry::histogram(
    std::string_view name, Labels labels, std::vector<double> bounds) {
  labels = normalize(std::move(labels));
  std::lock_guard lock(mutex_);
  auto& e = entries_[metric_key(name, labels)];
  if (!e.histogram) {
    if (e.counter || e.gauge)
      throw std::logic_error("metric '" + std::string(name) +
                             "' already registered with another type");
    e.kind = MetricSnapshot::Kind::kHistogram;
    e.name = std::string(name);
    e.labels = labels;
    e.histogram = std::make_shared<Histogram>(std::move(bounds));
  }
  return e.histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSnapshot s;
    s.kind = e.kind;
    s.name = e.name;
    s.labels = e.labels;
    switch (e.kind) {
      case MetricSnapshot::Kind::kCounter:
        s.value = static_cast<std::int64_t>(e.counter->value());
        break;
      case MetricSnapshot::Kind::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        s.count = e.histogram->count();
        s.sum = e.histogram->sum();
        s.min = e.histogram->min();
        s.max = e.histogram->max();
        s.mean = e.histogram->mean();
        s.p50 = e.histogram->percentile(50);
        s.p95 = e.histogram->percentile(95);
        s.p99 = e.histogram->percentile(99);
        s.p999 = e.histogram->percentile(99.9);
        s.bounds = e.histogram->bounds();
        s.buckets = e.histogram->bucket_counts();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

common::Table MetricsRegistry::table() const {
  common::Table t({"metric", "labels", "type", "value", "count", "mean",
                   "p50", "p95", "p99", "p999", "max"});
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return std::string(buf);
  };
  for (const auto& s : snapshot()) {
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        t.add_row({s.name, labels_str(s.labels), "counter",
                   std::to_string(s.value), "", "", "", "", "", "", ""});
        break;
      case MetricSnapshot::Kind::kGauge:
        t.add_row({s.name, labels_str(s.labels), "gauge",
                   std::to_string(s.value), "", "", "", "", "", "", ""});
        break;
      case MetricSnapshot::Kind::kHistogram:
        t.add_row({s.name, labels_str(s.labels), "histogram", "",
                   std::to_string(s.count), fmt(s.mean), fmt(s.p50),
                   fmt(s.p95), fmt(s.p99), fmt(s.p999), fmt(s.max)});
        break;
    }
  }
  return t;
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& s : snapshot()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << common::json_escape(s.name) << "\",\"labels\":{";
    bool lfirst = true;
    for (const auto& [k, v] : s.labels) {
      if (!lfirst) os << ',';
      lfirst = false;
      os << '"' << common::json_escape(k) << "\":\"" << common::json_escape(v)
         << '"';
    }
    os << "},";
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << "\"type\":\"counter\",\"value\":" << s.value;
        break;
      case MetricSnapshot::Kind::kGauge:
        os << "\"type\":\"gauge\",\"value\":" << s.value;
        break;
      case MetricSnapshot::Kind::kHistogram: {
        os << "\"type\":\"histogram\",\"count\":" << s.count
           << ",\"sum\":" << common::json_number(s.sum)
           << ",\"min\":" << common::json_number(s.min)
           << ",\"max\":" << common::json_number(s.max)
           << ",\"p50\":" << common::json_number(s.p50)
           << ",\"p95\":" << common::json_number(s.p95)
           << ",\"p99\":" << common::json_number(s.p99)
           << ",\"p999\":" << common::json_number(s.p999) << ",\"buckets\":[";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i) os << ',';
          os << "{\"le\":";
          if (i < s.bounds.size())
            os << common::json_number(s.bounds[i]);
          else
            os << "\"+Inf\"";
          os << ",\"count\":" << s.buckets[i] << '}';
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

// ---------------------------------------------------------------------------
// Enablement gate
// ---------------------------------------------------------------------------

namespace {
// -1 = undecided (read env on first query), 0 = off, 1 = on.
std::atomic<int> g_metrics_enabled{-1};

bool env_truthy(const char* v) {
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0 &&
         std::strcmp(v, "false") != 0 && std::strcmp(v, "off") != 0;
}
}  // namespace

bool metrics_enabled() {
  int v = g_metrics_enabled.load(std::memory_order_acquire);
  if (v < 0) {
    const char* out = std::getenv("APAR_METRICS_OUT");
    const bool on =
        env_truthy(std::getenv("APAR_METRICS")) || (out != nullptr && *out);
    int expected = -1;
    g_metrics_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                              std::memory_order_acq_rel);
    v = g_metrics_enabled.load(std::memory_order_acquire);
  }
  return v == 1;
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on ? 1 : 0, std::memory_order_release);
}

}  // namespace apar::obs
