#include "apar/obs/trace_context.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <random>

namespace apar::obs {

namespace {

thread_local TraceContext t_current;

// The stream base must differ per PROCESS, not just per thread: ids from
// the two halves of a distributed trace land in one merged file, and a
// fixed base would make the client and server draw identical sequences.
std::uint64_t process_stream_base() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^
         0x9e3779b97f4a7c15ULL;
}

// splitmix64 — each thread claims a well-separated stream start from the
// shared counter, then advances privately; outputs are uniformly scrambled
// so ids from different threads never collide in practice and are never 0
// except with probability 2^-64 (rejected below).
std::atomic<std::uint64_t> g_id_stream{process_stream_base()};

thread_local std::uint64_t t_id_state = 0;

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t next_id() {
  if (t_id_state == 0) {
    // 2^32 ids between stream starts: far more than one thread ever draws.
    t_id_state =
        g_id_stream.fetch_add(0x100000000ULL, std::memory_order_relaxed);
  }
  std::uint64_t id;
  do {
    id = splitmix64(t_id_state);
  } while (id == 0);
  return id;
}

// -1 = undecided (read env on first query), 0 = off, 1 = on.
std::atomic<int> g_tracing_enabled{-1};

bool env_truthy(const char* v) {
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0 &&
         std::strcmp(v, "false") != 0 && std::strcmp(v, "off") != 0;
}

}  // namespace

TraceContext TraceContext::child_of(const TraceContext& parent) {
  TraceContext child;
  child.trace_id = parent.valid() ? parent.trace_id : next_trace_id();
  child.span_id = next_span_id();
  child.parent_span_id = parent.valid() ? parent.span_id : 0;
  return child;
}

TraceContext current_context() { return t_current; }

std::uint64_t next_trace_id() { return next_id(); }
std::uint64_t next_span_id() { return next_id(); }

SpanScope::SpanScope(const TraceContext& parent)
    : context_(TraceContext::child_of(parent)), previous_(t_current) {
  t_current = context_;
}

SpanScope::~SpanScope() { t_current = previous_; }

ContextScope::ContextScope(const TraceContext& context)
    : previous_(t_current) {
  t_current = context;
}

ContextScope::~ContextScope() { t_current = previous_; }

bool tracing_enabled() {
  int v = g_tracing_enabled.load(std::memory_order_acquire);
  if (v < 0) {
    const char* out = std::getenv("APAR_TRACE_OUT");
    const bool on =
        env_truthy(std::getenv("APAR_TRACE")) || (out != nullptr && *out);
    int expected = -1;
    g_tracing_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                              std::memory_order_acq_rel);
    v = g_tracing_enabled.load(std::memory_order_acquire);
  }
  return v == 1;
}

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled ? 1 : 0, std::memory_order_release);
}

}  // namespace apar::obs
