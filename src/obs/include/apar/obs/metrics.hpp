#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "apar/common/table.hpp"

namespace apar::obs {

/// Metric labels, e.g. {{"middleware", "MPP"}, {"method", "sieve"}}.
/// Normalised (sorted by key) before use so label order never creates
/// distinct time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (events, bytes, microseconds of work).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, live workers). add() is the
/// common path for depth-style gauges: +1 on enqueue, -1 on dequeue.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket upper bounds are chosen at construction
/// and never change, so record() is a binary search plus a handful of
/// relaxed atomic increments — cheap enough to sit on a middleware call
/// path when metrics are enabled, and entirely absent when they are not.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly increasing; an implicit
  /// +Inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void record(double value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of values <= bounds()[i]; index bounds().size() is
  /// the +Inf bucket (== count()).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  /// Percentile estimate (linear within the winning bucket). pct is
  /// clamped to [0,100]. An empty histogram (count() == 0) returns 0.0 for
  /// every pct — a defined contract (tested), not a side effect of the
  /// bucket arithmetic.
  [[nodiscard]] double percentile(double pct) const;
  [[nodiscard]] double mean() const;

  /// Default bounds for latency-in-microseconds histograms: 1us .. 10s,
  /// 1-2-5 decades.
  static std::vector<double> latency_us_bounds();
  /// Default bounds for payload-size-in-bytes histograms: 16B .. 16MB.
  static std::vector<double> bytes_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nanos_{0};  ///< sum scaled by 1000 (fixed point)
  std::atomic<std::uint64_t> min_bits_{0};
  std::atomic<std::uint64_t> max_bits_{0};
  std::atomic<bool> has_extrema_{false};
};

/// One metric flattened for rendering/export.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  Labels labels;
  // counter / gauge
  std::int64_t value = 0;
  // histogram
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;  ///< tail latency: 99.9th percentile
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< cumulative, +Inf last
};

/// Thread-safe named-metric registry: the one place every layer's counters,
/// gauges and latency histograms live, snapshot-able as structs, a
/// common::Table, or JSON. Instruments hold shared_ptrs to their metrics,
/// so clear() never invalidates a live probe.
class MetricsRegistry {
 public:
  std::shared_ptr<Counter> counter(std::string_view name, Labels labels = {});
  std::shared_ptr<Gauge> gauge(std::string_view name, Labels labels = {});
  /// Histograms with the same (name, labels) must agree on bounds; the
  /// first registration wins.
  std::shared_ptr<Histogram> histogram(
      std::string_view name, Labels labels = {},
      std::vector<double> bounds = Histogram::latency_us_bounds());

  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;
  /// Sorted, aligned rendering of every metric (counters/gauges first,
  /// then histograms with count/mean/p50/p95/p99/p999/max).
  [[nodiscard]] common::Table table() const;
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::size_t size() const;
  /// Drop every registered metric. Probes holding shared_ptrs keep
  /// recording into their (now unlisted) instruments.
  void clear();

  /// The process-wide registry all substrate instrumentation feeds.
  static MetricsRegistry& global();

 private:
  struct Entry {
    MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
    std::string name;
    Labels labels;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// True when substrate instrumentation (thread pool, work queues,
/// middleware, nodes, fault injection) should register probes. Read from
/// the environment once (APAR_METRICS truthy, or APAR_METRICS_OUT
/// non-empty); overridable for tests. Plugged ProfilingAspects ignore this
/// gate — plugging one is already the opt-in.
bool metrics_enabled();
void set_metrics_enabled(bool on);

}  // namespace apar::obs
