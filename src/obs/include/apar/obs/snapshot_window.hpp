#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apar/obs/metrics.hpp"

namespace apar::obs {

/// Windowed view of one histogram between two registry snapshots: only the
/// samples recorded inside the window, reconstructed from the cumulative
/// bucket diff. This is what a feedback controller needs — the registry's
/// own percentiles are since-process-start and go inert as history
/// accumulates, while a controller must react to the last few hundred
/// milliseconds.
struct HistogramWindow {
  std::uint64_t count = 0;  ///< samples recorded inside the window
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Pairs consecutive MetricsRegistry snapshots and answers delta questions:
/// counter rates, windowed histogram percentiles, current gauge levels.
/// advance() captures the new "now" and shifts the previous capture into
/// the "then" slot; every query below compares the two. Single-threaded by
/// design (one controller owns one window); the snapshots themselves are
/// taken under the registry lock.
class SnapshotWindow {
 public:
  /// Capture the registry now. The first call only primes the window
  /// (there is no "then" yet); queries return zero until the second call.
  void advance(const MetricsRegistry& registry);

  /// Seconds between the two captures (0 until two captures exist).
  [[nodiscard]] double seconds() const;
  [[nodiscard]] bool ready() const { return have_prev_; }

  /// Counter increase across the window (0 when absent or not ready).
  [[nodiscard]] std::uint64_t counter_delta(std::string_view name) const;
  /// Counter increase per second across the window.
  [[nodiscard]] double counter_rate(std::string_view name) const;
  /// Gauge level at the latest capture (nullopt when never registered).
  [[nodiscard]] std::optional<std::int64_t> gauge_value(
      std::string_view name) const;
  /// Histogram samples recorded inside the window, with percentiles
  /// interpolated from the cumulative-bucket diff.
  [[nodiscard]] HistogramWindow histogram_window(std::string_view name) const;

 private:
  const MetricSnapshot* find(const std::vector<MetricSnapshot>& in,
                             std::string_view name,
                             MetricSnapshot::Kind kind) const;

  std::vector<MetricSnapshot> prev_;
  std::vector<MetricSnapshot> cur_;
  std::chrono::steady_clock::time_point prev_at_{};
  std::chrono::steady_clock::time_point cur_at_{};
  bool have_prev_ = false;
  bool have_cur_ = false;
};

}  // namespace apar::obs
