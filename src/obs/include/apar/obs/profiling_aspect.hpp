#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "apar/aop/aspect.hpp"
#include "apar/obs/metrics.hpp"
#include "apar/obs/trace_context.hpp"
#include "apar/obs/tracer.hpp"

namespace apar::obs {

/// A pluggable profiling aspect for class T — the paper's methodology
/// applied to observability itself, sibling of TraceAspect (debugging) and
/// ChaosAspect (testing): plug it to wrap selected join points in
/// enter/exit timing that feeds per-signature latency histograms into a
/// MetricsRegistry; unplug it (or set_enabled(false)) and not a single
/// probe remains on the call path.
///
/// Unlike the ambient substrate instrumentation, ProfilingAspect ignores
/// the APAR_METRICS gate: plugging the aspect is already the opt-in.
///
/// Registry series, all labelled {"signature": "Class.method"}:
///   profile.latency_us  (histogram)  join-point wall time, enter -> exit
///   profile.calls       (counter)    completed executions (incl. errors)
///   profile.errors      (counter)    executions that exited by exception
///
/// When tracing_enabled(), every profiled join point additionally opens a
/// child span of the current context (installed for the duration of
/// proceed(), so fanned-out pool tasks and TCP calls parent back to it)
/// and records it into Tracer::global(). With tracing off the span
/// machinery is a single atomic load — the probes stay histogram-only.
///
/// Runs outermost by default (order 40, just outside TraceAspect's 50) so
/// it measures the full woven cost of a call as core functionality issued
/// it; plug a second instance at an inner order to time only the terminal.
template <class T>
class ProfilingAspect : public aop::Aspect {
 public:
  ProfilingAspect(std::string name, MetricsRegistry& registry, int order = 40)
      : Aspect(std::move(name)), registry_(&registry), order_(order) {}

  /// Profiles into the process-wide registry.
  explicit ProfilingAspect(MetricsRegistry& registry)
      : ProfilingAspect("Profiling", registry) {}
  ProfilingAspect() : ProfilingAspect("Profiling", MetricsRegistry::global()) {}

  /// Time executions of method M.
  template <auto M>
  ProfilingAspect& profile_method() {
    const std::string sig = std::string(aop::class_name_of<T>()) + "." +
                            std::string(aop::method_name_of<M>());
    auto probe = make_probe(sig);
    this->template around_method<M>(
        order_, aop::Scope::any(), [probe, sig](auto& inv) {
          const auto t0 = std::chrono::steady_clock::now();
          const void* target = inv.target().identity();
          std::optional<SpanScope> span;
          if (tracing_enabled()) {
            span.emplace();
            Tracer::global()->record({t0, std::this_thread::get_id(), sig,
                                      target, TraceEvent::Phase::kEnter,
                                      span->context()});
          }
          auto close = [&](bool error) {
            if (span) {
              Tracer::global()->record({std::chrono::steady_clock::now(),
                                        std::this_thread::get_id(), sig,
                                        target,
                                        error ? TraceEvent::Phase::kError
                                              : TraceEvent::Phase::kExit,
                                        span->context()});
            }
          };
          using R = decltype(inv.proceed());
          try {
            if constexpr (std::is_void_v<R>) {
              inv.proceed();
              probe.finish(t0, /*error=*/false);
              close(false);
            } else {
              R result = inv.proceed();
              probe.finish(t0, /*error=*/false);
              close(false);
              return result;
            }
          } catch (...) {
            probe.finish(t0, /*error=*/true);
            close(true);
            throw;
          }
        });
    return *this;
  }

  /// Time creations T(CtorArgs...).
  template <class... CtorArgs>
  ProfilingAspect& profile_new() {
    const std::string sig = std::string(aop::class_name_of<T>()) + ".new";
    auto probe = make_probe(sig);
    this->template around_new<T, std::decay_t<CtorArgs>...>(
        order_, aop::Scope::any(),
        [probe, sig](aop::CtorInvocation<T, std::decay_t<CtorArgs>...>& inv) {
          const auto t0 = std::chrono::steady_clock::now();
          std::optional<SpanScope> span;
          if (tracing_enabled()) {
            span.emplace();
            Tracer::global()->record({t0, std::this_thread::get_id(), sig,
                                      nullptr, TraceEvent::Phase::kEnter,
                                      span->context()});
          }
          auto close = [&](const void* identity, bool error) {
            if (span) {
              Tracer::global()->record({std::chrono::steady_clock::now(),
                                        std::this_thread::get_id(), sig,
                                        identity,
                                        error ? TraceEvent::Phase::kError
                                              : TraceEvent::Phase::kExit,
                                        span->context()});
            }
          };
          try {
            auto ref = inv.proceed();
            probe.finish(t0, /*error=*/false);
            close(ref.identity(), false);
            return ref;
          } catch (...) {
            probe.finish(t0, /*error=*/true);
            close(nullptr, true);
            throw;
          }
        });
    return *this;
  }

  [[nodiscard]] MetricsRegistry& registry() const { return *registry_; }

 private:
  /// Per-signature instruments, resolved once at registration so the hot
  /// path never touches the registry map.
  struct Probe {
    std::shared_ptr<Histogram> latency;
    std::shared_ptr<Counter> calls;
    std::shared_ptr<Counter> errors;

    void finish(std::chrono::steady_clock::time_point t0, bool error) const {
      const auto us = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      1000.0;
      latency->record(us);
      calls->add(1);
      if (error) errors->add(1);
    }
  };

  Probe make_probe(const std::string& signature) {
    const Labels labels{{"signature", signature}};
    return Probe{registry_->histogram("profile.latency_us", labels),
                 registry_->counter("profile.calls", labels),
                 registry_->counter("profile.errors", labels)};
  }

  MetricsRegistry* registry_;
  int order_;
};

}  // namespace apar::obs
