#pragma once

#include <cstdint>

namespace apar::obs {

/// Causal identity of the span currently executing on this thread.
///
/// A context is three 64-bit ids: the trace (one per root request), the
/// span (one per traced operation), and the span's parent. Ids are never 0
/// in a valid context — 0 is the wire/in-memory encoding of "absent", so a
/// default-constructed TraceContext means "no active trace".
///
/// The context travels with the computation, not the thread: ThreadPool
/// captures it into the task envelope at submit and restores it at
/// execution (so spans survive steals), and TcpMiddleware appends it to
/// the request frame so server-side spans join the caller's trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0 && span_id != 0; }

  /// A fresh child context: same trace as `parent` (a new trace if the
  /// parent is invalid), a new span id, parented to `parent.span_id`.
  [[nodiscard]] static TraceContext child_of(const TraceContext& parent);

  friend bool operator==(const TraceContext& a, const TraceContext& b) {
    return a.trace_id == b.trace_id && a.span_id == b.span_id &&
           a.parent_span_id == b.parent_span_id;
  }
};

/// The context installed on the calling thread ({} when none).
[[nodiscard]] TraceContext current_context();

/// Process-unique nonzero ids (thread-local splitmix64 streams seeded from
/// a shared atomic, so generation is lock-free after the first call).
[[nodiscard]] std::uint64_t next_trace_id();
[[nodiscard]] std::uint64_t next_span_id();

/// RAII: install a child span of the current (or an explicit remote)
/// context for the scope's lifetime, restoring the previous context on
/// destruction even when unwinding.
class SpanScope {
 public:
  /// Child of whatever context is current on this thread (a new root span
  /// when none is).
  SpanScope() : SpanScope(current_context()) {}

  /// Child of an explicit parent — used on the server side of a wire hop,
  /// where the parent context arrived in the frame rather than on the
  /// thread.
  explicit SpanScope(const TraceContext& parent);

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope();

  [[nodiscard]] const TraceContext& context() const { return context_; }

 private:
  TraceContext context_;
  TraceContext previous_;
};

/// RAII: install a previously captured context verbatim (no new span) —
/// how ThreadPool workers resume the submitter's context around a task.
/// An invalid context installs "no trace", shielding the task from any
/// context leaked by unrelated work that ran on this worker earlier.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& context);
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;
  ~ContextScope();

 private:
  TraceContext previous_;
};

/// Master switch for span recording, mirroring obs::metrics_enabled():
/// defaults from the environment (APAR_TRACE=1/true/on or a nonempty
/// APAR_TRACE_OUT), overridable for tests. Context *propagation* is always
/// on (a 24-byte copy per task envelope); this gates the recording work.
[[nodiscard]] bool tracing_enabled();
void set_tracing_enabled(bool enabled);

}  // namespace apar::obs
