#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "apar/common/thread_annotations.hpp"
#include "apar/obs/trace_context.hpp"

namespace apar::obs {

/// One observed join-point execution boundary.
struct TraceEvent {
  enum class Phase { kEnter, kExit, kError };

  std::chrono::steady_clock::time_point when;
  std::thread::id thread;
  std::string signature;   ///< "Class.method" ("Class.new" for creations)
  const void* target = nullptr;  ///< Ref identity (null for creations)
  Phase phase = Phase::kEnter;
  /// Causal identity ({} for probes that predate contexts; such events
  /// still pair into spans by signature).
  TraceContext ctx;
};

/// One completed join-point execution: a matched enter/exit (or
/// enter/error) pair on a single thread, with its wall-clock duration and
/// (when the probe carried a context) its causal identity.
struct TraceSpan {
  std::string signature;
  std::thread::id thread;
  const void* target = nullptr;
  std::chrono::steady_clock::time_point start;
  std::chrono::microseconds duration{0};
  bool error = false;  ///< closed by Phase::kError (exception unwound)
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

/// Thread-safe event sink shared by TraceAspects, able to render the
/// paper's interaction diagrams (Figures 6, 7 and 11) as text — the
/// methodology's "easier to understand overall parallelism structure"
/// claim, made checkable — and to export the same run as a Chrome
/// `trace_event` JSON array loadable in Perfetto / chrome://tracing.
///
/// Storage is a bounded ring: once `capacity()` events are held, each new
/// event evicts the oldest and bumps the exact `dropped_events()` counter
/// (mirrored to the `trace.dropped_events` registry counter when metrics
/// are enabled), so long traced runs cannot grow memory without bound.
class Tracer {
 public:
  /// Default ring capacity (events). ~256k events ≈ tens of MB worst
  /// case; override per instance or via APAR_TRACE_CAP for global().
  static constexpr std::size_t kDefaultCapacity = 1u << 18;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  void record(TraceEvent event);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Atomically drain the buffer: returns the held events in record order
  /// and leaves the ring empty (dropped_events() is cumulative and is not
  /// reset). This is the telemetry flush primitive.
  [[nodiscard]] std::vector<TraceEvent> take_events();

  /// Ring capacity in events (always >= 1).
  [[nodiscard]] std::size_t capacity() const;
  /// Resize the ring; shrinking evicts oldest events (counted as dropped).
  void set_capacity(std::size_t capacity);
  /// Exact count of events evicted by the ring since construction.
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// Matched enter/exit pairs as duration spans, in start order. An exit
  /// closes the innermost open enter with the same span id when both carry
  /// one, else the innermost with the same signature, so nested and
  /// recursive join points pair correctly; still-open enters are omitted.
  [[nodiscard]] std::vector<TraceSpan> spans() const;
  [[nodiscard]] static std::vector<TraceSpan> spans_of(
      std::vector<TraceEvent> events);

  /// Enter events with no matching exit/error — must be 0 after any run
  /// that unwound cleanly (the chaos suite's invariant).
  [[nodiscard]] std::size_t open_spans() const;

  /// Chrome `trace_event` JSON array: one thread-name metadata event per
  /// observed thread (T1, T2, ... in order of first appearance) followed by
  /// one complete ("ph":"X") event per span, timestamps in microseconds
  /// relative to the first recorded event. Spans that carry a context get
  /// args.trace_id/span_id/parent_span_id as 16-digit hex strings (hex
  /// strings, not numbers: 64-bit ids do not survive double-precision JSON
  /// readers). A non-empty `process_name` prepends process_name metadata —
  /// how merge_traces.py tells the two sieve processes apart.
  [[nodiscard]] std::string chrome_trace_json(
      int pid = 0, std::string_view process_name = {}) const;
  [[nodiscard]] static std::string chrome_trace_json_of(
      std::vector<TraceEvent> events, int pid = 0,
      std::string_view process_name = {});

  /// Write chrome_trace_json() to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_chrome_trace(const std::string& path, int pid = 0,
                          std::string_view process_name = {}) const;

  /// Distinct threads that executed traced join points.
  [[nodiscard]] std::size_t thread_count() const;

  /// Calls (enter events) observed for a signature.
  [[nodiscard]] std::size_t calls(std::string_view signature) const;

  /// Distinct targets a signature was executed on.
  [[nodiscard]] std::size_t targets(std::string_view signature) const;

  /// Text interaction diagram: one line per event, relative microsecond
  /// timestamps, compact thread (T1, T2, ...) and object (A, B, ...)
  /// labels, arrows for enter/exit.
  [[nodiscard]] std::string interaction_diagram() const;

  /// Per-signature call/target/thread counts, plus a dropped-events line
  /// when the ring evicted anything.
  [[nodiscard]] std::string summary() const;

  /// The process-wide tracer every always-on probe (thread pool queue
  /// waits, TCP wire spans, server-side request spans) records into when
  /// tracing_enabled(). Capacity from APAR_TRACE_CAP (events) when set.
  static const std::shared_ptr<Tracer>& global();

 private:
  void note_dropped_locked(std::uint64_t n) APAR_REQUIRES(mutex_);

  mutable common::Mutex mutex_;
  std::deque<TraceEvent> events_ APAR_GUARDED_BY(mutex_);
  std::size_t capacity_ APAR_GUARDED_BY(mutex_);
  std::uint64_t dropped_ APAR_GUARDED_BY(mutex_) = 0;
  /// Lazy registry mirror (created under mutex_ on first drop).
  std::shared_ptr<class Counter> dropped_counter_ APAR_GUARDED_BY(mutex_);
};

}  // namespace apar::obs
