#include "apar/obs/tracer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "apar/common/json.hpp"
#include "apar/obs/metrics.hpp"

namespace apar::obs {

namespace {

std::string hex_id(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return std::string(buf);
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::note_dropped_locked(std::uint64_t n) {
  dropped_ += n;
  if (!dropped_counter_ && metrics_enabled()) {
    dropped_counter_ = MetricsRegistry::global().counter("trace.dropped_events");
  }
  if (dropped_counter_) dropped_counter_->add(n);
}

void Tracer::record(TraceEvent event) {
  common::MutexLock lock(mutex_);
  if (events_.size() >= capacity_) {
    const std::uint64_t evict = events_.size() - capacity_ + 1;
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(evict));
    note_dropped_locked(evict);
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  common::MutexLock lock(mutex_);
  return {events_.begin(), events_.end()};
}

std::vector<TraceEvent> Tracer::take_events() {
  std::deque<TraceEvent> taken;
  {
    common::MutexLock lock(mutex_);
    taken.swap(events_);
  }
  return {std::make_move_iterator(taken.begin()),
          std::make_move_iterator(taken.end())};
}

std::size_t Tracer::size() const {
  common::MutexLock lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  common::MutexLock lock(mutex_);
  events_.clear();
}

std::size_t Tracer::capacity() const {
  common::MutexLock lock(mutex_);
  return capacity_;
}

void Tracer::set_capacity(std::size_t capacity) {
  common::MutexLock lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  if (events_.size() > capacity_) {
    const std::uint64_t evict = events_.size() - capacity_;
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(evict));
    note_dropped_locked(evict);
  }
}

std::uint64_t Tracer::dropped_events() const {
  common::MutexLock lock(mutex_);
  return dropped_;
}

std::size_t Tracer::thread_count() const {
  common::MutexLock lock(mutex_);
  std::set<std::thread::id> threads;
  for (const auto& e : events_) threads.insert(e.thread);
  return threads.size();
}

std::size_t Tracer::calls(std::string_view signature) const {
  common::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.phase == TraceEvent::Phase::kEnter && e.signature == signature)
      ++n;
  }
  return n;
}

std::size_t Tracer::targets(std::string_view signature) const {
  common::MutexLock lock(mutex_);
  std::set<const void*> targets;
  for (const auto& e : events_) {
    if (e.signature == signature && e.target != nullptr)
      targets.insert(e.target);
  }
  return targets.size();
}

std::string Tracer::interaction_diagram() const {
  std::vector<TraceEvent> snapshot = events();
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.when < b.when;
                   });
  std::map<std::thread::id, std::size_t> thread_labels;
  std::map<const void*, char> object_labels;
  auto thread_label = [&](std::thread::id id) {
    auto [it, inserted] = thread_labels.emplace(id, thread_labels.size() + 1);
    (void)inserted;
    return "T" + std::to_string(it->second);
  };
  auto object_label = [&](const void* target) -> std::string {
    if (!target) return "-";
    auto [it, inserted] = object_labels.emplace(
        target, static_cast<char>('A' + (object_labels.size() % 26)));
    (void)inserted;
    return std::string(1, it->second);
  };

  std::ostringstream os;
  os << "  t(us)  thread  obj  event\n";
  const auto t0 = snapshot.empty()
                      ? std::chrono::steady_clock::time_point{}
                      : snapshot.front().when;
  for (const auto& e : snapshot) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(e.when - t0)
            .count();
    const char* arrow = e.phase == TraceEvent::Phase::kEnter  ? "->"
                        : e.phase == TraceEvent::Phase::kExit ? "<-"
                                                              : "!!";
    // Stream formatting (not a fixed buffer): signatures of any length
    // render intact.
    os << std::setw(7) << us << "  " << std::left << std::setw(6)
       << thread_label(e.thread) << "  " << std::setw(3)
       << object_label(e.target) << std::right << "  " << arrow << ' '
       << e.signature << '\n';
  }
  return os.str();
}

namespace {

/// Shared pairing walk: invokes `closed(enter, exit)` per matched pair,
/// returns the count of enters left open. An exit prefers the innermost
/// open enter with its span id (exact match across recursion); events
/// without ids fall back to innermost-same-signature, which shields
/// against interleaved aspect-emitted events.
template <class OnClosed>
std::size_t pair_events(const std::vector<TraceEvent>& snapshot,
                        OnClosed&& closed) {
  std::map<std::thread::id, std::vector<std::size_t>> open_by_thread;
  std::size_t open = 0;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& e = snapshot[i];
    auto& stack = open_by_thread[e.thread];
    if (e.phase == TraceEvent::Phase::kEnter) {
      stack.push_back(i);
      ++open;
      continue;
    }
    for (std::size_t s = stack.size(); s-- > 0;) {
      const TraceEvent& enter = snapshot[stack[s]];
      const bool match =
          (e.ctx.span_id != 0 && enter.ctx.span_id != 0)
              ? enter.ctx.span_id == e.ctx.span_id
              : enter.signature == e.signature;
      if (!match) continue;
      closed(enter, e);
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(s));
      --open;
      break;
    }
  }
  return open;
}

}  // namespace

std::vector<TraceSpan> Tracer::spans_of(std::vector<TraceEvent> snapshot) {
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.when < b.when;
                   });
  std::vector<TraceSpan> spans;
  pair_events(snapshot, [&](const TraceEvent& enter, const TraceEvent& e) {
    TraceSpan span;
    span.signature = enter.signature;
    span.thread = e.thread;
    span.target = enter.target ? enter.target : e.target;
    span.start = enter.when;
    span.duration = std::chrono::duration_cast<std::chrono::microseconds>(
        e.when - enter.when);
    span.error = e.phase == TraceEvent::Phase::kError;
    span.trace_id = enter.ctx.trace_id;
    span.span_id = enter.ctx.span_id;
    span.parent_span_id = enter.ctx.parent_span_id;
    spans.push_back(std::move(span));
  });
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start < b.start;
                   });
  return spans;
}

std::vector<TraceSpan> Tracer::spans() const { return spans_of(events()); }

std::size_t Tracer::open_spans() const {
  std::vector<TraceEvent> snapshot = events();
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.when < b.when;
                   });
  return pair_events(snapshot, [](const TraceEvent&, const TraceEvent&) {});
}

std::string Tracer::chrome_trace_json_of(std::vector<TraceEvent> snapshot,
                                         int pid,
                                         std::string_view process_name) {
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.when < b.when;
                   });
  // Compact tids in order of first appearance — same labelling rule as the
  // interaction diagram (T1, T2, ...).
  std::map<std::thread::id, int> tids;
  for (const auto& e : snapshot) tids.emplace(e.thread, 0);
  {
    int next = 1;
    for (auto& e : snapshot) {
      auto& tid = tids[e.thread];
      if (tid == 0) tid = next++;
    }
  }
  const auto t0 = snapshot.empty() ? std::chrono::steady_clock::time_point{}
                                   : snapshot.front().when;
  auto rel_us = [&](std::chrono::steady_clock::time_point tp) {
    return std::chrono::duration_cast<std::chrono::microseconds>(tp - t0)
        .count();
  };

  std::ostringstream os;
  os << '[';
  bool first = true;
  if (!process_name.empty()) {
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << common::json_escape(std::string(process_name)) << "\"}}";
    first = false;
  }
  std::vector<std::pair<int, std::thread::id>> ordered;
  for (const auto& [id, tid] : tids) ordered.emplace_back(tid, id);
  std::sort(ordered.begin(), ordered.end());
  for (const auto& [tid, id] : ordered) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"T" << tid << "\"}}";
  }
  for (const auto& span : spans_of(snapshot)) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << common::json_escape(span.signature)
       << "\",\"cat\":\"apar\",\"ph\":\"X\",\"ts\":" << rel_us(span.start)
       << ",\"dur\":" << span.duration.count() << ",\"pid\":" << pid
       << ",\"tid\":" << tids[span.thread];
    // args only when there is something to say — id-less, error-free spans
    // keep the PR-2 golden shape byte for byte.
    const bool has_ids = span.span_id != 0;
    if (span.error || has_ids) {
      os << ",\"args\":{";
      bool first_arg = true;
      if (span.error) {
        os << "\"error\":true";
        first_arg = false;
      }
      if (has_ids) {
        if (!first_arg) os << ',';
        os << "\"trace_id\":\"" << hex_id(span.trace_id) << "\",\"span_id\":\""
           << hex_id(span.span_id) << '"';
        if (span.parent_span_id != 0) {
          os << ",\"parent_span_id\":\"" << hex_id(span.parent_span_id) << '"';
        }
      }
      os << '}';
    }
    os << '}';
  }
  os << ']';
  return os.str();
}

std::string Tracer::chrome_trace_json(int pid,
                                      std::string_view process_name) const {
  return chrome_trace_json_of(events(), pid, process_name);
}

void Tracer::write_chrome_trace(const std::string& path, int pid,
                                std::string_view process_name) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  out << chrome_trace_json(pid, process_name) << '\n';
  if (!out) throw std::runtime_error("failed writing trace file: " + path);
}

std::string Tracer::summary() const {
  std::vector<TraceEvent> snapshot = events();
  struct Counts {
    std::size_t calls = 0;
    std::set<const void*> targets;
    std::set<std::thread::id> threads;
  };
  std::map<std::string, Counts> by_signature;
  for (const auto& e : snapshot) {
    auto& c = by_signature[e.signature];
    if (e.phase == TraceEvent::Phase::kEnter) ++c.calls;
    if (e.target) c.targets.insert(e.target);
    c.threads.insert(e.thread);
  }
  std::ostringstream os;
  for (const auto& [signature, c] : by_signature) {
    os << "  " << signature << ": " << c.calls << " call(s) on "
       << c.targets.size() << " object(s) from " << c.threads.size()
       << " thread(s)\n";
  }
  if (const std::uint64_t dropped = dropped_events(); dropped > 0) {
    os << "  [ring dropped " << dropped << " event(s)]\n";
  }
  return os.str();
}

const std::shared_ptr<Tracer>& Tracer::global() {
  static const std::shared_ptr<Tracer> g = [] {
    std::size_t cap = kDefaultCapacity;
    if (const char* v = std::getenv("APAR_TRACE_CAP")) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(v, &end, 10);
      if (end != v && n > 0) cap = static_cast<std::size_t>(n);
    }
    return std::make_shared<Tracer>(cap);
  }();
  return g;
}

}  // namespace apar::obs
