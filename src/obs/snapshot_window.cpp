#include "apar/obs/snapshot_window.hpp"

#include <algorithm>

namespace apar::obs {

namespace {

/// Percentile over a window's (non-cumulative) per-bucket counts, linear
/// within the winning bucket — the same interpolation Histogram::percentile
/// uses, but over the bucket DIFF instead of the lifetime counts. min/max
/// are unavailable for a window (they are lifetime extrema), so the first
/// bucket interpolates from 0 and the +Inf bucket reports its lower bound.
double window_percentile(const std::vector<double>& bounds,
                         const std::vector<std::uint64_t>& diff, double pct) {
  std::uint64_t total = 0;
  for (const auto c : diff) total += c;
  if (total == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const double rank = pct / 100.0 * static_cast<double>(total);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < diff.size(); ++i) {
    const std::uint64_t in_bucket = diff[i];
    if (static_cast<double>(below + in_bucket) < rank || in_bucket == 0) {
      below += in_bucket;
      continue;
    }
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double hi = bounds[i];
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double frac =
        (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace

void SnapshotWindow::advance(const MetricsRegistry& registry) {
  prev_ = std::move(cur_);
  prev_at_ = cur_at_;
  have_prev_ = have_cur_;
  cur_ = registry.snapshot();
  cur_at_ = std::chrono::steady_clock::now();
  have_cur_ = true;
}

double SnapshotWindow::seconds() const {
  if (!have_prev_) return 0.0;
  return std::chrono::duration<double>(cur_at_ - prev_at_).count();
}

const MetricSnapshot* SnapshotWindow::find(
    const std::vector<MetricSnapshot>& in, std::string_view name,
    MetricSnapshot::Kind kind) const {
  for (const auto& s : in)
    if (s.kind == kind && s.name == name) return &s;
  return nullptr;
}

std::uint64_t SnapshotWindow::counter_delta(std::string_view name) const {
  if (!have_prev_) return 0;
  const auto* cur = find(cur_, name, MetricSnapshot::Kind::kCounter);
  if (!cur) return 0;
  const auto* prev = find(prev_, name, MetricSnapshot::Kind::kCounter);
  const std::int64_t before = prev ? prev->value : 0;
  return cur->value > before ? static_cast<std::uint64_t>(cur->value - before)
                             : 0;
}

double SnapshotWindow::counter_rate(std::string_view name) const {
  const double secs = seconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(counter_delta(name)) / secs;
}

std::optional<std::int64_t> SnapshotWindow::gauge_value(
    std::string_view name) const {
  const auto* cur = find(cur_, name, MetricSnapshot::Kind::kGauge);
  if (!cur) return std::nullopt;
  return cur->value;
}

HistogramWindow SnapshotWindow::histogram_window(std::string_view name) const {
  HistogramWindow out;
  if (!have_prev_) return out;
  const auto* cur = find(cur_, name, MetricSnapshot::Kind::kHistogram);
  if (!cur) return out;
  const auto* prev = find(prev_, name, MetricSnapshot::Kind::kHistogram);
  // Cumulative buckets -> per-bucket counts for this window. A histogram
  // first registered inside the window diffs against zero.
  std::vector<std::uint64_t> diff(cur->buckets.size(), 0);
  std::uint64_t prev_cum = 0;
  std::uint64_t cur_cum = 0;
  for (std::size_t i = 0; i < cur->buckets.size(); ++i) {
    const std::uint64_t cur_at = cur->buckets[i];
    const std::uint64_t prev_at =
        prev && i < prev->buckets.size() ? prev->buckets[i] : 0;
    const std::uint64_t cur_in = cur_at - cur_cum;
    const std::uint64_t prev_in = prev_at - prev_cum;
    diff[i] = cur_in > prev_in ? cur_in - prev_in : 0;
    cur_cum = cur_at;
    prev_cum = prev_at;
    out.count += diff[i];
  }
  const double prev_sum = prev ? prev->sum : 0.0;
  out.sum = cur->sum > prev_sum ? cur->sum - prev_sum : 0.0;
  out.mean = out.count == 0 ? 0.0 : out.sum / static_cast<double>(out.count);
  out.p50 = window_percentile(cur->bounds, diff, 50.0);
  out.p95 = window_percentile(cur->bounds, diff, 95.0);
  out.p99 = window_percentile(cur->bounds, diff, 99.0);
  return out;
}

}  // namespace apar::obs
