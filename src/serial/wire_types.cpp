#include "apar/serial/wire_types.hpp"

namespace apar::serial {

TypeRegistry& TypeRegistry::global() {
  static TypeRegistry instance;
  return instance;
}

void TypeRegistry::note(std::string type_name, bool serializable) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = types_.try_emplace(std::move(type_name), serializable);
  if (!inserted && serializable) it->second = true;
}

std::optional<bool> TypeRegistry::serializable(
    std::string_view type_name) const {
  std::lock_guard lock(mutex_);
  auto it = types_.find(type_name);
  if (it == types_.end()) return std::nullopt;
  return it->second;
}

std::map<std::string, bool> TypeRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  return {types_.begin(), types_.end()};
}

std::size_t TypeRegistry::size() const {
  std::lock_guard lock(mutex_);
  return types_.size();
}

}  // namespace apar::serial
