// archive.hpp is header-only; this translation unit exists to give the
// library a compiled anchor and to force one full instantiation of the
// templates under the library's own warning flags.
#include "apar/serial/archive.hpp"

namespace apar::serial {
namespace {
[[maybe_unused]] void instantiation_anchor() {
  Writer w(Format::kVerbose);
  w.value(std::int32_t{1});
  w.value(std::string("x"));
  w.value(std::vector<int>{1, 2, 3});
  Reader r(w.bytes(), Format::kVerbose);
  std::int32_t i{};
  r.value(i);
}
}  // namespace
}  // namespace apar::serial
