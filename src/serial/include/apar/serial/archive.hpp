#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace apar::serial {

/// Error raised on malformed or truncated input, or on a wire-format
/// mismatch between writer and reader.
class SerialError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Wire format.
///
/// kCompact models the paper's MPP middleware: raw little-endian scalars and
/// varint-encoded lengths, no metadata.
///
/// kVerbose models Java RMI / object serialization: every value carries a
/// one-byte type tag and containers carry an element-type descriptor string,
/// making payloads self-describing (and markedly larger) — the property that
/// gives the RMI middleware its higher per-byte cost in Figure 17.
enum class Format : std::uint8_t { kCompact = 0, kVerbose = 1 };

namespace detail {
enum class Tag : std::uint8_t {
  kBool = 1,
  kI8,
  kU8,
  kI16,
  kU16,
  kI32,
  kU32,
  kI64,
  kU64,
  kF32,
  kF64,
  kString,
  kSequence,
  kOptional,
  kObject,
};

template <class T>
constexpr Tag tag_for() {
  if constexpr (std::is_same_v<T, bool>) return Tag::kBool;
  else if constexpr (std::is_same_v<T, float>) return Tag::kF32;
  else if constexpr (std::is_same_v<T, double>) return Tag::kF64;
  else if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
    if constexpr (sizeof(T) == 1) return Tag::kI8;
    else if constexpr (sizeof(T) == 2) return Tag::kI16;
    else if constexpr (sizeof(T) == 4) return Tag::kI32;
    else return Tag::kI64;
  } else {
    if constexpr (sizeof(T) == 1) return Tag::kU8;
    else if constexpr (sizeof(T) == 2) return Tag::kU16;
    else if constexpr (sizeof(T) == 4) return Tag::kU32;
    else return Tag::kU64;
  }
}

template <class T>
const char* type_name() {
  if constexpr (std::is_same_v<T, bool>) return "bool";
  else if constexpr (std::is_same_v<T, float>) return "f32";
  else if constexpr (std::is_same_v<T, double>) return "f64";
  else if constexpr (std::is_integral_v<T>) return "int";
  else return "object";
}
}  // namespace detail

class Writer;
class Reader;

namespace detail {
/// ADL hook detection: a user type T is serializable if it provides
///   void serialize(apar::serial::Writer&, const T&);
///   void deserialize(apar::serial::Reader&, T&);
/// in T's namespace (or via the APAR_SERIALIZE_FIELDS macro).
template <class T>
concept AdlWritable = requires(Writer& w, const T& v) { serialize(w, v); };
template <class T>
concept AdlReadable = requires(Reader& r, T& v) { deserialize(r, v); };
}  // namespace detail

/// Serializing byte-stream writer.
class Writer {
 public:
  explicit Writer(Format format = Format::kCompact) : format_(format) {}

  [[nodiscard]] Format format() const { return format_; }
  [[nodiscard]] const std::vector<std::byte>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Arithmetic scalar (and bool).
  template <class T>
    requires std::is_arithmetic_v<T>
  void value(T v) {
    if (format_ == Format::kVerbose) tag(detail::tag_for<T>());
    raw(&v, sizeof v);
  }

  /// Enum, encoded via its underlying type.
  template <class T>
    requires std::is_enum_v<T>
  void value(T v) {
    value(static_cast<std::underlying_type_t<T>>(v));
  }

  void value(const std::string& s) { value(std::string_view(s)); }
  void value(std::string_view s) {
    if (format_ == Format::kVerbose) tag(detail::Tag::kString);
    length(s.size());
    raw(s.data(), s.size());
  }

  template <class T>
  void value(const std::vector<T>& v) {
    begin_sequence<T>(v.size());
    if constexpr (std::is_same_v<T, bool>) {
      // vector<bool> is a bit-proxy container: encode one byte per value.
      for (const bool b : v) {
        const std::uint8_t byte = b ? 1 : 0;
        raw(&byte, 1);
      }
    } else if constexpr (std::is_arithmetic_v<T>) {
      // Bulk copy: element tags are hoisted into the sequence descriptor.
      raw(v.data(), v.size() * sizeof(T));
    } else {
      for (const auto& e : v) value(e);
    }
  }

  template <class A, class B>
  void value(const std::pair<A, B>& p) {
    value(p.first);
    value(p.second);
  }

  template <class... Ts>
  void value(const std::tuple<Ts...>& t) {
    std::apply([this](const auto&... e) { (value(e), ...); }, t);
  }

  template <class T>
  void value(const std::optional<T>& o) {
    if (format_ == Format::kVerbose) tag(detail::Tag::kOptional);
    value(o.has_value());
    if (o) value(*o);
  }

  template <class K, class V>
  void value(const std::map<K, V>& m) {
    begin_sequence<std::pair<K, V>>(m.size());
    for (const auto& kv : m) value(kv);
  }

  /// User-defined type with an ADL `serialize(Writer&, const T&)` hook
  /// (see APAR_SERIALIZE_FIELDS).
  template <detail::AdlWritable T>
  void value(const T& v) {
    serialize(*this, v);
  }

  /// Open a named object scope. In verbose mode the name travels on the
  /// wire (the RMI "class descriptor"); in compact mode it is free.
  void begin_object(std::string_view name) {
    if (format_ == Format::kVerbose) {
      tag(detail::Tag::kObject);
      length(name.size());
      raw(name.data(), name.size());
    }
  }

  /// Varint-encoded length/count.
  void length(std::size_t n) {
    auto v = static_cast<std::uint64_t>(n);
    while (v >= 0x80) {
      const auto b = static_cast<std::uint8_t>(v | 0x80);
      raw(&b, 1);
      v >>= 7;
    }
    const auto b = static_cast<std::uint8_t>(v);
    raw(&b, 1);
  }

 private:
  template <class T>
  void begin_sequence(std::size_t n) {
    if (format_ == Format::kVerbose) {
      tag(detail::Tag::kSequence);
      const char* name = detail::type_name<T>();
      const std::size_t len = std::char_traits<char>::length(name);
      length(len);
      raw(name, len);
    }
    length(n);
  }

  void tag(detail::Tag t) { raw(&t, 1); }

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  Format format_;
  std::vector<std::byte> buf_;
};

/// Deserializing byte-stream reader; the exact mirror of Writer.
class Reader {
 public:
  Reader(const std::byte* data, std::size_t size,
         Format format = Format::kCompact)
      : format_(format), data_(data), size_(size) {}

  explicit Reader(const std::vector<std::byte>& buf,
                  Format format = Format::kCompact)
      : Reader(buf.data(), buf.size(), format) {}

  [[nodiscard]] Format format() const { return format_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == size_; }

  template <class T>
    requires std::is_arithmetic_v<T>
  void value(T& v) {
    if (format_ == Format::kVerbose) expect_tag(detail::tag_for<T>());
    raw(&v, sizeof v);
  }

  template <class T>
    requires std::is_enum_v<T>
  void value(T& v) {
    std::underlying_type_t<T> u{};
    value(u);
    v = static_cast<T>(u);
  }

  void value(std::string& s) {
    if (format_ == Format::kVerbose) expect_tag(detail::Tag::kString);
    const std::size_t n = length();
    check(n);
    s.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
  }

  template <class T>
  void value(std::vector<T>& v) {
    const std::size_t n = begin_sequence<T>();
    if constexpr (std::is_same_v<T, bool>) {
      check(n);
      v.clear();
      v.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint8_t byte = 0;
        raw(&byte, 1);
        v.push_back(byte != 0);
      }
    } else if constexpr (std::is_arithmetic_v<T>) {
      check(n * sizeof(T));
      v.resize(n);
      std::memcpy(v.data(), data_ + pos_, n * sizeof(T));
      pos_ += n * sizeof(T);
    } else {
      v.clear();
      v.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        T e{};
        value(e);
        v.push_back(std::move(e));
      }
    }
  }

  template <class A, class B>
  void value(std::pair<A, B>& p) {
    value(p.first);
    value(p.second);
  }

  template <class... Ts>
  void value(std::tuple<Ts...>& t) {
    std::apply([this](auto&... e) { (value(e), ...); }, t);
  }

  template <class T>
  void value(std::optional<T>& o) {
    if (format_ == Format::kVerbose) expect_tag(detail::Tag::kOptional);
    bool has = false;
    value(has);
    if (has) {
      T v{};
      value(v);
      o = std::move(v);
    } else {
      o.reset();
    }
  }

  template <class K, class V>
  void value(std::map<K, V>& m) {
    const std::size_t n = begin_sequence<std::pair<K, V>>();
    m.clear();
    for (std::size_t i = 0; i < n; ++i) {
      std::pair<K, V> kv{};
      value(kv);
      m.insert(std::move(kv));
    }
  }

  /// User-defined type with an ADL `deserialize(Reader&, T&)` hook.
  template <detail::AdlReadable T>
  void value(T& v) {
    deserialize(*this, v);
  }

  /// Read an object scope header; returns the descriptor name (verbose) or
  /// an empty string (compact).
  std::string begin_object() {
    if (format_ != Format::kVerbose) return {};
    expect_tag(detail::Tag::kObject);
    std::size_t n = length();
    check(n);
    std::string name(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return name;
  }

  std::size_t length() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (shift > 63) throw SerialError("varint overflow");
      std::uint8_t b = 0;
      raw(&b, 1);
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    return static_cast<std::size_t>(v);
  }

 private:
  template <class T>
  std::size_t begin_sequence() {
    if (format_ == Format::kVerbose) {
      expect_tag(detail::Tag::kSequence);
      const std::size_t n = length();
      check(n);
      const std::string_view got(reinterpret_cast<const char*>(data_ + pos_), n);
      pos_ += n;
      if (got != detail::type_name<T>())
        throw SerialError("sequence element type mismatch: expected " +
                          std::string(detail::type_name<T>()) + ", got " +
                          std::string(got));
    }
    return length();
  }

  void expect_tag(detail::Tag want) {
    detail::Tag got{};
    raw(&got, 1);
    if (got != want)
      throw SerialError("type tag mismatch (want " +
                        std::to_string(static_cast<int>(want)) + ", got " +
                        std::to_string(static_cast<int>(got)) + ")");
  }

  void check(std::size_t n) const {
    if (n > size_ - pos_) throw SerialError("truncated input");
  }

  void raw(void* out, std::size_t n) {
    check(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  Format format_;
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Convenience: serialize a pack of values into a fresh buffer.
template <class... Ts>
std::vector<std::byte> encode(Format format, const Ts&... vs) {
  Writer w(format);
  (w.value(vs), ...);
  return w.take();
}

/// Convenience: decode a tuple of values from a buffer, checking that the
/// buffer is fully consumed.
template <class... Ts>
std::tuple<Ts...> decode(const std::vector<std::byte>& buf, Format format) {
  Reader r(buf, format);
  std::tuple<Ts...> out{};
  std::apply([&](auto&... e) { (r.value(e), ...); }, out);
  if (!r.exhausted()) throw SerialError("trailing bytes after decode");
  return out;
}

/// Byte-size overhead of the verbose format relative to compact for the same
/// values — reported by bench/transport_costs.
template <class... Ts>
double verbose_overhead(const Ts&... vs) {
  const auto compact = encode(Format::kCompact, vs...);
  const auto verbose = encode(Format::kVerbose, vs...);
  if (compact.empty()) return 1.0;
  return static_cast<double>(verbose.size()) /
         static_cast<double>(compact.size());
}

}  // namespace apar::serial

/// Generate the ADL serialize/deserialize hooks for an aggregate-like
/// type's listed fields. Must appear in the type's own namespace:
///
///   struct TokenCount { std::string word; long long n = 0; };
///   APAR_SERIALIZE_FIELDS(TokenCount, word, n)
#define APAR_SERIALIZE_FIELDS(TYPE, ...)                                  \
  inline void serialize(::apar::serial::Writer& writer_, const TYPE& v) { \
    writer_.begin_object(#TYPE);                                          \
    APAR_SERIAL_FOREACH_(APAR_SERIAL_WRITE_, __VA_ARGS__)                 \
  }                                                                       \
  inline void deserialize(::apar::serial::Reader& reader_, TYPE& v) {    \
    (void)reader_.begin_object();                                         \
    APAR_SERIAL_FOREACH_(APAR_SERIAL_READ_, __VA_ARGS__)                  \
  }

#define APAR_SERIAL_WRITE_(FIELD) writer_.value(v.FIELD);
#define APAR_SERIAL_READ_(FIELD) reader_.value(v.FIELD);

// Apply macro M to up to 8 fields.
#define APAR_SERIAL_FOREACH_(M, ...)                                  \
  APAR_SERIAL_GET9_(__VA_ARGS__, APAR_SERIAL_F8_, APAR_SERIAL_F7_,    \
                    APAR_SERIAL_F6_, APAR_SERIAL_F5_, APAR_SERIAL_F4_, \
                    APAR_SERIAL_F3_, APAR_SERIAL_F2_, APAR_SERIAL_F1_) \
  (M, __VA_ARGS__)
#define APAR_SERIAL_GET9_(a1, a2, a3, a4, a5, a6, a7, a8, NAME, ...) NAME
#define APAR_SERIAL_F1_(M, a) M(a)
#define APAR_SERIAL_F2_(M, a, ...) M(a) APAR_SERIAL_F1_(M, __VA_ARGS__)
#define APAR_SERIAL_F3_(M, a, ...) M(a) APAR_SERIAL_F2_(M, __VA_ARGS__)
#define APAR_SERIAL_F4_(M, a, ...) M(a) APAR_SERIAL_F3_(M, __VA_ARGS__)
#define APAR_SERIAL_F5_(M, a, ...) M(a) APAR_SERIAL_F4_(M, __VA_ARGS__)
#define APAR_SERIAL_F6_(M, a, ...) M(a) APAR_SERIAL_F5_(M, __VA_ARGS__)
#define APAR_SERIAL_F7_(M, a, ...) M(a) APAR_SERIAL_F6_(M, __VA_ARGS__)
#define APAR_SERIAL_F8_(M, a, ...) M(a) APAR_SERIAL_F7_(M, __VA_ARGS__)
