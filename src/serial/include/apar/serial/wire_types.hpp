#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <typeinfo>
#include <utility>
#include <vector>

#include "apar/serial/archive.hpp"

namespace apar::serial {

namespace detail {

/// Compile-time answer to "can this type cross the wire?" — i.e. does
/// Writer::value / Reader::value accept it. Mirrors the overload set of
/// archive.hpp: arithmetic, enum, string, the supported containers
/// (element-wise), and user types with ADL serialize/deserialize hooks.
template <class T>
struct WireOk
    : std::bool_constant<std::is_arithmetic_v<T> || std::is_enum_v<T> ||
                         (AdlWritable<T> && AdlReadable<T>)> {};

template <>
struct WireOk<std::string> : std::true_type {};

template <class T>
struct WireOk<std::vector<T>> : WireOk<T> {};

template <class A, class B>
struct WireOk<std::pair<A, B>>
    : std::bool_constant<WireOk<A>::value && WireOk<B>::value> {};

template <class... Ts>
struct WireOk<std::tuple<Ts...>>
    : std::bool_constant<(WireOk<Ts>::value && ...)> {};

template <class T>
struct WireOk<std::optional<T>> : WireOk<T> {};

template <class K, class V>
struct WireOk<std::map<K, V>>
    : std::bool_constant<WireOk<K>::value && WireOk<V>::value> {};

}  // namespace detail

/// True when a value of type T can be encoded AND decoded by the archive —
/// the static precondition every argument of a distributed call must meet.
/// The distribution aspect consults this at registration time and records
/// the verdict in its advice metadata, which is where apar-analyze's
/// distribution-hazard check reads it back.
template <class T>
inline constexpr bool kWireSerializable =
    detail::WireOk<std::remove_cvref_t<T>>::value;

template <class T>
std::string wire_type_name_compound();

/// Human-readable wire name for T, used in analyzer reports and as the
/// TypeRegistry key. Spells out the common cases; falls back to the
/// (mangled) typeid name for exotic types.
template <class T>
std::string wire_type_name() {
  using U = std::remove_cvref_t<T>;
  if constexpr (std::is_same_v<U, bool>) return "bool";
  else if constexpr (std::is_same_v<U, char>) return "char";
  else if constexpr (std::is_same_v<U, int>) return "int";
  else if constexpr (std::is_same_v<U, unsigned>) return "unsigned";
  else if constexpr (std::is_same_v<U, long>) return "long";
  else if constexpr (std::is_same_v<U, unsigned long>) return "unsigned long";
  else if constexpr (std::is_same_v<U, long long>) return "long long";
  else if constexpr (std::is_same_v<U, unsigned long long>)
    return "unsigned long long";
  else if constexpr (std::is_same_v<U, float>) return "float";
  else if constexpr (std::is_same_v<U, double>) return "double";
  else if constexpr (std::is_same_v<U, std::string>) return "string";
  else if constexpr (std::is_enum_v<U>)
    return std::string("enum ") + typeid(U).name();
  else {
    return wire_type_name_compound<U>();
  }
}

namespace detail {
template <class T>
struct CompoundName {
  static std::string get() { return typeid(T).name(); }
};
template <class T>
struct CompoundName<std::vector<T>> {
  static std::string get() { return "vector<" + wire_type_name<T>() + ">"; }
};
template <class A, class B>
struct CompoundName<std::pair<A, B>> {
  static std::string get() {
    return "pair<" + wire_type_name<A>() + ", " + wire_type_name<B>() + ">";
  }
};
template <class T>
struct CompoundName<std::optional<T>> {
  static std::string get() { return "optional<" + wire_type_name<T>() + ">"; }
};
template <class K, class V>
struct CompoundName<std::map<K, V>> {
  static std::string get() {
    return "map<" + wire_type_name<K>() + ", " + wire_type_name<V>() + ">";
  }
};
}  // namespace detail

template <class T>
std::string wire_type_name_compound() {
  return detail::CompoundName<T>::get();
}

/// Process-wide record of types that have been offered to the wire layer
/// and whether they are serializable. The distribution aspect notes every
/// argument type it registers advice for; apar-analyze's distribution-
/// hazard check treats "noted non-serializable" and "never noted" types
/// reaching a distribution join point as findings.
class TypeRegistry {
 public:
  static TypeRegistry& global();

  /// Record (idempotently) that `type_name` crossed the registration path
  /// with the given serializability verdict. A type once noted as
  /// serializable stays serializable.
  void note(std::string type_name, bool serializable);

  template <class T>
  void note() {
    note(wire_type_name<T>(), kWireSerializable<T>);
  }

  /// Verdict for a noted type; nullopt if the type was never offered.
  [[nodiscard]] std::optional<bool> serializable(
      std::string_view type_name) const;

  [[nodiscard]] std::map<std::string, bool> snapshot() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, bool, std::less<>> types_;
};

}  // namespace apar::serial
