#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace apar::concurrency {

/// Move-only type-erased task envelope with small-buffer optimisation.
///
/// Replaces `std::function<void()>` on the ThreadPool hot path: callables up
/// to kInlineBytes (a captured shared promise plus a function object — the
/// typical submit() closure) are stored inline, so posting a task performs no
/// heap allocation for the callable itself. Larger or throwing-move callables
/// fall back to one heap allocation, exactly like std::function — but with a
/// 64-byte budget instead of std::function's 16, the fallback is rare.
///
/// Unlike std::function, Task is move-only, so callables owning move-only
/// resources (std::promise, unique_ptr) can be posted directly.
class Task {
 public:
  /// Inline storage budget. Sized for the common pool closure: a shared_ptr
  /// (16 bytes) plus a lambda with a few captured words.
  static constexpr std::size_t kInlineBytes = 64;

  Task() noexcept = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Task> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  Task(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (storage()) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      *static_cast<Fn**>(storage()) = new Fn(std::forward<F>(fn));
      ops_ = &kHeapOps<Fn>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Invoke the callable. The callable survives the call (destroyed by the
  /// Task destructor), matching std::function semantics.
  void operator()() {
    ops_->invoke(storage());
  }

  /// Destroy the held callable, returning to the empty state.
  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  /// True when the callable lives in the inline buffer (diagnostics/tests).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ && ops_->inline_storage;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into dst from src, then destroy src's callable.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static constexpr Ops kInlineOps{
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* dst, void* src) noexcept {
        auto* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
      /*inline_storage=*/true,
  };

  template <class Fn>
  static constexpr Ops kHeapOps{
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* dst, void* src) noexcept {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* s) noexcept { delete *static_cast<Fn**>(s); },
      /*inline_storage=*/false,
  };

  void move_from(Task& other) noexcept {
    ops_ = other.ops_;
    if (ops_) {
      ops_->relocate(storage(), other.storage());
      other.ops_ = nullptr;
    }
  }

  void* storage() noexcept { return static_cast<void*>(storage_); }
  [[nodiscard]] const void* storage() const noexcept { return storage_; }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace apar::concurrency
