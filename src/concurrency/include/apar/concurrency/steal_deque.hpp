#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace apar::concurrency {

/// Bounded Chase–Lev work-stealing deque over `T*` elements.
///
/// One owner thread pushes and pops at the bottom (LIFO, cache-warm); any
/// number of thieves steal from the top (FIFO, oldest first). The owner's
/// push/pop never block and never allocate; thieves synchronise through a
/// single CAS on `top_`. When the ring is full, push() refuses and the
/// caller overflows into a locked injection queue (see ThreadPool).
///
/// Memory-ordering argument (docs/scheduler.md has the long form):
///
///  * Cells are `std::atomic<T*>`, so the speculative cell read a losing
///    thief performs while the owner wraps around and overwrites that slot
///    is a benign atomic race — the value is discarded when the `top_` CAS
///    fails. A non-atomic cell would make that same read undefined
///    behaviour (and a TSan report).
///  * The owner may only overwrite a cell after observing `top_` past it
///    (the full check), which happens-after the winning thief's release
///    CAS on `top_`; the winner's read of the cell precedes its CAS in
///    program order, so the winner never reads an overwritten cell.
///  * pop() racing steal() for the LAST element is a classic store/load
///    (Dekker) conflict: pop publishes the reduced `bottom_` and then reads
///    `top_`; steal reads `top_` then `bottom_`. Both sides use seq_cst on
///    those four accesses (instead of the textbook standalone fences, which
///    ThreadSanitizer does not model), so at least one side observes the
///    other and the element is claimed exactly once via the `top_` CAS.
///
/// Indices are 64-bit and monotonically increasing; they never wrap in any
/// realistic run, which rules out ABA on the `top_` CAS.
template <class T>
class StealDeque {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit StealDeque(std::size_t capacity = 256)
      : cells_(round_up_pow2(capacity)), mask_(cells_.size() - 1) {}

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only. False when the ring is full (caller must overflow).
  bool push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(cells_.size())) return false;
    cells_[static_cast<std::size_t>(b) & mask_].store(
        item, std::memory_order_relaxed);
    // seq_cst publish: thieves that observe bottom_ > t also observe the
    // cell store above; doubles as the release edge of the push.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Owner only. Null when empty.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    const std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty: undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item =
        cells_[static_cast<std::size_t>(b) & mask_].load(
            std::memory_order_relaxed);
    if (t != b) return item;  // more than one element: no thief can reach b
    // Last element: race any thief for it through the top_ CAS.
    std::int64_t expected = t;
    if (!top_.compare_exchange_strong(expected, t + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      item = nullptr;  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return item;
  }

  /// Any thread. Null when empty OR when the steal lost a race — callers
  /// treat both as a miss and pick another victim.
  T* steal() {
    const std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    // Speculative read: only valid if the CAS below wins (see class note).
    T* item =
        cells_[static_cast<std::size_t>(t) & mask_].load(
            std::memory_order_relaxed);
    std::int64_t expected = t;
    if (!top_.compare_exchange_strong(expected, t + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Racy size estimate (diagnostics; never negative).
  [[nodiscard]] std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty() const { return size_estimate() == 0; }

  [[nodiscard]] std::size_t capacity() const { return cells_.size(); }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  // top_ and bottom_ on separate cache lines: thieves hammer top_, the
  // owner hammers bottom_.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<T*>> cells_;
  std::size_t mask_;
};

}  // namespace apar::concurrency
