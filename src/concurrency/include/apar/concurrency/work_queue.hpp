#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apar/obs/metrics.hpp"

namespace apar::concurrency {

/// Blocking multi-producer / multi-consumer queue.
///
/// This is the demand-driven channel behind the DynamicFarm strategy: the
/// partition advice pushes work packs, worker loops pop them. close() wakes
/// all consumers; pop() then drains remaining items before returning
/// nullopt.
template <class T>
class WorkQueue {
 public:
  WorkQueue() = default;

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Feed depth/throughput series for this queue into the global metrics
  /// registry, labelled {"queue": name}. No-op (and the push/pop paths stay
  /// probe-free) unless obs::metrics_enabled(). Call before producers and
  /// consumers start.
  void enable_metrics(const std::string& name) {
    if (!obs::metrics_enabled()) return;
    auto& registry = obs::MetricsRegistry::global();
    const obs::Labels labels{{"queue", name}};
    depth_ = registry.gauge("workqueue.depth", labels);
    pushed_ = registry.counter("workqueue.pushed", labels);
    popped_ = registry.counter("workqueue.popped", labels);
  }

  /// Push an item; returns false (drops the item) if the queue is closed.
  bool push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    if (depth_) {
      depth_->add(1);
      pushed_->add(1);
    }
    cv_.notify_one();
    return true;
  }

  /// Push a whole batch under ONE lock acquisition and one notify_all
  /// (instead of size() lock/notify pairs — the DynamicFarm feeder pushes
  /// every pack of a partition at once). Items are moved from `items`.
  /// Returns the number actually enqueued: all of them, or 0 if the queue
  /// is closed (all-or-nothing; the vector is left untouched on refusal so
  /// the caller can dispose of the work). Metrics stay exact: depth/pushed
  /// advance by the batch size in one step.
  std::size_t push_batch(std::vector<T>& items) {
    if (items.empty()) return 0;
    const auto n = items.size();
    {
      std::lock_guard lock(mutex_);
      if (closed_) return 0;
      for (auto& item : items)
        items_.push_back(std::move(item));
    }
    items.clear();
    if (depth_) {
      depth_->add(static_cast<std::int64_t>(n));
      pushed_->add(n);
    }
    if (n == 1)
      cv_.notify_one();
    else
      cv_.notify_all();
    return n;
  }

  /// Block until at least one item is available (or the queue is closed and
  /// empty), then take up to `max_n` items under the single lock hold.
  /// Empty result means closed-and-drained, mirroring pop().
  std::vector<T> pop_batch(std::size_t max_n) {
    std::vector<T> out;
    if (max_n == 0) return out;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
      const std::size_t take = std::min(max_n, items_.size());
      out.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (depth_ && !out.empty()) {
      depth_->add(-static_cast<std::int64_t>(out.size()));
      popped_->add(out.size());
    }
    return out;
  }

  /// Block until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    if (depth_) {
      depth_->add(-1);
      popped_->add(1);
    }
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::lock_guard lock(mutex_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    if (depth_) {
      depth_->add(-1);
      popped_->add(1);
    }
    return item;
  }

  /// Close the queue: producers are refused, consumers drain then get
  /// nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Close the queue AND withdraw everything still queued (crash
  /// semantics): consumers get nullopt immediately, and the caller
  /// receives the unprocessed items to dispose of.
  std::deque<T> close_now() {
    std::deque<T> dropped;
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
      dropped.swap(items_);
    }
    if (depth_) depth_->add(-static_cast<std::int64_t>(dropped.size()));
    cv_.notify_all();
    return dropped;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;

  // Null unless enable_metrics() ran with metrics enabled.
  std::shared_ptr<obs::Gauge> depth_;
  std::shared_ptr<obs::Counter> pushed_;
  std::shared_ptr<obs::Counter> popped_;
};

}  // namespace apar::concurrency
