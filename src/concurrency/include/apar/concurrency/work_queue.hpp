#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace apar::concurrency {

/// Blocking multi-producer / multi-consumer queue.
///
/// This is the demand-driven channel behind the DynamicFarm strategy: the
/// partition advice pushes work packs, worker loops pop them. close() wakes
/// all consumers; pop() then drains remaining items before returning
/// nullopt.
template <class T>
class WorkQueue {
 public:
  WorkQueue() = default;

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Push an item; returns false (drops the item) if the queue is closed.
  bool push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Close the queue: producers are refused, consumers drain then get
  /// nullopt.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Close the queue AND withdraw everything still queued (crash
  /// semantics): consumers get nullopt immediately, and the caller
  /// receives the unprocessed items to dispose of.
  std::deque<T> close_now() {
    std::deque<T> dropped;
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
      dropped.swap(items_);
    }
    cv_.notify_all();
    return dropped;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace apar::concurrency
