#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "apar/concurrency/future.hpp"

namespace apar::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace apar::obs

namespace apar::concurrency {

/// Fixed-size thread pool (CP.4: think in terms of tasks, not threads).
///
/// The pool is the substrate for the ThreadPoolAspect optimisation (paper
/// §4.4): instead of spawning a thread per asynchronous method call, the
/// concurrency aspect can route calls here. Destruction drains queued tasks
/// and joins all workers (CP.23/CP.25: threads are scoped; never detached).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue fire-and-forget work. Throws if the pool is shutting down.
  void post(std::function<void()> task);

  /// Enqueue work and obtain a future for its result.
  template <class F>
  auto submit(F&& fn) -> Future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto promise = std::make_shared<Promise<R>>();
    auto future = promise->future();
    post([promise, fn = std::forward<F>(fn)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
          promise->set_value();
        } else {
          promise->set_value(fn());
        }
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
    return future;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Tasks currently queued (diagnostic; racy by nature).
  [[nodiscard]] std::size_t pending() const;

  /// Posted tasks whose exceptions escaped. Fire-and-forget tasks should
  /// handle their own errors (use submit() to observe them); escapees are
  /// counted here instead of terminating the process.
  [[nodiscard]] std::uint64_t task_failures() const {
    return task_failures_.load(std::memory_order_relaxed);
  }

  /// Block until the queue is empty and all workers are idle.
  void drain();

 private:
  /// A queued task with its enqueue time (zeroed when metrics are off, so
  /// the unobserved path never reads the clock).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<QueuedTask> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::atomic<std::uint64_t> task_failures_{0};
  std::vector<std::thread> workers_;

  // Registry probes, created at construction only when obs::metrics_enabled()
  // — null means every instrumentation branch below is a single pointer
  // test, keeping the fig16 overhead claim honest with metrics unset.
  // Series (process-wide aggregate over all pools):
  //   threadpool.queue_depth (gauge), threadpool.workers (gauge),
  //   threadpool.wait_us / threadpool.run_us (histograms),
  //   threadpool.tasks / threadpool.busy_us (counters).
  std::shared_ptr<obs::Gauge> queue_depth_;
  std::shared_ptr<obs::Gauge> workers_gauge_;
  std::shared_ptr<obs::Histogram> wait_us_;
  std::shared_ptr<obs::Histogram> run_us_;
  std::shared_ptr<obs::Counter> tasks_counter_;
  std::shared_ptr<obs::Counter> busy_us_counter_;
};

}  // namespace apar::concurrency
