#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "apar/common/thread_annotations.hpp"
#include "apar/concurrency/future.hpp"
#include "apar/concurrency/task.hpp"

namespace apar::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace apar::obs

namespace apar::concurrency {

namespace detail {

/// Heap block shared by a submit() call: the future's state and the callable
/// in ONE allocation (the old path allocated the Promise state, the
/// std::function callable, and the queue node separately).
template <class R, class Fn>
struct SubmitState {
  FutureState<R> state;
  Fn fn;
  template <class G>
  explicit SubmitState(G&& g) : fn(std::forward<G>(g)) {}
};

/// The task body for submit(): runs the callable, delivers into the folded
/// state. If the runner is destroyed without running (pool shut down before
/// the task was accepted), waiters get BrokenPromise — the same contract a
/// dropped Promise gives.
template <class R, class Fn>
struct SubmitRunner {
  std::shared_ptr<SubmitState<R, Fn>> shared;

  explicit SubmitRunner(std::shared_ptr<SubmitState<R, Fn>> s)
      : shared(std::move(s)) {}
  SubmitRunner(SubmitRunner&&) noexcept = default;
  SubmitRunner& operator=(SubmitRunner&&) noexcept = default;
  SubmitRunner(const SubmitRunner&) = delete;
  SubmitRunner& operator=(const SubmitRunner&) = delete;

  ~SubmitRunner() {
    if (shared) abandon_state(shared->state);
  }

  void operator()() {
    auto s = std::move(shared);
    try {
      if constexpr (std::is_void_v<R>) {
        s->fn();
        deliver_to_state(s->state, [](auto& st) { st.done = true; });
      } else {
        auto result = s->fn();
        deliver_to_state(s->state, [&](auto& st) {
          st.value.emplace(std::move(result));
        });
      }
    } catch (...) {
      deliver_to_state(s->state, [&](auto& st) {
        st.error = std::current_exception();
      });
    }
  }
};

}  // namespace detail

/// Work-stealing thread pool with ONLINE RESIZE (CP.4: think in terms of
/// tasks, not threads).
///
/// The pool is the substrate for the ThreadPoolAspect optimisation (paper
/// §4.4): instead of spawning a thread per asynchronous method call, the
/// concurrency aspect routes calls here. Internally each worker owns a
/// bounded Chase–Lev deque (lock-free owner push/pop, randomized stealing);
/// external post() goes through a mutex-protected injection queue that
/// workers drain in chunks, re-seeding their own deques so thieves can
/// spread the work. docs/scheduler.md describes the algorithm and its
/// memory-ordering argument.
///
/// resize(n) changes the worker count at runtime — the actuator the
/// AdaptationAspect (docs/adaptation.md) drives. Worker slots (deque +
/// retire flag) are allocated once, up to `max_threads`, and never move,
/// so thieves may scan every slot without synchronising against resize.
/// Growing joins any previously retired thread for the slot and spins up a
/// fresh worker; shrinking is COOPERATIVE: the surplus worker observes its
/// retire flag at a task boundary, drains its own deque back through the
/// injection queue (accepted tasks still run exactly once — the
/// pending-count accounting never sees the move), and exits.
///
/// Destruction drains queued tasks and joins all workers (CP.23/CP.25:
/// threads are scoped; never detached).
class ThreadPool {
 public:
  /// Start `threads` workers, with slot capacity for growing up to
  /// `max_threads` later (0 picks max(2*threads, 8)).
  explicit ThreadPool(std::size_t threads, std::size_t max_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue fire-and-forget work. Throws if the pool is shutting down.
  /// Accepts any nullary callable (std::function, lambdas, Task); callables
  /// up to Task::kInlineBytes are stored without a heap allocation of their
  /// own. Posts from a worker thread of this pool go to that worker's own
  /// deque (lock-free); external posts take the injection lock once.
  template <class F>
  void post(F&& fn) {
    post_node(make_node(Task(std::forward<F>(fn))));
  }

  /// Enqueue a batch under ONE accounting pass and one wake-up sweep
  /// instead of `tasks.size()` locked posts. From a worker thread the batch
  /// seeds the worker's own deque (thieves spread it); from outside it is
  /// spliced into the injection queue under a single lock. Tasks are moved
  /// from; on failure (pool shutting down) the span is left untouched.
  void bulk_post(std::span<Task> tasks);

  /// Enqueue work and obtain a future for its result. One heap allocation
  /// total: the future state and the callable share a block, and the task
  /// envelope holding it comes from the node cache.
  template <class F>
  auto submit(F&& fn) -> Future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    using Fn = std::decay_t<F>;
    auto shared =
        std::make_shared<detail::SubmitState<R, Fn>>(std::forward<F>(fn));
    auto future = detail::FutureAccess::wrap(
        std::shared_ptr<detail::FutureState<R>>(shared, &shared->state));
    post(detail::SubmitRunner<R, Fn>(std::move(shared)));
    return future;
  }

  /// Run one queued task on the calling thread if any is available; false
  /// when nothing could be claimed. Lets blocked producers (parallel_for)
  /// help instead of deadlocking the pool from inside a worker.
  bool try_execute_one();

  /// Change the worker count online. Clamped to [1, max_size()]; returns
  /// the new target. Growing joins any retired thread still parked on the
  /// slot, then starts a fresh worker; shrinking flags surplus workers,
  /// which retire cooperatively at their next task boundary (their queued
  /// work is drained back through the injection queue, so every accepted
  /// task still runs exactly once). Thread-safe against posts, steals and
  /// concurrent resize; must NOT be called from a task running on this
  /// pool (a grow may need to join the calling worker's own slot).
  std::size_t resize(std::size_t n);

  /// Current worker-count target (workers a shrink has flagged may still
  /// be finishing their final task).
  [[nodiscard]] std::size_t size() const {
    return target_size_.load(std::memory_order_acquire);
  }

  /// Slot capacity: the largest value resize() accepts.
  [[nodiscard]] std::size_t max_size() const { return slots_.size(); }

  /// Completed resize() calls that changed the target (diagnostic; also
  /// exported as threadpool.resizes).
  [[nodiscard]] std::uint64_t resizes() const {
    return resizes_.load(std::memory_order_relaxed);
  }

  /// Tasks currently queued (diagnostic; racy by nature). Counts the
  /// injection queue AND all worker deques.
  [[nodiscard]] std::size_t pending() const;

  /// Posted tasks whose exceptions escaped. Fire-and-forget tasks should
  /// handle their own errors (use submit() to observe them); escapees are
  /// counted here instead of terminating the process.
  [[nodiscard]] std::uint64_t task_failures() const {
    return task_failures_.load(std::memory_order_relaxed);
  }

  /// Successful steals (diagnostic; also exported as threadpool.steals).
  [[nodiscard]] std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Owner-deque overflows routed to the injection queue (diagnostic; also
  /// exported as threadpool.overflow).
  [[nodiscard]] std::uint64_t overflows() const {
    return overflows_.load(std::memory_order_relaxed);
  }

  /// Block until no task is queued anywhere and all workers are idle.
  void drain();

 private:
  struct TaskNode;
  struct WorkerSlot;
  struct NodeCache;

  /// Per-thread cache of recycled TaskNodes (capped); avoids a malloc per
  /// post in steady state without any cross-thread synchronisation.
  static NodeCache& local_node_cache();

  TaskNode* make_node(Task task);
  void destroy_node(TaskNode* node) noexcept;
  /// Full accounting for one accepted node: pending++, stopping check,
  /// enqueue, wake. Throws (after destroying the node) when shutting down.
  void post_node(TaskNode* node);
  /// Place an accepted node: own deque when called from a worker of this
  /// pool (overflow -> injection), injection queue otherwise.
  void enqueue_node(TaskNode* node);
  TaskNode* find_work(std::size_t index);
  TaskNode* take_injected(std::size_t index);
  TaskNode* take_injected_external();
  TaskNode* steal_task(std::size_t self_index);
  void run_node(TaskNode* node);
  void worker_loop(std::size_t index);
  /// Cooperative retirement: drain the slot's own deque back into the
  /// injection queue (owner pops — safe), leaving pending accounting
  /// untouched, then let the worker thread exit.
  void retire_worker(std::size_t index);
  void wake_one();
  void wake_all();

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;

  /// Worker-count target; slots [0, target) are live, the rest retired or
  /// never started. Written under resize_mutex_ only.
  std::atomic<std::size_t> target_size_{0};
  std::atomic<std::uint64_t> resizes_{0};
  /// Serialises resize() against itself and the destructor's final join.
  std::mutex resize_mutex_;

  /// Shared overflow free-stack for TaskNodes. Nodes are freed on worker
  /// threads but allocated on producer threads, so the thread-local caches
  /// alone never recycle across that boundary: workers push surplus nodes
  /// here (lock-free CAS; push-only, so no ABA), producers adopt the whole
  /// stack in one exchange when their local cache runs dry. Drained in the
  /// destructor after the workers are joined.
  std::atomic<TaskNode*> free_nodes_{nullptr};

  mutable common::Mutex inject_mutex_;
  std::deque<TaskNode*> inject_ APAR_GUARDED_BY(inject_mutex_);

  // Sleep/idle coordination. Workers sleep only when pending_ == 0 — i.e.
  // both the injection queue and every deque are empty — and every enqueue
  // (deque or injection) bumps pending_ before waking, so no task can be
  // stranded behind a sleeping worker. The Dekker pattern between
  // pending_/sleepers_ (both seq_cst) plus lock-then-notify closes the
  // missed-wakeup races; see docs/scheduler.md.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> sleepers_{0};

  /// Tasks enqueued but not yet claimed by a runner.
  std::atomic<std::int64_t> pending_count_{0};
  /// Tasks currently executing.
  std::atomic<std::int64_t> active_{0};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> task_failures_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> overflows_{0};

  // Registry probes, created at construction only when obs::metrics_enabled()
  // — null means every instrumentation branch below is a single pointer
  // test, keeping the fig16 overhead claim honest with metrics unset.
  // Series (process-wide aggregate over all pools):
  //   threadpool.queue_depth (gauge), threadpool.workers (gauge),
  //   threadpool.wait_us / threadpool.queue_wait / threadpool.run_us
  //   (histograms; queue_wait is the submit→start gap, the
  //   AdaptationAspect's key signal),
  //   threadpool.tasks / threadpool.busy_us (counters),
  //   threadpool.steals / threadpool.overflow (counters).
  std::shared_ptr<obs::Gauge> queue_depth_;
  std::shared_ptr<obs::Gauge> workers_gauge_;
  std::shared_ptr<obs::Histogram> wait_us_;
  std::shared_ptr<obs::Histogram> queue_wait_us_;
  std::shared_ptr<obs::Histogram> run_us_;
  std::shared_ptr<obs::Counter> tasks_counter_;
  std::shared_ptr<obs::Counter> busy_us_counter_;
  std::shared_ptr<obs::Counter> steals_counter_;
  std::shared_ptr<obs::Counter> overflow_counter_;
};

}  // namespace apar::concurrency
