#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "apar/concurrency/sync_observer.hpp"

namespace apar::concurrency {

/// Per-object monitor table: the C++ analogue of Java's
/// `synchronized(target) { ... }` used by the paper's concurrency aspect
/// (Figure 12) to protect non-thread-safe server objects.
///
/// Monitors are keyed by object address and allocated lazily; the table is
/// sharded to keep the lookup itself off the contention path. Monitors are
/// recursive so advice nested on the same target (e.g. sync advice around a
/// forwarded call that re-enters the same object) cannot self-deadlock.
///
/// Acquisitions and releases report to the process-wide SyncObserver when
/// one is installed (see sync_observer.hpp) — the LockOrderAspect builds
/// its lock-order graph from these callbacks.
class SyncRegistry {
  struct MonitorEntry;  // defined in sync_registry.cpp

 public:
  explicit SyncRegistry(std::size_t shards = 16);
  ~SyncRegistry();

  SyncRegistry(const SyncRegistry&) = delete;
  SyncRegistry& operator=(const SyncRegistry&) = delete;

  /// RAII monitor hold (CP.20: RAII, never plain lock/unlock).
  class Guard {
   public:
    Guard(Guard&& other) noexcept;
    Guard& operator=(Guard&&) = delete;
    ~Guard();

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    friend class SyncRegistry;
    Guard(SyncRegistry* registry, MonitorEntry* entry, const void* object);

    SyncRegistry* registry_;
    MonitorEntry* entry_;
    const void* object_;
  };

  /// Acquire the monitor for `object`; released when the Guard dies.
  [[nodiscard]] Guard acquire(const void* object);

  /// Drop the monitor entry for a destroyed object (optional; entries are
  /// harmless but this keeps long-lived registries bounded). A monitor
  /// that is currently held (or mid-acquire) is NOT destroyed — destroying
  /// a locked recursive_mutex is undefined behaviour — its removal is
  /// deferred until the last Guard releases it. Returns true if the entry
  /// was removed immediately, false if absent or deferred.
  bool forget(const void* object);

  /// Number of live monitor entries (diagnostic; includes entries whose
  /// removal is deferred).
  [[nodiscard]] std::size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<const void*, std::unique_ptr<MonitorEntry>> map;
  };

  Shard& shard_for(const void* object);
  const Shard& shard_for(const void* object) const;

  /// Unlock + unpin `entry` for `object`; erases the entry if a forget()
  /// was deferred and this was the last pin.
  void release(MonitorEntry* entry, const void* object);

  std::vector<Shard> shards_;
};

}  // namespace apar::concurrency
