#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace apar::concurrency {

/// Per-object monitor table: the C++ analogue of Java's
/// `synchronized(target) { ... }` used by the paper's concurrency aspect
/// (Figure 12) to protect non-thread-safe server objects.
///
/// Monitors are keyed by object address and allocated lazily; the table is
/// sharded to keep the lookup itself off the contention path. Monitors are
/// recursive so advice nested on the same target (e.g. sync advice around a
/// forwarded call that re-enters the same object) cannot self-deadlock.
class SyncRegistry {
 public:
  explicit SyncRegistry(std::size_t shards = 16);

  SyncRegistry(const SyncRegistry&) = delete;
  SyncRegistry& operator=(const SyncRegistry&) = delete;

  /// RAII monitor hold (CP.20: RAII, never plain lock/unlock).
  class Guard {
   public:
    explicit Guard(std::recursive_mutex& m) : lock_(m) {}

   private:
    std::unique_lock<std::recursive_mutex> lock_;
  };

  /// Acquire the monitor for `object`; released when the Guard dies.
  [[nodiscard]] Guard acquire(const void* object);

  /// Drop the monitor entry for a destroyed object (optional; entries are
  /// harmless but this keeps long-lived registries bounded).
  void forget(const void* object);

  /// Number of live monitor entries (diagnostic).
  [[nodiscard]] std::size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<const void*, std::unique_ptr<std::recursive_mutex>> map;
  };

  Shard& shard_for(const void* object);
  const Shard& shard_for(const void* object) const;

  std::vector<Shard> shards_;
};

}  // namespace apar::concurrency
