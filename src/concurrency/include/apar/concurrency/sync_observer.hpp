#pragma once

#include <atomic>

namespace apar::concurrency {

class SyncRegistry;

/// Process-wide hook into the synchronisation substrate, installed by the
/// LockOrderAspect (src/analysis) while it is plugged. Mirrors the
/// observability probes' gating discipline: when no observer is installed
/// the instrumented paths cost exactly one relaxed atomic pointer load and
/// a predicted-not-taken branch — zero residue, per the paper's
/// unpluggability claim applied to analysis itself.
///
/// Callbacks run on the acquiring/releasing thread, outside any
/// SyncRegistry shard lock but (for on_acquired) with the monitor held.
/// Implementations must not call back into the registry being observed.
class SyncObserver {
 public:
  virtual ~SyncObserver() = default;

  /// The calling thread now holds the monitor of `object` in `registry`
  /// (recursive re-acquisitions included).
  virtual void on_acquired(const SyncRegistry* registry,
                           const void* object) = 0;

  /// The calling thread released the monitor of `object` in `registry`.
  virtual void on_released(const SyncRegistry* registry,
                           const void* object) = 0;

  /// The calling thread is about to block on a future's value
  /// (Future::get with the result not yet delivered) — hazardous when
  /// monitors are held, since the producer may need them to make progress.
  virtual void on_blocking_wait() = 0;
};

namespace detail {
/// Single process-wide observer slot (C++17 inline variable: one instance
/// across all translation units).
inline std::atomic<SyncObserver*> g_sync_observer{nullptr};
}  // namespace detail

/// Install (or clear, with nullptr) the process-wide sync observer.
/// Returns the previous observer. Installation is expected to happen at a
/// quiescent point — in-flight acquisitions may still report to the old
/// observer for the duration of their call.
inline SyncObserver* set_sync_observer(SyncObserver* observer) {
  return detail::g_sync_observer.exchange(observer, std::memory_order_acq_rel);
}

/// The currently installed observer, or nullptr. This load IS the entire
/// disabled-path cost of the instrumentation.
inline SyncObserver* sync_observer() {
  return detail::g_sync_observer.load(std::memory_order_acquire);
}

/// Instrumentation point for blocking waits (Future::get). Header-only so
/// the template Future can call it without a link dependency.
inline void notify_blocking_wait() {
  if (SyncObserver* obs = sync_observer()) obs->on_blocking_wait();
}

}  // namespace apar::concurrency
