#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "apar/concurrency/sync_observer.hpp"

namespace apar::concurrency {

/// Error raised when a Promise is dropped without delivering a value.
class BrokenPromise : public std::runtime_error {
 public:
  BrokenPromise() : std::runtime_error("broken promise") {}
};

namespace detail {

template <class T>
struct FutureState {
  std::mutex mutex;
  std::condition_variable cv;
  std::optional<T> value;
  std::exception_ptr error;
  bool broken = false;
  std::vector<std::function<void()>> continuations;

  bool ready_locked() const { return value.has_value() || error || broken; }
};

template <>
struct FutureState<void> {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  bool broken = false;
  std::vector<std::function<void()>> continuations;

  bool ready_locked() const { return done || error || broken; }
};

template <class T>
void fire_continuations(FutureState<T>& st,
                        std::vector<std::function<void()>>& out) {
  out.swap(st.continuations);
}

/// Deliver into a raw FutureState (shared by Promise and the ThreadPool's
/// single-allocation submit(), which folds the state into the task storage
/// instead of going through a separate Promise object). `store` runs under
/// the state lock and must make ready_locked() true.
template <class T, class Store>
void deliver_to_state(FutureState<T>& st, Store&& store) {
  std::vector<std::function<void()>> conts;
  {
    std::lock_guard lock(st.mutex);
    if (st.ready_locked())
      throw std::logic_error("Promise already satisfied");
    store(st);
    fire_continuations(st, conts);
    st.cv.notify_all();
  }
  for (auto& c : conts) c();
}

/// Producer vanished without delivering: wake waiters with BrokenPromise.
/// Idempotent — a state that is already ready is left alone.
template <class T>
void abandon_state(FutureState<T>& st) {
  std::vector<std::function<void()>> conts;
  {
    std::lock_guard lock(st.mutex);
    if (st.ready_locked()) return;
    st.broken = true;
    fire_continuations(st, conts);
    st.cv.notify_all();
  }
  for (auto& c : conts) c();
}

/// Grants Future construction from a bare state pointer to in-tree
/// executors (ThreadPool::submit) without widening Future's public surface.
struct FutureAccess;

}  // namespace detail

template <class T>
class Promise;

/// ABCL-style future variable (paper §2): the client receives the future
/// immediately; touching the value blocks until the producer delivers it.
///
/// Unlike std::future, this future is copyable (shared) and supports
/// `on_ready` continuations, which the concurrency aspect uses to chain
/// pipeline stages without blocking a thread.
template <class T>
class Future {
 public:
  Future() = default;

  /// True once a value or error has been delivered.
  [[nodiscard]] bool ready() const {
    if (!state_) return true;
    std::lock_guard lock(state_->mutex);
    return state_->ready_locked();
  }

  [[nodiscard]] bool valid() const { return static_cast<bool>(state_); }

  /// Block until ready.
  void wait() const {
    ensure_valid();
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->ready_locked(); });
  }

  /// Block and return the value (by const reference; the state is shared).
  /// Rethrows a delivered exception; throws BrokenPromise if the producer
  /// vanished.
  const T& get() const {
    ensure_valid();
    std::unique_lock lock(state_->mutex);
    if (!state_->ready_locked()) {
      // About to block on the producer — report to the sync observer so
      // the lock-order analysis can flag waits made with monitors held.
      lock.unlock();
      notify_blocking_wait();
      lock.lock();
    }
    state_->cv.wait(lock, [&] { return state_->ready_locked(); });
    if (state_->error) std::rethrow_exception(state_->error);
    if (state_->broken) throw BrokenPromise();
    return *state_->value;
  }

  /// Register a callback run when the value (or error) arrives; runs
  /// immediately if already ready. The callback must not block.
  void on_ready(std::function<void()> fn) const {
    ensure_valid();
    {
      std::lock_guard lock(state_->mutex);
      if (!state_->ready_locked()) {
        state_->continuations.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }

 private:
  friend class Promise<T>;
  friend struct detail::FutureAccess;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {}

  void ensure_valid() const {
    if (!state_) throw std::logic_error("Future has no state");
  }

  std::shared_ptr<detail::FutureState<T>> state_;
};

template <>
class Future<void> {
 public:
  Future() = default;

  [[nodiscard]] bool ready() const {
    if (!state_) return true;
    std::lock_guard lock(state_->mutex);
    return state_->ready_locked();
  }

  [[nodiscard]] bool valid() const { return static_cast<bool>(state_); }

  void wait() const {
    ensure_valid();
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->ready_locked(); });
  }

  void get() const {
    ensure_valid();
    std::unique_lock lock(state_->mutex);
    if (!state_->ready_locked()) {
      // About to block on the producer — report to the sync observer so
      // the lock-order analysis can flag waits made with monitors held.
      lock.unlock();
      notify_blocking_wait();
      lock.lock();
    }
    state_->cv.wait(lock, [&] { return state_->ready_locked(); });
    if (state_->error) std::rethrow_exception(state_->error);
    if (state_->broken) throw BrokenPromise();
  }

  void on_ready(std::function<void()> fn) const {
    ensure_valid();
    {
      std::lock_guard lock(state_->mutex);
      if (!state_->ready_locked()) {
        state_->continuations.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }

 private:
  friend class Promise<void>;
  friend struct detail::FutureAccess;
  explicit Future(std::shared_ptr<detail::FutureState<void>> s)
      : state_(std::move(s)) {}

  void ensure_valid() const {
    if (!state_) throw std::logic_error("Future has no state");
  }

  std::shared_ptr<detail::FutureState<void>> state_;
};

/// Producer side of a Future.
template <class T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  Promise(Promise&&) noexcept = default;
  Promise& operator=(Promise&&) noexcept = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  ~Promise() {
    if (state_) detail::abandon_state(*state_);
  }

  [[nodiscard]] Future<T> future() const { return Future<T>(state_); }

  template <class U>
  void set_value(U&& v) {
    detail::deliver_to_state(
        *state_, [&](auto& st) { st.value.emplace(std::forward<U>(v)); });
  }

  void set_exception(std::exception_ptr e) {
    detail::deliver_to_state(*state_,
                             [&](auto& st) { st.error = std::move(e); });
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <>
class Promise<void> {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<void>>()) {}

  Promise(Promise&&) noexcept = default;
  Promise& operator=(Promise&&) noexcept = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  ~Promise() {
    if (state_) detail::abandon_state(*state_);
  }

  [[nodiscard]] Future<void> future() const { return Future<void>(state_); }

  void set_value() {
    detail::deliver_to_state(*state_, [](auto& st) { st.done = true; });
  }

  void set_exception(std::exception_ptr e) {
    detail::deliver_to_state(*state_,
                             [&](auto& st) { st.error = std::move(e); });
  }

 private:
  std::shared_ptr<detail::FutureState<void>> state_;
};

namespace detail {

struct FutureAccess {
  template <class T>
  static Future<T> wrap(std::shared_ptr<FutureState<T>> state) {
    return Future<T>(std::move(state));
  }
};

}  // namespace detail

/// Wait for every future in the range; rethrows the first stored exception.
template <class T>
void wait_all(const std::vector<Future<T>>& futures) {
  for (const auto& f : futures) f.get();
}

}  // namespace apar::concurrency
