#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "apar/concurrency/sync_observer.hpp"

namespace apar::concurrency {

/// Error raised when a Promise is dropped without delivering a value.
class BrokenPromise : public std::runtime_error {
 public:
  BrokenPromise() : std::runtime_error("broken promise") {}
};

namespace detail {

template <class T>
struct FutureState {
  std::mutex mutex;
  std::condition_variable cv;
  std::optional<T> value;
  std::exception_ptr error;
  bool broken = false;
  std::vector<std::function<void()>> continuations;

  bool ready_locked() const { return value.has_value() || error || broken; }
};

template <>
struct FutureState<void> {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  bool broken = false;
  std::vector<std::function<void()>> continuations;

  bool ready_locked() const { return done || error || broken; }
};

template <class T>
void fire_continuations(FutureState<T>& st,
                        std::vector<std::function<void()>>& out) {
  out.swap(st.continuations);
}

}  // namespace detail

template <class T>
class Promise;

/// ABCL-style future variable (paper §2): the client receives the future
/// immediately; touching the value blocks until the producer delivers it.
///
/// Unlike std::future, this future is copyable (shared) and supports
/// `on_ready` continuations, which the concurrency aspect uses to chain
/// pipeline stages without blocking a thread.
template <class T>
class Future {
 public:
  Future() = default;

  /// True once a value or error has been delivered.
  [[nodiscard]] bool ready() const {
    if (!state_) return true;
    std::lock_guard lock(state_->mutex);
    return state_->ready_locked();
  }

  [[nodiscard]] bool valid() const { return static_cast<bool>(state_); }

  /// Block until ready.
  void wait() const {
    ensure_valid();
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->ready_locked(); });
  }

  /// Block and return the value (by const reference; the state is shared).
  /// Rethrows a delivered exception; throws BrokenPromise if the producer
  /// vanished.
  const T& get() const {
    ensure_valid();
    std::unique_lock lock(state_->mutex);
    if (!state_->ready_locked()) {
      // About to block on the producer — report to the sync observer so
      // the lock-order analysis can flag waits made with monitors held.
      lock.unlock();
      notify_blocking_wait();
      lock.lock();
    }
    state_->cv.wait(lock, [&] { return state_->ready_locked(); });
    if (state_->error) std::rethrow_exception(state_->error);
    if (state_->broken) throw BrokenPromise();
    return *state_->value;
  }

  /// Register a callback run when the value (or error) arrives; runs
  /// immediately if already ready. The callback must not block.
  void on_ready(std::function<void()> fn) const {
    ensure_valid();
    {
      std::lock_guard lock(state_->mutex);
      if (!state_->ready_locked()) {
        state_->continuations.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {}

  void ensure_valid() const {
    if (!state_) throw std::logic_error("Future has no state");
  }

  std::shared_ptr<detail::FutureState<T>> state_;
};

template <>
class Future<void> {
 public:
  Future() = default;

  [[nodiscard]] bool ready() const {
    if (!state_) return true;
    std::lock_guard lock(state_->mutex);
    return state_->ready_locked();
  }

  [[nodiscard]] bool valid() const { return static_cast<bool>(state_); }

  void wait() const {
    ensure_valid();
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock, [&] { return state_->ready_locked(); });
  }

  void get() const {
    ensure_valid();
    std::unique_lock lock(state_->mutex);
    if (!state_->ready_locked()) {
      // About to block on the producer — report to the sync observer so
      // the lock-order analysis can flag waits made with monitors held.
      lock.unlock();
      notify_blocking_wait();
      lock.lock();
    }
    state_->cv.wait(lock, [&] { return state_->ready_locked(); });
    if (state_->error) std::rethrow_exception(state_->error);
    if (state_->broken) throw BrokenPromise();
  }

  void on_ready(std::function<void()> fn) const {
    ensure_valid();
    {
      std::lock_guard lock(state_->mutex);
      if (!state_->ready_locked()) {
        state_->continuations.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }

 private:
  friend class Promise<void>;
  explicit Future(std::shared_ptr<detail::FutureState<void>> s)
      : state_(std::move(s)) {}

  void ensure_valid() const {
    if (!state_) throw std::logic_error("Future has no state");
  }

  std::shared_ptr<detail::FutureState<void>> state_;
};

/// Producer side of a Future.
template <class T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  Promise(Promise&&) noexcept = default;
  Promise& operator=(Promise&&) noexcept = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  ~Promise() {
    if (!state_) return;
    std::vector<std::function<void()>> conts;
    {
      std::lock_guard lock(state_->mutex);
      if (!state_->ready_locked()) {
        state_->broken = true;
        detail::fire_continuations(*state_, conts);
        state_->cv.notify_all();
      }
    }
    for (auto& c : conts) c();
  }

  [[nodiscard]] Future<T> future() const { return Future<T>(state_); }

  template <class U>
  void set_value(U&& v) {
    deliver([&](auto& st) { st.value.emplace(std::forward<U>(v)); });
  }

  void set_exception(std::exception_ptr e) {
    deliver([&](auto& st) { st.error = std::move(e); });
  }

 private:
  template <class F>
  void deliver(F&& store) {
    std::vector<std::function<void()>> conts;
    {
      std::lock_guard lock(state_->mutex);
      if (state_->ready_locked())
        throw std::logic_error("Promise already satisfied");
      store(*state_);
      detail::fire_continuations(*state_, conts);
      state_->cv.notify_all();
    }
    for (auto& c : conts) c();
  }

  std::shared_ptr<detail::FutureState<T>> state_;
};

template <>
class Promise<void> {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<void>>()) {}

  Promise(Promise&&) noexcept = default;
  Promise& operator=(Promise&&) noexcept = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  ~Promise() {
    if (!state_) return;
    std::vector<std::function<void()>> conts;
    {
      std::lock_guard lock(state_->mutex);
      if (!state_->ready_locked()) {
        state_->broken = true;
        detail::fire_continuations(*state_, conts);
        state_->cv.notify_all();
      }
    }
    for (auto& c : conts) c();
  }

  [[nodiscard]] Future<void> future() const { return Future<void>(state_); }

  void set_value() {
    deliver([](auto& st) { st.done = true; });
  }

  void set_exception(std::exception_ptr e) {
    deliver([&](auto& st) { st.error = std::move(e); });
  }

 private:
  template <class F>
  void deliver(F&& store) {
    std::vector<std::function<void()>> conts;
    {
      std::lock_guard lock(state_->mutex);
      if (state_->ready_locked())
        throw std::logic_error("Promise already satisfied");
      store(*state_);
      detail::fire_continuations(*state_, conts);
      state_->cv.notify_all();
    }
    for (auto& c : conts) c();
  }

  std::shared_ptr<detail::FutureState<void>> state_;
};

/// Wait for every future in the range; rethrows the first stored exception.
template <class T>
void wait_all(const std::vector<Future<T>>& futures) {
  for (const auto& f : futures) f.get();
}

}  // namespace apar::concurrency
