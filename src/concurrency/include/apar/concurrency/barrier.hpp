#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace apar::concurrency {

/// Reusable cyclic barrier for the Heartbeat strategy's iteration fences.
///
/// std::barrier requires the participant count at construction and is
/// awkward to reuse across aspects that discover their worker count late;
/// this barrier is a small, self-contained generation-counting variant.
class CyclicBarrier {
 public:
  explicit CyclicBarrier(std::size_t parties) : parties_(parties ? parties : 1) {}

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  /// Block until `parties` threads have arrived; returns the generation
  /// index that just completed (0-based).
  std::size_t arrive_and_wait() {
    std::unique_lock lock(mutex_);
    const std::size_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return gen;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
    return gen;
  }

  [[nodiscard]] std::size_t parties() const { return parties_; }

  /// Completed generations so far.
  [[nodiscard]] std::size_t generation() const {
    std::lock_guard lock(mutex_);
    return generation_;
  }

 private:
  const std::size_t parties_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
};

/// RAII permit against a counted limit; models the "only 4 hardware contexts
/// on one node" constraint used to reproduce FarmThreads' plateau (Fig. 17).
class ParallelismLimiter {
 public:
  explicit ParallelismLimiter(std::size_t permits)
      : permits_(permits ? permits : 1), available_(permits_) {}

  class Permit {
   public:
    explicit Permit(ParallelismLimiter& l) : limiter_(&l) { l.acquire(); }
    ~Permit() {
      if (limiter_) limiter_->release();
    }
    Permit(Permit&& other) noexcept : limiter_(other.limiter_) {
      other.limiter_ = nullptr;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;
    Permit& operator=(Permit&&) = delete;

   private:
    ParallelismLimiter* limiter_;
  };

  [[nodiscard]] Permit permit() { return Permit(*this); }

  [[nodiscard]] std::size_t limit() const { return permits_; }

 private:
  void acquire() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return available_ > 0; });
    --available_;
  }
  void release() {
    {
      std::lock_guard lock(mutex_);
      ++available_;
    }
    cv_.notify_one();
  }

  const std::size_t permits_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t available_;
};

}  // namespace apar::concurrency
