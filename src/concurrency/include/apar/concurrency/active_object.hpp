#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <queue>

#include "apar/concurrency/thread_pool.hpp"

namespace apar::concurrency {

/// Serial executor: tasks enqueued against one ActiveObject run one at a
/// time, in FIFO order, on a shared pool — the ABCL "active object" model
/// (paper §2) without a dedicated thread per object.
///
/// Used by the ObjectCache/ActiveObject optimisation aspects: it gives the
/// same data-race freedom as the per-object monitor, but callers never block
/// on a busy object; they just enqueue.
class ActiveObject {
 public:
  explicit ActiveObject(ThreadPool& pool) : state_(std::make_shared<State>(pool)) {}

  /// Enqueue a task; it runs after every previously enqueued task finished.
  void enqueue(std::function<void()> task) {
    auto st = state_;
    bool start = false;
    {
      std::lock_guard lock(st->mutex);
      st->queue.push(std::move(task));
      if (!st->draining) {
        st->draining = true;
        start = true;
      }
    }
    if (start) schedule(std::move(st));
  }

 private:
  struct State {
    explicit State(ThreadPool& p) : pool(p) {}
    ThreadPool& pool;
    std::mutex mutex;
    std::queue<std::function<void()>> queue;
    bool draining = false;
  };

  static void schedule(std::shared_ptr<State> st) {
    auto& pool = st->pool;
    pool.post([st = std::move(st)]() mutable {
      while (true) {
        std::function<void()> task;
        {
          std::lock_guard lock(st->mutex);
          if (st->queue.empty()) {
            st->draining = false;
            return;
          }
          task = std::move(st->queue.front());
          st->queue.pop();
        }
        task();
      }
    });
  }

  std::shared_ptr<State> state_;
};

}  // namespace apar::concurrency
