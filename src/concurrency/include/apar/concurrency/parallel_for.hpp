#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <vector>

#include "apar/concurrency/task.hpp"
#include "apar/concurrency/thread_pool.hpp"

namespace apar::concurrency {

/// Run `fn(i)` for every i in [first, last) on the pool, chunked by `grain`
/// indices per task.
///
/// The chunks are seeded with ONE bulk_post (one accounting pass, one wake
/// sweep) instead of N locked posts — this is the batch path the farm
/// partition advice rides. The calling thread runs the first chunk itself
/// and then HELPS the scheduler (ThreadPool::try_execute_one) while
/// waiting, so calling parallel_for from inside a pool task — recursive
/// data parallelism — cannot deadlock even on a one-worker pool.
///
/// `grain == 0` auto-picks ceil(n / (4 * workers)), clamped to >= 1: about
/// four chunks per worker, enough slack for stealing to balance uneven
/// chunk costs without drowning in per-task overhead (docs/scheduler.md
/// discusses the trade-off).
///
/// Exceptions thrown by `fn` are collected; the first one is rethrown after
/// ALL chunks have finished (no chunk is cancelled — same semantics as
/// running the loop serially would give for the surviving iterations).
/// If the pool is shutting down, the loop degrades to running every chunk
/// inline on the caller.
template <class Fn>
void parallel_for(ThreadPool& pool, std::size_t first, std::size_t last,
                  std::size_t grain, Fn&& fn) {
  if (first >= last) return;
  const std::size_t n = last - first;
  if (grain == 0) {
    const std::size_t target = 4 * pool.size();
    grain = std::max<std::size_t>(1, (n + target - 1) / target);
  }
  const std::size_t chunks = (n + grain - 1) / grain;

  struct Control {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining = 0;
    std::exception_ptr error;
  };
  Control control;
  control.remaining = chunks;

  auto run_chunk = [&control, &fn](std::size_t begin, std::size_t end) {
    std::exception_ptr err;
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard lock(control.mutex);
    if (err && !control.error) control.error = err;
    if (--control.remaining == 0) control.cv.notify_all();
  };

  if (chunks > 1) {
    std::vector<Task> tasks;
    tasks.reserve(chunks - 1);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t begin = first + c * grain;
      const std::size_t end = std::min(last, begin + grain);
      tasks.emplace_back([&run_chunk, begin, end] { run_chunk(begin, end); });
    }
    try {
      pool.bulk_post(tasks);
    } catch (...) {
      // Pool shutting down: bulk_post is all-or-nothing, so the tasks are
      // intact — run them inline.
      for (auto& task : tasks) task();
    }
  }
  run_chunk(first, std::min(last, first + grain));

  // Help-first wait: execute other pool tasks (often our own chunks) while
  // any chunk is outstanding. The timed wait is a belt-and-braces fallback
  // against claim races; the cv notify from the last chunk is the normal
  // wake-up.
  for (;;) {
    {
      std::unique_lock lock(control.mutex);
      if (control.remaining == 0) break;
    }
    if (!pool.try_execute_one()) {
      std::unique_lock lock(control.mutex);
      control.cv.wait_for(lock, std::chrono::milliseconds(10),
                          [&] { return control.remaining == 0; });
      if (control.remaining == 0) break;
    }
  }
  if (control.error) std::rethrow_exception(control.error);
}

}  // namespace apar::concurrency
