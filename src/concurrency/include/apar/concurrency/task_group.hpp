#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apar::concurrency {

class ThreadPool;

/// Tracks a dynamic set of asynchronous tasks so a caller can quiesce.
///
/// The paper's `main` implicitly waits for the woven pipeline to drain; the
/// concurrency aspect registers every spawned call here and
/// `aop::Context::quiesce()` forwards to wait(). Supports both the paper's
/// literal thread-per-call model (`spawn`) and the pooled optimisation
/// (`run_on`). The first exception thrown by any task is captured and
/// rethrown from wait().
class TaskGroup {
 public:
  TaskGroup() = default;
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Run `task` on a fresh thread (the paper's `new Thread(){run(){...}}`).
  void spawn(std::function<void()> task);

  /// Run `task` on `pool`, still tracked by this group.
  void run_on(ThreadPool& pool, std::function<void()> task);

  /// Manual bracketing for advice that manages its own execution: balance
  /// every enter() with exactly one leave().
  void enter();
  void leave(std::exception_ptr error = nullptr);

  /// Tasks started but not yet finished. New tasks may be spawned by
  /// running tasks, so this can rise while waiting.
  [[nodiscard]] std::size_t outstanding() const;

  /// Block until every task (including tasks spawned by tasks) finishes;
  /// rethrows the first captured exception. The group is reusable after
  /// wait() returns.
  void wait();

 private:
  void finish(std::exception_ptr error);
  void reap_locked();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t outstanding_ = 0;
  std::exception_ptr first_error_;
  std::vector<std::thread> threads_;
};

}  // namespace apar::concurrency
