#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "apar/concurrency/task.hpp"

namespace apar::concurrency {

class ThreadPool;

/// Tracks a dynamic set of asynchronous tasks so a caller can quiesce.
///
/// The paper's `main` implicitly waits for the woven pipeline to drain; the
/// concurrency aspect registers every spawned call here and
/// `aop::Context::quiesce()` forwards to wait(). Supports both the paper's
/// literal thread-per-call model (`spawn`) and the pooled optimisation
/// (`run_on`). The first exception thrown by any task is captured and
/// rethrown from wait().
class TaskGroup {
 public:
  TaskGroup() = default;
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// RAII batching for partition advice: while a BatchScope for this group
  /// is active on the calling thread, run_on() calls targeting one pool are
  /// collected and submitted as a single ThreadPool::bulk_post when the
  /// scope closes (one accounting pass and one wake sweep instead of N
  /// locked posts). Accounting is live — outstanding() rises as tasks are
  /// batched — and a run_on() for a different pool (or group) bypasses the
  /// batch. If the pool rejects the flush (shutdown), the batched tasks run
  /// inline on the flushing thread so nothing is lost and the destructor
  /// never throws. Scopes nest per-thread (inner scope shadows outer).
  class BatchScope {
   public:
    explicit BatchScope(TaskGroup& group);
    ~BatchScope();

    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

    /// Submit everything batched so far without closing the scope.
    void flush();

   private:
    friend class TaskGroup;
    TaskGroup& group_;
    ThreadPool* pool_ = nullptr;
    std::vector<Task> tasks_;
    BatchScope* prev_ = nullptr;
  };

  /// Run `task` on a fresh thread (the paper's `new Thread(){run(){...}}`).
  void spawn(std::function<void()> task);

  /// Run `task` on `pool`, still tracked by this group. Inside an active
  /// BatchScope for this group, the task is deferred into the batch.
  void run_on(ThreadPool& pool, std::function<void()> task);

  /// Manual bracketing for advice that manages its own execution: balance
  /// every enter() with exactly one leave().
  void enter();
  void leave(std::exception_ptr error = nullptr);

  /// Tasks started but not yet finished. New tasks may be spawned by
  /// running tasks, so this can rise while waiting.
  [[nodiscard]] std::size_t outstanding() const;

  /// Block until every task (including tasks spawned by tasks) finishes;
  /// rethrows the first captured exception. The group is reusable after
  /// wait() returns.
  void wait();

 private:
  void finish(std::exception_ptr error);
  void reap_locked();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t outstanding_ = 0;
  std::exception_ptr first_error_;
  std::vector<std::thread> threads_;
};

}  // namespace apar::concurrency
