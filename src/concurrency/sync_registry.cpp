#include "apar/concurrency/sync_registry.hpp"

#include <cassert>
#include <functional>

namespace apar::concurrency {

/// A monitor plus its shard-locked bookkeeping. `pins` counts Guards alive
/// (or threads mid-acquire between lookup and lock); `doomed` marks an
/// entry forget() could not destroy because it was pinned. Both fields are
/// guarded by the owning shard's mutex — never touched while only the
/// monitor itself is held.
struct SyncRegistry::MonitorEntry {
  std::recursive_mutex mutex;
  std::size_t pins = 0;
  bool doomed = false;
};

SyncRegistry::SyncRegistry(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

SyncRegistry::~SyncRegistry() = default;

SyncRegistry::Guard::Guard(SyncRegistry* registry, MonitorEntry* entry,
                           const void* object)
    : registry_(registry), entry_(entry), object_(object) {}

SyncRegistry::Guard::Guard(Guard&& other) noexcept
    : registry_(other.registry_), entry_(other.entry_),
      object_(other.object_) {
  other.registry_ = nullptr;
  other.entry_ = nullptr;
}

SyncRegistry::Guard::~Guard() {
  if (registry_ == nullptr) return;  // moved-from
  if (SyncObserver* obs = sync_observer())
    obs->on_released(registry_, object_);
  registry_->release(entry_, object_);
}

SyncRegistry::Shard& SyncRegistry::shard_for(const void* object) {
  const std::size_t h = std::hash<const void*>{}(object);
  return shards_[h % shards_.size()];
}

const SyncRegistry::Shard& SyncRegistry::shard_for(const void* object) const {
  const std::size_t h = std::hash<const void*>{}(object);
  return shards_[h % shards_.size()];
}

SyncRegistry::Guard SyncRegistry::acquire(const void* object) {
  Shard& shard = shard_for(object);
  MonitorEntry* entry = nullptr;
  {
    std::lock_guard lock(shard.mutex);
    auto& slot = shard.map[object];
    if (!slot) slot = std::make_unique<MonitorEntry>();
    entry = slot.get();
    // Pin before leaving the shard lock: a concurrent forget() must not
    // destroy the entry while this thread is blocked on (or holding) it.
    ++entry->pins;
  }
  // Lock outside the shard lock (CP.22: never hold one lock while taking an
  // unrelated, potentially long-held one).
  entry->mutex.lock();
  if (SyncObserver* obs = sync_observer()) obs->on_acquired(this, object);
  return Guard(this, entry, object);
}

void SyncRegistry::release(MonitorEntry* entry, const void* object) {
  entry->mutex.unlock();
  Shard& shard = shard_for(object);
  std::lock_guard lock(shard.mutex);
  assert(entry->pins > 0);
  --entry->pins;
  if (entry->pins == 0 && entry->doomed) {
    // Last pin on an entry forget() marked for removal. Compare slot
    // identity: the key may have been re-populated with a fresh entry if
    // the address was recycled after the deferred forget.
    auto it = shard.map.find(object);
    if (it != shard.map.end() && it->second.get() == entry) shard.map.erase(it);
  }
}

bool SyncRegistry::forget(const void* object) {
  Shard& shard = shard_for(object);
  std::lock_guard lock(shard.mutex);
  auto it = shard.map.find(object);
  if (it == shard.map.end()) return false;
  if (it->second->pins > 0) {
    // Destroying a locked recursive_mutex is UB: defer removal to the
    // last Guard's release instead of erasing out from under it.
    it->second->doomed = true;
    return false;
  }
  shard.map.erase(it);
  return true;
}

std::size_t SyncRegistry::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    n += shard.map.size();
  }
  return n;
}

}  // namespace apar::concurrency
