#include "apar/concurrency/sync_registry.hpp"

#include <functional>

namespace apar::concurrency {

SyncRegistry::SyncRegistry(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

SyncRegistry::Shard& SyncRegistry::shard_for(const void* object) {
  const std::size_t h = std::hash<const void*>{}(object);
  return shards_[h % shards_.size()];
}

const SyncRegistry::Shard& SyncRegistry::shard_for(const void* object) const {
  const std::size_t h = std::hash<const void*>{}(object);
  return shards_[h % shards_.size()];
}

SyncRegistry::Guard SyncRegistry::acquire(const void* object) {
  Shard& shard = shard_for(object);
  std::recursive_mutex* monitor = nullptr;
  {
    std::lock_guard lock(shard.mutex);
    auto& slot = shard.map[object];
    if (!slot) slot = std::make_unique<std::recursive_mutex>();
    monitor = slot.get();
  }
  // Lock outside the shard lock (CP.22: never hold one lock while taking an
  // unrelated, potentially long-held one).
  return Guard(*monitor);
}

void SyncRegistry::forget(const void* object) {
  Shard& shard = shard_for(object);
  std::lock_guard lock(shard.mutex);
  shard.map.erase(object);
}

std::size_t SyncRegistry::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    n += shard.map.size();
  }
  return n;
}

}  // namespace apar::concurrency
