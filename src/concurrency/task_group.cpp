#include "apar/concurrency/task_group.hpp"

#include "apar/concurrency/thread_pool.hpp"

namespace apar::concurrency {

namespace {
thread_local TaskGroup::BatchScope* tls_batch = nullptr;
}

TaskGroup::BatchScope::BatchScope(TaskGroup& group) : group_(group) {
  prev_ = tls_batch;
  tls_batch = this;
}

TaskGroup::BatchScope::~BatchScope() {
  tls_batch = prev_;
  flush();
}

void TaskGroup::BatchScope::flush() {
  if (tasks_.empty()) return;
  if (pool_) {
    try {
      pool_->bulk_post(tasks_);
      tasks_.clear();
      return;
    } catch (...) {
      // Pool shutting down; bulk_post is all-or-nothing, so fall through
      // and run the intact batch inline (each wrapper still finish()es).
    }
  }
  for (auto& task : tasks_) task();
  tasks_.clear();
}

TaskGroup::~TaskGroup() {
  // A TaskGroup is a scoped container of threads (CP.23): joining here keeps
  // destruction safe even if the owner forgot to wait().
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return outstanding_ == 0; });
  reap_locked();
}

void TaskGroup::enter() {
  std::lock_guard lock(mutex_);
  ++outstanding_;
}

void TaskGroup::leave(std::exception_ptr error) { finish(std::move(error)); }

void TaskGroup::spawn(std::function<void()> task) {
  enter();
  std::lock_guard lock(mutex_);
  threads_.emplace_back([this, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    finish(std::move(error));
  });
}

void TaskGroup::run_on(ThreadPool& pool, std::function<void()> task) {
  if (BatchScope* scope = tls_batch;
      scope && &scope->group_ == this &&
      (scope->pool_ == nullptr || scope->pool_ == &pool)) {
    scope->pool_ = &pool;
    enter();
    scope->tasks_.emplace_back([this, task = std::move(task)]() mutable {
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      finish(std::move(error));
    });
    return;
  }
  enter();
  try {
    pool.post([this, task = std::move(task)] {
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      finish(std::move(error));
    });
  } catch (...) {
    finish(std::current_exception());
    throw;
  }
}

std::size_t TaskGroup::outstanding() const {
  std::lock_guard lock(mutex_);
  return outstanding_;
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return outstanding_ == 0; });
  reap_locked();
  if (first_error_) {
    auto error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void TaskGroup::finish(std::exception_ptr error) {
  std::lock_guard lock(mutex_);
  if (error && !first_error_) first_error_ = std::move(error);
  if (--outstanding_ == 0) cv_.notify_all();
}

void TaskGroup::reap_locked() {
  // Only safe once outstanding_ == 0: every thread in threads_ has executed
  // its finish() and is about to return (or already has).
  for (auto& t : threads_) t.join();
  threads_.clear();
}

}  // namespace apar::concurrency
