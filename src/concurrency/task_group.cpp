#include "apar/concurrency/task_group.hpp"

#include "apar/concurrency/thread_pool.hpp"

namespace apar::concurrency {

TaskGroup::~TaskGroup() {
  // A TaskGroup is a scoped container of threads (CP.23): joining here keeps
  // destruction safe even if the owner forgot to wait().
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return outstanding_ == 0; });
  reap_locked();
}

void TaskGroup::enter() {
  std::lock_guard lock(mutex_);
  ++outstanding_;
}

void TaskGroup::leave(std::exception_ptr error) { finish(std::move(error)); }

void TaskGroup::spawn(std::function<void()> task) {
  enter();
  std::lock_guard lock(mutex_);
  threads_.emplace_back([this, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    finish(std::move(error));
  });
}

void TaskGroup::run_on(ThreadPool& pool, std::function<void()> task) {
  enter();
  try {
    pool.post([this, task = std::move(task)] {
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      finish(std::move(error));
    });
  } catch (...) {
    finish(std::current_exception());
    throw;
  }
}

std::size_t TaskGroup::outstanding() const {
  std::lock_guard lock(mutex_);
  return outstanding_;
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return outstanding_ == 0; });
  reap_locked();
  if (first_error_) {
    auto error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void TaskGroup::finish(std::exception_ptr error) {
  std::lock_guard lock(mutex_);
  if (error && !first_error_) first_error_ = std::move(error);
  if (--outstanding_ == 0) cv_.notify_all();
}

void TaskGroup::reap_locked() {
  // Only safe once outstanding_ == 0: every thread in threads_ has executed
  // its finish() and is about to return (or already has).
  for (auto& t : threads_) t.join();
  threads_.clear();
}

}  // namespace apar::concurrency
