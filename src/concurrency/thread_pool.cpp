#include "apar/concurrency/thread_pool.hpp"

#include <stdexcept>

#include "apar/obs/metrics.hpp"

namespace apar::concurrency {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  if (obs::metrics_enabled()) {
    auto& registry = obs::MetricsRegistry::global();
    queue_depth_ = registry.gauge("threadpool.queue_depth");
    workers_gauge_ = registry.gauge("threadpool.workers");
    wait_us_ = registry.histogram("threadpool.wait_us");
    run_us_ = registry.histogram("threadpool.run_us");
    tasks_counter_ = registry.counter("threadpool.tasks");
    busy_us_counter_ = registry.counter("threadpool.busy_us");
    workers_gauge_->add(static_cast<std::int64_t>(threads));
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  if (workers_gauge_)
    workers_gauge_->add(-static_cast<std::int64_t>(workers_.size()));
}

void ThreadPool::post(std::function<void()> task) {
  QueuedTask queued{std::move(task), {}};
  if (wait_us_) queued.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool is shutting down");
    queue_.push_back(std::move(queued));
  }
  if (queue_depth_) queue_depth_->add(1);
  cv_.notify_one();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    if (queue_depth_) queue_depth_->add(-1);
    std::chrono::steady_clock::time_point started{};
    if (wait_us_) {
      started = std::chrono::steady_clock::now();
      wait_us_->record(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              started - task.enqueued)
              .count() /
          1000.0);
    }
    // A fire-and-forget task that throws must not take the process down
    // (an escaped exception on a worker thread is std::terminate). This
    // matters during shutdown: a task that post()s while the pool is
    // stopping gets a runtime_error, and if it lets that propagate the
    // whole run would die instead of finishing the drain.
    try {
      task.fn();
    } catch (...) {
      task_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    if (run_us_) {
      const double us = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - started)
                            .count() /
                        1000.0;
      run_us_->record(us);
      tasks_counter_->add(1);
      busy_us_counter_->add(static_cast<std::uint64_t>(us));
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace apar::concurrency
