#include "apar/concurrency/thread_pool.hpp"

#include <stdexcept>

namespace apar::concurrency {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool is shutting down");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // A fire-and-forget task that throws must not take the process down
    // (an escaped exception on a worker thread is std::terminate). This
    // matters during shutdown: a task that post()s while the pool is
    // stopping gets a runtime_error, and if it lets that propagate the
    // whole run would die instead of finishing the drain.
    try {
      task();
    } catch (...) {
      task_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace apar::concurrency
